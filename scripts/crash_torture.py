#!/usr/bin/env python3
"""Drive the crash-torture sweep with a configurable kill budget.

Usage: crash_torture.py [--build-dir build] [--hits N] [--repeat N]
                        [--server | --multi-corpus]

Wraps `dc_tests --gtest_filter='CrashTorture.*'`: each repeat runs the
full sweep (every registered crash point, killed at hit counts
1..hits), recovering the warehouse after each kill and asserting exact
query equivalence against an in-memory reference corpus. The per-site
hit budget is passed to the harness via DC_CRASH_TORTURE_HITS.

With --server the sweep targets the wire front end instead
(ServerCrashTorture.*): a child process serving the framed protocol
over a durable store is SIGKILLed mid-ingest-stream, restarted on the
same directory, and held to the durable-ack contract — every kOk
response to a kFlagDurable ingest must survive, with exact query
equivalence against a reference corpus rebuilt from what recovery
reports.

With --multi-corpus the sweep targets the multi-corpus warehouse
(WarehouseCrashTorture.*): a WarehouseManager-backed server ingesting
into two corpora concurrently is SIGKILLed mid-stream, the manager is
rebuilt on the same root, and every durably-acked run must be
recovered in its own corpus — per-corpus exact query equivalence plus
a federated query agreeing with the per-corpus references.

Exit status is nonzero as soon as any sweep fails, so CI can gate on
it directly. Meant to run under sanitizers too — point --build-dir at
an ASan/TSan tree.
"""

import argparse
import os
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(
        description="crash-torture sweep driver")
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree holding dc_tests")
    parser.add_argument("--hits", type=int, default=2,
                        help="kill each crash point at hit counts "
                             "1..HITS (default 2; store sweep only)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="full-sweep repetitions (default 1)")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--server", action="store_true",
                      help="torture the wire front end "
                           "(ServerCrashTorture.*) instead of the "
                           "store-level crash points")
    mode.add_argument("--multi-corpus", action="store_true",
                      help="torture the multi-corpus warehouse "
                           "(WarehouseCrashTorture.*): SIGKILL while "
                           "two corpora ingest, per-corpus recovery")
    args = parser.parse_args()

    binary = os.path.join(args.build_dir, "dc_tests")
    if not os.path.exists(binary):
        print(f"crash_torture: no test binary at {binary} "
              f"(build the tree first)", file=sys.stderr)
        return 2

    if args.server:
        gtest_filter, label = "ServerCrashTorture.*", "server sweep"
    elif args.multi_corpus:
        gtest_filter, label = ("WarehouseCrashTorture.*",
                               "multi-corpus sweep")
    else:
        gtest_filter, label = "CrashTorture.*", "sweep"
    env = dict(os.environ)
    env["DC_CRASH_TORTURE_HITS"] = str(args.hits)
    for i in range(args.repeat):
        print(f"crash_torture: {label} {i + 1}/{args.repeat} "
              f"(hits budget {args.hits})", flush=True)
        result = subprocess.run(
            [binary, f"--gtest_filter={gtest_filter}",
             "--gtest_brief=1"],
            env=env)
        if result.returncode != 0:
            print(f"crash_torture: {label} {i + 1} FAILED "
                  f"(exit {result.returncode})", file=sys.stderr)
            return 1
    print(f"crash_torture: {args.repeat} {label}(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Unit tests for compare_bench.py's gating rules, focused on the
scale-curve skip path: scale_* regressions must downgrade to warnings
when (and only when) the fresh JSON records hardware_concurrency == 1,
while every presence gate and every non-scale gate stays strict.

Run directly (registered with ctest as compare_bench.gate): each case
invokes compare_bench.py as a subprocess exactly the way CI does and
asserts on the exit code and the report text.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def run_gate(baseline, fresh, extra_args=()):
    with tempfile.TemporaryDirectory() as tmp:
        baseline_path = os.path.join(tmp, "baseline.json")
        fresh_path = os.path.join(tmp, "fresh.json")
        with open(baseline_path, "w") as handle:
            json.dump(baseline, handle)
        with open(fresh_path, "w") as handle:
            json.dump(fresh, handle)
        return subprocess.run(
            [sys.executable, SCRIPT, baseline_path, fresh_path,
             *extra_args],
            capture_output=True, text=True)


FAILURES = []


def check(name, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"{name:<58} {status}")
    if not condition:
        FAILURES.append(f"{name}: {detail}")


def main():
    base = {
        "scale_topk_qps_t1": 100000.0,
        "scale_topk_qps_t4": 350000.0,
        "cached_topk_speedup_8": 50.0,
        "server_qps": 20000.0,
        "hardware_concurrency": 4,
    }

    # Identical results pass.
    result = run_gate(base, base)
    check("identical JSONs pass", result.returncode == 0,
          result.stdout + result.stderr)

    # A collapsed scale curve on a single-core runner is a warning,
    # not a failure — the runner cannot scale past its hardware.
    flat = dict(base)
    flat["scale_topk_qps_t4"] = 1000.0
    flat["hardware_concurrency"] = 1
    result = run_gate(base, flat)
    check("scale regression @ hw=1 warns but passes",
          result.returncode == 0, result.stdout + result.stderr)
    check("  ...and the warning is loud",
          "informational" in result.stderr, result.stderr)

    # The same collapse on a multi-core runner fails.
    flat_multicore = dict(flat)
    flat_multicore["hardware_concurrency"] = 4
    result = run_gate(base, flat_multicore)
    check("scale regression @ hw=4 fails", result.returncode == 1,
          result.stdout + result.stderr)

    # Without a recorded hardware_concurrency the gate stays strict.
    unrecorded = dict(flat)
    del unrecorded["hardware_concurrency"]
    result = run_gate(base, unrecorded)
    check("scale regression without recorded hw fails",
          result.returncode == 1, result.stdout + result.stderr)

    # hw=1 excuses only the scale curve, not other gated keys.
    slow = dict(base)
    slow["hardware_concurrency"] = 1
    slow["cached_topk_speedup_8"] = 1.0
    result = run_gate(base, slow)
    check("non-scale regression @ hw=1 still fails",
          result.returncode == 1, result.stdout + result.stderr)

    # Presence gates stay strict at any core count: a scale key
    # missing from the fresh run, or fresh-only (never gated), fails.
    missing = {k: v for k, v in flat.items()
               if k != "scale_topk_qps_t4"}
    result = run_gate(base, missing)
    check("scale key missing from fresh fails even @ hw=1",
          result.returncode == 1, result.stdout + result.stderr)

    baseline_without = {k: v for k, v in base.items()
                        if k != "scale_topk_qps_t4"}
    result = run_gate(baseline_without, flat)
    check("fresh-only scale key fails even @ hw=1",
          result.returncode == 1, result.stdout + result.stderr)
    result = run_gate(baseline_without, flat, ["--allow-new-keys"])
    check("  ...unless --allow-new-keys downgrades it",
          result.returncode == 0, result.stdout + result.stderr)

    if FAILURES:
        print(f"\n{len(FAILURES)} case(s) failed:", file=sys.stderr)
        for failure in FAILURES:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall compare_bench gating cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gate fresh bench JSONs against checked-in baselines.

Usage: compare_bench.py BASELINE.json FRESH.json [BASELINE2.json FRESH2.json ...]
           [--speedup-tolerance 0.5] [--latency-tolerance 4.0]

Arguments are baseline/fresh *pairs*: one invocation gates any number
of them (CI passes every benchmark's pair at once) and the report at
the end lists every failed gate across all pairs — a regression in the
first pair does not mask one in the second.

Each file is a flat JSON object of numeric scenario keys (plus
optional string keys such as "description", which are ignored), as
written by `bench_profile_service --json`.

Two families of gates, both deliberately loose — CI machines differ
wildly from the machine that produced the baseline, so this catches
collapses of the fast path, not single-digit-percent drift:

- "*_speedup" keys are ratios measured within one process on one
  machine, so they transfer across hosts. The fresh ratio must be at
  least baseline * (1 - speedup_tolerance). A missing key fails: a
  renamed or dropped scenario must update the baseline consciously.

- "*_us" / "*_per_sec" / "*_qps" keys are absolute and
  host-dependent; they only fail on catastrophe (worse than
  latency_tolerance x the baseline). The "*_qps_tN" family (the
  bench's multi-thread scaling mode, e.g. scale_topk_qps_t4) gates
  the same way, with one exception: "scale_*" regressions are
  downgraded to loud warnings when the fresh JSON records
  hardware_concurrency == 1 — a single-core runner cannot exhibit
  multi-core scaling, so a flat curve there is physics, not a
  regression. The presence gates (missing-from-fresh, fresh-only)
  stay strict regardless of core count.

- "*_equiv" / "*_recovered" / "*_correct" keys are 0/1 correctness
  flags (e.g. "the restarted store answered queries identically", "the
  overloaded server shed with explicit statuses and lost nothing");
  the fresh value must be at least the baseline's, so a flag that was
  1 failing to 0 fails the build with no tolerance.

- "*_overhead_pct" keys are within-process percentages (instrumented
  vs. disabled telemetry), so like speedups they transfer across
  hosts. The fresh value is gated against an absolute ceiling
  (--overhead-cap, default 3.0), not against the baseline: the budget
  is a contract, not a trajectory. On failure the report includes
  every companion absolute key sharing the key's prefix (e.g.
  telemetry_ingest_on_per_sec / _off_per_sec), so the log shows the
  underlying numbers, not just the ratio.

A gated-suffix key present in the fresh JSON but missing from the
baseline also fails: otherwise a newly added scenario is silently never
gated (every key above would look green while the new one regresses
freely). Add new keys to the checked-in baseline in the same change
that adds the scenario, or pass --allow-new-keys to downgrade the
failure to a loud warning (local experiments only — CI must gate).

Exit code 0 when every gate of every pair holds, 1 otherwise.
"""

import argparse
import json
import re
import sys


def numeric_items(obj):
    return {
        key: float(value)
        for key, value in obj.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def gated(key):
    return (key.endswith(("_speedup", "_us", "_per_sec", "_qps",
                          "_equiv", "_recovered", "_correct",
                          "_overhead_pct"))
            or "_speedup_" in key
            or re.search(r"_qps_t\d+$", key) is not None)


def compare_pair(baseline_path, fresh_path, args, label):
    """Gate one baseline/fresh pair; return its failure messages."""
    with open(baseline_path) as handle:
        baseline = numeric_items(json.load(handle))
    with open(fresh_path) as handle:
        fresh = numeric_items(json.load(handle))

    failures = []
    rows = []
    for key in sorted(baseline):
        base = baseline[key]
        if key not in fresh:
            failures.append(f"{key}: missing from fresh results")
            continue
        got = fresh[key]
        verdict = "ok"
        if key.endswith("_speedup") or "_speedup_" in key:
            floor = base * (1.0 - args.speedup_tolerance)
            if got < floor:
                verdict = f"FAIL (< {floor:.2f})"
                failures.append(
                    f"{key}: speedup {got:.2f} fell below "
                    f"{floor:.2f} (baseline {base:.2f})")
        elif key.endswith("_us"):
            ceiling = base * args.latency_tolerance
            if got > ceiling:
                verdict = f"FAIL (> {ceiling:.0f})"
                failures.append(
                    f"{key}: latency {got:.0f}us exceeds "
                    f"{ceiling:.0f}us ({args.latency_tolerance}x "
                    f"baseline {base:.0f}us)")
        elif (key.endswith(("_per_sec", "_qps"))
              or re.search(r"_qps_t\d+$", key)):
            floor = base / args.latency_tolerance
            if got < floor:
                message = (f"{key}: throughput {got:.0f}/s fell below "
                           f"{floor:.0f}/s (baseline {base:.0f}/s)")
                # Scale-curve keys are informational on a single-core
                # runner: no scheduler can scale past the hardware.
                # Only the recorded value downgrades — a fresh JSON
                # without a hardware_concurrency key gates strictly.
                if (key.startswith("scale_")
                        and fresh.get("hardware_concurrency", 2.0)
                        <= 1.0):
                    verdict = "warn (single-core runner)"
                    print(f"WARNING: {message} — informational: fresh "
                          f"run recorded hardware_concurrency=1",
                          file=sys.stderr)
                else:
                    verdict = f"FAIL (< {floor:.0f})"
                    failures.append(message)
        elif key.endswith(("_equiv", "_recovered", "_correct")):
            if got < base:
                verdict = f"FAIL (< {base:g})"
                failures.append(
                    f"{key}: correctness flag fell from {base:g} "
                    f"to {got:g}")
        elif key.endswith("_overhead_pct"):
            if got > args.overhead_cap:
                verdict = f"FAIL (> {args.overhead_cap:g}%)"
                # The percentage alone is useless in a CI log; show
                # the absolute measurements it was computed from.
                prefix = key[:-len("overhead_pct")]
                companions = ", ".join(
                    f"{k}={fresh[k]:.3f}"
                    for k in sorted(fresh)
                    if k.startswith(prefix) and k != key)
                failures.append(
                    f"{key}: telemetry overhead {got:.2f}% exceeds "
                    f"the {args.overhead_cap:g}% budget"
                    + (f" ({companions})" if companions else ""))
        rows.append((key, base, got, verdict))

    # Keys only the fresh run knows are exactly the ones no gate above
    # ever saw — a new scenario must land in the baseline to be gated.
    fresh_only = sorted(k for k in fresh if k not in baseline and gated(k))
    for key in fresh_only:
        message = (f"{key}: fresh value {fresh[key]:.3f} has no "
                   f"baseline entry — ungated; add it to the baseline")
        if args.allow_new_keys:
            print(f"WARNING: {message}", file=sys.stderr)
        else:
            failures.append(message)

    if label:
        print(f"== {label}")
    width = max(len(key) for key, *_ in rows) if rows else 0
    for key, base, got, verdict in rows:
        print(f"{key:<{width}}  baseline {base:>12.3f}  "
              f"fresh {got:>12.3f}  {verdict}")

    if label:
        return [f"[{label}] {failure}" for failure in failures], len(rows)
    return failures, len(rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pairs", nargs="+", metavar="BASELINE FRESH",
                        help="one or more baseline/fresh JSON pairs")
    parser.add_argument("--speedup-tolerance", type=float, default=0.5,
                        help="allowed relative shortfall on *_speedup "
                             "keys (0.5 = fresh may be half the "
                             "baseline ratio)")
    parser.add_argument("--latency-tolerance", type=float, default=4.0,
                        help="allowed multiple of baseline on *_us "
                             "keys / divisor on *_per_sec keys")
    parser.add_argument("--overhead-cap", type=float, default=3.0,
                        help="absolute ceiling (percent) for "
                             "*_overhead_pct keys")
    parser.add_argument("--allow-new-keys", action="store_true",
                        help="only warn (loudly) about gated-suffix "
                             "keys missing from the baseline instead "
                             "of failing")
    args = parser.parse_args()

    if len(args.pairs) % 2 != 0:
        parser.error("arguments must be BASELINE FRESH pairs "
                     f"(got {len(args.pairs)} paths)")
    pairs = [(args.pairs[i], args.pairs[i + 1])
             for i in range(0, len(args.pairs), 2)]

    # Every pair is compared even after a failure: the final report
    # carries every broken gate across every pair in one run.
    failures = []
    keys = 0
    for index, (baseline_path, fresh_path) in enumerate(pairs):
        label = (f"{baseline_path} vs {fresh_path}"
                 if len(pairs) > 1 else "")
        if index > 0:
            print()
        pair_failures, pair_keys = compare_pair(
            baseline_path, fresh_path, args, label)
        failures.extend(pair_failures)
        keys += pair_keys

    if failures:
        print(f"\nbench gate FAILED ({len(failures)} failure(s) "
              f"across {len(pairs)} pair(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed ({keys} keys across "
          f"{len(pairs)} pair(s)).")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#pragma once

/**
 * @file
 * Trace-based baseline profilers: the PyTorch-profiler and JAX-profiler
 * stand-ins Figure 6 compares against.
 *
 * Unlike DeepContext, these record **every** event instance into a
 * growing in-memory trace (op begin/end pairs with optional Python stack
 * strings, plus every kernel/memcpy activity). Per-event overhead is low
 * — framework profilers are cheap in time — but memory grows linearly
 * with iteration count, and exporting the trace expands it further; the
 * export can exhaust host DRAM (the paper observed the PyTorch profiler
 * OOM-ing while exporting Llama3/Gemma profiles).
 */

#include <memory>
#include <string>
#include <vector>

#include "framework/jaxsim/jax_session.h"
#include "framework/torchsim/torch_session.h"
#include "sim/runtime/gpu_runtime.h"
#include "sim/sim_context.h"

namespace dc::baselines {

/** Which framework profiler is being modeled. */
enum class TraceFlavor {
    kTorchProfiler,
    kJaxProfiler,
};

/** One recorded trace event. */
struct TraceEvent {
    enum class Kind {
        kOp,
        kKernel,
        kMemcpy,
        kMemory,
    };
    Kind kind = Kind::kOp;
    std::string name;
    TimeNs ts = 0;
    DurationNs dur = 0;
    ThreadId tid = 0;
    SequenceId seq = 0;
    bool is_backward = false;
    std::string python_stack; ///< with_stack=True captures (torch only).
};

/** Tuning knobs (costs and per-event footprints). */
struct TraceProfilerConfig {
    /// Record Python stacks with each op (torch profiler's with_stack).
    bool with_stack = true;
    DurationNs op_event_cost_ns = 700;
    DurationNs stack_frame_cost_ns = 90;
    DurationNs activity_event_cost_ns = 150;
    /// Host bytes per op event (event struct + shapes + stack strings).
    std::uint64_t host_bytes_per_op_event = 8'192;
    std::uint64_t host_bytes_per_activity = 512;
    /// JSON expansion factor when exporting the trace.
    double export_expansion = 8.0;
    std::size_t activity_buffer_capacity = 512;
};

/** Result of exporting the trace. */
struct ExportResult {
    bool ok = false;
    bool oom = false;           ///< Export aborted: DRAM exhausted.
    std::uint64_t trace_bytes = 0;
    std::uint64_t export_bytes = 0;
};

/** The baseline profiler. */
class TraceProfiler
{
  public:
    /**
     * Attach to a torch session (flavor kTorchProfiler) or a jax session
     * (flavor kJaxProfiler); exactly one must be non-null.
     */
    TraceProfiler(sim::SimContext &ctx, sim::GpuRuntime &runtime,
                  int device, fw::TorchSession *torch,
                  fw::JaxSession *jax, TraceProfilerConfig config = {});
    ~TraceProfiler();

    TraceProfiler(const TraceProfiler &) = delete;
    TraceProfiler &operator=(const TraceProfiler &) = delete;

    TraceFlavor flavor() const { return flavor_; }

    /** Events recorded so far. */
    std::size_t eventCount() const { return events_.size(); }

    /** Live trace bytes (host memory charged). */
    std::uint64_t traceBytes() const { return trace_bytes_; }

    /**
     * Export a chrome-trace JSON. Fails with oom when live host memory
     * (trace + export buffer) would exceed @p dram_limit_bytes.
     * On success the JSON string is returned through @p out (optional).
     */
    ExportResult exportChromeTrace(std::uint64_t dram_limit_bytes,
                                   std::string *out = nullptr);

    /** Detach callbacks (automatic on destruction). */
    void detach();

    const std::vector<TraceEvent> &events() const { return events_; }

  private:
    void onTorchEvent(const fw::RecordEvent &event);
    void onJaxOpEvent(const fw::JaxOpEvent &event);
    void onActivities(std::vector<sim::ActivityRecord> &&records);
    void record(TraceEvent event, std::uint64_t bytes);
    std::string captureStack();

    sim::SimContext &ctx_;
    sim::GpuRuntime &runtime_;
    int device_;
    fw::TorchSession *torch_;
    fw::JaxSession *jax_;
    TraceFlavor flavor_;
    TraceProfilerConfig config_;

    int torch_handle_ = 0;
    bool attached_ = false;

    std::vector<TraceEvent> events_;
    std::uint64_t trace_bytes_ = 0;

    /// Open op begin timestamps per thread.
    std::map<ThreadId, std::vector<std::pair<std::string, TimeNs>>> open_;
};

} // namespace dc::baselines

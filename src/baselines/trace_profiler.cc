#include "baselines/trace_profiler.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sim/cupti/cupti_sim.h"
#include "sim/roctracer/roctracer_sim.h"

namespace dc::baselines {

TraceProfiler::TraceProfiler(sim::SimContext &ctx, sim::GpuRuntime &runtime,
                             int device, fw::TorchSession *torch,
                             fw::JaxSession *jax,
                             TraceProfilerConfig config)
    : ctx_(ctx), runtime_(runtime), device_(device), torch_(torch),
      jax_(jax), config_(config)
{
    DC_CHECK((torch_ != nullptr) != (jax_ != nullptr),
             "attach exactly one framework");
    flavor_ = torch_ != nullptr ? TraceFlavor::kTorchProfiler
                                : TraceFlavor::kJaxProfiler;

    if (torch_ != nullptr) {
        torch_handle_ = torch_->recordFunctions().addGlobalCallback(
            [this](const fw::RecordEvent &event) { onTorchEvent(event); });
    } else {
        fw::JaxInstrumentation hooks;
        hooks.op_callback = [this](const fw::JaxOpEvent &event) {
            onJaxOpEvent(event);
        };
        hooks.compile_callback = [](fw::RecordPhase, const std::string &) {
        };
        jax_->setInstrumentation(std::move(hooks));
    }

    // Activity collection straight from the vendor APIs (framework
    // profilers use CUPTI / roctracer under the hood too).
    const sim::GpuVendor vendor = ctx_.device(device_).arch().vendor;
    auto handler = [this](std::vector<sim::ActivityRecord> &&records) {
        onActivities(std::move(records));
    };
    if (vendor == sim::GpuVendor::kNvidia) {
        sim::cupti::cuptiActivityEnable(runtime_, device_, handler,
                                        config_.activity_buffer_capacity);
    } else if (vendor == sim::GpuVendor::kAmd) {
        sim::roctracer::roctracerOpenPool(
            runtime_, device_, handler, config_.activity_buffer_capacity);
    } else {
        ctx_.device(device_).setFlushHandler(
            handler, config_.activity_buffer_capacity);
    }
    attached_ = true;
}

TraceProfiler::~TraceProfiler()
{
    detach();
    if (trace_bytes_ > 0) {
        ctx_.hostMemory().release("profile.trace", trace_bytes_);
        trace_bytes_ = 0;
    }
}

void
TraceProfiler::detach()
{
    if (!attached_)
        return;
    ctx_.device(device_).flushActivities();
    if (torch_ != nullptr) {
        torch_->recordFunctions().removeGlobalCallback(torch_handle_);
    } else {
        jax_->clearInstrumentation();
    }
    const sim::GpuVendor vendor = ctx_.device(device_).arch().vendor;
    if (vendor == sim::GpuVendor::kNvidia) {
        sim::cupti::cuptiActivityDisable(runtime_, device_);
    } else if (vendor == sim::GpuVendor::kAmd) {
        sim::roctracer::roctracerClosePool(runtime_, device_);
    } else {
        ctx_.device(device_).clearFlushHandler();
    }
    attached_ = false;
}

void
TraceProfiler::record(TraceEvent event, std::uint64_t bytes)
{
    events_.push_back(std::move(event));
    trace_bytes_ += bytes;
    ctx_.hostMemory().allocate("profile.trace", bytes);
}

std::string
TraceProfiler::captureStack()
{
    const auto &frames = ctx_.currentThread().pyStack().frames();
    ctx_.chargeProfilingOverhead(
        static_cast<DurationNs>(frames.size()) *
        config_.stack_frame_cost_ns);
    std::string out;
    for (const pyrt::PyFrame &f : frames) {
        out += f.file;
        out += ":";
        out += std::to_string(f.line);
        out += ";";
    }
    return out;
}

void
TraceProfiler::onTorchEvent(const fw::RecordEvent &event)
{
    if (event.kind == fw::RecordKind::kMemory) {
        ctx_.chargeProfilingOverhead(config_.activity_event_cost_ns);
        TraceEvent te;
        te.kind = TraceEvent::Kind::kMemory;
        te.name = event.name;
        te.ts = ctx_.now();
        te.tid = ctx_.currentThreadId();
        record(std::move(te), config_.host_bytes_per_activity);
        return;
    }
    if (event.kind != fw::RecordKind::kOperator)
        return;

    auto &open = open_[ctx_.currentThreadId()];
    if (event.phase == fw::RecordPhase::kBegin) {
        ctx_.chargeProfilingOverhead(config_.op_event_cost_ns);
        open.emplace_back(event.name, ctx_.now());
        return;
    }
    if (open.empty())
        return;
    auto [name, begin] = open.back();
    open.pop_back();

    TraceEvent te;
    te.kind = TraceEvent::Kind::kOp;
    te.name = name;
    te.ts = begin;
    te.dur = ctx_.now() - begin;
    te.tid = ctx_.currentThreadId();
    te.seq = event.seq;
    te.is_backward = event.is_backward;
    std::uint64_t bytes = config_.host_bytes_per_op_event;
    if (config_.with_stack) {
        te.python_stack = captureStack();
        bytes += te.python_stack.size();
    }
    record(std::move(te), bytes);
}

void
TraceProfiler::onJaxOpEvent(const fw::JaxOpEvent &event)
{
    auto &open = open_[ctx_.currentThreadId()];
    if (event.phase == fw::RecordPhase::kBegin) {
        ctx_.chargeProfilingOverhead(config_.op_event_cost_ns);
        open.emplace_back(event.step->name, ctx_.now());
        return;
    }
    if (open.empty())
        return;
    auto [name, begin] = open.back();
    open.pop_back();

    TraceEvent te;
    te.kind = TraceEvent::Kind::kOp;
    te.name = name;
    te.ts = begin;
    te.dur = ctx_.now() - begin;
    te.tid = ctx_.currentThreadId();
    te.seq = event.seq;
    te.is_backward = event.step->is_backward;
    // The JAX profiler records XLA-level events without Python stacks.
    record(std::move(te), config_.host_bytes_per_op_event / 2);
}

void
TraceProfiler::onActivities(std::vector<sim::ActivityRecord> &&records)
{
    for (const sim::ActivityRecord &activity : records) {
        ctx_.chargeProfilingOverhead(config_.activity_event_cost_ns);
        TraceEvent te;
        te.kind = activity.kind == sim::ActivityKind::kKernel
                      ? TraceEvent::Kind::kKernel
                      : TraceEvent::Kind::kMemcpy;
        te.name = activity.name;
        te.ts = activity.start_ns;
        te.dur = activity.duration();
        record(std::move(te), config_.host_bytes_per_activity);
    }
}

ExportResult
TraceProfiler::exportChromeTrace(std::uint64_t dram_limit_bytes,
                                 std::string *out)
{
    ExportResult result;
    result.trace_bytes = trace_bytes_;
    result.export_bytes = static_cast<std::uint64_t>(
        static_cast<double>(trace_bytes_) * config_.export_expansion);

    // The exporter materializes the JSON next to the live trace; if that
    // does not fit in DRAM the export dies (the paper's OOM case).
    const std::uint64_t projected =
        ctx_.hostMemory().totalLiveBytes() + result.export_bytes;
    if (projected > dram_limit_bytes) {
        result.oom = true;
        return result;
    }

    ctx_.hostMemory().allocate("profile.trace.export",
                               result.export_bytes);
    if (out != nullptr) {
        // A compact, representative chrome-trace rendering. Only built
        // when requested: tests inspect it, benches only need sizes.
        std::string json = "[";
        for (std::size_t i = 0; i < events_.size(); ++i) {
            const TraceEvent &e = events_[i];
            if (i)
                json += ",";
            json += strformat(
                "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
                "\"dur\":%lld,\"tid\":%u}",
                jsonEscape(e.name).c_str(),
                static_cast<long long>(e.ts / 1000),
                static_cast<long long>(e.dur / 1000), e.tid);
        }
        json += "]";
        *out = std::move(json);
    }
    ctx_.hostMemory().release("profile.trace.export", result.export_bytes);
    result.ok = true;
    return result;
}

} // namespace dc::baselines

#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dc {

namespace {

LogLevel g_threshold = LogLevel::kWarn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", levelName(level), file, line,
                 msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[FATAL] %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

} // namespace dc

#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dc {

namespace {

/// -1 = not yet latched from DC_LOG_LEVEL.
std::atomic<int> g_threshold{-1};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

int
initialThreshold()
{
    LogLevel level = LogLevel::kWarn;
    if (const char *env = std::getenv("DC_LOG_LEVEL")) {
        if (!parseLogLevel(env, level)) {
            std::fprintf(stderr,
                         "[WARN] ignoring unknown DC_LOG_LEVEL '%s'\n",
                         env);
            level = LogLevel::kWarn;
        }
    }
    int expected = -1;
    g_threshold.compare_exchange_strong(expected,
                                        static_cast<int>(level),
                                        std::memory_order_relaxed);
    return g_threshold.load(std::memory_order_relaxed);
}

} // namespace

LogLevel
logThreshold()
{
    int value = g_threshold.load(std::memory_order_relaxed);
    if (value < 0)
        value = initialThreshold();
    return static_cast<LogLevel>(value);
}

void
setLogThreshold(LogLevel level)
{
    g_threshold.store(static_cast<int>(level),
                      std::memory_order_relaxed);
}

bool
parseLogLevel(const std::string &text, LogLevel &out)
{
    std::string lower;
    lower.reserve(text.size());
    for (char c : text)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (lower == "debug") {
        out = LogLevel::kDebug;
    } else if (lower == "info") {
        out = LogLevel::kInfo;
    } else if (lower == "warn" || lower == "warning") {
        out = LogLevel::kWarn;
    } else if (lower == "error") {
        out = LogLevel::kError;
    } else {
        return false;
    }
    return true;
}

std::string
quoteLogValue(const std::string &value)
{
    bool bare = !value.empty();
    for (char c : value) {
        const unsigned char uc = static_cast<unsigned char>(c);
        if (std::isspace(uc) || c == '"' || c == '=' || c == '\\' ||
            uc < 0x20) {
            bare = false;
            break;
        }
    }
    if (bare)
        return value;
    std::string quoted = "\"";
    for (char c : value) {
        switch (c) {
          case '"': quoted += "\\\""; break;
          case '\\': quoted += "\\\\"; break;
          case '\n': quoted += "\\n"; break;
          case '\t': quoted += "\\t"; break;
          default: quoted.push_back(c);
        }
    }
    quoted.push_back('"');
    return quoted;
}

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", levelName(level), file, line,
                 msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[FATAL] %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

} // namespace dc

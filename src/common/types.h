#pragma once

/**
 * @file
 * Fundamental scalar types shared across the DeepContext reproduction.
 *
 * All simulation time is virtual and expressed in nanoseconds. Using a
 * dedicated alias (rather than std::chrono) keeps the arithmetic in the
 * analytical cost models simple and explicit.
 */

#include <cstdint>

namespace dc {

/** Virtual time in nanoseconds since the start of a simulation run. */
using TimeNs = std::int64_t;

/** A span of virtual time, in nanoseconds. */
using DurationNs = std::int64_t;

/** Simulated program-counter value (an address in a simulated library). */
using Pc = std::uint64_t;

/** Identifier of a logical (simulated) CPU thread. */
using ThreadId = std::uint32_t;

/** Correlation ID linking a GPU API call to its asynchronous activity. */
using CorrelationId = std::uint64_t;

/** Autograd sequence number associating forward and backward operators. */
using SequenceId = std::uint64_t;

constexpr TimeNs kNsPerUs = 1'000;
constexpr TimeNs kNsPerMs = 1'000'000;
constexpr TimeNs kNsPerSec = 1'000'000'000;

/** Convert nanoseconds to (floating-point) seconds. */
inline double
toSeconds(DurationNs ns)
{
    return static_cast<double>(ns) / static_cast<double>(kNsPerSec);
}

/** Convert nanoseconds to (floating-point) milliseconds. */
inline double
toMillis(DurationNs ns)
{
    return static_cast<double>(ns) / static_cast<double>(kNsPerMs);
}

/** Convert (floating-point) seconds to nanoseconds, rounding to nearest. */
inline DurationNs
fromSeconds(double s)
{
    return static_cast<DurationNs>(s * static_cast<double>(kNsPerSec) + 0.5);
}

/** Convert (floating-point) microseconds to nanoseconds. */
inline DurationNs
fromMicros(double us)
{
    return static_cast<DurationNs>(us * 1'000.0 + 0.5);
}

} // namespace dc

#pragma once

/**
 * @file
 * Request deadlines as cooperative cancellation tokens.
 *
 * A deadline is an absolute monotonic timestamp (obs::nowNs()
 * timebase). The wire front end stamps one onto every request that
 * carries a deadline_ms header field and *propagates* it to the query
 * path with a ScopedDeadline: the token rides thread-local storage, so
 * the deep cold-rebuild code (CorpusView::buildFull, CctMerger's
 * reduction) can check it without threading a parameter through every
 * public query signature. Long operations poll expired() at natural
 * work boundaries — per run folded into a merge, per run indexed into
 * an aggregate table — and abandon the operation, so a timed-out query
 * returns within one work unit of its deadline instead of stalling a
 * server worker for the whole rebuild.
 *
 * Executor pool workers do not inherit the submitting thread's
 * thread-local token; a TaskGroup (common/executor.h) captures the
 * deadline at construction and re-installs it with a ScopedDeadline
 * inside each task, so pooled work polls the same token its caller
 * does. Code that fans out by hand must capture current() by value and
 * hand it across explicitly.
 *
 * An abandoned build surfaces as a null view / null result from the
 * layer that owns it; the server maps "deadline expired" onto the
 * DEADLINE_EXCEEDED wire status. Nothing partial is ever cached.
 */

#include <cstdint>

#include "obs/obs.h"

namespace dc::common {

/** Absolute monotonic deadline; default-constructed = no deadline. */
class Deadline
{
  public:
    Deadline() = default;

    /** Deadline @p ns nanoseconds from now (0 = already expired). */
    static Deadline after(std::uint64_t ns)
    {
        Deadline d;
        d.deadline_ns_ = obs::nowNs() + ns;
        return d;
    }

    /** Deadline @p ms milliseconds from now. */
    static Deadline afterMs(std::uint64_t ms)
    {
        return after(ms * 1'000'000ull);
    }

    /** Whether a deadline is set at all. */
    bool valid() const { return deadline_ns_ != 0; }

    /** Whether the deadline is set and has passed. */
    bool expired() const
    {
        return valid() && obs::nowNs() >= deadline_ns_;
    }

    /** Nanoseconds left; 0 when expired, UINT64_MAX when unset. */
    std::uint64_t remainingNs() const
    {
        if (!valid())
            return ~0ull;
        const std::uint64_t now = obs::nowNs();
        return now >= deadline_ns_ ? 0 : deadline_ns_ - now;
    }

  private:
    std::uint64_t deadline_ns_ = 0; ///< 0 = none.
};

namespace detail {
inline thread_local Deadline t_current_deadline;
} // namespace detail

/**
 * RAII propagation of a Deadline to everything this thread calls while
 * the scope is open. Nests: the inner scope wins, the outer token is
 * restored on exit.
 */
class ScopedDeadline
{
  public:
    explicit ScopedDeadline(Deadline deadline)
        : previous_(detail::t_current_deadline)
    {
        detail::t_current_deadline = deadline;
    }
    ~ScopedDeadline() { detail::t_current_deadline = previous_; }

    ScopedDeadline(const ScopedDeadline &) = delete;
    ScopedDeadline &operator=(const ScopedDeadline &) = delete;

    /** The innermost deadline active on this thread (maybe unset). */
    static Deadline current() { return detail::t_current_deadline; }

  private:
    Deadline previous_;
};

/** Whether the calling thread's active deadline has passed. */
inline bool
deadlineExpired()
{
    return ScopedDeadline::current().expired();
}

} // namespace dc::common

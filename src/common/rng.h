#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The whole simulation must be reproducible run-to-run, so every stochastic
 * decision draws from a SplitMix64-seeded xoshiro256** stream owned by the
 * component that needs it. std::mt19937 is avoided because its state is
 * large and its distributions are not bit-stable across standard libraries.
 */

#include <cstdint>

namespace dc {

/** Small, fast, deterministic RNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace dc

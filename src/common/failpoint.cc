#include "common/failpoint.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics_registry.h"

namespace dc::failpoint {

namespace detail {
std::atomic<int> g_armed{0};
std::atomic<int> g_env_state{0};
} // namespace detail

namespace {

obs::Counter &
firedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("failpoint.fired");
    return counter;
}

enum class Trigger { kAlways, kHit, kEvery, kOneshot };

struct Config {
    Action action = Action::kError;
    std::uint64_t arg = 0;
    int error_errno = EIO;
    bool kill_after = false;
    Trigger trigger = Trigger::kAlways;
    std::uint64_t trigger_n = 0;
    std::uint64_t hits = 0; ///< Evaluations seen while armed.
};

struct Registry {
    std::mutex mutex;
    std::map<std::string, Config> armed;
    /// Cumulative fires per site; survives clear() so a test can
    /// disarm and still assert the fault ran.
    std::map<std::string, std::uint64_t> fired;
    std::vector<const char *> sites;
};

Registry &
registry()
{
    // Leaked intentionally: Site statics in other TUs register during
    // static init and sites evaluate up to process death (including
    // from kill actions) — destruction order must never matter.
    static Registry *r = new Registry();
    return *r;
}

bool
parseErrno(const std::string &name, int *out)
{
    static const std::map<std::string, int> known = {
        {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EDQUOT", EDQUOT},
        {"EROFS", EROFS},   {"EACCES", EACCES}, {"EBADF", EBADF},
        {"ENOENT", ENOENT},
    };
    const auto it = known.find(name);
    if (it == known.end())
        return false;
    *out = it->second;
    return true;
}

/** Parse `action[(arg)]`, e.g. `torn(12)`, `error(ENOSPC)`, `kill`. */
bool
parseAction(const std::string &text, Config *config, std::string *error)
{
    std::string head = text;
    std::string arg;
    const std::size_t paren = text.find('(');
    if (paren != std::string::npos) {
        if (text.back() != ')') {
            if (error != nullptr)
                *error = "unbalanced '(' in failpoint action: " + text;
            return false;
        }
        head = text.substr(0, paren);
        arg = text.substr(paren + 1, text.size() - paren - 2);
    }
    const auto numericArg = [&](std::uint64_t *out) {
        char *end = nullptr;
        errno = 0;
        const unsigned long long value =
            std::strtoull(arg.c_str(), &end, 10);
        if (arg.empty() || errno != 0 || end != arg.data() + arg.size()) {
            if (error != nullptr)
                *error = "bad numeric argument in failpoint action: " +
                         text;
            return false;
        }
        *out = value;
        return true;
    };
    if (head == "error") {
        config->action = Action::kError;
        config->error_errno = EIO;
        if (!arg.empty() && !parseErrno(arg, &config->error_errno)) {
            if (error != nullptr)
                *error = "unknown errno name in failpoint action: " +
                         text;
            return false;
        }
        return true;
    }
    if (head == "enospc") {
        config->action = Action::kError;
        config->error_errno = ENOSPC;
        return true;
    }
    if (head == "torn" || head == "torn-kill") {
        config->action = Action::kShortWrite;
        config->error_errno = ENOSPC;
        config->kill_after = head == "torn-kill";
        return numericArg(&config->arg);
    }
    if (head == "delay") {
        config->action = Action::kDelay;
        return numericArg(&config->arg);
    }
    if (head == "kill") {
        config->action = Action::kKill;
        return true;
    }
    if (error != nullptr)
        *error = "unknown failpoint action: " + text;
    return false;
}

bool
parseSpec(const std::string &spec, Config *config, std::string *error)
{
    const std::size_t colon = spec.find(':');
    if (!parseAction(trim(spec.substr(0, colon)), config, error))
        return false;
    if (colon == std::string::npos)
        return true;
    const std::string trigger = trim(spec.substr(colon + 1));
    const auto numberAfter = [&](const char *prefix,
                                 std::uint64_t *out) {
        const std::string digits = trigger.substr(std::strlen(prefix));
        char *end = nullptr;
        errno = 0;
        const unsigned long long value =
            std::strtoull(digits.c_str(), &end, 10);
        if (digits.empty() || errno != 0 ||
            end != digits.data() + digits.size() || value == 0) {
            if (error != nullptr)
                *error = "bad failpoint trigger: " + trigger;
            return false;
        }
        *out = value;
        return true;
    };
    if (trigger == "oneshot") {
        config->trigger = Trigger::kOneshot;
        return true;
    }
    if (startsWith(trigger, "hit=")) {
        config->trigger = Trigger::kHit;
        return numberAfter("hit=", &config->trigger_n);
    }
    if (startsWith(trigger, "every=")) {
        config->trigger = Trigger::kEvery;
        return numberAfter("every=", &config->trigger_n);
    }
    if (error != nullptr)
        *error = "unknown failpoint trigger: " + trigger;
    return false;
}

} // namespace

namespace detail {

void
registerSite(const char *name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.sites.push_back(name);
}

void
latchEnv()
{
    Registry &r = registry();
    std::string spec;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        if (g_env_state.load(std::memory_order_relaxed) != 0)
            return; // another thread latched first
        g_env_state.store(1, std::memory_order_relaxed);
        if (const char *env = std::getenv("DC_FAILPOINTS"))
            spec = env;
    }
    // Arm outside the registry lock: configure() re-enters set().
    std::string error;
    if (!spec.empty() && !configure(spec, &error))
        DC_WARN("DC_FAILPOINTS ignored: ", error);
}

Eval
evalSlow(const char *name)
{
    Eval eval;
    bool fired = false;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        const auto it = r.armed.find(name);
        if (it == r.armed.end())
            return eval;
        Config &config = it->second;
        ++config.hits;
        switch (config.trigger) {
        case Trigger::kAlways:
            fired = true;
            break;
        case Trigger::kHit:
            fired = config.hits == config.trigger_n;
            break;
        case Trigger::kEvery:
            fired = config.hits % config.trigger_n == 0;
            break;
        case Trigger::kOneshot:
            fired = config.hits == 1;
            break;
        }
        if (!fired)
            return eval;
        eval.action = config.action;
        eval.arg = config.arg;
        eval.error_errno = config.error_errno;
        eval.kill_after = config.kill_after;
        ++r.fired[name];
    }
    firedCounter().add();
    if (eval.action == Action::kDelay) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(eval.arg));
        return {}; // the site proceeds normally after the stall
    }
    if (eval.action == Action::kKill)
        killNow(name);
    return eval;
}

} // namespace detail

bool
set(const std::string &name, const std::string &spec, std::string *error)
{
    Config config;
    if (!parseSpec(spec, &config, error))
        return false;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const bool fresh = r.armed.insert_or_assign(name, config).second;
    if (fresh)
        detail::g_armed.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
clear(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (r.armed.erase(name) > 0)
        detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void
clearAll()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    detail::g_armed.fetch_sub(static_cast<int>(r.armed.size()),
                              std::memory_order_relaxed);
    r.armed.clear();
    r.fired.clear();
}

bool
configure(const std::string &list, std::string *error)
{
    for (const std::string &entry : split(list, ';')) {
        const std::string item = trim(entry);
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            if (error != nullptr)
                *error = "failpoint entry missing '=': " + item;
            return false;
        }
        if (!set(trim(item.substr(0, eq)), trim(item.substr(eq + 1)),
                 error)) {
            return false;
        }
    }
    return true;
}

std::uint64_t
fireCount(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.fired.find(name);
    return it == r.fired.end() ? 0 : it->second;
}

std::vector<std::string>
registeredSites()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names(r.sites.begin(), r.sites.end());
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

void
killNow(const char *site)
{
    // Write directly — the logger may buffer, and we are about to die.
    const std::string line =
        std::string("failpoint '") + site + "': killing process\n";
    [[maybe_unused]] const ::ssize_t ignored =
        ::write(STDERR_FILENO, line.data(), line.size());
    ::kill(::getpid(), SIGKILL);
    for (;;)
        ::pause();
}

} // namespace dc::failpoint

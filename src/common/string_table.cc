#include "common/string_table.h"

#include <mutex>

#include "common/logging.h"

namespace dc {

namespace {

/// FNV-1a — the same family Frame::locationHash used, cheap and good
/// enough for short identifiers.
std::uint64_t
hashText(std::string_view text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

StringTable::StringTable()
{
    auto slab = std::make_unique<Slab>(1024);
    slab_.store(slab.get(), std::memory_order_release);
    slabs_.push_back(std::move(slab));
    auto index = std::make_unique<IdIndex>(1024);
    by_id_.store(index.get(), std::memory_order_release);
    id_indexes_.push_back(std::move(index));
    intern({}); // id 0 = ""
}

StringTable::~StringTable() = default;

void
StringTable::place(Slab &slab, const Entry *entry)
{
    std::size_t index = entry->hash & slab.mask;
    while (slab.slots[index].load(std::memory_order_relaxed) != nullptr)
        index = (index + 1) & slab.mask;
    slab.slots[index].store(entry, std::memory_order_release);
}

StringTable::Id
StringTable::intern(std::string_view text)
{
    const std::uint64_t hash = hashText(text);
    // Lock-free hit path: probe the published slab. Entries are
    // immutable and slabs are never freed, so a stale slab is merely
    // incomplete — a miss falls through to the locked path, which
    // probes the current slab again.
    const Slab *slab = slab_.load(std::memory_order_acquire);
    std::size_t index = hash & slab->mask;
    while (true) {
        const Entry *entry =
            slab->slots[index].load(std::memory_order_acquire);
        if (entry == nullptr)
            break;
        if (entry->hash == hash && entry->text == text)
            return entry->id;
        index = (index + 1) & slab->mask;
    }
    return internSlow(text, hash);
}

StringTable::Id
StringTable::internSlow(std::string_view text, std::uint64_t hash)
{
    std::unique_lock lock(mutex_);
    // Re-probe: another thread may have interned it since our read.
    Slab *slab = slabs_.back().get();
    std::size_t index = hash & slab->mask;
    while (true) {
        const Entry *entry =
            slab->slots[index].load(std::memory_order_relaxed);
        if (entry == nullptr)
            break;
        if (entry->hash == hash && entry->text == text)
            return entry->id;
        index = (index + 1) & slab->mask;
    }

    const Id id = static_cast<Id>(entries_.size());
    entries_.push_back(Entry{hash, std::string(text), id});
    const Entry *entry = &entries_.back();
    text_bytes_ += text.size();

    // Grow at 3/4 load so lock-free probes stay short. The new slab is
    // fully populated before the release-publish; the old one stays
    // alive for readers still probing it.
    if ((entries_.size() + 1) * 4 >= (slab->mask + 1) * 3) {
        auto grown = std::make_unique<Slab>((slab->mask + 1) * 2);
        for (const Entry &existing : entries_)
            place(*grown, &existing);
        slab_.store(grown.get(), std::memory_order_release);
        slabs_.push_back(std::move(grown));
    } else {
        place(*slab, entry);
    }

    // Publish into the direct id index (grown the same way).
    IdIndex *id_index = id_indexes_.back().get();
    if (id >= id_index->capacity) {
        auto grown = std::make_unique<IdIndex>(id_index->capacity * 2);
        for (const Entry &existing : entries_) {
            grown->entries[existing.id].store(
                &existing, std::memory_order_relaxed);
        }
        by_id_.store(grown.get(), std::memory_order_release);
        id_indexes_.push_back(std::move(grown));
    } else {
        id_index->entries[id].store(entry, std::memory_order_release);
    }
    return id;
}

bool
StringTable::find(std::string_view text, Id *id) const
{
    const std::uint64_t hash = hashText(text);
    const Slab *slab = slab_.load(std::memory_order_acquire);
    std::size_t index = hash & slab->mask;
    while (true) {
        const Entry *entry =
            slab->slots[index].load(std::memory_order_acquire);
        if (entry == nullptr)
            return false;
        if (entry->hash == hash && entry->text == text) {
            if (id != nullptr)
                *id = entry->id;
            return true;
        }
        index = (index + 1) & slab->mask;
    }
}

const std::string &
StringTable::str(Id id) const
{
    // Fast path: the published index. A reader racing an index grow
    // can see a stale generation; ids it legitimately holds were
    // published with release before their intern() returned, so a
    // stale miss only happens for very fresh ids — fall back to the
    // authoritative locked view before declaring the id invalid.
    const IdIndex *index = by_id_.load(std::memory_order_acquire);
    if (id < index->capacity) {
        const Entry *entry =
            index->entries[id].load(std::memory_order_acquire);
        if (entry != nullptr)
            return entry->text;
    }
    std::shared_lock lock(mutex_);
    DC_CHECK(id < entries_.size(), "string id ", id,
             " was never interned (table has ", entries_.size(),
             " entries)");
    return entries_[id].text;
}

std::size_t
StringTable::size() const
{
    std::shared_lock lock(mutex_);
    return entries_.size();
}

std::uint64_t
StringTable::textBytes() const
{
    std::shared_lock lock(mutex_);
    return text_bytes_;
}

StringTable &
StringTable::global()
{
    static StringTable *table = new StringTable();
    return *table;
}

} // namespace dc

#include "common/string_table.h"

#include <mutex>

#include "common/logging.h"

namespace dc {

namespace {

/// FNV-1a — the same family Frame::locationHash used, cheap and good
/// enough for short identifiers.
std::uint64_t
hashText(std::string_view text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Hash stored into reclaimed entries. Stale probes in retired slabs
 * compare hash first, then text: a dead entry's text is empty, so the
 * only probe its (hash, text) pair could still satisfy is the empty
 * string's — and 0 is not hashText("") — making resurrection of a
 * reclaimed id through an old slab impossible.
 */
constexpr std::uint64_t kDeadHash = 0;

/// Innermost growth meters, per thread (see StringTable::GrowthMeter).
thread_local StringTable::GrowthMeter *tl_meter = nullptr;

} // namespace

StringTable::GrowthMeter::GrowthMeter(const StringTable &table)
    : table_(&table), prev_(tl_meter)
{
    tl_meter = this;
}

StringTable::GrowthMeter::~GrowthMeter()
{
    tl_meter = prev_;
}

StringTable::StringTable()
{
    auto slab = std::make_unique<Slab>(1024);
    slab_.store(slab.get(), std::memory_order_release);
    slabs_.push_back(std::move(slab));
    auto index = std::make_unique<IdIndex>(1024);
    by_id_.store(index.get(), std::memory_order_release);
    id_indexes_.push_back(std::move(index));
    intern({}); // id 0 = ""
}

StringTable::~StringTable() = default;

void
StringTable::place(Slab &slab, const Entry *entry)
{
    std::size_t index = entry->hash & slab.mask;
    while (slab.slots[index].load(std::memory_order_relaxed) != nullptr)
        index = (index + 1) & slab.mask;
    slab.slots[index].store(entry, std::memory_order_release);
}

StringTable::Id
StringTable::intern(std::string_view text)
{
    const std::uint64_t hash = hashText(text);
    // Lock-free hit path: probe the published slab. Entries are
    // immutable and slabs are never freed, so a stale slab is merely
    // incomplete — a miss falls through to the locked path, which
    // probes the current slab again.
    const Slab *slab = slab_.load(std::memory_order_acquire);
    std::size_t index = hash & slab->mask;
    while (true) {
        const Entry *entry =
            slab->slots[index].load(std::memory_order_acquire);
        if (entry == nullptr)
            break;
        if (entry->hash == hash && entry->text == text)
            return entry->id;
        index = (index + 1) & slab->mask;
    }
    return internSlow(text, hash);
}

StringTable::Id
StringTable::internSlow(std::string_view text, std::uint64_t hash)
{
    std::unique_lock lock(mutex_);
    // Re-probe: another thread may have interned it since our read.
    Slab *slab = slabs_.back().get();
    std::size_t index = hash & slab->mask;
    while (true) {
        const Entry *entry =
            slab->slots[index].load(std::memory_order_relaxed);
        if (entry == nullptr)
            break;
        if (entry->hash == hash && entry->text == text)
            return entry->id;
        index = (index + 1) & slab->mask;
    }

    // Recycle a reclaimed id when one is free. Ids enter free_ids_
    // only via a slab rebuild inside compact() — performed while
    // interning is quiesced — so the Entry is unreachable from the
    // active slab (and no probe can still be walking an older one):
    // rewriting it here cannot race a probe, and the publish below
    // release-stores the pointer only after the fields are complete.
    const Entry *entry = nullptr;
    Id id = 0;
    if (!free_ids_.empty()) {
        id = free_ids_.back();
        free_ids_.pop_back();
        Entry &slot = entries_[id];
        slot.hash = hash;
        slot.text = std::string(text);
        slot.refs.store(0, std::memory_order_relaxed);
        slot.dead = false;
        entry = &slot;
    } else {
        id = static_cast<Id>(entries_.size());
        entries_.emplace_back(hash, std::string(text), id);
        entry = &entries_.back();
    }
    ++live_;
    text_bytes_ += text.size();
    // Growth is charged to the creating thread's meter, under the same
    // lock that creates the entry — exact per-thread attribution no
    // matter how parses interleave.
    for (GrowthMeter *meter = tl_meter; meter != nullptr;
         meter = meter->prev_) {
        if (meter->table_ == this) {
            meter->bytes_ += text.size();
            break;
        }
    }

    // Grow at 3/4 load — counting compact()'s tombstones, which
    // occupy probe slots until a rebuild — so lock-free probes stay
    // short. The new slab is fully populated (live entries only)
    // before the release-publish; the old one stays alive for readers
    // still probing it.
    if ((slab_used_ + 1) * 4 >= (slab->mask + 1) * 3) {
        std::size_t capacity = (slab->mask + 1) * 2;
        while ((live_ + 1) * 4 >= capacity * 3)
            capacity *= 2;
        auto grown = std::make_unique<Slab>(capacity);
        for (const Entry &existing : entries_) {
            if (!existing.dead)
                place(*grown, &existing);
        }
        slab_.store(grown.get(), std::memory_order_release);
        slabs_.push_back(std::move(grown));
        slab_used_ = live_;
    } else {
        place(*slab, entry);
        ++slab_used_;
    }

    // Publish into the direct id index (grown the same way).
    IdIndex *id_index = id_indexes_.back().get();
    if (id >= id_index->capacity) {
        auto grown = std::make_unique<IdIndex>(id_index->capacity * 2);
        for (const Entry &existing : entries_) {
            if (!existing.dead) {
                grown->entries[existing.id].store(
                    &existing, std::memory_order_relaxed);
            }
        }
        by_id_.store(grown.get(), std::memory_order_release);
        id_indexes_.push_back(std::move(grown));
    } else {
        id_index->entries[id].store(entry, std::memory_order_release);
    }
    return id;
}

bool
StringTable::find(std::string_view text, Id *id) const
{
    const std::uint64_t hash = hashText(text);
    const Slab *slab = slab_.load(std::memory_order_acquire);
    std::size_t index = hash & slab->mask;
    while (true) {
        const Entry *entry =
            slab->slots[index].load(std::memory_order_acquire);
        if (entry == nullptr)
            return false;
        if (entry->hash == hash && entry->text == text) {
            if (id != nullptr)
                *id = entry->id;
            return true;
        }
        index = (index + 1) & slab->mask;
    }
}

const StringTable::Entry *
StringTable::entryFor(Id id) const
{
    const IdIndex *index = by_id_.load(std::memory_order_acquire);
    if (id >= index->capacity)
        return nullptr;
    return index->entries[id].load(std::memory_order_acquire);
}

const std::string &
StringTable::str(Id id) const
{
    // Fast path: the published index. A reader racing an index grow
    // can see a stale generation; ids it legitimately holds were
    // published with release before their intern() returned, so a
    // stale miss only happens for very fresh ids — fall back to the
    // authoritative locked view before declaring the id invalid.
    if (const Entry *entry = entryFor(id))
        return entry->text;
    std::shared_lock lock(mutex_);
    DC_CHECK(id < entries_.size(), "string id ", id,
             " was never interned (table has ", entries_.size(),
             " entries)");
    DC_CHECK(!entries_[id].dead, "string id ", id,
             " was reclaimed by compact() — a caller resolved a name "
             "it held no reference to");
    return entries_[id].text;
}

void
StringTable::retain(Id id)
{
    if (id == kEmpty)
        return;
    if (const Entry *entry = entryFor(id)) {
        entry->refs.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    std::shared_lock lock(mutex_);
    DC_CHECK(id < entries_.size(), "retain of string id ", id,
             " that was never interned");
    // Fail fast like str(): a stale retain of a reclaimed id would
    // otherwise inflate whatever name recycles the id next.
    DC_CHECK(!entries_[id].dead, "retain of string id ", id,
             " that compact() already reclaimed");
    entries_[id].refs.fetch_add(1, std::memory_order_relaxed);
}

void
StringTable::release(Id id)
{
    if (id == kEmpty)
        return;
    if (const Entry *entry = entryFor(id)) {
        const std::uint32_t prev =
            entry->refs.fetch_sub(1, std::memory_order_relaxed);
        DC_CHECK(prev != 0, "release of unreferenced string id ", id);
        return;
    }
    std::shared_lock lock(mutex_);
    DC_CHECK(id < entries_.size(), "release of string id ", id,
             " that was never interned");
    DC_CHECK(!entries_[id].dead, "release of string id ", id,
             " that compact() already reclaimed");
    const std::uint32_t prev =
        entries_[id].refs.fetch_sub(1, std::memory_order_relaxed);
    DC_CHECK(prev != 0, "release of unreferenced string id ", id);
}

std::uint32_t
StringTable::refCount(Id id) const
{
    if (const Entry *entry = entryFor(id))
        return entry->refs.load(std::memory_order_relaxed);
    std::shared_lock lock(mutex_);
    DC_CHECK(id < entries_.size(), "refCount of string id ", id,
             " that was never interned");
    DC_CHECK(!entries_[id].dead, "refCount of string id ", id,
             " that compact() already reclaimed");
    return entries_[id].refs.load(std::memory_order_relaxed);
}

std::uint64_t
StringTable::compact()
{
    std::unique_lock lock(mutex_);
    std::uint64_t reclaimed = 0;
    IdIndex *index = id_indexes_.back().get();
    for (Entry &entry : entries_) {
        if (entry.id == kEmpty || entry.dead ||
            entry.refs.load(std::memory_order_relaxed) != 0) {
            continue;
        }
        reclaimed += entry.text.size();
        text_bytes_ -= entry.text.size();
        std::string().swap(entry.text); // actually free the heap text
        // Tombstone in place (interning is quiesced, so no probe is
        // reading these fields): the sentinel hash plus the emptied
        // text can satisfy no probe, in this or any retired slab, so
        // the id cannot resurrect — without allocating a replacement
        // slab per compaction. Probe chains through the tombstone stay
        // intact for live entries.
        entry.hash = kDeadHash;
        entry.dead = true;
        // Null the live id index so stale resolutions of this id fall
        // through to the locked path and fail fast. The atomic store
        // is safe against concurrent str()/retain() of *live* ids;
        // retired index generations keep their (stable) entry
        // pointers, which stay correct even across id recycling —
        // entries are keyed by id, and recycling rewrites the same
        // Entry in place.
        index->entries[entry.id].store(nullptr,
                                       std::memory_order_release);
        pending_free_ids_.push_back(entry.id);
        --live_;
    }
    if (reclaimed == 0)
        return 0;

    // Rebuild the probe slab only once dead entries crowd a quarter
    // of it — amortized against churn like ordinary growth, so
    // periodic compaction cannot grow table metadata without bound.
    // Only a rebuild performed *here*, with interning quiesced, makes
    // dead entries unreachable from every slab a probe can touch, so
    // this is also the sole point where reclaimed ids graduate to
    // reusable (internSlow's grow-time rebuilds race concurrent
    // probes of the superseded slab and must not promote).
    // Tombstones still in the slab and pending ids largely name the
    // same entries (they diverge only when a grow-time rebuild already
    // dropped the tombstones without being allowed to promote the
    // ids), so trigger on whichever criterion trips — not their sum,
    // which would double-count and rebuild at an eighth.
    Slab *active = slabs_.back().get();
    const std::size_t capacity = active->mask + 1;
    if ((slab_used_ - live_) * 4 >= capacity ||
        pending_free_ids_.size() * 4 >= capacity) {
        std::size_t fresh_capacity = 1024;
        while ((live_ + 1) * 4 >= fresh_capacity * 3)
            fresh_capacity *= 2;
        auto slab = std::make_unique<Slab>(fresh_capacity);
        for (const Entry &entry : entries_) {
            if (!entry.dead)
                place(*slab, &entry);
        }
        slab_.store(slab.get(), std::memory_order_release);
        slabs_.push_back(std::move(slab));
        slab_used_ = live_;
        free_ids_.insert(free_ids_.end(), pending_free_ids_.begin(),
                         pending_free_ids_.end());
        pending_free_ids_.clear();
    }
    return reclaimed;
}

std::size_t
StringTable::size() const
{
    std::shared_lock lock(mutex_);
    return entries_.size();
}

std::size_t
StringTable::liveSize() const
{
    std::shared_lock lock(mutex_);
    return live_;
}

std::uint64_t
StringTable::textBytes() const
{
    std::shared_lock lock(mutex_);
    return text_bytes_;
}

StringTable &
StringTable::global()
{
    static StringTable *table = new StringTable();
    return *table;
}

const std::shared_ptr<StringTable> &
StringTable::globalShared()
{
    // Non-owning: the global table is deliberately leaked (profiled
    // threads may intern during static destruction), so the shared
    // handle must never delete it.
    static const std::shared_ptr<StringTable> *handle =
        new std::shared_ptr<StringTable>(&global(),
                                         [](StringTable *) {});
    return *handle;
}

} // namespace dc

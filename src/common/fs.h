#pragma once

/**
 * @file
 * Crash-safe filesystem helpers for the warehouse's durable artifacts.
 *
 * A profile or log segment written in place is torn by any crash that
 * lands mid-write: the file exists, parses up to an arbitrary byte, and
 * silently misrepresents the run. Every whole-file write therefore goes
 * through atomicWriteFile(): the bytes land in a temp file in the
 * *target's* directory (rename is only atomic within one filesystem),
 * are flushed to disk, and are renamed over the destination — readers
 * observe either the old file or the complete new one, never a prefix.
 *
 * All helpers report failure through a bool + error string instead of
 * panicking: output paths are operator-supplied and as untrusted as
 * warehouse input.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace dc {

/**
 * Atomically replace @p path with @p contents: write to a uniquely
 * named temp file next to it, fsync, rename over @p path, and fsync
 * the directory so the rename itself survives a power cut. On failure
 * the temp file is removed, @p path is untouched (the old content, if
 * any, remains intact), and @p error describes the failing step.
 */
bool atomicWriteFile(const std::string &path, const std::string &contents,
                     std::string *error = nullptr);

/** Read a whole file into @p out. */
bool readFile(const std::string &path, std::string *out,
              std::string *error = nullptr);

/**
 * Create @p path (and missing parents) as a directory; succeeds when it
 * already exists as one.
 */
bool ensureDir(const std::string &path, std::string *error = nullptr);

/** Whether @p path exists (any file type). */
bool pathExists(const std::string &path);

/** Size of the file at @p path; false when it cannot be stat'ed. */
bool fileSize(const std::string &path, std::uint64_t *size,
              std::string *error = nullptr);

/** Remove the file at @p path (not a directory). */
bool removeFile(const std::string &path, std::string *error = nullptr);

/**
 * fsync the directory at @p dir so renames/creations inside it are on
 * disk (a file created and fsynced can still vanish in a power cut if
 * its directory entry was never persisted).
 */
bool syncDir(const std::string &dir, std::string *error = nullptr);

/**
 * Names (not full paths) of the directory entries of @p dir, sorted;
 * "." and ".." excluded.
 */
bool listDir(const std::string &dir, std::vector<std::string> *names,
             std::string *error = nullptr);

} // namespace dc

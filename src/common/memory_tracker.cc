#include "common/memory_tracker.h"

#include <algorithm>

#include "common/logging.h"

namespace dc {

void
HostMemoryTracker::allocate(const std::string &category, std::uint64_t bytes)
{
    Entry &entry = categories_[category];
    entry.live += bytes;
    entry.peak = std::max(entry.peak, entry.live);
    total_live_ += bytes;
    peak_ = std::max(peak_, total_live_);
}

void
HostMemoryTracker::release(const std::string &category, std::uint64_t bytes)
{
    auto it = categories_.find(category);
    DC_CHECK(it != categories_.end(),
             "release from unknown category '", category, "'");
    DC_CHECK(it->second.live >= bytes, "release of ", bytes,
             " bytes exceeds live ", it->second.live, " in '", category, "'");
    it->second.live -= bytes;
    total_live_ -= bytes;
}

std::uint64_t
HostMemoryTracker::liveBytes(const std::string &category) const
{
    auto it = categories_.find(category);
    return it == categories_.end() ? 0 : it->second.live;
}

std::uint64_t
HostMemoryTracker::peakBytes(const std::string &category) const
{
    auto it = categories_.find(category);
    return it == categories_.end() ? 0 : it->second.peak;
}

std::map<std::string, std::uint64_t>
HostMemoryTracker::liveByCategory() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, entry] : categories_)
        out[name] = entry.live;
    return out;
}

void
HostMemoryTracker::reset()
{
    categories_.clear();
    total_live_ = 0;
    peak_ = 0;
}

} // namespace dc

#pragma once

/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (bugs in this library), fatal() for unrecoverable user errors (bad
 * configuration), warn()/inform() for status messages. panic() aborts,
 * fatal() exits with status 1.
 */

#include <sstream>
#include <string>

namespace dc {

/** Severity of a log message. */
enum class LogLevel {
    kDebug,
    kInfo,
    kWarn,
    kError,
};

/**
 * Global log threshold; messages below it are suppressed. First call
 * latches the initial value from the DC_LOG_LEVEL env var
 * (debug/info/warn/error, case-insensitive; default warn).
 */
LogLevel logThreshold();

/** Set the global log threshold (overrides DC_LOG_LEVEL). */
void setLogThreshold(LogLevel level);

/**
 * Parse a log-level name ("debug", "info", "warn"/"warning",
 * "error", case-insensitive) into @p out. False on unknown names.
 */
bool parseLogLevel(const std::string &text, LogLevel &out);

/**
 * Quote a structured-field value for logfmt output: returned verbatim
 * when it is a bare token, double-quoted with backslash escapes when it
 * contains spaces, quotes, '=' or control characters.
 */
std::string quoteLogValue(const std::string &value);

/** Emit a log line (used by the macros below). */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &msg);

/** Abort with a message: an internal invariant was violated. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit(1) with a message: the user supplied an impossible configuration. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

namespace detail {

/** Builds the message string for the variadic logging macros. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * One structured "key=value" field for a log line, value quoted per
 * quoteLogValue() so entries stay grep- and logfmt-parser-friendly:
 *
 *   DC_WARN("slow operation ", logField("site", name),
 *           " ", logField("duration_ns", dur));
 */
template <typename T>
std::string
logField(const std::string &key, T &&value)
{
    return key + "=" +
           quoteLogValue(detail::concat(std::forward<T>(value)));
}

} // namespace dc

#define DC_LOG(level, ...)                                                   \
    do {                                                                     \
        if (static_cast<int>(level) >=                                       \
            static_cast<int>(::dc::logThreshold())) {                        \
            ::dc::logMessage(level, __FILE__, __LINE__,                      \
                             ::dc::detail::concat(__VA_ARGS__));             \
        }                                                                    \
    } while (0)

#define DC_DEBUG(...) DC_LOG(::dc::LogLevel::kDebug, __VA_ARGS__)
#define DC_INFORM(...) DC_LOG(::dc::LogLevel::kInfo, __VA_ARGS__)
#define DC_WARN(...) DC_LOG(::dc::LogLevel::kWarn, __VA_ARGS__)

/** Internal invariant violation: this is a bug in the library. */
#define DC_PANIC(...)                                                        \
    ::dc::panicImpl(__FILE__, __LINE__, ::dc::detail::concat(__VA_ARGS__))

/** Unrecoverable user error (bad configuration, invalid arguments). */
#define DC_FATAL(...)                                                        \
    ::dc::fatalImpl(__FILE__, __LINE__, ::dc::detail::concat(__VA_ARGS__))

/** Check an invariant; panic with the stringified condition on failure. */
#define DC_CHECK(cond, ...)                                                  \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::dc::panicImpl(__FILE__, __LINE__,                              \
                            ::dc::detail::concat("check failed: " #cond " ", \
                                                 ##__VA_ARGS__));            \
        }                                                                    \
    } while (0)

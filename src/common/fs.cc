#include "common/fs.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/failpoint.h"

namespace dc {

namespace {

// Fault edges of the atomic whole-file write — one per step whose
// failure leaves a distinct disk state (no temp file / torn temp /
// unsynced temp / temp never renamed / rename not persisted).
failpoint::Site s_fp_create{"fs.atomic.create"};
failpoint::Site s_fp_write{"fs.atomic.write"};
failpoint::Site s_fp_fsync{"fs.atomic.fsync"};
failpoint::Site s_fp_rename{"fs.atomic.rename"};
failpoint::Site s_fp_dirsync{"fs.atomic.dirsync"};

void
setError(std::string *error, const std::string &what,
         const std::string &path)
{
    if (error != nullptr)
        *error = what + " " + path + ": " + std::strerror(errno);
}

/** Directory part of @p path ("." when there is no separator). */
std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/// EINTR retry bound for the syscall wrappers below. A signal storm
/// (profiling timers, a debugger, the crash-torture harness's own
/// SIGKILL racing a handler) retries a durability-critical syscall a
/// few times; past the bound the EINTR is surfaced as the error it is
/// rather than spinning forever.
constexpr int kMaxEintrRetries = 16;

/** ::open with bounded EINTR retry. */
int
openRetry(const char *path, int flags, ::mode_t mode = 0)
{
    for (int attempt = 0;; ++attempt) {
        const int fd = ::open(path, flags, mode);
        if (fd >= 0 || errno != EINTR || attempt >= kMaxEintrRetries)
            return fd;
    }
}

/** ::fsync with bounded EINTR retry. */
int
fsyncRetry(int fd)
{
    for (int attempt = 0;; ++attempt) {
        const int rc = ::fsync(fd);
        if (rc == 0 || errno != EINTR || attempt >= kMaxEintrRetries)
            return rc;
    }
}

/**
 * ::close treating EINTR as success. On Linux the descriptor is
 * closed even when close() reports EINTR, so retrying could close an
 * unrelated descriptor that reused the number — the one retry loop
 * that must NOT exist.
 */
int
closeFd(int fd)
{
    const int rc = ::close(fd);
    return (rc != 0 && errno == EINTR) ? 0 : rc;
}

} // namespace

bool
syncDir(const std::string &dir, std::string *error)
{
    const int fd = openRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        setError(error, "cannot open directory", dir);
        return false;
    }
    // Some filesystems refuse fsync on directories (EINVAL); the
    // rename is still ordered after the temp file's own fsync there,
    // so treat only real I/O errors as failure.
    const bool ok = fsyncRetry(fd) == 0 || errno == EINVAL;
    if (!ok)
        setError(error, "cannot fsync directory", dir);
    closeFd(fd);
    return ok;
}

bool
atomicWriteFile(const std::string &path, const std::string &contents,
                std::string *error)
{
    // Unique per process *and* per call: concurrent writers targeting
    // the same destination must not share a temp file.
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(counter.fetch_add(1, std::memory_order_relaxed));

    const failpoint::Eval fp_create = s_fp_create.eval();
    if (fp_create.fired()) {
        errno = fp_create.error_errno;
        setError(error, "cannot create", tmp);
        return false;
    }
    const int fd =
        openRetry(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        setError(error, "cannot create", tmp);
        return false;
    }
    const failpoint::Eval fp_write = s_fp_write.eval();
    const char *data = contents.data();
    std::size_t remaining = contents.size();
    if (fp_write.action == failpoint::Action::kShortWrite)
        remaining = std::min<std::size_t>(remaining, fp_write.arg);
    else if (fp_write.action == failpoint::Action::kError)
        remaining = 0; // injected failure before any byte lands
    int eintr_budget = kMaxEintrRetries;
    while (remaining > 0) {
        const ::ssize_t wrote = ::write(fd, data, remaining);
        if (wrote < 0) {
            if (errno == EINTR && eintr_budget-- > 0)
                continue;
            setError(error, "cannot write", tmp);
            closeFd(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
    if (fp_write.fired()) {
        // The partial bytes are on disk: die there (torn-kill) or
        // report the injected write error, leaving the torn temp for
        // the caller's cleanup path to handle.
        if (fp_write.kill_after)
            failpoint::killNow(s_fp_write.name());
        errno = fp_write.error_errno;
        setError(error, "cannot write", tmp);
        closeFd(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    const failpoint::Eval fp_fsync = s_fp_fsync.eval();
    if (fp_fsync.fired() || fsyncRetry(fd) != 0) {
        if (fp_fsync.fired())
            errno = fp_fsync.error_errno;
        setError(error, "cannot fsync", tmp);
        closeFd(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (closeFd(fd) != 0) {
        setError(error, "cannot close", tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    const failpoint::Eval fp_rename = s_fp_rename.eval();
    if (fp_rename.fired()) {
        // Injected rename failure: unlike the real-failure branch
        // below, keep the temp file — this models a crash between the
        // temp write and the rename, the state the open()-time orphan
        // sweep exists for.
        errno = fp_rename.error_errno;
        setError(error, "cannot rename into", path);
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "cannot rename into", path);
        ::unlink(tmp.c_str());
        return false;
    }
    const failpoint::Eval fp_dirsync = s_fp_dirsync.eval();
    if (fp_dirsync.fired()) {
        errno = fp_dirsync.error_errno;
        setError(error, "cannot fsync directory", dirOf(path));
        return false;
    }
    return syncDir(dirOf(path), error);
}

bool
readFile(const std::string &path, std::string *out, std::string *error)
{
    // Raw read loop (not iostreams): EINTR is retried with the same
    // bounded budget the write side uses, instead of surfacing as an
    // opaque stream badbit.
    const int fd = openRetry(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, "cannot open", path);
        return false;
    }
    out->clear();
    char chunk[64 * 1024];
    int eintr_budget = kMaxEintrRetries;
    for (;;) {
        const ::ssize_t got = ::read(fd, chunk, sizeof(chunk));
        if (got == 0)
            break;
        if (got < 0) {
            if (errno == EINTR && eintr_budget-- > 0)
                continue;
            setError(error, "cannot read", path);
            closeFd(fd);
            return false;
        }
        out->append(chunk, static_cast<std::size_t>(got));
    }
    closeFd(fd);
    return true;
}

bool
ensureDir(const std::string &path, std::string *error)
{
    if (path.empty()) {
        if (error != nullptr)
            *error = "empty directory path";
        return false;
    }
    // Create each prefix in turn (mkdir -p).
    for (std::size_t at = 1; at <= path.size(); ++at) {
        if (at != path.size() && path[at] != '/')
            continue;
        const std::string prefix = path.substr(0, at);
        if (::mkdir(prefix.c_str(), 0755) == 0 || errno == EEXIST)
            continue;
        setError(error, "cannot create directory", prefix);
        return false;
    }
    struct ::stat st {};
    if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (error != nullptr)
            *error = path + " exists but is not a directory";
        return false;
    }
    return true;
}

bool
pathExists(const std::string &path)
{
    struct ::stat st {};
    return ::stat(path.c_str(), &st) == 0;
}

bool
fileSize(const std::string &path, std::uint64_t *size, std::string *error)
{
    struct ::stat st {};
    if (::stat(path.c_str(), &st) != 0) {
        setError(error, "cannot stat", path);
        return false;
    }
    *size = static_cast<std::uint64_t>(st.st_size);
    return true;
}

bool
removeFile(const std::string &path, std::string *error)
{
    if (::unlink(path.c_str()) != 0) {
        setError(error, "cannot remove", path);
        return false;
    }
    return true;
}

bool
listDir(const std::string &dir, std::vector<std::string> *names,
        std::string *error)
{
    ::DIR *handle = ::opendir(dir.c_str());
    if (handle == nullptr) {
        setError(error, "cannot open directory", dir);
        return false;
    }
    names->clear();
    while (const struct ::dirent *entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..")
            names->push_back(name);
    }
    ::closedir(handle);
    std::sort(names->begin(), names->end());
    return true;
}

} // namespace dc

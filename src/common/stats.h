#pragma once

/**
 * @file
 * Online statistics used by the profiler's metric aggregation.
 *
 * The paper (Section 4.2) specifies that each calling-context-tree node
 * aggregates metrics of the same type by sum, minimum, average, and standard
 * deviation. RunningStat implements these with Welford's numerically stable
 * online algorithm so that no per-sample storage is required — the key
 * property behind DeepContext's flat memory overhead.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace dc {

/** Online sum/min/max/mean/stddev accumulator (Welford). */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++count_;
        sum_ += x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
    }

    /** Merge another accumulator into this one (parallel Welford). */
    void
    merge(const RunningStat &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        const double n1 = static_cast<double>(count_);
        const double n2 = static_cast<double>(other.count_);
        const double delta = other.mean_ - mean_;
        const double n = n1 + n2;
        mean_ += delta * n2 / n;
        m2_ += other.m2_ + delta * delta * n1 * n2 / n;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
        // Saturate instead of wrapping: a wrapped count would silently
        // zero out mean()/min()/max()/variance() on a stat that still
        // carries a huge sum.
        count_ = count_ > std::numeric_limits<std::uint64_t>::max() -
                              other.count_
                     ? std::numeric_limits<std::uint64_t>::max()
                     : count_ + other.count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double m2() const { return m2_; }

    /**
     * Non-mutating merge: the accumulator that would result from adding
     * every sample of @p a and @p b. Commutative and associative (up to
     * floating-point rounding), which is what lets the profile warehouse
     * merge run metrics in any ingestion order.
     */
    static RunningStat
    merged(const RunningStat &a, const RunningStat &b)
    {
        RunningStat out = a;
        out.merge(b);
        return out;
    }

    /** Rebuild an accumulator from serialized raw fields. */
    static RunningStat
    fromRaw(std::uint64_t count, double sum, double min, double max,
            double mean, double m2)
    {
        RunningStat s;
        s.count_ = count;
        s.sum_ = sum;
        if (count > 0) {
            s.min_ = min;
            s.max_ = max;
            s.mean_ = mean;
            s.m2_ = m2;
        }
        return s;
    }

    /**
     * Magnitude bound on sample values (and so on min/max/mean)
     * enforced by consistent(). Real metrics (ns, bytes, counts,
     * occupancy) sit many orders of magnitude below it; it exists so
     * that parallel-Welford merges over any feasible corpus of
     * accepted stats stay finite — finite-but-extreme fields like
     * ±1e308 would overflow `delta * delta * n` to inf and poison
     * every aggregate downstream.
     */
    static constexpr double kMaxAbsValue = 1e30;

    /**
     * Cross-field consistency: finite fields, values within
     * kMaxAbsValue, mean within [min, max], |sum| and m2 within
     * count-scaled bounds, non-negative m2, all-zero when empty.
     *
     * The profile parser, warehouse handoff validation, and merge
     * entry points share this check so a hand-built stat (fromRaw is
     * unguarded) meets the same bar as a parsed one. The count-scaled
     * bounds carry slack (2x for sum, 8x for m2 vs. the tightest
     * mathematical bounds) so that any merge of honestly-derived
     * accepted stats is accepted again — sums add within count *
     * value-bound, and merged m2 is leaf m2 plus a between-group term
     * bounded by count * spread². Only adversarially inflated m2 near
     * the cap can push deeply re-merged products over the bar, and
     * those fail validate with a clear error rather than corrupting
     * aggregates.
     */
    bool
    consistent() const
    {
        if (!std::isfinite(sum_) || !std::isfinite(mean_) ||
            !std::isfinite(m2_) || m2_ < 0.0) {
            return false;
        }
        if (count_ == 0)
            return sum_ == 0.0 && mean_ == 0.0 && m2_ == 0.0;
        const double n = static_cast<double>(count_);
        // Relative slack on the mean-in-range check absorbs the ulp of
        // rounding Welford's running mean can stray past an endpoint.
        const double slack =
            1e-9 * (std::abs(min_) + std::abs(max_) + 1.0);
        return std::isfinite(min_) && std::isfinite(max_) &&
               min_ <= max_ && std::abs(min_) <= kMaxAbsValue &&
               std::abs(max_) <= kMaxAbsValue &&
               mean_ >= min_ - slack && mean_ <= max_ + slack &&
               std::abs(sum_) <= 2.0 * n * kMaxAbsValue &&
               m2_ <= 8.0 * n * kMaxAbsValue * kMaxAbsValue;
    }

    /** Population variance; 0 for fewer than two samples. */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Median of a copy of @p values; 0 for an empty vector. */
inline double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

} // namespace dc

#pragma once

/**
 * @file
 * The process-wide task executor every parallel layer runs on.
 *
 * Before this file, each parallel site owned its threads: CctMerger
 * spawned a pool per cold rebuild, ProfileStore kept dedicated
 * ingestion workers, and federated scatter ran serially on the calling
 * thread. One shared work-stealing pool replaces all of that, so the
 * process's parallelism is bounded by one knob, thread spin-up leaves
 * the query path, and heterogeneous work (chunk folds, ingestion
 * parses, federated legs) interleaves on the same cores.
 *
 * Design:
 *
 *  - **Work stealing.** Each worker owns a bounded deque under its own
 *    mutex; the owner pops newest-first (LIFO keeps a fan-out's chunks
 *    cache-warm on the thread that will reduce them), thieves — idle
 *    workers and helping waiters — steal oldest-first. Tasks here are
 *    coarse (a chunk fold, a federated leg, an ingestion drain), so a
 *    short critical section per pop beats a lock-free deque's
 *    complexity and stays exactly as TSan-checkable as the rest of the
 *    codebase.
 *
 *  - **Bounded queues, inline overflow.** A full pool sheds to the
 *    submitter: submit() runs the task on the calling thread instead
 *    of buffering without bound — backpressure composes with the
 *    store's own queue limits instead of hiding behind them.
 *
 *  - **Nested-submit safety.** TaskGroup::wait() *helps*: while its
 *    tasks are outstanding it runs queued tasks of that group on the
 *    waiting thread. A pool task may therefore fan out a nested group
 *    and wait on it without deadlock even on a one-thread pool — the
 *    federated path does exactly this (a leg on the pool runs a cold
 *    rebuild whose merge fans out again). Helping is restricted to
 *    the waiter's OWN group: waiters routinely hold locks (a view
 *    entry's builder mutex across a rebuild's fan-out), so running an
 *    arbitrary queued task could re-lock a mutex the waiting thread
 *    already owns, or form a lock cycle between two waiters helping
 *    each other's work — and a foreign task of unknown cost would
 *    stretch this request's tail by another request's work.
 *
 *  - **Deadline/cancellation propagation.** Pool workers never inherit
 *    the submitter's thread-local ScopedDeadline, so TaskGroup
 *    captures the deadline at construction and re-installs it inside
 *    every task; cancel() (or the deadline expiring) makes queued
 *    tasks skip their bodies. Deep code polls deadlineExpired()
 *    exactly as it does on the submitting thread.
 *
 *  - **Observability.** Counters exec.submitted / executed / stolen /
 *    inline / cancelled, histograms exec.wait_us (queue latency),
 *    exec.run_us, and exec.queue_depth feed the obs registry; the
 *    counters are also kept in plain atomics (stats()) so the server
 *    stats endpoint reports them even with DC_OBS off.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"

namespace dc::common {

/** Work-stealing thread pool; see file comment. */
class Executor
{
  public:
    struct Options {
        /// Worker threads; 0 = one per available hardware thread (at
        /// least 1).
        std::size_t threads = 0;
        /// Per-worker queue bound; a submit finding every queue full
        /// runs the task on the submitting thread.
        std::size_t queue_capacity = 1024;
    };

    /** Monotonic pool counters (exact; plain atomics). */
    struct Stats {
        std::size_t threads = 0;       ///< Pool width.
        std::uint64_t submitted = 0;   ///< Tasks accepted into queues.
        std::uint64_t executed = 0;    ///< Task bodies run on the pool.
        std::uint64_t stolen = 0;      ///< Pops by a non-owner (idle
                                       ///< worker or helping waiter).
        std::uint64_t inline_run = 0;  ///< Overflow runs on submitters.
        std::uint64_t queued = 0;      ///< Tasks currently enqueued.
    };

    Executor() : Executor(Options{}) {}
    explicit Executor(Options options);
    /// Drains every queued task, then joins the workers.
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /**
     * The shared process pool (DC_EXECUTOR_THREADS overrides its
     * width). Never destroyed: detached work scheduled from static
     * destructors must not race pool teardown.
     */
    static Executor &global();

    /** Pool width (>= 1). */
    std::size_t threads() const { return workers_.size(); }

    /** @p requested workers, with 0 = available hardware threads. */
    static std::size_t resolveThreads(std::size_t requested);

    /**
     * Detached submission: runs @p fn on some pool thread, or on the
     * calling thread when every queue is at capacity. The caller owns
     * completion tracking (TaskGroup does it for grouped work).
     */
    void submit(std::function<void()> fn);

    /**
     * Pop-and-run one queued task on the calling thread. With
     * @p only_tag set, only a task carrying that tag (a TaskGroup
     * helping its own work) is taken; untagged callers (drains) take
     * anything.
     * @return Whether a task was run (false = nothing eligible).
     */
    bool tryRunOne(const void *only_tag = nullptr);

    Stats stats() const;

  private:
    friend class TaskGroup;

    struct Task {
        std::function<void()> fn;
        std::uint64_t enqueue_ns = 0; ///< For exec.wait_us (0 = unset).
        /// Owning TaskGroup (null for detached submits). Compared —
        /// never dereferenced — by tryRunOne, so a waiter helps only
        /// its own group; valid while queued because a group outlives
        /// its tasks (wait() before scope exit).
        const void *tag = nullptr;
    };

    /// One worker's deque. Owner pushes/pops the back; thieves take
    /// the front. Heap-allocated so the mutexes never move.
    struct Worker {
        std::mutex mutex;
        std::deque<Task> queue;
    };

    /// Queue @p task (round-robin start, first queue with room); false
    /// when every queue is full — @p task is left intact for the
    /// caller to run inline.
    bool trySubmit(Task &task);
    /// Pop for worker @p self: own back first, then steal fronts.
    bool popTask(std::size_t self, Task *out);
    /// Steal from any queue (helping waiters; no home queue). With
    /// @p only_tag set, only a matching task is taken.
    bool stealTask(Task *out, const void *only_tag);
    void runTask(Task &task);
    void workerLoop(std::size_t index);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::size_t queue_capacity_ = 1024;
    std::vector<std::thread> threads_;

    /// Sleep/wake for idle workers; queued_ is the fast-path check.
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    bool stopping_ = false; ///< Guarded by sleep_mutex_.

    std::atomic<std::uint64_t> queued_{0};
    std::atomic<std::uint64_t> submit_cursor_{0};
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> stolen_{0};
    std::atomic<std::uint64_t> inline_run_{0};
};

/**
 * A batch of related tasks with one completion point and one
 * cancellation token.
 *
 * The constructor captures the submitting thread's ScopedDeadline (or
 * an explicit one); every task body runs under that deadline on the
 * pool thread. cancel() — or the deadline expiring — makes tasks that
 * have not started yet skip their bodies, so an abandoned fan-out
 * unwinds within one task's worth of work. wait() helps execute the
 * group's own queued tasks — never another group's (see file
 * comment) — which makes nested fan-outs deadlock-free and lets the
 * submitting thread contribute a core.
 *
 * The group must outlive its tasks: wait() (or the destructor, which
 * waits) before the group leaves scope.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(Executor &executor = Executor::global())
        : TaskGroup(executor, ScopedDeadline::current())
    {
    }
    TaskGroup(Executor &executor, Deadline deadline)
        : executor_(executor), deadline_(deadline)
    {
    }
    ~TaskGroup() { wait(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit one task (runs inline when the pool is saturated). */
    void submit(std::function<void()> fn);

    /** Make not-yet-started tasks skip their bodies. */
    void cancel() { cancel_.store(true, std::memory_order_relaxed); }

    /** Whether cancel() was called or the group deadline expired. */
    bool cancelled() const
    {
        return cancel_.load(std::memory_order_relaxed) ||
               deadline_.expired();
    }

    /** The deadline task bodies run under (maybe unset). */
    const Deadline &deadline() const { return deadline_; }

    /**
     * Block until every submitted task finished, running this group's
     * still-queued tasks on this thread while waiting. Reusable: the
     * group is empty afterwards and may submit again.
     */
    void wait();

  private:
    void finishOne();

    Executor &executor_;
    Deadline deadline_;
    std::atomic<bool> cancel_{false};
    std::atomic<std::size_t> pending_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
};

} // namespace dc::common

#pragma once

/**
 * @file
 * Deterministic fault injection for the warehouse's I/O edges.
 *
 * A failpoint is a named site compiled into production code (fs.cc's
 * atomic-write steps, the run log's write/fsync edges, the store's
 * crash points) that normally costs two relaxed atomic loads and does
 * nothing. Tests — and operators reproducing a field incident — arm a
 * site by name with an *action* and a *trigger policy*, and the site
 * then fails exactly the way the real world would: an errno return, a
 * torn (short) write, a failed fsync, ENOSPC, a delay, or a hard
 * SIGKILL of the process mid-operation.
 *
 * Actions (the `spec` grammar, also accepted from the DC_FAILPOINTS
 * environment variable as `site=spec;site=spec;...`):
 *
 *     error            fail with EIO
 *     error(ENUM)      fail with a named errno (EIO, ENOSPC, EDQUOT,
 *                      EROFS, ENOSPC as `enospc` shorthand below)
 *     enospc           fail with ENOSPC (disk full)
 *     torn(N)          write only the first N bytes, then fail with EIO
 *                      — the crash-mid-write disk state, process alive
 *     torn-kill(N)     write only the first N bytes, then SIGKILL —
 *                      the crash-mid-write disk state, process dead
 *     delay(MS)        sleep MS milliseconds, then continue normally
 *                      (widens race windows; the site succeeds)
 *     kill             SIGKILL the process at the site
 *
 * Trigger policies select *which* evaluation fires (default: all):
 *
 *     spec:hit=N       only the Nth evaluation of the site (1-based)
 *     spec:every=K     every Kth evaluation
 *     spec:oneshot     the first evaluation only
 *
 * Sites register themselves via namespace-scope `Site` statics, so the
 * crash-torture harness can enumerate every registered crash point
 * (registeredSites()) and sweep a kill through each one. Evaluation
 * when nothing is armed is two relaxed loads (env-latch check + armed
 * count); compiling with -DDC_FAILPOINTS_DISABLED removes evaluation
 * bodies outright, as -DDC_OBS_DISABLED does for telemetry.
 *
 * Every fire increments the `failpoint.fired` metric (obs registry) and
 * a per-site counter readable via fireCount() — tests assert the fault
 * they configured actually ran through the edge under test.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dc::failpoint {

/** What a fired failpoint asks its site to do. */
enum class Action {
    kNone,       ///< Did not fire: proceed normally.
    kError,      ///< Fail the operation with `error_errno`.
    kShortWrite, ///< Write only `arg` bytes, then fail (or die).
    kDelay,      ///< Handled inside eval (sleeps, returns kNone).
    kKill,       ///< Handled inside eval (never returns).
};

/** The result of evaluating a site. */
struct Eval {
    Action action = Action::kNone;
    /// kShortWrite: bytes to let through. kDelay: milliseconds.
    std::uint64_t arg = 0;
    /// errno to fail with (kError, and kShortWrite after the partial
    /// write when `kill_after` is false).
    int error_errno = 0;
    /// kShortWrite: SIGKILL after the partial bytes land instead of
    /// returning an error (torn-kill).
    bool kill_after = false;

    bool fired() const { return action != Action::kNone; }
};

namespace detail {
/// Number of currently-armed failpoints; 0 short-circuits every eval.
extern std::atomic<int> g_armed;
/// 0 = DC_FAILPOINTS not yet latched, 1 = latched.
extern std::atomic<int> g_env_state;
Eval evalSlow(const char *name);
void registerSite(const char *name);
void latchEnv();
} // namespace detail

/**
 * A named failpoint site. Declare one at namespace scope next to the
 * code it guards and call eval() at the fault edge:
 *
 *     failpoint::Site s_fp_write{"wal.append.write"};
 *     ...
 *     const failpoint::Eval fp = s_fp_write.eval();
 *     if (fp.action == failpoint::Action::kError) { errno = ...; fail }
 */
class Site
{
  public:
    explicit Site(const char *name) : name_(name)
    {
#ifndef DC_FAILPOINTS_DISABLED
        detail::registerSite(name);
#endif
    }

    const char *name() const { return name_; }

    /** Evaluate the site; kNone when unarmed (the common case). */
    Eval eval()
    {
#ifdef DC_FAILPOINTS_DISABLED
        return {};
#else
        if (detail::g_env_state.load(std::memory_order_relaxed) == 0)
            detail::latchEnv();
        if (detail::g_armed.load(std::memory_order_relaxed) == 0)
            return {};
        return detail::evalSlow(name_);
#endif
    }

  private:
    const char *name_;
};

/**
 * Arm @p name with @p spec (grammar above). Arming does not require
 * the site to be registered — a typo'd name simply never fires, which
 * configure() reports as armed-but-unknown in its error when strict.
 * @return Whether the spec parsed.
 */
bool set(const std::string &name, const std::string &spec,
         std::string *error = nullptr);

/** Disarm @p name (no-op when not armed). */
void clear(const std::string &name);

/** Disarm everything (test teardown). */
void clearAll();

/**
 * Parse and arm a `site=spec;site=spec` list (the DC_FAILPOINTS
 * format). Stops at the first malformed entry.
 */
bool configure(const std::string &list, std::string *error = nullptr);

/** Times @p name has fired (survives clear(); reset by clearAll()). */
std::uint64_t fireCount(const std::string &name);

/** Names of every registered site, sorted (the crash-point sweep). */
std::vector<std::string> registeredSites();

/**
 * SIGKILL this process now — what a `kill` action does at its site.
 * Exposed for sites that must die *after* cooperating with a partial
 * write (torn-kill). Never returns.
 */
[[noreturn]] void killNow(const char *site);

} // namespace dc::failpoint

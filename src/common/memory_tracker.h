#pragma once

/**
 * @file
 * Structural host-memory accounting.
 *
 * Figure 6c/6d of the paper compares the *memory overhead* of profilers:
 * peak host memory with profiling divided by peak host memory without.
 * In this reproduction host memory is accounted structurally: each component
 * (workload buffers, framework state, a profiler's trace vectors or CCT
 * nodes) charges/releases bytes against a named category on the tracker
 * owned by the current SimContext. The tracker records the running total and
 * the peak, so the overhead ratio is a direct structural property of how
 * much state each profiler keeps alive.
 */

#include <cstdint>
#include <map>
#include <string>

namespace dc {

/** Tracks live and peak bytes per category for one simulation run. */
class HostMemoryTracker
{
  public:
    /** Charge @p bytes against @p category. */
    void allocate(const std::string &category, std::uint64_t bytes);

    /** Release @p bytes from @p category. Releasing more than live panics. */
    void release(const std::string &category, std::uint64_t bytes);

    /** Live bytes in one category (0 if never used). */
    std::uint64_t liveBytes(const std::string &category) const;

    /** Live bytes across all categories. */
    std::uint64_t totalLiveBytes() const { return total_live_; }

    /** Peak of totalLiveBytes() over the run so far. */
    std::uint64_t peakBytes() const { return peak_; }

    /** Peak bytes observed within one category. */
    std::uint64_t peakBytes(const std::string &category) const;

    /** Snapshot of all categories and their live bytes. */
    std::map<std::string, std::uint64_t> liveByCategory() const;

    /** Reset all accounting to zero. */
    void reset();

  private:
    struct Entry {
        std::uint64_t live = 0;
        std::uint64_t peak = 0;
    };

    std::map<std::string, Entry> categories_;
    std::uint64_t total_live_ = 0;
    std::uint64_t peak_ = 0;
};

} // namespace dc

#pragma once

/**
 * @file
 * Process-wide string interning for the profiling hot path.
 *
 * Call-path frames carry file, function, operator, and kernel names.
 * Storing those as std::string per CCT node makes every child lookup a
 * string hash + compare and every node a cache-hostile bag of heap
 * blocks. The StringTable interns each distinct name once and hands out
 * dense 32-bit ids; FrameKey (dlmonitor/callpath.h) and CctNode build
 * on those ids, so frame equality on the per-event path is an integer
 * compare and names are resolved back to text only at report time.
 *
 * Ids are stable for the table's lifetime and id 0 is always the empty
 * string. The table is append-only — profiles reference a bounded set
 * of code locations, so entries are never evicted.
 *
 * Concurrency: intern() sits on the per-event path of every profiled
 * thread and of the warehouse's ingestion pool, so the hit path is
 * lock-free — readers probe an atomically published open-addressed
 * slab of immutable entries (one FNV hash + a short probe, no lock,
 * no reference counting). Misses take a mutex, insert, and republish;
 * superseded slabs are retired, not freed, so concurrent readers can
 * keep probing them safely. Resolution (str/find/size) takes a shared
 * lock; it runs at report time, not per event.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dc {

/** Interns strings to dense, stable 32-bit ids. */
class StringTable
{
  public:
    using Id = std::uint32_t;

    /** Id of the empty string (interned by the constructor). */
    static constexpr Id kEmpty = 0;

    StringTable();
    ~StringTable();

    StringTable(const StringTable &) = delete;
    StringTable &operator=(const StringTable &) = delete;

    /** Get-or-create the id of @p text. Lock-free when already known. */
    Id intern(std::string_view text);

    /** Id of @p text if already interned; false otherwise. */
    bool find(std::string_view text, Id *id) const;

    /**
     * The interned string for @p id. The reference is stable for the
     * table's lifetime (entries are never moved or evicted). Panics on
     * an id the table never issued. Lock-free: report and analysis
     * paths resolve every visited node's name through here, so it
     * reads an atomically published id->entry index rather than
     * contending with the ingestion pool's interns on a mutex.
     */
    const std::string &str(Id id) const;

    /** Number of interned strings (>= 1: the empty string). */
    std::size_t size() const;

    /** Total bytes of interned text (diagnostic; excludes indexes). */
    std::uint64_t textBytes() const;

    /**
     * The process-wide table every CCT and profile shares. A single
     * table is what makes FrameKey ids comparable across trees — the
     * warehouse merges CCTs from many runs by direct id equality.
     */
    static StringTable &global();

  private:
    /** One interned string; immutable once published into a slab. */
    struct Entry {
        std::uint64_t hash;
        std::string text;
        Id id;
    };

    /** Open-addressed probe array (linear probing, power-of-two). */
    struct Slab {
        explicit Slab(std::size_t capacity)
            : mask(capacity - 1), slots(capacity)
        {
        }
        std::size_t mask;
        std::vector<std::atomic<const Entry *>> slots;
    };

    /** Direct id -> entry index (same publish discipline as Slab). */
    struct IdIndex {
        explicit IdIndex(std::size_t capacity)
            : capacity(capacity), entries(capacity)
        {
        }
        std::size_t capacity;
        std::vector<std::atomic<const Entry *>> entries;
    };

    /** Insert into @p slab (must have a free slot). */
    static void place(Slab &slab, const Entry *entry);

    /** Miss path: insert under the writer lock. */
    Id internSlow(std::string_view text, std::uint64_t hash);

    std::atomic<const Slab *> slab_;
    std::atomic<const IdIndex *> by_id_;
    mutable std::shared_mutex mutex_;
    /// id -> entry; deque keeps addresses stable so slab pointers and
    /// str() references never dangle. Guarded by mutex_.
    std::deque<Entry> entries_;
    /// Every slab / index ever allocated (back() is the active one).
    /// Old generations stay alive for concurrent readers.
    std::vector<std::unique_ptr<Slab>> slabs_;
    std::vector<std::unique_ptr<IdIndex>> id_indexes_;
    std::uint64_t text_bytes_ = 0;
};

} // namespace dc

#pragma once

/**
 * @file
 * String interning for the profiling hot path and the warehouse's
 * per-corpus name tables.
 *
 * Call-path frames carry file, function, operator, and kernel names.
 * Storing those as std::string per CCT node makes every child lookup a
 * string hash + compare and every node a cache-hostile bag of heap
 * blocks. The StringTable interns each distinct name once and hands out
 * dense 32-bit ids; FrameKey (dlmonitor/callpath.h) and CctNode build
 * on those ids, so frame equality on the per-event path is an integer
 * compare and names are resolved back to text only at report time.
 *
 * Ids are stable while they are live and id 0 is always the empty
 * string. Tables are instantiable: the profiler's hot path shares the
 * process-wide global() table, while each ProfileStore owns a private
 * table so a long-lived warehouse can account for — and, via
 * refcounted reclamation, actually release — the name text its corpus
 * pins:
 *
 *  - retain()/release() count references per entry (CCT nodes retain
 *    the names their keys use; tree destruction releases them).
 *  - compact() frees the text of zero-reference entries, recycles
 *    their ids through a free list, and reports the bytes reclaimed.
 *  - A GrowthMeter attributes intern() growth to the thread that
 *    caused it, so concurrent ingestion workers charge their own
 *    profiles exactly instead of observing each other's growth.
 *
 * Concurrency: intern() sits on the per-event path of every profiled
 * thread and of the warehouse's ingestion pool, so the hit path is
 * lock-free — readers probe an atomically published open-addressed
 * slab of immutable entries (one FNV hash + a short probe, no lock,
 * no reference counting). Misses take a mutex, insert, and republish;
 * superseded slabs are retired, not freed, so concurrent readers can
 * keep probing them safely. str() of a live id and retain()/release()
 * are lock-free and safe against a concurrent compact(); compact()
 * itself must not overlap intern()/find() on the same table (it
 * scrubs dead entries that stale probes could still be reading) — the
 * ProfileStore enforces this with a shared/exclusive guard around its
 * parse workers. The global() table is never compacted.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dc {

/**
 * SplitMix64 finalizer: strong avalanche for cheap POD hashing. The
 * one mixing kernel shared by FrameKey::hash and the id-keyed
 * aggregation tables.
 */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Interns strings to dense, stable 32-bit ids. */
class StringTable
{
  public:
    using Id = std::uint32_t;

    /** Id of the empty string (interned by the constructor). */
    static constexpr Id kEmpty = 0;

    /**
     * An id no table ever issues (it would take 2^32 - 1 interned
     * strings). Location-only lookup keys use it for names the table
     * has never seen: such a key compares unequal to every stored key,
     * making "unknown name" a guaranteed lookup miss.
     */
    static constexpr Id kUnknown = 0xffffffffu;

    StringTable();
    ~StringTable();

    StringTable(const StringTable &) = delete;
    StringTable &operator=(const StringTable &) = delete;

    /**
     * Attributes the intern() text growth a thread causes in one table
     * to that thread, exactly: only entries *created* by the metering
     * thread are counted, under the same lock that creates them, so
     * two workers parsing concurrently can never observe (and
     * double-charge) each other's growth. Scoped and nestable;
     * thread-local, so it costs the hot path one TLS load per miss and
     * nothing on hits.
     */
    class GrowthMeter
    {
      public:
        explicit GrowthMeter(const StringTable &table);
        ~GrowthMeter();

        GrowthMeter(const GrowthMeter &) = delete;
        GrowthMeter &operator=(const GrowthMeter &) = delete;

        /** Bytes of text this thread interned into the table so far. */
        std::uint64_t bytes() const { return bytes_; }

      private:
        friend class StringTable;
        const StringTable *table_;
        GrowthMeter *prev_; ///< Enclosing meter (nesting).
        std::uint64_t bytes_ = 0;
    };

    /** Get-or-create the id of @p text. Lock-free when already known. */
    Id intern(std::string_view text);

    /** Id of @p text if already interned; false otherwise. */
    bool find(std::string_view text, Id *id) const;

    /**
     * The interned string for @p id. The reference is stable while the
     * id is live (retained, or never reclaimed — the global table
     * never compacts). Panics on an id the table never issued or has
     * reclaimed. Lock-free: report and analysis paths resolve every
     * visited node's name through here, so it reads an atomically
     * published id->entry index rather than contending with the
     * ingestion pool's interns on a mutex.
     */
    const std::string &str(Id id) const;

    /**
     * Add one reference to @p id (no-op for the empty string). Every
     * CCT node retains the ids its key stores, so an entry's count is
     * "CCT nodes anywhere that resolve through it"; compact() frees
     * only entries whose count is zero. Lock-free.
     */
    void retain(Id id);

    /** Drop one reference to @p id (panics on underflow). Lock-free. */
    void release(Id id);

    /** Current reference count of @p id (tests/diagnostics). */
    std::uint32_t refCount(Id id) const;

    /**
     * Reclaim every zero-reference entry: its text is freed (counted
     * out of textBytes()) and its id is recycled for future interns.
     * Dead entries are scrubbed in place — their id-index slots are
     * nulled and their slab slots tombstoned (a sentinel hash that can
     * match no probe), so reclaimed names cannot resurrect with their
     * old ids, and table metadata does not grow per compaction: a
     * fresh probe slab is built only when dead entries accumulate past
     * a quarter of the slab (amortized like normal growth). Ids become
     * reusable at that rebuild — the quiesced rebuild is what
     * guarantees no concurrent probe can still reach the entry a later
     * intern rewrites.
     *
     * @return Bytes of text reclaimed.
     *
     * Must not overlap intern()/find() on this table (callers quiesce
     * interning; the ProfileStore's compactNames() wraps this with its
     * ingestion guard). str()/retain()/release() of live ids remain
     * safe concurrently.
     */
    std::uint64_t compact();

    /** Number of ids ever issued (>= 1: the empty string). */
    std::size_t size() const;

    /** Number of live (non-reclaimed) entries. */
    std::size_t liveSize() const;

    /** Total bytes of live interned text (excludes indexes). */
    std::uint64_t textBytes() const;

    /**
     * The process-wide table the profiler's hot path and every
     * default-constructed CCT share. A single table is what makes
     * FrameKey ids comparable across trees — the warehouse merges CCTs
     * from many runs by direct id equality. Never compacted.
     */
    static StringTable &global();

    /** global() as a non-owning shared handle (what Cct stores). */
    static const std::shared_ptr<StringTable> &globalShared();

  private:
    /**
     * One interned string. Immutable once published into a slab,
     * except: `refs` (atomic), and the dead-entry scrubbing compact()
     * performs under its quiesced-interning contract.
     */
    struct Entry {
        Entry(std::uint64_t hash, std::string text, Id id)
            : hash(hash), text(std::move(text)), id(id)
        {
        }
        std::uint64_t hash;
        std::string text;
        Id id;
        mutable std::atomic<std::uint32_t> refs{0};
        /// Reclaimed by compact(); awaiting id reuse. Guarded by mutex_.
        bool dead = false;
    };

    /// Open-addressed probe array (linear probing, power-of-two).
    struct Slab {
        explicit Slab(std::size_t capacity)
            : mask(capacity - 1), slots(capacity)
        {
        }
        std::size_t mask;
        std::vector<std::atomic<const Entry *>> slots;
    };

    /** Direct id -> entry index (same publish discipline as Slab). */
    struct IdIndex {
        explicit IdIndex(std::size_t capacity)
            : capacity(capacity), entries(capacity)
        {
        }
        std::size_t capacity;
        std::vector<std::atomic<const Entry *>> entries;
    };

    /** Insert into @p slab (must have a free slot). */
    static void place(Slab &slab, const Entry *entry);

    /** Lock-free id -> entry via the published index; null on miss. */
    const Entry *entryFor(Id id) const;

    /** Miss path: insert under the writer lock. */
    Id internSlow(std::string_view text, std::uint64_t hash);

    std::atomic<const Slab *> slab_;
    std::atomic<const IdIndex *> by_id_;
    mutable std::shared_mutex mutex_;
    /// id -> entry; deque keeps addresses stable so slab pointers and
    /// str() references never dangle. Guarded by mutex_.
    std::deque<Entry> entries_;
    /// Every slab / index ever allocated (back() is the active one).
    /// Old generations stay alive for concurrent readers.
    std::vector<std::unique_ptr<Slab>> slabs_;
    std::vector<std::unique_ptr<IdIndex>> id_indexes_;
    /// Ids safe to recycle: their entries were excluded from the
    /// active probe slab by a rebuild performed inside compact() —
    /// i.e. while interning was quiesced — so no lock-free probe can
    /// still reach them when internSlow() rewrites the Entry in place.
    std::vector<Id> free_ids_;
    /// Ids reclaimed by a compact() that did not rebuild the slab:
    /// their tombstoned entries are still published (probe chains stay
    /// intact through them), so reuse waits for the next quiesced
    /// rebuild, which promotes them into free_ids_.
    std::vector<Id> pending_free_ids_;
    std::size_t live_ = 0;       ///< Non-dead entry count.
    /// Occupied slots in the active slab (live + tombstoned); the
    /// grow/rebuild decisions use this so tombstones cannot silently
    /// degrade probe chains.
    std::size_t slab_used_ = 0;
    std::uint64_t text_bytes_ = 0;
};

/**
 * Open-addressed map keyed by 64-bit packed interned-id keys —
 * aggregation support for readers that group by StringTable id (e.g.
 * per-kernel metric totals keyed by (name id, metric id)) instead of
 * `std::map<std::string, ...>` with heap-string keys. Linear probing
 * over a power-of-two flat slot array: lookups are one multiply-mix
 * plus a short probe with no string hashing, no per-node allocation,
 * and the whole table copies with one vector copy (the corpus view's
 * incremental refresh copies the base index and folds in new runs).
 *
 * Key 0xFFFF...F is reserved as the empty marker; packed
 * (id, small-int) keys cannot collide with it in practice (it would
 * take the 2^32-th interned string). Not thread-safe; views publish
 * tables immutably after building.
 */
template <typename Value>
class FlatIdTable
{
  public:
    static constexpr std::uint64_t kEmptyKey = ~0ull;

    /** Pack an interned id and a small non-negative int into a key. */
    static std::uint64_t
    pack(StringTable::Id id, int low)
    {
        return (static_cast<std::uint64_t>(id) << 32) |
               static_cast<std::uint32_t>(low);
    }
    static StringTable::Id
    packedId(std::uint64_t key)
    {
        return static_cast<StringTable::Id>(key >> 32);
    }
    static int
    packedLow(std::uint64_t key)
    {
        return static_cast<int>(static_cast<std::uint32_t>(key));
    }

    /** Get-or-create the value for @p key (default-constructed). */
    Value &
    slot(std::uint64_t key)
    {
        if ((used_ + 1) * 4 >= slots_.size() * 3)
            grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t index = mix(key) & mask;
        while (slots_[index].key != kEmptyKey) {
            if (slots_[index].key == key)
                return slots_[index].value;
            index = (index + 1) & mask;
        }
        slots_[index].key = key;
        ++used_;
        return slots_[index].value;
    }

    /** Value for @p key, or nullptr. */
    const Value *
    find(std::uint64_t key) const
    {
        if (slots_.empty())
            return nullptr;
        const std::size_t mask = slots_.size() - 1;
        std::size_t index = mix(key) & mask;
        while (slots_[index].key != kEmptyKey) {
            if (slots_[index].key == key)
                return &slots_[index].value;
            index = (index + 1) & mask;
        }
        return nullptr;
    }

    /** Visit every (key, value); iteration order is unspecified. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &slot : slots_) {
            if (slot.key != kEmptyKey)
                fn(slot.key, slot.value);
        }
    }

    std::size_t size() const { return used_; }
    bool empty() const { return used_ == 0; }

  private:
    struct Slot {
        std::uint64_t key = kEmptyKey;
        Value value{};
    };

    /// Packed keys are structured (id in the high half), so spread
    /// them with the shared finalizer before masking.
    static std::uint64_t mix(std::uint64_t x) { return mix64(x); }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
        const std::size_t mask = slots_.size() - 1;
        for (const Slot &slot : old) {
            if (slot.key == kEmptyKey)
                continue;
            std::size_t index = mix(slot.key) & mask;
            while (slots_[index].key != kEmptyKey)
                index = (index + 1) & mask;
            slots_[index] = slot;
        }
    }

    std::vector<Slot> slots_;
    std::size_t used_ = 0;
};

} // namespace dc

#include "common/executor.h"

#include <chrono>
#include <cstdlib>

#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "obs/obs.h"

namespace dc::common {

namespace {

obs::Counter &
submittedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("exec.submitted");
    return counter;
}

obs::Counter &
stolenCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("exec.stolen");
    return counter;
}

obs::Counter &
inlineCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("exec.inline");
    return counter;
}

obs::Counter &
cancelledCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("exec.cancelled");
    return counter;
}

obs::Histogram &
waitHistogram()
{
    static obs::Histogram hist =
        obs::MetricsRegistry::global().histogram("exec.wait_us");
    return hist;
}

obs::Histogram &
runHistogram()
{
    static obs::Histogram hist =
        obs::MetricsRegistry::global().histogram("exec.run_us");
    return hist;
}

obs::Histogram &
depthHistogram()
{
    static obs::Histogram hist =
        obs::MetricsRegistry::global().histogram("exec.queue_depth");
    return hist;
}

} // namespace

std::size_t
Executor::resolveThreads(std::size_t requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

Executor::Executor(Options options)
    : queue_capacity_(std::max<std::size_t>(options.queue_capacity, 1))
{
    const std::size_t n = resolveThreads(options.threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

Executor::~Executor()
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stopping_ = true;
    }
    sleep_cv_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

Executor &
Executor::global()
{
    // Deliberately leaked: detached work submitted from static
    // destructors (test teardown, late store drains) must never race
    // pool destruction.
    static Executor *instance = [] {
        Options options;
        if (const char *env = std::getenv("DC_EXECUTOR_THREADS")) {
            char *end = nullptr;
            const long parsed = std::strtol(env, &end, 10);
            if (end != env && *end == '\0' && parsed > 0)
                options.threads = static_cast<std::size_t>(parsed);
            else
                DC_WARN("ignoring invalid DC_EXECUTOR_THREADS='", env,
                        "'");
        }
        return new Executor(options);
    }();
    return *instance;
}

bool
Executor::trySubmit(Task &task)
{
    if (obs::enabled())
        task.enqueue_ns = obs::nowNs();
    const std::size_t n = workers_.size();
    const std::size_t start = static_cast<std::size_t>(
        submit_cursor_.fetch_add(1, std::memory_order_relaxed) % n);
    for (std::size_t i = 0; i < n; ++i) {
        Worker &worker = *workers_[(start + i) % n];
        {
            std::lock_guard<std::mutex> lock(worker.mutex);
            if (worker.queue.size() >= queue_capacity_)
                continue;
            worker.queue.push_back(std::move(task));
        }
        const std::uint64_t depth =
            queued_.fetch_add(1, std::memory_order_relaxed) + 1;
        submitted_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) {
            submittedCounter().add();
            depthHistogram().record(depth);
        }
        // Lock/unlock pairs with the worker's predicate check, so a
        // wake between "saw queued_ == 0" and "began waiting" cannot
        // be lost.
        {
            std::lock_guard<std::mutex> lock(sleep_mutex_);
        }
        sleep_cv_.notify_one();
        return true;
    }
    return false;
}

void
Executor::submit(std::function<void()> fn)
{
    Task task{std::move(fn), 0};
    if (trySubmit(task))
        return;
    // Every queue at capacity: shed to the submitter. The task runs
    // with the caller's own deadline scope, exactly as a direct call.
    inline_run_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled())
        inlineCounter().add();
    task.fn();
}

bool
Executor::popTask(std::size_t self, Task *out)
{
    {
        Worker &own = *workers_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.queue.empty()) {
            *out = std::move(own.queue.back());
            own.queue.pop_back();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    const std::size_t n = workers_.size();
    for (std::size_t i = 1; i < n; ++i) {
        Worker &victim = *workers_[(self + i) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.queue.empty())
            continue;
        *out = std::move(victim.queue.front());
        victim.queue.pop_front();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        stolen_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled())
            stolenCounter().add();
        return true;
    }
    return false;
}

bool
Executor::stealTask(Task *out, const void *only_tag)
{
    const std::size_t n = workers_.size();
    const std::size_t start = static_cast<std::size_t>(
        submit_cursor_.fetch_add(1, std::memory_order_relaxed) % n);
    for (std::size_t i = 0; i < n; ++i) {
        Worker &victim = *workers_[(start + i) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        auto it = victim.queue.begin();
        if (only_tag != nullptr) {
            // Oldest matching task; a linear scan is fine — queues are
            // bounded and tasks are coarse.
            while (it != victim.queue.end() && it->tag != only_tag)
                ++it;
        }
        if (it == victim.queue.end())
            continue;
        *out = std::move(*it);
        victim.queue.erase(it);
        queued_.fetch_sub(1, std::memory_order_relaxed);
        stolen_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled())
            stolenCounter().add();
        return true;
    }
    return false;
}

void
Executor::runTask(Task &task)
{
    // Pool threads must never leak a deadline between unrelated tasks;
    // TaskGroup re-installs its own token inside the body.
    ScopedDeadline clean{Deadline{}};
    const bool timed = obs::enabled();
    if (timed && task.enqueue_ns != 0)
        waitHistogram().record((obs::nowNs() - task.enqueue_ns) / 1000);
    const std::uint64_t start = timed ? obs::nowNs() : 0;
    task.fn();
    if (timed)
        runHistogram().record((obs::nowNs() - start) / 1000);
    executed_.fetch_add(1, std::memory_order_relaxed);
}

bool
Executor::tryRunOne(const void *only_tag)
{
    Task task;
    if (!stealTask(&task, only_tag))
        return false;
    runTask(task);
    return true;
}

void
Executor::workerLoop(std::size_t index)
{
    for (;;) {
        Task task;
        if (popTask(index, &task)) {
            runTask(task);
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        if (queued_.load(std::memory_order_relaxed) > 0)
            continue;
        // Queues are drained before shutdown: a stopping pool with
        // queued work keeps its workers popping above.
        if (stopping_)
            return;
        sleep_cv_.wait(lock, [this] {
            return stopping_ ||
                   queued_.load(std::memory_order_relaxed) > 0;
        });
    }
}

Executor::Stats
Executor::stats() const
{
    Stats out;
    out.threads = workers_.size();
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.executed = executed_.load(std::memory_order_relaxed);
    out.stolen = stolen_.load(std::memory_order_relaxed);
    out.inline_run = inline_run_.load(std::memory_order_relaxed);
    out.queued = queued_.load(std::memory_order_relaxed);
    return out;
}

void
TaskGroup::submit(std::function<void()> fn)
{
    pending_.fetch_add(1, std::memory_order_acq_rel);
    Executor::Task task;
    task.tag = this;
    task.fn = [this, fn = std::move(fn)] {
        if (!cancelled()) {
            ScopedDeadline scope(deadline_);
            fn();
        } else if (obs::enabled()) {
            cancelledCounter().add();
        }
        finishOne();
    };
    if (executor_.trySubmit(task))
        return;
    // Saturated pool: the group's wrapper still runs (with its
    // deadline scope and completion accounting), just on this thread.
    executor_.inline_run_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled())
        inlineCounter().add();
    task.fn();
}

void
TaskGroup::finishOne()
{
    // The decrement happens under the group mutex so that "pending
    // reached zero" can only be OBSERVED under that mutex — after
    // this unlock, which is the finisher's last touch of the group.
    // A lock-free decrement would let a waiter see zero, return, and
    // destroy the group while the finisher is still between its
    // fetch_sub and its notify (a use-after-free TSan catches).
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        cv_.notify_all();
}

void
TaskGroup::wait()
{
    for (;;) {
        // Completion must be read under the mutex: finishOne's
        // decrement holds it, so a zero seen here means the last
        // finisher already released the lock and will never touch
        // this group again — returning (and destructing) is safe.
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (pending_.load(std::memory_order_acquire) == 0)
                return;
        }
        // Help: run one of OUR OWN queued tasks — they finish sooner,
        // and a nested group on a one-thread pool cannot deadlock
        // waiting for a worker that is running *us*. Never a foreign
        // task: waiters hold locks (a view entry's builder mutex
        // across the rebuild's fan-out), so a stolen foreign task
        // could re-lock a mutex this thread already owns or entangle
        // two waiters in a lock cycle — and its unknown cost would
        // bound this request's latency by another request's work.
        if (executor_.tryRunOne(this))
            continue;
        std::unique_lock<std::mutex> lock(mutex_);
        if (pending_.load(std::memory_order_acquire) == 0)
            return;
        // Our remaining tasks are mid-run on workers (or queued behind
        // foreign work we must not run): timed wait, re-poll.
        cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
}

} // namespace dc::common

#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace dc {

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args_copy);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(args_copy);
    return out;
}

std::string
humanBytes(std::uint64_t bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double value = static_cast<double>(bytes);
    int unit = 0;
    while (value >= 1024.0 && unit < 4) {
        value /= 1024.0;
        ++unit;
    }
    if (unit == 0)
        return strformat("%llu B", static_cast<unsigned long long>(bytes));
    return strformat("%.2f %s", value, units[unit]);
}

std::string
humanTime(std::int64_t ns)
{
    const double abs_ns = ns < 0 ? -static_cast<double>(ns)
                                 : static_cast<double>(ns);
    if (abs_ns < 1e3)
        return strformat("%lld ns", static_cast<long long>(ns));
    if (abs_ns < 1e6)
        return strformat("%.2f us", static_cast<double>(ns) / 1e3);
    if (abs_ns < 1e9)
        return strformat("%.2f ms", static_cast<double>(ns) / 1e6);
    return strformat("%.3f s", static_cast<double>(ns) / 1e9);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += strformat("\\u%04x", c);
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
padTo(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s.substr(0, width);
    return s + std::string(width - s.size(), ' ');
}

} // namespace dc

#pragma once

/**
 * @file
 * Small string/formatting helpers used by reports, exporters and benches.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace dc {

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Human-readable byte count, e.g. "1.50 GB". */
std::string humanBytes(std::uint64_t bytes);

/** Human-readable duration from nanoseconds, e.g. "12.3 ms". */
std::string humanTime(std::int64_t ns);

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** True if @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** True if @p needle occurs in @p haystack. */
bool contains(const std::string &haystack, const std::string &needle);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Escape a string for embedding in JSON output. */
std::string jsonEscape(const std::string &s);

/** Left-pad or truncate @p s to exactly @p width characters. */
std::string padTo(const std::string &s, std::size_t width);

} // namespace dc

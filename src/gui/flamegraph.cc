#include "gui/flamegraph.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/strings.h"

namespace dc::gui {

namespace {

const char *
issueColor(analysis::Severity severity)
{
    switch (severity) {
      case analysis::Severity::kCritical: return "#e4473a";
      case analysis::Severity::kWarning: return "#f3a33c";
      case analysis::Severity::kInfo: return "#4f9ddb";
    }
    return "";
}

std::map<const prof::CctNode *, std::string>
issueColors(const std::vector<analysis::Issue> &issues)
{
    std::map<const prof::CctNode *, std::string> colors;
    // Later (lower-priority) issues must not overwrite earlier ones.
    for (const analysis::Issue &issue : issues) {
        if (issue.node != nullptr && !colors.count(issue.node))
            colors[issue.node] = issueColor(issue.severity);
    }
    return colors;
}

} // namespace

double
FlameNode::childSum() const
{
    double sum = 0.0;
    for (const FlameNode &child : children)
        sum += child.value;
    return sum;
}

FlameNode
FlameGraph::topDown(const prof::ProfileDb &db,
                    const FlameGraphOptions &options,
                    const std::vector<analysis::Issue> &issues)
{
    const int metric = db.metrics().find(options.metric);
    const auto colors = issueColors(issues);

    const RunningStat *root_stat =
        metric >= 0 ? db.cct().root().findMetric(metric) : nullptr;
    const double root_value = root_stat != nullptr ? root_stat->sum() : 0.0;
    const double min_value = root_value * options.min_fraction;

    std::function<void(const prof::CctNode &, FlameNode &)> walk =
        [&](const prof::CctNode &node, FlameNode &out) {
            node.forEachChild([&](const prof::CctNode &child) {
                const dlmon::FrameKind kind = child.kind();
                if (!options.include_instructions &&
                    kind == dlmon::FrameKind::kInstruction) {
                    return;
                }
                const RunningStat *stat =
                    metric >= 0 ? child.findMetric(metric) : nullptr;
                const double value = stat != nullptr ? stat->sum() : 0.0;
                if (value <= 0.0 || value < min_value)
                    return;

                if (!options.include_native &&
                    (kind == dlmon::FrameKind::kNative)) {
                    // Collapse: splice the child's children into out.
                    walk(child, out);
                    return;
                }

                FlameNode flame;
                flame.label = child.label();
                flame.value = value;
                auto color = colors.find(&child);
                if (color != colors.end())
                    flame.color = color->second;
                walk(child, flame);
                out.children.push_back(std::move(flame));
            });
        };

    FlameNode root;
    root.label = "<root>";
    root.value = root_value;
    walk(db.cct().root(), root);
    return root;
}

namespace {

/**
 * Build-time shadow of a FlameNode for bottomUp: stable heap nodes
 * (FlameNode children vectors reallocate as siblings append, so an
 * index into them would dangle) with a per-parent sibling index keyed
 * by interned label id. Sibling matching used to be a linear label
 * scan per visited node — quadratic on wide kernel sets (a merged
 * fleet tree easily holds thousands of distinct kernels under one
 * bottom-up root); the hash lookup makes it O(1).
 */
struct BottomUpNode {
    std::uint32_t label = 0; ///< Builder-local interned label id.
    double value = 0.0;
    std::string color;
    std::vector<std::unique_ptr<BottomUpNode>> children;
    std::unordered_map<std::uint32_t, BottomUpNode *> index;

    BottomUpNode *
    childFor(std::uint32_t label_id)
    {
        auto [it, fresh] = index.emplace(label_id, nullptr);
        if (fresh) {
            auto child = std::make_unique<BottomUpNode>();
            child->label = label_id;
            it->second = child.get();
            children.push_back(std::move(child));
        }
        return it->second;
    }
};

/**
 * Interns CCT-node labels to dense builder-local ids, memoized per
 * node: matching by int id is exactly matching by label text (ids are
 * handed out per distinct text), and each visited node renders its
 * label string once no matter how many caller chains it appears in.
 */
class LabelInterner
{
  public:
    std::uint32_t
    idOf(const prof::CctNode &node)
    {
        auto [nit, fresh_node] = by_node_.emplace(&node, 0);
        if (fresh_node) {
            auto [it, fresh] = ids_.emplace(
                node.label(), static_cast<std::uint32_t>(texts_.size()));
            if (fresh)
                texts_.push_back(it->first);
            nit->second = it->second;
        }
        return nit->second;
    }

    const std::string &text(std::uint32_t id) const { return texts_[id]; }

  private:
    std::unordered_map<const prof::CctNode *, std::uint32_t> by_node_;
    std::unordered_map<std::string, std::uint32_t> ids_;
    std::vector<std::string> texts_;
};

/** Convert the shadow tree into the public FlameNode form. */
FlameNode
materializeBottomUp(const BottomUpNode &node, const LabelInterner &labels,
                    const char *label_override)
{
    FlameNode out;
    out.label = label_override != nullptr ? label_override
                                          : labels.text(node.label);
    out.value = node.value;
    out.color = node.color;
    out.children.reserve(node.children.size());
    for (const auto &child : node.children)
        out.children.push_back(
            materializeBottomUp(*child, labels, nullptr));
    return out;
}

} // namespace

FlameNode
FlameGraph::bottomUp(const prof::ProfileDb &db,
                     const FlameGraphOptions &options,
                     const std::vector<analysis::Issue> &issues)
{
    const int metric = db.metrics().find(options.metric);
    const auto colors = issueColors(issues);

    LabelInterner labels;
    BottomUpNode root;

    // Aggregate every kernel node by name; expand callers beneath.
    db.cct().visit([&](const prof::CctNode &node) {
        if (node.kind() != dlmon::FrameKind::kKernel)
            return;
        const RunningStat *stat =
            metric >= 0 ? node.findMetric(metric) : nullptr;
        const double value = stat != nullptr ? stat->sum() : 0.0;
        if (value <= 0.0)
            return;

        // Find or create the first-level node for this kernel name.
        BottomUpNode *bucket = root.childFor(labels.idOf(node));
        if (bucket->value == 0.0) {
            auto color = colors.find(&node);
            if (color != colors.end())
                bucket->color = color->second;
        }
        bucket->value += value;
        root.value += value;

        // Walk callers leaf->root, creating a chain under the bucket.
        BottomUpNode *cursor = bucket;
        for (const prof::CctNode *caller = node.parent();
             caller != nullptr && caller->parent() != nullptr;
             caller = caller->parent()) {
            if (!options.include_native &&
                caller->kind() == dlmon::FrameKind::kNative) {
                continue;
            }
            BottomUpNode *next = cursor->childFor(labels.idOf(*caller));
            next->value += value;
            cursor = next;
        }
    });

    std::sort(root.children.begin(), root.children.end(),
              [](const std::unique_ptr<BottomUpNode> &a,
                 const std::unique_ptr<BottomUpNode> &b) {
                  return a->value > b->value;
              });
    return materializeBottomUp(root, labels, "<root>");
}

std::string
FlameGraph::renderAscii(const FlameNode &root, int width, int max_depth)
{
    std::string out;
    const double total = root.value > 0.0 ? root.value : 1.0;
    std::function<void(const FlameNode &, int)> walk =
        [&](const FlameNode &node, int depth) {
            if (depth > max_depth)
                return;
            const double fraction = node.value / total;
            int bar = static_cast<int>(std::lround(
                fraction * static_cast<double>(width)));
            bar = std::clamp(bar, 1, width);
            std::string marker = node.color.empty() ? "" : " [!]";
            out += strformat("%*s%s %s%s (%.1f%%)\n", depth * 2, "",
                             std::string(static_cast<std::size_t>(bar),
                                         '#')
                                 .c_str(),
                             node.label.c_str(), marker.c_str(),
                             100.0 * fraction);
            for (const FlameNode &child : node.children)
                walk(child, depth + 1);
        };
    walk(root, 0);
    return out;
}

std::string
FlameGraph::toFolded(const FlameNode &root)
{
    std::string out;
    std::vector<std::string> stack;
    std::function<void(const FlameNode &)> walk =
        [&](const FlameNode &node) {
            stack.push_back(node.label);
            const double self = node.value - node.childSum();
            if (self > 0.0 || node.children.empty()) {
                out += join(stack, ";");
                out += strformat(" %.0f\n", std::max(self, node.value *
                                     (node.children.empty() ? 1.0 : 0.0)));
            }
            for (const FlameNode &child : node.children)
                walk(child);
            stack.pop_back();
        };
    walk(root);
    return out;
}

std::string
FlameGraph::toJson(const FlameNode &root)
{
    std::function<std::string(const FlameNode &)> walk =
        [&](const FlameNode &node) -> std::string {
        std::string json = "{\"name\":\"" + jsonEscape(node.label) +
                           "\",\"value\":" +
                           strformat("%.0f", node.value);
        if (!node.color.empty())
            json += ",\"color\":\"" + node.color + "\"";
        if (!node.children.empty()) {
            json += ",\"children\":[";
            for (std::size_t i = 0; i < node.children.size(); ++i) {
                if (i)
                    json += ",";
                json += walk(node.children[i]);
            }
            json += "]";
        }
        json += "}";
        return json;
    };
    return walk(root);
}

std::string
FlameGraph::toHtml(const FlameNode &root, const std::string &title)
{
    // Minimal self-contained viewer: nested <div>s with proportional
    // widths; hover shows the value. No external dependencies so the
    // file opens anywhere.
    std::string html;
    html += "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>";
    html += jsonEscape(title);
    html += "</title><style>\n"
            ".f{box-sizing:border-box;overflow:hidden;white-space:nowrap;"
            "font:11px monospace;border:1px solid #fff;background:#fca750;"
            "padding:1px 3px;}\n"
            ".f:hover{background:#ffd79e;cursor:pointer;}\n"
            "</style></head><body><h3>";
    html += jsonEscape(title);
    html += "</h3>\n";

    const double total = root.value > 0.0 ? root.value : 1.0;
    std::function<void(const FlameNode &)> walk =
        [&](const FlameNode &node) {
            const double pct = 100.0 * node.value / total;
            if (pct < 0.05)
                return;
            html += strformat(
                "<div class=\"f\" style=\"width:%.2f%%;%s\" title=\"%s: "
                "%.0f\">%s</div>\n",
                pct,
                node.color.empty()
                    ? ""
                    : ("background:" + node.color + ";").c_str(),
                jsonEscape(node.label).c_str(), node.value,
                jsonEscape(node.label).c_str());
            if (node.children.empty())
                return;
            html += "<div style=\"margin-left:8px\">\n";
            for (const FlameNode &child : node.children)
                walk(child);
            html += "</div>\n";
        };
    walk(root);
    html += "</body></html>\n";
    return html;
}

} // namespace dc::gui

#include "gui/ide_protocol.h"

#include "common/strings.h"

namespace dc::gui {

std::string
EditorAction::toJson() const
{
    const char *method = "";
    switch (kind) {
      case Kind::kOpenFile: method = "editor/openFile"; break;
      case Kind::kGotoLine: method = "editor/gotoLine"; break;
      case Kind::kHighlightRange: method = "editor/highlightRange"; break;
    }
    return strformat(
        "{\"method\":\"%s\",\"params\":{\"file\":\"%s\",\"line\":%d,"
        "\"endLine\":%d}}",
        method, jsonEscape(file).c_str(), line,
        end_line > 0 ? end_line : line);
}

std::vector<EditorAction>
actionsForNode(const prof::CctNode &node, const sim::SourceMap *sources)
{
    std::vector<EditorAction> actions;
    const dlmon::Frame &frame = node.frame();

    std::optional<sim::SourceLocation> location;
    if (frame.kind == dlmon::FrameKind::kPython) {
        location = sim::SourceLocation{frame.file, frame.line};
    } else if (sources != nullptr &&
               (frame.kind == dlmon::FrameKind::kNative ||
                frame.kind == dlmon::FrameKind::kGpuApi ||
                frame.kind == dlmon::FrameKind::kInstruction)) {
        location = sources->resolve(frame.pc);
    }

    if (!location) {
        // Fall back to the nearest Python ancestor so a click always
        // lands somewhere useful. kind()/file() resolve through the
        // string table without materializing whole frames.
        for (const prof::CctNode *cur = node.parent(); cur != nullptr;
             cur = cur->parent()) {
            if (cur->kind() == dlmon::FrameKind::kPython) {
                location = sim::SourceLocation{cur->file(),
                                               cur->line()};
                break;
            }
        }
    }
    if (!location)
        return actions;

    EditorAction open;
    open.kind = EditorAction::Kind::kOpenFile;
    open.file = location->file;
    open.line = location->line;
    actions.push_back(open);

    EditorAction go;
    go.kind = EditorAction::Kind::kGotoLine;
    go.file = location->file;
    go.line = location->line;
    actions.push_back(go);

    EditorAction highlight;
    highlight.kind = EditorAction::Kind::kHighlightRange;
    highlight.file = location->file;
    highlight.line = location->line;
    highlight.end_line = location->line + 2;
    actions.push_back(highlight);
    return actions;
}

std::string
actionsToJson(const std::vector<EditorAction> &actions)
{
    std::string out = "[";
    for (std::size_t i = 0; i < actions.size(); ++i) {
        if (i)
            out += ",";
        out += actions[i].toJson();
    }
    out += "]";
    return out;
}

} // namespace dc::gui

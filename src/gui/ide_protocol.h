#pragma once

/**
 * @file
 * IDE interaction backend (Section 4.4).
 *
 * The WebView GUI translates visualization events (clicking a hotspot
 * frame) into editor actions: open the file, navigate to the line,
 * highlight the region. This module is that translation layer, emitting
 * VS-Code-protocol-style JSON messages; any IDE speaking the protocol
 * (VSCode, VSCodium, Theia) could consume them. Python frames resolve
 * directly; native/kernel frames resolve through the DWARF-like source
 * map.
 */

#include <optional>
#include <string>
#include <vector>

#include "profiler/cct.h"
#include "sim/loader/source_map.h"

namespace dc::gui {

/** One editor action. */
struct EditorAction {
    enum class Kind {
        kOpenFile,
        kGotoLine,
        kHighlightRange,
    };
    Kind kind = Kind::kOpenFile;
    std::string file;
    int line = 0;
    int end_line = 0;

    /** VSCode-protocol-style JSON message. */
    std::string toJson() const;
};

/** Translate a click on a CCT node into editor actions. */
std::vector<EditorAction> actionsForNode(const prof::CctNode &node,
                                         const sim::SourceMap *sources);

/** Render a sequence of actions as a JSON array (WebView -> IDE). */
std::string actionsToJson(const std::vector<EditorAction> &actions);

} // namespace dc::gui

#pragma once

/**
 * @file
 * Flame-graph views of a profile (Section 4.4).
 *
 * The GUI visualizes the calling context tree as flame graphs with
 * switchable top-down and bottom-up views: top-down is the direct tree,
 * bottom-up aggregates the same kernel across different call paths.
 * Issues reported by the analyzer color-code frames. Exports:
 *
 *  - ASCII rendering (terminal reports, used by the benches to show the
 *    paper's figures),
 *  - Brendan-Gregg folded stacks,
 *  - d3-flame-graph JSON,
 *  - a self-contained HTML file.
 */

#include <map>
#include <string>
#include <vector>

#include "analyzer/analysis.h"
#include "profiler/profile_db.h"

namespace dc::gui {

/** A node of the rendered flame graph. */
struct FlameNode {
    std::string label;
    double value = 0.0;          ///< Inclusive metric value.
    std::string color;           ///< "" = default palette.
    std::vector<FlameNode> children;

    /** Total value of the children (<= value for proper trees). */
    double childSum() const;
};

/** View construction options. */
struct FlameGraphOptions {
    /// Metric the widths encode.
    std::string metric = "gpu_time_ns";
    /// Collapse native frames (the GUI's "hide C/C++" toggle).
    bool include_native = true;
    /// Include instruction frames (fine-grained view).
    bool include_instructions = false;
    /// Prune nodes below this fraction of the root value.
    double min_fraction = 0.0;
};

/** Flame-graph builder and exporters. */
class FlameGraph
{
  public:
    /** Direct representation of the CCT. */
    static FlameNode topDown(const prof::ProfileDb &db,
                             const FlameGraphOptions &options = {},
                             const std::vector<analysis::Issue> &issues =
                                 {});

    /**
     * Bottom-up view: aggregates each kernel's metric across all call
     * paths, with callers expanded beneath it.
     */
    static FlameNode bottomUp(const prof::ProfileDb &db,
                              const FlameGraphOptions &options = {},
                              const std::vector<analysis::Issue> &issues =
                                  {});

    /** ASCII rendering (width-proportional bars). */
    static std::string renderAscii(const FlameNode &root, int width = 96,
                                   int max_depth = 24);

    /** Brendan-Gregg folded-stack format ("a;b;c value"). */
    static std::string toFolded(const FlameNode &root);

    /** d3-flame-graph JSON. */
    static std::string toJson(const FlameNode &root);

    /** Self-contained HTML (inline JSON + a tiny renderer). */
    static std::string toHtml(const FlameNode &root,
                              const std::string &title);
};

} // namespace dc::gui

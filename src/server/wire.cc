#include "server/wire.h"

#include <cstring>

namespace dc::server {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(std::uint64_t hash, std::string_view bytes)
{
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= kFnvPrime;
    }
    return hash;
}

void
putU16(std::string &buf, std::uint16_t v)
{
    buf.push_back(static_cast<char>(v & 0xff));
    buf.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
putU32(std::string &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t
getU16(const char *p)
{
    const unsigned char *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<std::uint16_t>(u[0] |
                                      (static_cast<unsigned>(u[1]) << 8));
}

std::uint32_t
getU32(const char *p)
{
    const unsigned char *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<std::uint32_t>(u[0]) |
           (static_cast<std::uint32_t>(u[1]) << 8) |
           (static_cast<std::uint32_t>(u[2]) << 16) |
           (static_cast<std::uint32_t>(u[3]) << 24);
}

std::uint64_t
getU64(const char *p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

} // namespace

const char *
statusName(Status status)
{
    switch (status) {
    case Status::kOk:
        return "OK";
    case Status::kBadRequest:
        return "BAD_REQUEST";
    case Status::kNotFound:
        return "NOT_FOUND";
    case Status::kOverloaded:
        return "OVERLOADED";
    case Status::kDeadlineExceeded:
        return "DEADLINE_EXCEEDED";
    case Status::kError:
        return "ERROR";
    case Status::kShuttingDown:
        return "SHUTTING_DOWN";
    }
    return "UNKNOWN";
}

std::uint64_t
wireChecksum(std::string_view header_no_sum, std::string_view payload)
{
    return fnv1a(fnv1a(kFnvOffset, header_no_sum), payload);
}

std::string
encodeFrame(std::uint8_t kind, std::uint16_t flags,
            std::uint64_t request_id, std::uint32_t deadline_ms,
            std::string_view payload, std::uint8_t version)
{
    std::string frame;
    frame.reserve(kFrameHeaderSize + payload.size());
    putU32(frame, kWireMagic);
    frame.push_back(static_cast<char>(version));
    frame.push_back(static_cast<char>(kind));
    putU16(frame, flags);
    putU64(frame, request_id);
    putU32(frame, deadline_ms);
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    // Checksum over the header-so-far (checksum field logically zero —
    // it is simply not yet appended) plus the payload.
    const std::uint64_t sum = wireChecksum(frame, payload);
    putU64(frame, sum);
    frame.append(payload.data(), payload.size());
    return frame;
}

DecodeResult
decodeFrame(std::string_view buf, std::uint64_t max_payload, Frame *out,
            std::size_t *consumed, std::string *error)
{
    const auto bad = [&](const char *what) {
        if (error != nullptr)
            *error = what;
        return DecodeResult::kBad;
    };
    // Reject garbage as soon as it is identifiable: a client that
    // connects and speaks HTTP (or noise) fails on its first 4 bytes,
    // not after feeding us a header's worth.
    if (buf.size() >= 4 && getU32(buf.data()) != kWireMagic)
        return bad("bad magic");
    if (buf.size() >= 5) {
        const std::uint8_t version = static_cast<std::uint8_t>(buf[4]);
        if (version < kMinWireVersion || version > kWireVersion)
            return bad("unsupported version");
    }
    if (buf.size() < kFrameHeaderSize)
        return DecodeResult::kNeedMore;

    const std::uint32_t payload_len = getU32(buf.data() + 20);
    // Bound before any buffer is sized by the untrusted length — a
    // 2^31 length must not trigger a 2 GiB reserve.
    if (payload_len > max_payload)
        return bad("payload length exceeds limit");
    if (buf.size() < kFrameHeaderSize + payload_len)
        return DecodeResult::kNeedMore;

    const std::string_view header_no_sum = buf.substr(0, 24);
    const std::string_view payload =
        buf.substr(kFrameHeaderSize, payload_len);
    const std::uint64_t want_sum = getU64(buf.data() + 24);
    if (wireChecksum(header_no_sum, payload) != want_sum)
        return bad("checksum mismatch");

    out->version = static_cast<std::uint8_t>(buf[4]);
    out->kind = static_cast<std::uint8_t>(buf[5]);
    out->flags = getU16(buf.data() + 6);
    out->request_id = getU64(buf.data() + 8);
    out->deadline_ms = getU32(buf.data() + 16);
    out->payload.assign(payload.data(), payload.size());
    *consumed = kFrameHeaderSize + payload_len;
    return DecodeResult::kFrame;
}

void
WireWriter::u32(std::uint32_t v)
{
    putU32(buf_, v);
}

void
WireWriter::u64(std::uint64_t v)
{
    putU64(buf_, v);
}

void
WireWriter::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(buf_, bits);
}

void
WireWriter::str(std::string_view s)
{
    putU32(buf_, static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
}

bool
WireReader::take(void *out, std::size_t n)
{
    if (!ok_ || buf_.size() - off_ < n) {
        ok_ = false;
        return false;
    }
    std::memcpy(out, buf_.data() + off_, n);
    off_ += n;
    return true;
}

std::uint32_t
WireReader::u32()
{
    char raw[4];
    if (!take(raw, sizeof(raw)))
        return 0;
    return getU32(raw);
}

std::uint64_t
WireReader::u64()
{
    char raw[8];
    if (!take(raw, sizeof(raw)))
        return 0;
    return getU64(raw);
}

double
WireReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::str()
{
    const std::uint32_t len = u32();
    // The reader operates on an already-bounded frame payload, so the
    // only hostile case left is a length past the payload end.
    if (!ok_ || buf_.size() - off_ < len) {
        ok_ = false;
        return {};
    }
    std::string out(buf_.data() + off_, len);
    off_ += len;
    return out;
}

void
writeFilter(WireWriter &writer, const service::QueryFilter &filter)
{
    writer.str(filter.framework);
    writer.str(filter.platform);
    writer.str(filter.model);
    writer.u32(static_cast<std::uint32_t>(filter.metadata.size()));
    for (const auto &[key, value] : filter.metadata) {
        writer.str(key);
        writer.str(value);
    }
}

service::QueryFilter
readFilter(WireReader &reader)
{
    service::QueryFilter filter;
    filter.framework = reader.str();
    filter.platform = reader.str();
    filter.model = reader.str();
    const std::uint32_t pairs = reader.u32();
    for (std::uint32_t i = 0; i < pairs && reader.ok(); ++i) {
        std::string key = reader.str();
        filter.metadata[std::move(key)] = reader.str();
    }
    return filter;
}

std::string
encodeTopKernelsRequest(std::uint32_t k, const std::string &metric,
                        const service::QueryFilter &filter)
{
    WireWriter writer;
    writer.u32(k);
    writer.str(metric);
    writeFilter(writer, filter);
    return writer.take();
}

bool
decodeTopKernelsRequest(std::string_view payload, std::uint32_t *k,
                        std::string *metric,
                        service::QueryFilter *filter)
{
    WireReader reader(payload);
    *k = reader.u32();
    *metric = reader.str();
    *filter = readFilter(reader);
    return reader.done();
}

std::string
encodeKernelRows(const std::vector<KernelRow> &rows)
{
    WireWriter writer;
    writer.u32(static_cast<std::uint32_t>(rows.size()));
    for (const KernelRow &row : rows) {
        writer.str(row.name);
        writer.f64(row.total);
        writer.u64(row.samples);
        writer.u32(row.runs);
    }
    return writer.take();
}

bool
decodeKernelRows(std::string_view payload, std::vector<KernelRow> *rows)
{
    WireReader reader(payload);
    const std::uint32_t count = reader.u32();
    rows->clear();
    for (std::uint32_t i = 0; i < count && reader.ok(); ++i) {
        KernelRow row;
        row.name = reader.str();
        row.total = reader.f64();
        row.samples = reader.u64();
        row.runs = reader.u32();
        rows->push_back(std::move(row));
    }
    return reader.done();
}

std::string
encodeIngestRequest(const std::string &run_id,
                    std::string_view profile_text)
{
    WireWriter writer;
    writer.str(run_id);
    writer.str(profile_text);
    return writer.take();
}

bool
decodeIngestRequest(std::string_view payload, std::string *run_id,
                    std::string *profile_text)
{
    WireReader reader(payload);
    *run_id = reader.str();
    *profile_text = reader.str();
    return reader.done() && !run_id->empty();
}

std::string
encodeDiffRequest(const std::string &run_a, const std::string &run_b,
                  const service::QueryFilter &filter)
{
    WireWriter writer;
    writer.str(run_a);
    writer.str(run_b);
    writeFilter(writer, filter);
    return writer.take();
}

bool
decodeDiffRequest(std::string_view payload, std::string *run_a,
                  std::string *run_b, service::QueryFilter *filter)
{
    WireReader reader(payload);
    *run_a = reader.str();
    *run_b = reader.str();
    *filter = readFilter(reader);
    return reader.done() && !run_a->empty();
}

std::string
encodeFlameRequest(const std::string &metric,
                   const service::QueryFilter &filter)
{
    WireWriter writer;
    writer.str(metric);
    writeFilter(writer, filter);
    return writer.take();
}

bool
decodeFlameRequest(std::string_view payload, std::string *metric,
                   service::QueryFilter *filter)
{
    WireReader reader(payload);
    *metric = reader.str();
    *filter = readFilter(reader);
    return reader.done();
}

namespace {

void
writeCorpusIds(WireWriter &writer, const std::vector<std::string> &ids)
{
    writer.u32(static_cast<std::uint32_t>(ids.size()));
    for (const std::string &id : ids)
        writer.str(id);
}

std::vector<std::string>
readCorpusIds(WireReader &reader)
{
    std::vector<std::string> ids;
    const std::uint32_t count = reader.u32();
    for (std::uint32_t i = 0; i < count && reader.ok(); ++i)
        ids.push_back(reader.str());
    return ids;
}

} // namespace

std::string
encodeCorpusScoped(const std::string &corpus_id,
                   std::string_view op_payload)
{
    WireWriter writer;
    writer.str(corpus_id);
    std::string out = writer.take();
    out.append(op_payload.data(), op_payload.size());
    return out;
}

bool
splitCorpusScoped(const Frame &frame, std::string *corpus_id,
                  std::string_view *op_payload)
{
    if (frame.version < 2) {
        // v1 peers predate corpus addressing: whole payload, default
        // corpus.
        corpus_id->clear();
        *op_payload = frame.payload;
        return true;
    }
    if (frame.payload.size() < 4)
        return false;
    const std::uint32_t len = getU32(frame.payload.data());
    if (len > frame.payload.size() - 4)
        return false;
    corpus_id->assign(frame.payload.data() + 4, len);
    *op_payload = std::string_view(frame.payload).substr(4 + len);
    return true;
}

std::string
encodeCorpusRequest(const std::string &corpus_id)
{
    WireWriter writer;
    writer.str(corpus_id);
    return writer.take();
}

bool
decodeCorpusRequest(std::string_view payload, std::string *corpus_id)
{
    WireReader reader(payload);
    *corpus_id = reader.str();
    return reader.done() && !corpus_id->empty();
}

std::string
encodeCorpusList(const std::vector<CorpusInfo> &corpora)
{
    WireWriter writer;
    writer.u32(static_cast<std::uint32_t>(corpora.size()));
    for (const CorpusInfo &info : corpora) {
        writer.str(info.id);
        writer.u32(info.open ? 1 : 0);
        writer.u64(info.runs);
    }
    return writer.take();
}

bool
decodeCorpusList(std::string_view payload,
                 std::vector<CorpusInfo> *corpora)
{
    WireReader reader(payload);
    const std::uint32_t count = reader.u32();
    corpora->clear();
    for (std::uint32_t i = 0; i < count && reader.ok(); ++i) {
        CorpusInfo info;
        info.id = reader.str();
        info.open = reader.u32() != 0;
        info.runs = reader.u64();
        corpora->push_back(std::move(info));
    }
    return reader.done();
}

std::string
encodeFederatedTopKernelsRequest(const std::vector<std::string> &corpora,
                                 std::uint32_t k,
                                 const std::string &metric,
                                 const service::QueryFilter &filter)
{
    WireWriter writer;
    writeCorpusIds(writer, corpora);
    writer.u32(k);
    writer.str(metric);
    writeFilter(writer, filter);
    return writer.take();
}

bool
decodeFederatedTopKernelsRequest(std::string_view payload,
                                 std::vector<std::string> *corpora,
                                 std::uint32_t *k, std::string *metric,
                                 service::QueryFilter *filter)
{
    WireReader reader(payload);
    *corpora = readCorpusIds(reader);
    *k = reader.u32();
    *metric = reader.str();
    *filter = readFilter(reader);
    return reader.done() && !corpora->empty();
}

std::string
encodeFederatedMergedRequest(const std::vector<std::string> &corpora,
                             const service::QueryFilter &filter)
{
    WireWriter writer;
    writeCorpusIds(writer, corpora);
    writeFilter(writer, filter);
    return writer.take();
}

bool
decodeFederatedMergedRequest(std::string_view payload,
                             std::vector<std::string> *corpora,
                             service::QueryFilter *filter)
{
    WireReader reader(payload);
    *corpora = readCorpusIds(reader);
    *filter = readFilter(reader);
    return reader.done() && !corpora->empty();
}

std::string
encodeFederatedDiffRequest(const std::vector<std::string> &corpora_a,
                           const std::vector<std::string> &corpora_b,
                           const service::QueryFilter &filter)
{
    WireWriter writer;
    writeCorpusIds(writer, corpora_a);
    writeCorpusIds(writer, corpora_b);
    writeFilter(writer, filter);
    return writer.take();
}

bool
decodeFederatedDiffRequest(std::string_view payload,
                           std::vector<std::string> *corpora_a,
                           std::vector<std::string> *corpora_b,
                           service::QueryFilter *filter)
{
    WireReader reader(payload);
    *corpora_a = readCorpusIds(reader);
    *corpora_b = readCorpusIds(reader);
    *filter = readFilter(reader);
    return reader.done() && !corpora_a->empty() && !corpora_b->empty();
}

std::string
encodeFederatedFlameRequest(const std::vector<std::string> &corpora,
                            const std::string &metric,
                            const service::QueryFilter &filter)
{
    WireWriter writer;
    writeCorpusIds(writer, corpora);
    writer.str(metric);
    writeFilter(writer, filter);
    return writer.take();
}

bool
decodeFederatedFlameRequest(std::string_view payload,
                            std::vector<std::string> *corpora,
                            std::string *metric,
                            service::QueryFilter *filter)
{
    WireReader reader(payload);
    *corpora = readCorpusIds(reader);
    *metric = reader.str();
    *filter = readFilter(reader);
    return reader.done() && !corpora->empty();
}

} // namespace dc::server

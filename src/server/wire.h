#pragma once

/**
 * @file
 * The warehouse wire protocol: length-prefixed, checksummed frames.
 *
 * Every message — request or response — is one frame:
 *
 *     offset  size  field
 *     0       4     magic        0xDC50F11E, little-endian
 *     4       1     version      1 or 2 (see below)
 *     5       1     kind         request Opcode or response Status
 *     6       2     flags        Opcode-specific bits (kFlagDurable)
 *     8       8     request_id   caller-chosen, echoed in the response
 *     16      4     deadline_ms  request: relative deadline budget
 *                                (0 = none); 0 in responses
 *     20      4     payload_len  bytes following the header
 *     24      8     checksum     FNV-1a 64 over the header (with this
 *                                field zeroed) plus the payload
 *     32      ...   payload
 *
 * All integers are little-endian. The checksum covers the header too,
 * so a flipped opcode or a forged length fails closed, not just a
 * damaged payload. Frame payloads are bounded by the receiver
 * (decodeFrame's max_payload): a hostile length field is rejected
 * before any allocation sized by it.
 *
 * Payload contents are encoded with WireWriter/WireReader —
 * length-prefixed strings and fixed-width integers, no text parsing on
 * the hot path. Opcode-specific codecs (top-kernels rows, filters)
 * live here so the server and the client library cannot drift.
 *
 * Error handling is fail-closed: a frame that does not parse exactly
 * (bad magic, unknown version, oversized length, checksum mismatch,
 * truncated payload reader) is rejected and the connection is expected
 * to be dropped — after a framing error the stream offset can no
 * longer be trusted.
 *
 * **Version 2 — corpus addressing.** The warehouse serves many corpora
 * (service/warehouse_manager.h); v2 threads the corpus id through the
 * protocol while staying backward-compatible with v1 peers:
 *
 *  - A v2 frame carrying a single-corpus opcode (kIngest..kStats)
 *    prefixes its payload with one length-prefixed corpus-id string
 *    (encodeCorpusScoped / splitCorpusScoped); an empty id means the
 *    server's default corpus. kPing payloads stay raw.
 *  - A v1 frame is still accepted and addresses the default corpus —
 *    old clients keep working unchanged.
 *  - New opcodes (corpus lifecycle kCorpusCreate..kCorpusList and the
 *    federated queries kFederatedTopKernels..kFederatedFlame) carry
 *    version-independent payloads encoded by the codecs below.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/query_filter.h"

namespace dc::server {

inline constexpr std::uint32_t kWireMagic = 0xDC50F11Eu;
inline constexpr std::uint8_t kWireVersion = 2;
/// Oldest version still accepted (v1 = single-corpus payloads).
inline constexpr std::uint8_t kMinWireVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 32;
/// Default receiver-side payload bound (see decodeFrame).
inline constexpr std::uint64_t kDefaultMaxPayload = 64ull << 20;

/** Request kinds. */
enum class Opcode : std::uint8_t {
    kPing = 1,       ///< Echo the payload.
    kIngest = 2,     ///< run_id, profile text.
    kErase = 3,      ///< run_id.
    kTopKernels = 4, ///< k, metric, filter -> rows.
    kMerged = 5,     ///< filter -> serialized merged profile.
    kDiff = 6,       ///< run_a, run_b ("" = vs corpus), filter -> text.
    kFlameGraph = 7, ///< filter, metric -> self-contained HTML.
    kStats = 8,      ///< "" -> key=value lines.
    // v2 corpus lifecycle (payload: one corpus-id string).
    kCorpusCreate = 9,  ///< Create + open a corpus.
    kCorpusOpen = 10,   ///< Open (replay) an existing corpus.
    kCorpusClose = 11,  ///< Remove from the open set (data survives).
    kCorpusDrop = 12,   ///< Delete the corpus and its data.
    kCorpusList = 13,   ///< "" -> CorpusInfo rows.
    // v2 federated queries spanning a set of corpora.
    kFederatedTopKernels = 14, ///< ids, k, metric, filter -> rows.
    kFederatedMerged = 15,     ///< ids, filter -> serialized profile.
    kFederatedDiff = 16,       ///< ids_a, ids_b, filter -> text.
    kFederatedFlame = 17,      ///< ids, metric, filter -> HTML.
};

/** Response kinds. Values disjoint from Opcode so a reflected or
 *  corrupted frame can never be mistaken for the other direction. */
enum class Status : std::uint8_t {
    kOk = 128,
    kBadRequest = 129, ///< Unparseable payload or unknown opcode.
    kNotFound = 130,   ///< Unknown run id.
    kOverloaded = 131, ///< Shed by admission control; retry later.
    kDeadlineExceeded = 132, ///< Deadline passed before completion.
    kError = 133,            ///< Execution failed; payload = message.
    kShuttingDown = 134,     ///< Server draining; not accepting work.
};

/** Ingest flag: ack only after the run is stored and log-durable. */
inline constexpr std::uint16_t kFlagDurable = 1u << 0;

/** Human-readable status name (diagnostics, tests). */
const char *statusName(Status status);

/** FNV-1a 64 (the WAL's checksum, reused for frames). */
std::uint64_t wireChecksum(std::string_view header_no_sum,
                           std::string_view payload);

/** One decoded frame. */
struct Frame {
    /// Protocol version the sender spoke (kMinWireVersion..
    /// kWireVersion); v1 single-corpus payloads carry no corpus id.
    std::uint8_t version = kWireVersion;
    std::uint8_t kind = 0;
    std::uint16_t flags = 0;
    std::uint64_t request_id = 0;
    std::uint32_t deadline_ms = 0;
    std::string payload;

    Opcode opcode() const { return static_cast<Opcode>(kind); }
    Status status() const { return static_cast<Status>(kind); }
};

/** Serialize a frame (header + checksum + payload). */
std::string encodeFrame(std::uint8_t kind, std::uint16_t flags,
                        std::uint64_t request_id,
                        std::uint32_t deadline_ms,
                        std::string_view payload,
                        std::uint8_t version = kWireVersion);

/** decodeFrame outcome. */
enum class DecodeResult {
    kNeedMore, ///< Buffer holds a valid prefix; read more bytes.
    kFrame,    ///< One frame decoded; *consumed bytes were used.
    kBad,      ///< Framing violation; the stream is unrecoverable.
};

/**
 * Try to decode one frame from the front of @p buf. Validates magic
 * and version as soon as enough bytes exist (garbage fails fast, not
 * after a full "header" of it), bounds payload_len by @p max_payload
 * *before* sizing any buffer by it, and verifies the checksum over
 * header+payload. On kBad, @p error names the violation.
 */
DecodeResult decodeFrame(std::string_view buf, std::uint64_t max_payload,
                         Frame *out, std::size_t *consumed,
                         std::string *error = nullptr);

/** Append-only payload encoder (little-endian, length-prefixed). */
class WireWriter
{
  public:
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v); ///< IEEE-754 bit pattern as u64.
    void str(std::string_view s);

    std::string take() { return std::move(buf_); }
    const std::string &buffer() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Matching decoder. Any overrun (a length-prefixed string running past
 * the payload) latches ok() false and every later read returns a
 * default — callers check ok() once at the end instead of after every
 * field. A trailing-garbage check is available via done().
 */
class WireReader
{
  public:
    explicit WireReader(std::string_view buf) : buf_(buf) {}

    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    bool ok() const { return ok_; }
    bool done() const { return ok_ && off_ == buf_.size(); }

  private:
    bool take(void *out, std::size_t n);

    std::string_view buf_;
    std::size_t off_ = 0;
    bool ok_ = true;
};

// -------------------------------------------------- opcode codecs

/** Append @p filter fields (named + metadata pairs) to @p writer. */
void writeFilter(WireWriter &writer, const service::QueryFilter &filter);
/** Read a filter written by writeFilter. */
service::QueryFilter readFilter(WireReader &reader);

/** One top-kernels result row as it crosses the wire. */
struct KernelRow {
    std::string name;
    double total = 0.0;
    std::uint64_t samples = 0;
    std::uint32_t runs = 0;
};

std::string encodeTopKernelsRequest(std::uint32_t k,
                                    const std::string &metric,
                                    const service::QueryFilter &filter);
bool decodeTopKernelsRequest(std::string_view payload, std::uint32_t *k,
                             std::string *metric,
                             service::QueryFilter *filter);

std::string encodeKernelRows(const std::vector<KernelRow> &rows);
bool decodeKernelRows(std::string_view payload,
                      std::vector<KernelRow> *rows);

std::string encodeIngestRequest(const std::string &run_id,
                                std::string_view profile_text);
bool decodeIngestRequest(std::string_view payload, std::string *run_id,
                         std::string *profile_text);

std::string encodeDiffRequest(const std::string &run_a,
                              const std::string &run_b,
                              const service::QueryFilter &filter);
bool decodeDiffRequest(std::string_view payload, std::string *run_a,
                       std::string *run_b,
                       service::QueryFilter *filter);

std::string encodeFlameRequest(const std::string &metric,
                               const service::QueryFilter &filter);
bool decodeFlameRequest(std::string_view payload, std::string *metric,
                        service::QueryFilter *filter);

// ------------------------------------------- v2 corpus addressing

/**
 * Prefix @p op_payload with the corpus id a v2 single-corpus frame
 * (kIngest..kStats) addresses ("" = the server's default corpus).
 */
std::string encodeCorpusScoped(const std::string &corpus_id,
                               std::string_view op_payload);

/**
 * Split a single-corpus frame's payload into the addressed corpus and
 * the opcode payload. v1 frames address the default corpus ("") with
 * their whole payload; v2 frames carry the encodeCorpusScoped prefix.
 * False = malformed prefix (treat as a bad request).
 */
bool splitCorpusScoped(const Frame &frame, std::string *corpus_id,
                       std::string_view *op_payload);

/** Corpus lifecycle request (create/open/close/drop): one id. */
std::string encodeCorpusRequest(const std::string &corpus_id);
bool decodeCorpusRequest(std::string_view payload,
                         std::string *corpus_id);

/** One corpus as listed by kCorpusList. */
struct CorpusInfo {
    std::string id;
    bool open = false;        ///< Currently open in the manager.
    std::uint64_t runs = 0;   ///< Stored runs (0 when cold/unknown).
};

std::string encodeCorpusList(const std::vector<CorpusInfo> &corpora);
bool decodeCorpusList(std::string_view payload,
                      std::vector<CorpusInfo> *corpora);

std::string
encodeFederatedTopKernelsRequest(const std::vector<std::string> &corpora,
                                 std::uint32_t k,
                                 const std::string &metric,
                                 const service::QueryFilter &filter);
bool decodeFederatedTopKernelsRequest(std::string_view payload,
                                      std::vector<std::string> *corpora,
                                      std::uint32_t *k,
                                      std::string *metric,
                                      service::QueryFilter *filter);

std::string
encodeFederatedMergedRequest(const std::vector<std::string> &corpora,
                             const service::QueryFilter &filter);
bool decodeFederatedMergedRequest(std::string_view payload,
                                  std::vector<std::string> *corpora,
                                  service::QueryFilter *filter);

std::string
encodeFederatedDiffRequest(const std::vector<std::string> &corpora_a,
                           const std::vector<std::string> &corpora_b,
                           const service::QueryFilter &filter);
bool decodeFederatedDiffRequest(std::string_view payload,
                                std::vector<std::string> *corpora_a,
                                std::vector<std::string> *corpora_b,
                                service::QueryFilter *filter);

std::string
encodeFederatedFlameRequest(const std::vector<std::string> &corpora,
                            const std::string &metric,
                            const service::QueryFilter &filter);
bool decodeFederatedFlameRequest(std::string_view payload,
                                 std::vector<std::string> *corpora,
                                 std::string *metric,
                                 service::QueryFilter *filter);

} // namespace dc::server

#pragma once

/**
 * @file
 * The warehouse wire protocol: length-prefixed, checksummed frames.
 *
 * Every message — request or response — is one frame:
 *
 *     offset  size  field
 *     0       4     magic        0xDC50F11E, little-endian
 *     4       1     version      1
 *     5       1     kind         request Opcode or response Status
 *     6       2     flags        Opcode-specific bits (kFlagDurable)
 *     8       8     request_id   caller-chosen, echoed in the response
 *     16      4     deadline_ms  request: relative deadline budget
 *                                (0 = none); 0 in responses
 *     20      4     payload_len  bytes following the header
 *     24      8     checksum     FNV-1a 64 over the header (with this
 *                                field zeroed) plus the payload
 *     32      ...   payload
 *
 * All integers are little-endian. The checksum covers the header too,
 * so a flipped opcode or a forged length fails closed, not just a
 * damaged payload. Frame payloads are bounded by the receiver
 * (decodeFrame's max_payload): a hostile length field is rejected
 * before any allocation sized by it.
 *
 * Payload contents are encoded with WireWriter/WireReader —
 * length-prefixed strings and fixed-width integers, no text parsing on
 * the hot path. Opcode-specific codecs (top-kernels rows, filters)
 * live here so the server and the client library cannot drift.
 *
 * Error handling is fail-closed: a frame that does not parse exactly
 * (bad magic, unknown version, oversized length, checksum mismatch,
 * truncated payload reader) is rejected and the connection is expected
 * to be dropped — after a framing error the stream offset can no
 * longer be trusted.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/query_filter.h"

namespace dc::server {

inline constexpr std::uint32_t kWireMagic = 0xDC50F11Eu;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 32;
/// Default receiver-side payload bound (see decodeFrame).
inline constexpr std::uint64_t kDefaultMaxPayload = 64ull << 20;

/** Request kinds. */
enum class Opcode : std::uint8_t {
    kPing = 1,       ///< Echo the payload.
    kIngest = 2,     ///< run_id, profile text.
    kErase = 3,      ///< run_id.
    kTopKernels = 4, ///< k, metric, filter -> rows.
    kMerged = 5,     ///< filter -> serialized merged profile.
    kDiff = 6,       ///< run_a, run_b ("" = vs corpus), filter -> text.
    kFlameGraph = 7, ///< filter, metric -> self-contained HTML.
    kStats = 8,      ///< "" -> key=value lines.
};

/** Response kinds. Values disjoint from Opcode so a reflected or
 *  corrupted frame can never be mistaken for the other direction. */
enum class Status : std::uint8_t {
    kOk = 128,
    kBadRequest = 129, ///< Unparseable payload or unknown opcode.
    kNotFound = 130,   ///< Unknown run id.
    kOverloaded = 131, ///< Shed by admission control; retry later.
    kDeadlineExceeded = 132, ///< Deadline passed before completion.
    kError = 133,            ///< Execution failed; payload = message.
    kShuttingDown = 134,     ///< Server draining; not accepting work.
};

/** Ingest flag: ack only after the run is stored and log-durable. */
inline constexpr std::uint16_t kFlagDurable = 1u << 0;

/** Human-readable status name (diagnostics, tests). */
const char *statusName(Status status);

/** FNV-1a 64 (the WAL's checksum, reused for frames). */
std::uint64_t wireChecksum(std::string_view header_no_sum,
                           std::string_view payload);

/** One decoded frame. */
struct Frame {
    std::uint8_t kind = 0;
    std::uint16_t flags = 0;
    std::uint64_t request_id = 0;
    std::uint32_t deadline_ms = 0;
    std::string payload;

    Opcode opcode() const { return static_cast<Opcode>(kind); }
    Status status() const { return static_cast<Status>(kind); }
};

/** Serialize a frame (header + checksum + payload). */
std::string encodeFrame(std::uint8_t kind, std::uint16_t flags,
                        std::uint64_t request_id,
                        std::uint32_t deadline_ms,
                        std::string_view payload);

/** decodeFrame outcome. */
enum class DecodeResult {
    kNeedMore, ///< Buffer holds a valid prefix; read more bytes.
    kFrame,    ///< One frame decoded; *consumed bytes were used.
    kBad,      ///< Framing violation; the stream is unrecoverable.
};

/**
 * Try to decode one frame from the front of @p buf. Validates magic
 * and version as soon as enough bytes exist (garbage fails fast, not
 * after a full "header" of it), bounds payload_len by @p max_payload
 * *before* sizing any buffer by it, and verifies the checksum over
 * header+payload. On kBad, @p error names the violation.
 */
DecodeResult decodeFrame(std::string_view buf, std::uint64_t max_payload,
                         Frame *out, std::size_t *consumed,
                         std::string *error = nullptr);

/** Append-only payload encoder (little-endian, length-prefixed). */
class WireWriter
{
  public:
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v); ///< IEEE-754 bit pattern as u64.
    void str(std::string_view s);

    std::string take() { return std::move(buf_); }
    const std::string &buffer() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Matching decoder. Any overrun (a length-prefixed string running past
 * the payload) latches ok() false and every later read returns a
 * default — callers check ok() once at the end instead of after every
 * field. A trailing-garbage check is available via done().
 */
class WireReader
{
  public:
    explicit WireReader(std::string_view buf) : buf_(buf) {}

    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    bool ok() const { return ok_; }
    bool done() const { return ok_ && off_ == buf_.size(); }

  private:
    bool take(void *out, std::size_t n);

    std::string_view buf_;
    std::size_t off_ = 0;
    bool ok_ = true;
};

// -------------------------------------------------- opcode codecs

/** Append @p filter fields (named + metadata pairs) to @p writer. */
void writeFilter(WireWriter &writer, const service::QueryFilter &filter);
/** Read a filter written by writeFilter. */
service::QueryFilter readFilter(WireReader &reader);

/** One top-kernels result row as it crosses the wire. */
struct KernelRow {
    std::string name;
    double total = 0.0;
    std::uint64_t samples = 0;
    std::uint32_t runs = 0;
};

std::string encodeTopKernelsRequest(std::uint32_t k,
                                    const std::string &metric,
                                    const service::QueryFilter &filter);
bool decodeTopKernelsRequest(std::string_view payload, std::uint32_t *k,
                             std::string *metric,
                             service::QueryFilter *filter);

std::string encodeKernelRows(const std::vector<KernelRow> &rows);
bool decodeKernelRows(std::string_view payload,
                      std::vector<KernelRow> *rows);

std::string encodeIngestRequest(const std::string &run_id,
                                std::string_view profile_text);
bool decodeIngestRequest(std::string_view payload, std::string *run_id,
                         std::string *profile_text);

std::string encodeDiffRequest(const std::string &run_a,
                              const std::string &run_b,
                              const service::QueryFilter &filter);
bool decodeDiffRequest(std::string_view payload, std::string *run_a,
                       std::string *run_b,
                       service::QueryFilter *filter);

std::string encodeFlameRequest(const std::string &metric,
                               const service::QueryFilter &filter);
bool decodeFlameRequest(std::string_view payload, std::string *metric,
                        service::QueryFilter *filter);

} // namespace dc::server

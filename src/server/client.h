#pragma once

/**
 * @file
 * Blocking client for the warehouse wire protocol — the library the
 * tests, the bench, and the crash-torture harness drive the server
 * with (and the reference implementation of the client side of
 * wire.h's framing).
 *
 * Two layers:
 *
 *  - call(): one request, wait for its response. The deadline_ms
 *    argument is carried in the frame header and doubles as the
 *    client-side receive timeout (plus a grace period), so a dead
 *    server cannot hang the caller any more than a slow query can.
 *
 *  - send()/recv(): raw pipelining. send() queues a frame without
 *    waiting; recv() returns the next response in arrival order. The
 *    overload tests use this to stack requests past the server's
 *    admission watermark and count the OVERLOADED sheds.
 *
 * **Corpus addressing (wire v2).** The client speaks v2: every
 * single-corpus request (ingest..stats) is scoped to the corpus set
 * with setCorpus() — the default empty id addresses the server's
 * default corpus, so callers that never mention corpora behave exactly
 * as under v1. Corpus lifecycle and federated queries get their own
 * conveniences below. send() applies the scoping too (the payload
 * argument is the *opcode* payload; the corpus prefix is added
 * internally), so pipelined callers inherit it for free.
 *
 * Not thread-safe; one WireClient per thread (connections are cheap).
 */

#include <cstdint>
#include <string>
#include <string_view>

#include "server/wire.h"

namespace dc::server {

/** Blocking wire-protocol client over one TCP connection. */
class WireClient
{
  public:
    /** One completed exchange. */
    struct Result {
        bool ok = false; ///< Transport-level success (frame received).
        Status status = Status::kError;
        std::string payload;
        std::string error; ///< Transport error when !ok.
    };

    WireClient() = default;
    ~WireClient();

    WireClient(const WireClient &) = delete;
    WireClient &operator=(const WireClient &) = delete;
    /// Movable: a connection is a handle (the source is left
    /// disconnected).
    WireClient(WireClient &&other) noexcept;
    WireClient &operator=(WireClient &&other) noexcept;

    /** Connect to @p host:@p port. */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string *error = nullptr);
    void close();
    bool connected() const { return fd_ >= 0; }

    /**
     * Scope subsequent single-corpus requests to @p corpus_id
     * ("" = the server's default corpus). Takes effect on the next
     * request; in-flight pipelined frames keep their original scope.
     */
    void setCorpus(std::string corpus_id) {
        corpus_ = std::move(corpus_id);
    }
    const std::string &corpus() const { return corpus_; }

    /**
     * One request/response exchange. With @p deadline_ms > 0 the
     * deadline rides the frame header (the server's cancellation
     * token) and bounds the local wait at deadline_ms + grace.
     */
    Result call(Opcode opcode, std::uint16_t flags,
                std::string_view payload, std::uint32_t deadline_ms = 0);

    // ------------------------------------------------ conveniences
    Result ping(std::string_view payload);
    /** @p durable: ack only after the run is stored and log-durable. */
    Result ingest(const std::string &run_id, std::string_view text,
                  bool durable = false, std::uint32_t deadline_ms = 0);
    Result erase(const std::string &run_id);
    Result topKernels(std::uint32_t k, const std::string &metric,
                      const service::QueryFilter &filter,
                      std::vector<KernelRow> *rows,
                      std::uint32_t deadline_ms = 0);
    /** Result payload: the merged profile, serialized. */
    Result merged(const service::QueryFilter &filter,
                  std::uint32_t deadline_ms = 0);
    Result diff(const std::string &run_a, const std::string &run_b,
                const service::QueryFilter &filter = {},
                std::uint32_t deadline_ms = 0);
    Result flameGraph(const std::string &metric = "",
                      const service::QueryFilter &filter = {},
                      std::uint32_t deadline_ms = 0);
    /** Result payload: key=value lines. */
    Result stats();

    // --------------------------------------- corpus lifecycle (v2)
    Result corpusCreate(const std::string &corpus_id);
    Result corpusOpen(const std::string &corpus_id);
    Result corpusClose(const std::string &corpus_id);
    Result corpusDrop(const std::string &corpus_id);
    Result corpusList(std::vector<CorpusInfo> *corpora);

    // --------------------------------------- federated queries (v2)
    Result federatedTopKernels(const std::vector<std::string> &corpora,
                               std::uint32_t k,
                               const std::string &metric,
                               const service::QueryFilter &filter,
                               std::vector<KernelRow> *rows,
                               std::uint32_t deadline_ms = 0);
    /** Result payload: the federated merged profile, serialized. */
    Result federatedMerged(const std::vector<std::string> &corpora,
                           const service::QueryFilter &filter = {},
                           std::uint32_t deadline_ms = 0);
    Result federatedDiff(const std::vector<std::string> &corpora_a,
                         const std::vector<std::string> &corpora_b,
                         const service::QueryFilter &filter = {},
                         std::uint32_t deadline_ms = 0);
    Result federatedFlame(const std::vector<std::string> &corpora,
                          const std::string &metric = "",
                          const service::QueryFilter &filter = {},
                          std::uint32_t deadline_ms = 0);

    // ------------------------------------------------ raw pipelining
    /**
     * Queue one request frame without waiting for its response.
     * @p request_id (optional out) receives the id to match replies.
     * @p payload is the opcode payload; single-corpus opcodes get the
     * corpus prefix (setCorpus) added here.
     */
    bool send(Opcode opcode, std::uint16_t flags,
              std::string_view payload, std::uint32_t deadline_ms = 0,
              std::uint64_t *request_id = nullptr);

    /**
     * Receive the next response frame (arrival order, which under
     * pipelining may differ from send order — match request_id).
     * @p timeout_ms < 0 waits forever; 0 polls. Returns false on
     * timeout, EOF, or a framing violation.
     */
    bool recv(Frame *out, int timeout_ms = -1,
              std::string *error = nullptr);

    /** Write raw bytes on the socket (fuzz/hostile-input tests). */
    bool sendRaw(std::string_view bytes);

  private:
    int fd_ = -1;
    std::uint64_t next_id_ = 1;
    std::string inbuf_;
    std::string corpus_; ///< "" = the server's default corpus.
};

} // namespace dc::server

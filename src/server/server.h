#pragma once

/**
 * @file
 * The warehouse's wire front end: a POSIX socket listener serving the
 * framed protocol (wire.h) over a ProfileStore + QueryEngine.
 *
 * Threading model — one epoll I/O thread plus a small worker pool:
 *
 *  - The I/O thread owns every socket. It accepts connections,
 *    reads/decodes frames, writes queued responses, and enforces the
 *    connection-level robustness rules: bounded per-connection read
 *    and write buffers, idle read timeouts, and write-stall timeouts,
 *    so one slow-loris or non-reading peer can neither pin memory nor
 *    hold a file descriptor forever.
 *
 *  - Decoded requests pass admission control *on the I/O thread*: past
 *    the global pending-request high watermark (queued + executing) or
 *    the per-connection pipeline cap, the request is immediately
 *    answered OVERLOADED — an explicit shed the client can back off
 *    on, never a silently growing queue. Admitted requests go to a
 *    bounded work queue drained by the worker threads.
 *
 *  - Workers execute requests against the store/engine. A request
 *    whose frame carried deadline_ms gets a service::ScopedDeadline
 *    for its execution: the query path's cold rebuilds poll the token
 *    and abandon work past the deadline, and any request observed past
 *    its deadline is answered DEADLINE_EXCEEDED (note: for mutations
 *    this means "answer too late", not "not applied" — an ingest may
 *    have committed before the deadline passed). Responses are queued
 *    on the connection's bounded outbox and flushed by the I/O thread.
 *
 *  - Ingest is asynchronous by default (accepted = queued on the
 *    store's worker pool, backpressure included). With kFlagDurable
 *    the worker waits for the store to drain and acks only a run that
 *    is stored and — on a durable store — covered by a healthy log:
 *    the ack protocol the server crash-torture mode replays against.
 *
 * Graceful drain (drain(), or SIGTERM in tool_warehouse_server): stop
 * accepting, answer new frames SHUTTING_DOWN, let in-flight requests
 * finish (bounded by drain_timeout_ms), drain the store's ingestion
 * queue so every acked run reaches the WAL, flush outboxes, then shut
 * down. Failpoint sites srv.accept / srv.read / srv.write /
 * srv.frame.decode cover every socket edge so the fault-injection
 * machinery can torture connections deterministically.
 *
 * **Serving modes.** A server fronts either one store + engine (the
 * legacy single-corpus constructor) or a WarehouseManager (the
 * multi-corpus constructor). In manager mode every single-corpus
 * request is routed by its v2 corpus prefix — a v1 frame (or an empty
 * corpus id) addresses ServerOptions::default_corpus, auto-created on
 * first touch so old clients keep working — and the corpus-lifecycle
 * and federated opcodes come alive. A request holds its corpus's
 * refcounted handle for the duration of execution, so a concurrent
 * close/LRU-evict/drop drains behind in-flight queries instead of
 * racing them.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/wire.h"
#include "service/deadline.h"
#include "service/profile_store.h"
#include "service/query_engine.h"
#include "service/warehouse_manager.h"

namespace dc::server {

/** Tuning and robustness bounds for a WireServer. */
struct ServerOptions {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral (see WireServer::port()).
    /// Request-execution worker threads.
    std::size_t workers = 2;
    /// Connections beyond this are accepted and immediately closed.
    std::size_t max_connections = 256;
    /// Global admission high watermark: queued + executing requests
    /// beyond this are shed with OVERLOADED.
    std::size_t max_pending = 128;
    /// Per-connection pipeline cap, same shed behavior.
    std::size_t max_conn_pending = 32;
    /// Largest accepted frame payload (decode rejects beyond this
    /// before allocating).
    std::uint64_t max_frame_bytes = kDefaultMaxPayload;
    /// Per-connection outbox bound; a peer that stops reading past
    /// this many unsent bytes is disconnected.
    std::uint64_t max_outbuf_bytes = 2 * kDefaultMaxPayload;
    /// Close a connection with no complete frame activity for this
    /// long (slow-loris defense; also reaps dead peers).
    std::uint64_t idle_timeout_ms = 30'000;
    /// Close a connection whose outbox has made no progress for this
    /// long (non-reading peer).
    std::uint64_t write_stall_timeout_ms = 10'000;
    /// drain(): how long to wait for in-flight requests and unflushed
    /// outboxes before giving up and shedding them.
    std::uint64_t drain_timeout_ms = 5'000;
    /// Corpus a request without a corpus id (v1 frames, empty v2
    /// prefix) addresses. In manager mode it is created on first
    /// touch; in single-corpus mode it aliases the one store.
    std::string default_corpus = "default";
};

/** Monotonic server counters (see also the server.* obs metrics). */
struct ServerStats {
    std::uint64_t accepted = 0; ///< Connections accepted.
    std::uint64_t active_connections = 0;
    std::uint64_t requests = 0;  ///< Admitted to the work queue.
    std::uint64_t responses = 0; ///< Frames queued for send (all
                                 ///< statuses, shed included).
    std::uint64_t shed = 0;      ///< OVERLOADED responses.
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t bad_frames = 0;   ///< Framing violations (conn dropped).
    std::uint64_t closed_idle = 0;  ///< Idle-timeout disconnects.
    std::uint64_t closed_stalled = 0; ///< Write-stall/outbox-bound
                                      ///< disconnects.
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
};

/** Framed-protocol server over one warehouse. */
class WireServer
{
  public:
    /**
     * Single-corpus server: @p store is the mutation target
     * (ingest/erase); @p engine the query frontend over it. Both must
     * outlive the server. Corpus-lifecycle and federated opcodes
     * answer BAD_REQUEST in this mode.
     */
    WireServer(service::ProfileStore &store,
               const service::QueryEngine &engine,
               ServerOptions options = {});
    /**
     * Multi-corpus server over @p manager (must outlive the server):
     * requests route by their corpus prefix, lifecycle + federated
     * opcodes are served, and ServerOptions::default_corpus is
     * auto-created for v1 peers.
     */
    explicit WireServer(service::WarehouseManager &manager,
                        ServerOptions options = {});
    ~WireServer(); ///< drain() + stop().

    WireServer(const WireServer &) = delete;
    WireServer &operator=(const WireServer &) = delete;

    /** Bind, listen, and start the I/O + worker threads. */
    bool start(std::string *error = nullptr);

    /** The bound port (after start(); resolves port 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Graceful drain: stop accepting, shed new frames with
     * SHUTTING_DOWN, wait (bounded) for in-flight requests, drain the
     * store's ingestion queue so acked runs are WAL-durable, flush
     * outboxes, then stop the threads. Idempotent.
     */
    void drain();

    /** Hard stop: close everything and join the threads. Idempotent. */
    void stop();

    bool running() const { return running_.load(); }
    bool draining() const { return draining_.load(); }

    ServerStats stats() const;

  private:
    struct Conn {
        int fd = -1;
        std::string inbuf;
        std::uint64_t last_active_ns = 0;
        /// obs::nowNs() when the outbox last failed to fully flush;
        /// 0 = not write-blocked.
        std::uint64_t write_blocked_ns = 0;
        bool want_write = false; ///< EPOLLOUT currently armed.
        std::atomic<int> pending{0};
        std::atomic<bool> closed{false};

        std::mutex out_mutex;
        std::string outbuf; ///< Unsent response bytes (offset below).
        std::size_t out_off = 0;
    };

    struct Work {
        std::shared_ptr<Conn> conn;
        Frame frame;
        service::Deadline deadline;
    };

    void ioLoop();
    void workerLoop();
    void doAccept();
    /// Read available bytes and dispatch complete frames. Returns
    /// false when the connection must close.
    bool readConn(const std::shared_ptr<Conn> &conn);
    /// Admission control + enqueue (or immediate shed response).
    void dispatch(const std::shared_ptr<Conn> &conn, Frame frame);
    /// Queue a response frame on @p conn (any thread).
    void respond(const std::shared_ptr<Conn> &conn,
                 std::uint64_t request_id, Status status,
                 std::string_view payload);
    /// Flush @p conn's outbox (I/O thread only). Returns false when
    /// the connection must close.
    bool flushConn(const std::shared_ptr<Conn> &conn);
    void closeConn(int fd);
    /// Idle/write-stall sweep (I/O thread).
    void sweepTimeouts();
    /// Arm/disarm EPOLLOUT for @p conn (I/O thread).
    void updateEpoll(const std::shared_ptr<Conn> &conn);

    /// The store/engine one request executes against. `handle` pins a
    /// managed corpus for the request's duration: a concurrent
    /// close/evict/drop waits for it to drop (warehouse_manager.h).
    struct Target {
        service::ProfileStore *store = nullptr;
        const service::QueryEngine *engine = nullptr;
        service::CorpusHandle handle;
    };

    /// Map a request's corpus id to its target ("" = default corpus).
    Status resolveTarget(const std::string &corpus_id, Target *target,
                         std::string *payload);

    /// Execute one admitted request; fills status + response payload.
    Status execute(const Work &work, std::string *payload);
    Status executeIngest(const Target &target,
                         std::string_view op_payload,
                         std::uint16_t flags, std::string *payload);
    /// Corpus-lifecycle and federated opcodes (manager mode only).
    Status executeManager(const Work &work, std::string *payload);
    std::string statsPayload(const Target &target);

    /// Exactly one of manager_ or (store_, engine_) is set.
    service::WarehouseManager *manager_ = nullptr;
    service::ProfileStore *store_ = nullptr;
    const service::QueryEngine *engine_ = nullptr;
    ServerOptions options_;

    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int wake_fd_ = -1; ///< eventfd: workers wake the I/O thread.
    std::uint16_t port_ = 0;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> draining_{false};
    /// "Every outbox fully flushed" — published by the I/O thread each
    /// loop iteration, polled by drain()'s final wait.
    std::atomic<bool> flushed_all_{true};

    /// I/O-thread-owned connection table.
    std::map<int, std::shared_ptr<Conn>> conns_;

    /// Queued + executing requests (admission watermark).
    std::atomic<int> pending_{0};

    std::mutex work_mutex_;
    std::condition_variable work_cv_;
    std::condition_variable drain_cv_; ///< pending_ hit 0.
    std::deque<Work> work_;

    /// Connections with fresh outbox bytes, queued by workers for the
    /// I/O thread to flush.
    std::mutex flush_mutex_;
    std::vector<std::shared_ptr<Conn>> flush_queue_;

    mutable std::mutex stats_mutex_;
    ServerStats stats_;

    std::thread io_thread_;
    std::vector<std::thread> workers_;
};

} // namespace dc::server

#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/executor.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics_registry.h"
#include "obs/trace_span.h"
#include "profiler/metrics.h"

namespace dc::server {

namespace {

// Socket fault edges: one site per syscall family, so the PR 7
// machinery can inject accept failures, read/write errors, EAGAIN
// storms (srv.write=torn(N):every=K), and framing poison
// deterministically.
failpoint::Site s_fp_accept{"srv.accept"};
failpoint::Site s_fp_read{"srv.read"};
failpoint::Site s_fp_write{"srv.write"};
failpoint::Site s_fp_decode{"srv.frame.decode"};
/// Worker-side site: a delay() here stalls request execution, which is
/// how the overload and deadline tests make "slow request"
/// deterministic instead of racing a real cold rebuild.
failpoint::Site s_fp_exec{"srv.exec"};

obs::SpanSite s_request_span{"server.request", 4};

obs::Counter &
shedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("server.shed");
    return counter;
}

obs::Counter &
deadlineCounter()
{
    static obs::Counter counter = obs::MetricsRegistry::global().counter(
        "server.deadline_exceeded");
    return counter;
}

obs::Counter &
connOpenedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("server.conn.opened");
    return counter;
}

obs::Counter &
connClosedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("server.conn.closed");
    return counter;
}

obs::Counter &
badFrameCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("server.bad_frame");
    return counter;
}

/// Distribution of concurrently-active connections, recorded at every
/// open/close transition (counters are monotonic; the level lives
/// here and in ServerStats::active_connections).
obs::Histogram &
connActiveHistogram()
{
    static obs::Histogram histogram =
        obs::MetricsRegistry::global().histogram("server.conn.active");
    return histogram;
}

bool
validOpcode(std::uint8_t kind)
{
    return kind >= static_cast<std::uint8_t>(Opcode::kPing) &&
           kind <= static_cast<std::uint8_t>(Opcode::kFederatedFlame);
}

void
clampOptions(ServerOptions &options)
{
    options.workers = std::max<std::size_t>(options.workers, 1);
    options.max_conn_pending =
        std::max<std::size_t>(options.max_conn_pending, 1);
    options.max_pending = std::max<std::size_t>(options.max_pending, 1);
}

} // namespace

WireServer::WireServer(service::ProfileStore &store,
                       const service::QueryEngine &engine,
                       ServerOptions options)
    : store_(&store), engine_(&engine), options_(std::move(options))
{
    clampOptions(options_);
}

WireServer::WireServer(service::WarehouseManager &manager,
                       ServerOptions options)
    : manager_(&manager), options_(std::move(options))
{
    clampOptions(options_);
}

WireServer::~WireServer()
{
    drain();
    stop();
}

bool
WireServer::start(std::string *error)
{
    const auto fail = [&](const char *what) {
        if (error != nullptr)
            *error = std::string(what) + ": " + std::strerror(errno);
        if (listen_fd_ >= 0)
            ::close(listen_fd_);
        if (epoll_fd_ >= 0)
            ::close(epoll_fd_);
        if (wake_fd_ >= 0)
            ::close(wake_fd_);
        listen_fd_ = epoll_fd_ = wake_fd_ = -1;
        return false;
    };
    if (running_.load()) {
        if (error != nullptr)
            *error = "server already running";
        return false;
    }

    listen_fd_ = ::socket(AF_INET,
                          SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0)
        return fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    struct ::sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
        1) {
        errno = EINVAL;
        return fail("bad host address");
    }
    if (::bind(listen_fd_, reinterpret_cast<struct ::sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        return fail("bind");
    }
    if (::listen(listen_fd_, 128) != 0)
        return fail("listen");
    struct ::sockaddr_in bound {};
    ::socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<struct ::sockaddr *>(&bound),
                      &bound_len) != 0) {
        return fail("getsockname");
    }
    port_ = ntohs(bound.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0)
        return fail("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0)
        return fail("eventfd");

    struct ::epoll_event ev {};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0)
        return fail("epoll_ctl(listen)");
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0)
        return fail("epoll_ctl(wake)");

    stopping_.store(false);
    draining_.store(false);
    running_.store(true);
    io_thread_ = std::thread([this] { ioLoop(); });
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    DC_INFORM("wire server listening on ", options_.host, ":", port_);
    return true;
}

void
WireServer::drain()
{
    if (!running_.load() || stopping_.load())
        return;
    draining_.store(true);
    // Wake the I/O thread so it deregisters the listener promptly.
    std::uint64_t tick = 1;
    (void)!::write(wake_fd_, &tick, sizeof(tick));

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_timeout_ms);
    {
        // Let in-flight (admitted) requests finish, bounded.
        std::unique_lock<std::mutex> lock(work_mutex_);
        drain_cv_.wait_until(lock, deadline, [this] {
            return pending_.load() == 0;
        });
        // Past the budget: shed whatever is still queued (executing
        // requests cannot be interrupted; their deadline token is the
        // bound on those).
        while (!work_.empty()) {
            Work work = std::move(work_.front());
            work_.pop_front();
            lock.unlock();
            respond(work.conn, work.frame.request_id,
                    Status::kShuttingDown, "draining");
            work.conn->pending.fetch_sub(1);
            pending_.fetch_sub(1);
            lock.lock();
        }
    }
    // Every acked ingest is already on its store's queue (or done);
    // drain so the WALs hold them all before the process exits.
    if (manager_ != nullptr)
        manager_->waitIdle();
    else
        store_->waitIdle();
    // Give unflushed outboxes a chance to reach their peers.
    while (std::chrono::steady_clock::now() < deadline) {
        if (flushed_all_.load())
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

void
WireServer::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    {
        std::lock_guard<std::mutex> lock(work_mutex_);
    }
    work_cv_.notify_all();
    drain_cv_.notify_all();
    std::uint64_t tick = 1;
    (void)!::write(wake_fd_, &tick, sizeof(tick));
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    if (io_thread_.joinable())
        io_thread_.join();
    if (epoll_fd_ >= 0)
        ::close(epoll_fd_);
    if (wake_fd_ >= 0)
        ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    running_.store(false);
}

ServerStats
WireServer::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

void
WireServer::ioLoop()
{
    bool listener_armed = true;
    std::vector<struct ::epoll_event> events(64);
    while (!stopping_.load()) {
        if (draining_.load() && listener_armed) {
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
            listener_armed = false;
        }
        const int n = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()), 50);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            DC_WARN("epoll_wait failed: ", std::strerror(errno));
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == listen_fd_) {
                doAccept();
                continue;
            }
            if (fd == wake_fd_) {
                std::uint64_t drainv;
                while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
                }
                std::vector<std::shared_ptr<Conn>> dirty;
                {
                    std::lock_guard<std::mutex> lock(flush_mutex_);
                    dirty.swap(flush_queue_);
                }
                for (const std::shared_ptr<Conn> &conn : dirty) {
                    if (conn->closed.load())
                        continue;
                    if (!flushConn(conn))
                        closeConn(conn->fd);
                    else
                        updateEpoll(conn);
                }
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            const std::shared_ptr<Conn> conn = it->second;
            bool alive = true;
            if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0)
                alive = false;
            if (alive && (events[i].events & EPOLLIN) != 0)
                alive = readConn(conn);
            if (alive && (events[i].events & EPOLLOUT) != 0) {
                alive = flushConn(conn);
                if (alive)
                    updateEpoll(conn);
            }
            if (!alive)
                closeConn(fd);
        }
        sweepTimeouts();
        // Publish "every outbox flushed" for drain()'s final wait.
        bool flushed = true;
        for (const auto &[fd, conn] : conns_) {
            std::lock_guard<std::mutex> lock(conn->out_mutex);
            if (conn->out_off < conn->outbuf.size()) {
                flushed = false;
                break;
            }
        }
        flushed_all_.store(flushed);
    }
    // Teardown on the owning thread: close every connection socket.
    for (const auto &[fd, conn] : conns_) {
        conn->closed.store(true);
        ::close(fd);
    }
    conns_.clear();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
WireServer::doAccept()
{
    for (;;) {
        const failpoint::Eval fp = s_fp_accept.eval();
        if (fp.action == failpoint::Action::kError) {
            // Injected accept failure: drop this readiness round; the
            // pending connection stays in the backlog.
            return;
        }
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or transient accept error: next round.
        }
        if (draining_.load() ||
            conns_.size() >= options_.max_connections) {
            // Beyond capacity there is no protocol-level way to say
            // so before a frame arrives; a prompt close is the shed.
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->last_active_ns = obs::nowNs();
        struct ::epoll_event ev {};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        conns_.emplace(fd, std::move(conn));
        connOpenedCounter().add();
        connActiveHistogram().record(conns_.size());
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.accepted;
        stats_.active_connections = conns_.size();
    }
}

bool
WireServer::readConn(const std::shared_ptr<Conn> &conn)
{
    char chunk[64 * 1024];
    for (;;) {
        const failpoint::Eval fp = s_fp_read.eval();
        if (fp.action == failpoint::Action::kError)
            return false; // injected read error: connection dies
        const ::ssize_t got =
            ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (got == 0)
            return false; // orderly EOF
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            return false;
        }
        conn->inbuf.append(chunk, static_cast<std::size_t>(got));
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            stats_.bytes_in += static_cast<std::uint64_t>(got);
        }
        if (static_cast<std::size_t>(got) < sizeof(chunk))
            break;
    }

    // Consume every complete frame in the buffer.
    std::size_t offset = 0;
    bool ok = true;
    while (ok) {
        const std::string_view rest =
            std::string_view(conn->inbuf).substr(offset);
        if (rest.empty())
            break;
        const failpoint::Eval fp = s_fp_decode.eval();
        Frame frame;
        std::size_t consumed = 0;
        std::string error;
        DecodeResult result = DecodeResult::kBad;
        if (fp.action == failpoint::Action::kError)
            error = "injected decode failure";
        else
            result = decodeFrame(rest, options_.max_frame_bytes, &frame,
                                 &consumed, &error);
        if (result == DecodeResult::kNeedMore)
            break;
        if (result == DecodeResult::kBad) {
            badFrameCounter().add();
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.bad_frames;
            }
            // Best-effort rejection, then drop the connection — after
            // a framing violation the stream offset is untrusted.
            respond(conn, frame.request_id, Status::kBadRequest, error);
            (void)flushConn(conn);
            ok = false;
            break;
        }
        offset += consumed;
        conn->last_active_ns = obs::nowNs();
        dispatch(conn, std::move(frame));
    }
    if (offset > 0)
        conn->inbuf.erase(0, offset);
    // Defense in depth: decodeFrame bounds payloads, so a buffer past
    // header+max can only mean a decode-state bug. Fail closed.
    if (conn->inbuf.size() >
        kFrameHeaderSize + options_.max_frame_bytes + sizeof(chunk)) {
        return false;
    }
    return ok;
}

void
WireServer::dispatch(const std::shared_ptr<Conn> &conn, Frame frame)
{
    if (!validOpcode(frame.kind)) {
        respond(conn, frame.request_id, Status::kBadRequest,
                "unknown opcode");
        return;
    }
    if (draining_.load()) {
        respond(conn, frame.request_id, Status::kShuttingDown,
                "draining");
        return;
    }
    // Admission control: past the global high watermark or the
    // connection's pipeline cap, shed *now* with an explicit
    // OVERLOADED — the queue must never grow past the watermark.
    if (pending_.load() >=
            static_cast<int>(options_.max_pending) ||
        conn->pending.load() >=
            static_cast<int>(options_.max_conn_pending)) {
        shedCounter().add();
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.shed;
        }
        respond(conn, frame.request_id, Status::kOverloaded,
                "overloaded");
        return;
    }
    pending_.fetch_add(1);
    conn->pending.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests;
    }
    Work work;
    work.conn = conn;
    if (frame.deadline_ms > 0)
        work.deadline = service::Deadline::afterMs(frame.deadline_ms);
    work.frame = std::move(frame);
    {
        std::lock_guard<std::mutex> lock(work_mutex_);
        work_.push_back(std::move(work));
    }
    work_cv_.notify_one();
}

void
WireServer::workerLoop()
{
    for (;;) {
        Work work;
        {
            std::unique_lock<std::mutex> lock(work_mutex_);
            work_cv_.wait(lock, [this] {
                return stopping_.load() || !work_.empty();
            });
            if (stopping_.load())
                return;
            work = std::move(work_.front());
            work_.pop_front();
        }
        obs::ObsSpan span(s_request_span, work.frame.kind);

        Status status = Status::kError;
        std::string payload;
        if (work.conn->closed.load()) {
            // Peer is gone; skip execution, just release the slots.
            status = Status::kError;
        } else if (work.deadline.expired()) {
            status = Status::kDeadlineExceeded;
        } else {
            service::ScopedDeadline scope(work.deadline);
            status = execute(work, &payload);
            // A response past its deadline is useless to the caller
            // regardless of content; report the timeout. For
            // mutations this means "too late", not "not applied".
            if (work.deadline.expired()) {
                status = Status::kDeadlineExceeded;
                payload.clear();
            }
        }
        if (status == Status::kDeadlineExceeded) {
            deadlineCounter().add();
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.deadline_exceeded;
        }
        if (!work.conn->closed.load())
            respond(work.conn, work.frame.request_id, status, payload);
        work.conn->pending.fetch_sub(1);
        if (pending_.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> lock(work_mutex_);
            drain_cv_.notify_all();
        }
    }
}

Status
WireServer::resolveTarget(const std::string &corpus_id, Target *target,
                          std::string *payload)
{
    if (manager_ == nullptr) {
        // Single-corpus server: the one store answers to the default
        // corpus name (and to no name at all).
        if (!corpus_id.empty() &&
            corpus_id != options_.default_corpus) {
            *payload = "unknown corpus '" + corpus_id +
                       "' (single-corpus server)";
            return Status::kNotFound;
        }
        target->store = store_;
        target->engine = engine_;
        return Status::kOk;
    }
    const std::string &id =
        corpus_id.empty() ? options_.default_corpus : corpus_id;
    std::string error;
    service::CorpusHandle handle = manager_->open(id, &error);
    if (handle == nullptr && id == options_.default_corpus) {
        // v1 peers know nothing of corpora; the default one springs
        // into being on first touch so they keep working unchanged.
        handle = manager_->create(id, &error);
        if (handle == nullptr) // lost a create race
            handle = manager_->open(id, &error);
    }
    if (handle == nullptr) {
        *payload = error.empty() ? "unknown corpus" : error;
        return Status::kNotFound;
    }
    target->store = &handle->store;
    target->engine = &handle->engine;
    target->handle = std::move(handle);
    return Status::kOk;
}

Status
WireServer::execute(const Work &work, std::string *payload)
{
    // delay(ms) sleeps inside eval(); other actions are meaningless
    // here and deliberately ignored.
    (void)s_fp_exec.eval();
    const Frame &frame = work.frame;
    if (frame.opcode() == Opcode::kPing) {
        *payload = frame.payload; // raw in every version
        return Status::kOk;
    }
    if (frame.kind >= static_cast<std::uint8_t>(Opcode::kCorpusCreate))
        return executeManager(work, payload);

    // Single-corpus opcodes: strip the v2 corpus prefix (v1 frames
    // address the default corpus with their whole payload) and pin
    // the target corpus for the request's duration.
    std::string corpus_id;
    std::string_view op_payload;
    if (!splitCorpusScoped(frame, &corpus_id, &op_payload)) {
        *payload = "bad corpus prefix";
        return Status::kBadRequest;
    }
    Target target;
    const Status resolved = resolveTarget(corpus_id, &target, payload);
    if (resolved != Status::kOk)
        return resolved;
    service::ProfileStore &store = *target.store;
    const service::QueryEngine &engine = *target.engine;

    switch (frame.opcode()) {
    case Opcode::kIngest:
        return executeIngest(target, op_payload, frame.flags, payload);
    case Opcode::kErase: {
        WireReader reader(op_payload);
        const std::string run_id = reader.str();
        if (!reader.done() || run_id.empty()) {
            *payload = "bad erase payload";
            return Status::kBadRequest;
        }
        return store.erase(run_id) ? Status::kOk : Status::kNotFound;
    }
    case Opcode::kTopKernels: {
        std::uint32_t k = 0;
        std::string metric;
        service::QueryFilter filter;
        if (!decodeTopKernelsRequest(op_payload, &k, &metric,
                                     &filter)) {
            *payload = "bad topKernels payload";
            return Status::kBadRequest;
        }
        if (metric.empty())
            metric = prof::metric_names::kGpuTime;
        const std::vector<service::KernelAggregate> top =
            engine.topKernels(k, filter, metric);
        std::vector<KernelRow> rows;
        rows.reserve(top.size());
        for (const service::KernelAggregate &agg : top) {
            rows.push_back(KernelRow{agg.name, agg.total, agg.samples,
                                     static_cast<std::uint32_t>(
                                         agg.runs)});
        }
        *payload = encodeKernelRows(rows);
        return Status::kOk;
    }
    case Opcode::kMerged: {
        WireReader reader(op_payload);
        const service::QueryFilter filter = readFilter(reader);
        if (!reader.done()) {
            *payload = "bad merged payload";
            return Status::kBadRequest;
        }
        const std::shared_ptr<const prof::ProfileDb> merged =
            engine.merged(filter);
        if (merged == nullptr) {
            // The only null path is a deadline-abandoned rebuild; the
            // caller maps it below via the post-execute deadline check.
            *payload = "merge abandoned";
            return Status::kDeadlineExceeded;
        }
        *payload = merged->serialize();
        return Status::kOk;
    }
    case Opcode::kDiff: {
        std::string run_a, run_b;
        service::QueryFilter filter;
        if (!decodeDiffRequest(op_payload, &run_a, &run_b, &filter)) {
            *payload = "bad diff payload";
            return Status::kBadRequest;
        }
        std::optional<analysis::ProfileComparison> diff;
        if (run_b.empty())
            diff = engine.diffAgainstCorpus(run_a, filter);
        else
            diff = engine.diffRuns(run_a, run_b);
        if (!diff.has_value()) {
            if (work.deadline.expired())
                return Status::kDeadlineExceeded;
            *payload = "unknown run id (or empty corpus)";
            return Status::kNotFound;
        }
        *payload =
            diff->toString(run_a, run_b.empty() ? "corpus" : run_b);
        return Status::kOk;
    }
    case Opcode::kFlameGraph: {
        std::string metric;
        service::QueryFilter filter;
        if (!decodeFlameRequest(op_payload, &metric, &filter)) {
            *payload = "bad flame payload";
            return Status::kBadRequest;
        }
        gui::FlameGraphOptions options;
        if (!metric.empty())
            options.metric = metric;
        const std::shared_ptr<const gui::FlameNode> flame =
            engine.flameGraph(filter, options);
        if (flame == nullptr) {
            *payload = "flame rebuild abandoned";
            return Status::kDeadlineExceeded;
        }
        *payload = gui::FlameGraph::toHtml(*flame, "warehouse");
        return Status::kOk;
    }
    case Opcode::kStats:
        *payload = statsPayload(target);
        return Status::kOk;
    default:
        break;
    }
    *payload = "unknown opcode";
    return Status::kBadRequest;
}

Status
WireServer::executeManager(const Work &work, std::string *payload)
{
    if (manager_ == nullptr) {
        *payload = "corpus operations need a multi-corpus server";
        return Status::kBadRequest;
    }
    const Frame &frame = work.frame;
    std::string error;
    // Map a failed federated query: a deadline expiry is reported as
    // such (the post-execute check would catch it anyway); anything
    // else is an unknown corpus.
    const auto failed = [&]() {
        if (work.deadline.expired())
            return Status::kDeadlineExceeded;
        *payload = error.empty() ? "federated query failed" : error;
        return Status::kNotFound;
    };
    switch (frame.opcode()) {
    case Opcode::kCorpusCreate: {
        std::string id;
        if (!decodeCorpusRequest(frame.payload, &id)) {
            *payload = "bad corpus payload";
            return Status::kBadRequest;
        }
        if (manager_->create(id, &error) == nullptr) {
            *payload = error;
            return Status::kError;
        }
        return Status::kOk;
    }
    case Opcode::kCorpusOpen: {
        std::string id;
        if (!decodeCorpusRequest(frame.payload, &id)) {
            *payload = "bad corpus payload";
            return Status::kBadRequest;
        }
        if (manager_->open(id, &error) == nullptr) {
            *payload = error;
            return Status::kNotFound;
        }
        return Status::kOk;
    }
    case Opcode::kCorpusClose: {
        std::string id;
        if (!decodeCorpusRequest(frame.payload, &id)) {
            *payload = "bad corpus payload";
            return Status::kBadRequest;
        }
        if (!manager_->close(id)) {
            *payload = "corpus '" + id + "' is not open";
            return Status::kNotFound;
        }
        return Status::kOk;
    }
    case Opcode::kCorpusDrop: {
        std::string id;
        if (!decodeCorpusRequest(frame.payload, &id)) {
            *payload = "bad corpus payload";
            return Status::kBadRequest;
        }
        if (!manager_->drop(id, &error)) {
            *payload = error;
            return Status::kNotFound;
        }
        return Status::kOk;
    }
    case Opcode::kCorpusList: {
        std::vector<CorpusInfo> infos;
        for (const std::string &id : manager_->corpusIds()) {
            CorpusInfo info;
            info.id = id;
            info.open = manager_->isOpen(id);
            if (info.open) {
                // Listing must not page in cold corpora; run counts
                // come from the open ones only.
                const service::CorpusHandle handle = manager_->open(id);
                if (handle != nullptr)
                    info.runs = handle->store.size();
            }
            infos.push_back(std::move(info));
        }
        *payload = encodeCorpusList(infos);
        return Status::kOk;
    }
    case Opcode::kFederatedTopKernels: {
        std::vector<std::string> corpora;
        std::uint32_t k = 0;
        std::string metric;
        service::QueryFilter filter;
        if (!decodeFederatedTopKernelsRequest(frame.payload, &corpora,
                                              &k, &metric, &filter)) {
            *payload = "bad federated topKernels payload";
            return Status::kBadRequest;
        }
        if (metric.empty())
            metric = prof::metric_names::kGpuTime;
        const std::optional<std::vector<service::KernelAggregate>> top =
            manager_->federatedTopKernels(corpora, k, filter, metric,
                                          &error);
        if (!top.has_value())
            return failed();
        std::vector<KernelRow> rows;
        rows.reserve(top->size());
        for (const service::KernelAggregate &agg : *top) {
            rows.push_back(KernelRow{agg.name, agg.total, agg.samples,
                                     static_cast<std::uint32_t>(
                                         agg.runs)});
        }
        *payload = encodeKernelRows(rows);
        return Status::kOk;
    }
    case Opcode::kFederatedMerged: {
        std::vector<std::string> corpora;
        service::QueryFilter filter;
        if (!decodeFederatedMergedRequest(frame.payload, &corpora,
                                          &filter)) {
            *payload = "bad federated merged payload";
            return Status::kBadRequest;
        }
        const std::shared_ptr<const prof::ProfileDb> merged =
            manager_->federatedMerged(corpora, filter, &error);
        if (merged == nullptr)
            return failed();
        *payload = merged->serialize();
        return Status::kOk;
    }
    case Opcode::kFederatedDiff: {
        std::vector<std::string> corpora_a, corpora_b;
        service::QueryFilter filter;
        if (!decodeFederatedDiffRequest(frame.payload, &corpora_a,
                                        &corpora_b, &filter)) {
            *payload = "bad federated diff payload";
            return Status::kBadRequest;
        }
        const std::optional<analysis::ProfileComparison> diff =
            manager_->federatedDiff(corpora_a, corpora_b, filter,
                                    &error);
        if (!diff.has_value())
            return failed();
        const auto label = [](const std::vector<std::string> &ids) {
            std::string out;
            for (const std::string &id : ids)
                out += (out.empty() ? "" : "+") + id;
            return out;
        };
        *payload = diff->toString(label(corpora_a), label(corpora_b));
        return Status::kOk;
    }
    case Opcode::kFederatedFlame: {
        std::vector<std::string> corpora;
        std::string metric;
        service::QueryFilter filter;
        if (!decodeFederatedFlameRequest(frame.payload, &corpora,
                                         &metric, &filter)) {
            *payload = "bad federated flame payload";
            return Status::kBadRequest;
        }
        gui::FlameGraphOptions options;
        if (!metric.empty())
            options.metric = metric;
        std::string html = manager_->federatedFlameHtml(
            "federated warehouse", corpora, filter, options, &error);
        if (html.empty())
            return failed();
        *payload = std::move(html);
        return Status::kOk;
    }
    default:
        break;
    }
    *payload = "unknown opcode";
    return Status::kBadRequest;
}

Status
WireServer::executeIngest(const Target &target,
                          std::string_view op_payload,
                          std::uint16_t flags, std::string *payload)
{
    service::ProfileStore &store = *target.store;
    std::string run_id, text;
    if (!decodeIngestRequest(op_payload, &run_id, &text)) {
        *payload = "bad ingest payload";
        return Status::kBadRequest;
    }
    const bool durable = (flags & kFlagDurable) != 0;
    store.ingestText(run_id, std::move(text));
    if (!durable)
        return Status::kOk; // accepted: queued on the store's pool
    // Durable ack: the run must be stored, and on a durable store the
    // log must be healthy (no unlogged runs, last append succeeded) —
    // only then is "acked" a promise a restart will keep.
    store.waitIdle();
    if (store.get(run_id) == nullptr) {
        *payload = "ingest rejected";
        for (const auto &[id, why] : store.failures()) {
            if (id == run_id)
                *payload = "ingest rejected: " + why;
        }
        return Status::kError;
    }
    if (store.log() != nullptr && !store.logHealthy()) {
        *payload = "stored but not durable: " + store.logError();
        return Status::kError;
    }
    return Status::kOk;
}

std::string
WireServer::statsPayload(const Target &target)
{
    const service::StoreStats store = target.store->stats();
    const service::CorpusView::Stats view =
        target.engine->corpusView().stats();
    ServerStats server = stats();
    std::string out;
    const auto put = [&out](std::string_view key, std::uint64_t value) {
        out += key;
        out += '=';
        out += std::to_string(value);
        out += '\n';
    };
    put("store.runs", target.store->size());
    put("store.ingested", store.ingested);
    put("store.failed", store.failed);
    put("store.recovered", store.recovered);
    put("store.interned_bytes", store.interned_bytes);
    put("store.log_healthy", target.store->logHealthy() ? 1 : 0);
    put("store.log_appends", store.log_appends);
    put("store.log_append_failures", store.log_append_failures);
    put("store.log_fsyncs", store.log_fsyncs);
    put("store.log_checkpoints", store.log_checkpoints);
    put("store.log_degraded", store.log_degraded);
    put("store.log_reattached", store.log_reattached);
    put("store.log_unlogged_runs", store.log_unlogged_runs);
    put("store.log_last_error_age_ns", store.log_last_error_age_ns);
    // Re-attach supervisor state: a remote operator can tell a
    // healthy store from one mid-backoff without shell access.
    put("store.log_degraded_since_ns", store.log_degraded_since_ns);
    put("store.log_reattach_attempts", store.log_reattach_attempts);
    put("store.log_reattach_backoff_ms", store.log_reattach_backoff_ms);
    put("store.log_reattach_next_retry_ns",
        store.log_reattach_next_retry_ns);
    put("view.hits", view.hits);
    put("view.incremental", view.incremental);
    put("view.rebuilds", view.rebuilds);
    put("view.evictions", view.evictions);
    put("server.accepted", server.accepted);
    put("server.active_connections", server.active_connections);
    put("server.requests", server.requests);
    put("server.responses", server.responses);
    put("server.shed", server.shed);
    put("server.deadline_exceeded", server.deadline_exceeded);
    put("server.bad_frames", server.bad_frames);
    put("server.closed_idle", server.closed_idle);
    put("server.closed_stalled", server.closed_stalled);
    put("server.bytes_in", server.bytes_in);
    put("server.bytes_out", server.bytes_out);
    // Shared-executor health: the pool every parallel site (merges,
    // view rebuilds, ingestion drains, federated legs) runs on. The
    // counters come from the executor's own atomics so they are live
    // even without DC_OBS; the latency quantiles need the obs
    // histograms and appear only when observability is on.
    const common::Executor::Stats exec =
        common::Executor::global().stats();
    put("exec.threads", exec.threads);
    put("exec.submitted", exec.submitted);
    put("exec.executed", exec.executed);
    put("exec.stolen", exec.stolen);
    put("exec.inline_run", exec.inline_run);
    put("exec.queued", exec.queued);
    if (obs::enabled()) {
        const obs::MetricsSnapshot snap =
            obs::MetricsRegistry::global().snapshot();
        const auto put_hist = [&put, &snap](std::string_view key,
                                            const char *name) {
            const obs::HistogramSnapshot *hist = snap.histogram(name);
            if (hist == nullptr || hist->count == 0)
                return;
            put(std::string(key) + ".p50", hist->p50);
            put(std::string(key) + ".p99", hist->p99);
        };
        put_hist("exec.wait_us", "exec.wait_us");
        put_hist("exec.run_us", "exec.run_us");
        put_hist("exec.queue_depth", "exec.queue_depth");
    }
    if (manager_ != nullptr) {
        // Manager-level counters, then one labeled line set per open
        // corpus — the per-corpus breakdown obs counters cannot carry
        // (the registry's name set is fixed; corpus ids are not).
        const service::ManagerStats mgr = manager_->stats();
        put("manager.open_corpora", mgr.open_corpora);
        put("manager.open_interned_bytes", mgr.open_interned_bytes);
        put("manager.created", mgr.created);
        put("manager.opened", mgr.opened);
        put("manager.closed", mgr.closed);
        put("manager.lru_closed", mgr.lru_closed);
        put("manager.dropped", mgr.dropped);
        put("manager.drain_waits", mgr.drain_waits);
        put("manager.federated", mgr.federated);
        for (const std::string &id : manager_->corpusIds()) {
            const bool open = manager_->isOpen(id);
            put("corpus." + id + ".open", open ? 1 : 0);
            if (!open)
                continue; // don't page in cold corpora for stats
            const service::CorpusHandle handle = manager_->open(id);
            if (handle == nullptr)
                continue;
            put("corpus." + id + ".runs", handle->store.size());
            put("corpus." + id + ".interned_bytes",
                handle->store.stats().interned_bytes);
        }
    }
    return out;
}

void
WireServer::respond(const std::shared_ptr<Conn> &conn,
                    std::uint64_t request_id, Status status,
                    std::string_view payload)
{
    const std::string frame =
        encodeFrame(static_cast<std::uint8_t>(status), 0, request_id,
                    0, payload);
    {
        std::lock_guard<std::mutex> lock(conn->out_mutex);
        if (conn->closed.load())
            return;
        conn->outbuf += frame;
    }
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.responses;
    }
    {
        std::lock_guard<std::mutex> lock(flush_mutex_);
        flush_queue_.push_back(conn);
    }
    flushed_all_.store(false);
    std::uint64_t tick = 1;
    (void)!::write(wake_fd_, &tick, sizeof(tick));
}

bool
WireServer::flushConn(const std::shared_ptr<Conn> &conn)
{
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    while (conn->out_off < conn->outbuf.size()) {
        std::size_t remaining = conn->outbuf.size() - conn->out_off;
        const failpoint::Eval fp = s_fp_write.eval();
        if (fp.action == failpoint::Action::kError)
            return false; // injected write error: mid-response kill
        bool force_block = false;
        if (fp.action == failpoint::Action::kShortWrite) {
            // Injected EAGAIN storm: let `arg` bytes through, then
            // behave as if the socket buffer filled.
            remaining = std::min<std::size_t>(remaining, fp.arg);
            force_block = true;
        }
        ::ssize_t sent = 0;
        if (remaining > 0) {
            sent = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                          remaining, MSG_NOSIGNAL);
            if (sent < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    if (conn->write_blocked_ns == 0)
                        conn->write_blocked_ns = obs::nowNs();
                    conn->want_write = true;
                    return true;
                }
                return false;
            }
            conn->out_off += static_cast<std::size_t>(sent);
            // Progress resets the stall clock (the timeout measures
            // "no bytes moved", not "response incomplete").
            conn->write_blocked_ns =
                conn->out_off < conn->outbuf.size() ? obs::nowNs() : 0;
            std::lock_guard<std::mutex> slock(stats_mutex_);
            stats_.bytes_out += static_cast<std::uint64_t>(sent);
        }
        if (force_block && conn->out_off < conn->outbuf.size()) {
            if (conn->write_blocked_ns == 0)
                conn->write_blocked_ns = obs::nowNs();
            conn->want_write = true;
            return true;
        }
    }
    conn->outbuf.clear();
    conn->out_off = 0;
    conn->write_blocked_ns = 0;
    conn->want_write = false;
    return true;
}

void
WireServer::updateEpoll(const std::shared_ptr<Conn> &conn)
{
    struct ::epoll_event ev {};
    ev.events =
        EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void
WireServer::closeConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    it->second->closed.store(true);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(it);
    connClosedCounter().add();
    connActiveHistogram().record(conns_.size());
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.active_connections = conns_.size();
}

void
WireServer::sweepTimeouts()
{
    const std::uint64_t now = obs::nowNs();
    const std::uint64_t idle_ns =
        options_.idle_timeout_ms * 1'000'000ull;
    const std::uint64_t stall_ns =
        options_.write_stall_timeout_ms * 1'000'000ull;
    std::vector<int> doomed;
    std::uint64_t idle_closed = 0, stall_closed = 0;
    for (const auto &[fd, conn] : conns_) {
        std::uint64_t outbuf_bytes, blocked_ns;
        {
            std::lock_guard<std::mutex> lock(conn->out_mutex);
            outbuf_bytes = conn->outbuf.size() - conn->out_off;
            blocked_ns = conn->write_blocked_ns;
        }
        if (outbuf_bytes > options_.max_outbuf_bytes ||
            (blocked_ns != 0 && now - blocked_ns > stall_ns)) {
            // Non-reading peer: its responses would pin memory
            // indefinitely. Cut it loose.
            doomed.push_back(fd);
            ++stall_closed;
            continue;
        }
        if (conn->pending.load() == 0 && outbuf_bytes == 0 &&
            now - conn->last_active_ns > idle_ns) {
            doomed.push_back(fd);
            ++idle_closed;
        }
    }
    for (int fd : doomed)
        closeConn(fd);
    if (idle_closed + stall_closed > 0) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.closed_idle += idle_closed;
        stats_.closed_stalled += stall_closed;
    }
}

} // namespace dc::server

#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dc::server {

namespace {

/// Extra wait past a request's deadline before the client gives up
/// locally: the server is allowed one work unit of overshoot plus the
/// response's flight time.
constexpr int kDeadlineGraceMs = 2'000;

} // namespace

WireClient::~WireClient()
{
    close();
}

WireClient::WireClient(WireClient &&other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_),
      inbuf_(std::move(other.inbuf_)),
      corpus_(std::move(other.corpus_))
{
    other.fd_ = -1;
}

WireClient &
WireClient::operator=(WireClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        next_id_ = other.next_id_;
        inbuf_ = std::move(other.inbuf_);
        corpus_ = std::move(other.corpus_);
        other.fd_ = -1;
    }
    return *this;
}

bool
WireClient::connect(const std::string &host, std::uint16_t port,
                    std::string *error)
{
    const auto fail = [&](const char *what) {
        if (error != nullptr)
            *error = std::string(what) + ": " + std::strerror(errno);
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
        return false;
    };
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        return fail("socket");
    struct ::sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("bad host address");
    }
    int rc;
    do {
        rc = ::connect(fd_,
                       reinterpret_cast<struct ::sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        return fail("connect");
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    inbuf_.clear();
    return true;
}

void
WireClient::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
    inbuf_.clear();
}

bool
WireClient::sendRaw(std::string_view bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ::ssize_t sent = ::send(fd_, bytes.data() + off,
                                      bytes.size() - off, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(sent);
    }
    return true;
}

bool
WireClient::send(Opcode opcode, std::uint16_t flags,
                 std::string_view payload, std::uint32_t deadline_ms,
                 std::uint64_t *request_id)
{
    if (fd_ < 0)
        return false;
    const std::uint64_t id = next_id_++;
    if (request_id != nullptr)
        *request_id = id;
    // v2 frames scope single-corpus opcodes to the client's corpus;
    // ping and the corpus/federated opcodes carry unscoped payloads.
    std::string scoped;
    if (opcode >= Opcode::kIngest && opcode <= Opcode::kStats) {
        scoped = encodeCorpusScoped(corpus_, payload);
        payload = scoped;
    }
    return sendRaw(encodeFrame(static_cast<std::uint8_t>(opcode), flags,
                               id, deadline_ms, payload));
}

bool
WireClient::recv(Frame *out, int timeout_ms, std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error != nullptr)
            *error = what;
        return false;
    };
    if (fd_ < 0)
        return fail("not connected");
    for (;;) {
        // A complete frame may already be buffered from a previous
        // read (pipelined responses arrive back to back).
        std::size_t consumed = 0;
        std::string decode_error;
        const DecodeResult result =
            decodeFrame(inbuf_, kDefaultMaxPayload, out, &consumed,
                        &decode_error);
        if (result == DecodeResult::kFrame) {
            inbuf_.erase(0, consumed);
            return true;
        }
        if (result == DecodeResult::kBad)
            return fail("bad frame from server: " + decode_error);

        struct ::pollfd pfd {};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        int rc;
        do {
            rc = ::poll(&pfd, 1, timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc == 0)
            return fail("timed out waiting for response");
        if (rc < 0)
            return fail(std::string("poll: ") + std::strerror(errno));
        char chunk[64 * 1024];
        const ::ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got == 0)
            return fail("connection closed by server");
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return fail(std::string("recv: ") + std::strerror(errno));
        }
        inbuf_.append(chunk, static_cast<std::size_t>(got));
    }
}

WireClient::Result
WireClient::call(Opcode opcode, std::uint16_t flags,
                 std::string_view payload, std::uint32_t deadline_ms)
{
    Result result;
    std::uint64_t id = 0;
    if (!send(opcode, flags, payload, deadline_ms, &id)) {
        result.error = "send failed";
        return result;
    }
    const int timeout_ms =
        deadline_ms > 0 ? static_cast<int>(deadline_ms) + kDeadlineGraceMs
                        : -1;
    Frame frame;
    for (;;) {
        if (!recv(&frame, timeout_ms, &result.error))
            return result;
        // A lone call() only ever has one outstanding id, but a caller
        // mixing send() pipelining with call() may see earlier
        // responses first; skip them.
        if (frame.request_id == id)
            break;
    }
    result.ok = true;
    result.status = frame.status();
    result.payload = std::move(frame.payload);
    return result;
}

WireClient::Result
WireClient::ping(std::string_view payload)
{
    return call(Opcode::kPing, 0, payload);
}

WireClient::Result
WireClient::ingest(const std::string &run_id, std::string_view text,
                   bool durable, std::uint32_t deadline_ms)
{
    return call(Opcode::kIngest, durable ? kFlagDurable : 0,
                encodeIngestRequest(run_id, text), deadline_ms);
}

WireClient::Result
WireClient::erase(const std::string &run_id)
{
    WireWriter writer;
    writer.str(run_id);
    return call(Opcode::kErase, 0, writer.buffer());
}

WireClient::Result
WireClient::topKernels(std::uint32_t k, const std::string &metric,
                       const service::QueryFilter &filter,
                       std::vector<KernelRow> *rows,
                       std::uint32_t deadline_ms)
{
    Result result =
        call(Opcode::kTopKernels, 0,
             encodeTopKernelsRequest(k, metric, filter), deadline_ms);
    if (result.ok && result.status == Status::kOk &&
        !decodeKernelRows(result.payload, rows)) {
        result.ok = false;
        result.error = "bad kernel-rows payload";
    }
    return result;
}

WireClient::Result
WireClient::merged(const service::QueryFilter &filter,
                   std::uint32_t deadline_ms)
{
    WireWriter writer;
    writeFilter(writer, filter);
    return call(Opcode::kMerged, 0, writer.buffer(), deadline_ms);
}

WireClient::Result
WireClient::diff(const std::string &run_a, const std::string &run_b,
                 const service::QueryFilter &filter,
                 std::uint32_t deadline_ms)
{
    return call(Opcode::kDiff, 0,
                encodeDiffRequest(run_a, run_b, filter), deadline_ms);
}

WireClient::Result
WireClient::flameGraph(const std::string &metric,
                       const service::QueryFilter &filter,
                       std::uint32_t deadline_ms)
{
    return call(Opcode::kFlameGraph, 0,
                encodeFlameRequest(metric, filter), deadline_ms);
}

WireClient::Result
WireClient::stats()
{
    return call(Opcode::kStats, 0, "");
}

WireClient::Result
WireClient::corpusCreate(const std::string &corpus_id)
{
    return call(Opcode::kCorpusCreate, 0,
                encodeCorpusRequest(corpus_id));
}

WireClient::Result
WireClient::corpusOpen(const std::string &corpus_id)
{
    return call(Opcode::kCorpusOpen, 0, encodeCorpusRequest(corpus_id));
}

WireClient::Result
WireClient::corpusClose(const std::string &corpus_id)
{
    return call(Opcode::kCorpusClose, 0,
                encodeCorpusRequest(corpus_id));
}

WireClient::Result
WireClient::corpusDrop(const std::string &corpus_id)
{
    return call(Opcode::kCorpusDrop, 0, encodeCorpusRequest(corpus_id));
}

WireClient::Result
WireClient::corpusList(std::vector<CorpusInfo> *corpora)
{
    Result result = call(Opcode::kCorpusList, 0, "");
    if (result.ok && result.status == Status::kOk &&
        !decodeCorpusList(result.payload, corpora)) {
        result.ok = false;
        result.error = "bad corpus-list payload";
    }
    return result;
}

WireClient::Result
WireClient::federatedTopKernels(const std::vector<std::string> &corpora,
                                std::uint32_t k,
                                const std::string &metric,
                                const service::QueryFilter &filter,
                                std::vector<KernelRow> *rows,
                                std::uint32_t deadline_ms)
{
    Result result = call(
        Opcode::kFederatedTopKernels, 0,
        encodeFederatedTopKernelsRequest(corpora, k, metric, filter),
        deadline_ms);
    if (result.ok && result.status == Status::kOk &&
        !decodeKernelRows(result.payload, rows)) {
        result.ok = false;
        result.error = "bad kernel-rows payload";
    }
    return result;
}

WireClient::Result
WireClient::federatedMerged(const std::vector<std::string> &corpora,
                            const service::QueryFilter &filter,
                            std::uint32_t deadline_ms)
{
    return call(Opcode::kFederatedMerged, 0,
                encodeFederatedMergedRequest(corpora, filter),
                deadline_ms);
}

WireClient::Result
WireClient::federatedDiff(const std::vector<std::string> &corpora_a,
                          const std::vector<std::string> &corpora_b,
                          const service::QueryFilter &filter,
                          std::uint32_t deadline_ms)
{
    return call(
        Opcode::kFederatedDiff, 0,
        encodeFederatedDiffRequest(corpora_a, corpora_b, filter),
        deadline_ms);
}

WireClient::Result
WireClient::federatedFlame(const std::vector<std::string> &corpora,
                           const std::string &metric,
                           const service::QueryFilter &filter,
                           std::uint32_t deadline_ms)
{
    return call(Opcode::kFederatedFlame, 0,
                encodeFederatedFlameRequest(corpora, metric, filter),
                deadline_ms);
}

} // namespace dc::server

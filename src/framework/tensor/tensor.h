#pragma once

/**
 * @file
 * Tensor metadata for the simulated frameworks.
 *
 * Tensors carry shape, dtype, memory format (the channels_first /
 * channels_last distinction behind the Section 6.2 case study), and the
 * device they live on. No element data is stored: the cost model only
 * needs volumes and layouts.
 */

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace dc::fw {

/** Element types. */
enum class Dtype {
    kF32,
    kF16,
    kBf16,
    kF8,
    kI32,
    kI64,
    kBool,
};

/** Size of one element in bytes. */
std::size_t dtypeSize(Dtype dtype);

/** Printable dtype name ("float32", ...). */
const char *dtypeName(Dtype dtype);

/**
 * Memory format of a (typically 4-D) tensor. kChannelsFirst is PyTorch's
 * default NCHW; kChannelsLast is NHWC, the layout cuDNN prefers.
 */
enum class MemoryFormat {
    kContiguous,    ///< Plain row-major (non-image tensors).
    kChannelsFirst, ///< NCHW.
    kChannelsLast,  ///< NHWC.
};

/** Printable memory-format name. */
const char *memoryFormatName(MemoryFormat format);

/** Tensor shape. */
using Shape = std::vector<std::int64_t>;

/** Total element count of a shape. */
std::int64_t numel(const Shape &shape);

/** "[2, 3, 224, 224]" form for reports. */
std::string shapeToString(const Shape &shape);

/** Tensor metadata handle. */
struct Tensor {
    std::uint64_t id = 0;
    Shape shape;
    Dtype dtype = Dtype::kF32;
    MemoryFormat format = MemoryFormat::kContiguous;
    int device = 0;
    bool requires_grad = false;

    std::int64_t elements() const { return numel(shape); }

    std::uint64_t
    bytes() const
    {
        return static_cast<std::uint64_t>(elements()) * dtypeSize(dtype);
    }

    bool defined() const { return !shape.empty(); }
};

} // namespace dc::fw

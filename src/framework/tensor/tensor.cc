#include "framework/tensor/tensor.h"

#include "common/strings.h"

namespace dc::fw {

std::size_t
dtypeSize(Dtype dtype)
{
    switch (dtype) {
      case Dtype::kF32: return 4;
      case Dtype::kF16: return 2;
      case Dtype::kBf16: return 2;
      case Dtype::kF8: return 1;
      case Dtype::kI32: return 4;
      case Dtype::kI64: return 8;
      case Dtype::kBool: return 1;
    }
    return 4;
}

const char *
dtypeName(Dtype dtype)
{
    switch (dtype) {
      case Dtype::kF32: return "float32";
      case Dtype::kF16: return "float16";
      case Dtype::kBf16: return "bfloat16";
      case Dtype::kF8: return "float8";
      case Dtype::kI32: return "int32";
      case Dtype::kI64: return "int64";
      case Dtype::kBool: return "bool";
    }
    return "?";
}

const char *
memoryFormatName(MemoryFormat format)
{
    switch (format) {
      case MemoryFormat::kContiguous: return "contiguous";
      case MemoryFormat::kChannelsFirst: return "channels_first";
      case MemoryFormat::kChannelsLast: return "channels_last";
    }
    return "?";
}

std::int64_t
numel(const Shape &shape)
{
    std::int64_t n = 1;
    for (std::int64_t dim : shape)
        n *= dim;
    return shape.empty() ? 0 : n;
}

std::string
shapeToString(const Shape &shape)
{
    std::string out = "[";
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i)
            out += ", ";
        out += strformat("%lld", static_cast<long long>(shape[i]));
    }
    return out + "]";
}

} // namespace dc::fw

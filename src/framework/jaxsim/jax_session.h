#pragma once

/**
 * @file
 * The JIT (JAX-like) framework: tracing, compilation with fusion, and
 * compiled execution.
 *
 * Two properties matter for DeepContext (Section 4.1): JAX has no native
 * per-operator callback mechanism, and once compiled, operators run with
 * call paths unrelated to the code that wrote them. The session therefore
 * exposes an *instrumentation* interface — the stand-in for DLMonitor's
 * lightweight binary-instrumentation utility — which injects callbacks
 * around every post-fusion step and around the compilation window, and
 * hands the instrumentor the fused-to-original mapping.
 */

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "framework/jaxsim/fusion.h"
#include "framework/jaxsim/graph.h"
#include "framework/torchsim/record_function.h"
#include "sim/runtime/gpu_runtime.h"
#include "sim/sim_context.h"

namespace dc::fw {

/** JIT-engine tuning knobs. */
struct JaxConfig {
    int device = 0;
    int stream = 0;
    bool training = true;        ///< Trace backward nodes into the graph.
    /// Compiled-executor cost per step (much lower than eager dispatch).
    DurationNs step_cost_ns = 9'000;
    /// Extra CPU per launched kernel.
    DurationNs per_kernel_cpu_ns = 2'500;
    /// Compilation cost per traced node.
    DurationNs compile_cost_per_node_ns = 1'500'000;
};

class JaxSession;

/** Records operators into a graph while the model function runs. */
class JaxTracer
{
  public:
    JaxTracer(JaxSession &session, JaxGraph &graph);

    /** Trace one operator; returns its (abstract) output. */
    Tensor apply(const OpSpec &spec);

    /** Op-planning environment (tracing does not allocate). */
    OpEnv &opEnv();

  private:
    JaxSession &session_;
    JaxGraph &graph_;
    int next_node_id_ = 0;
};

/** Event delivered to the instrumentation around each compiled step. */
struct JaxOpEvent {
    RecordPhase phase = RecordPhase::kBegin;
    const ExecStep *step = nullptr;
    const JaxExecutable *executable = nullptr;
    SequenceId seq = 0;
    Pc op_pc = 0;
};

/** The instrumentation hooks DLMonitor's binary instrumentation installs. */
struct JaxInstrumentation {
    std::function<void(const JaxOpEvent &)> op_callback;
    std::function<void(RecordPhase, const std::string &graph_name)>
        compile_callback;
};

/** The JIT framework session. */
class JaxSession
{
  public:
    using TraceFn = std::function<void(JaxTracer &)>;

    JaxSession(sim::SimContext &ctx, sim::GpuRuntime &runtime,
               JaxConfig config = {});

    sim::SimContext &context() { return ctx_; }
    sim::GpuRuntime &runtime() { return runtime_; }
    const JaxConfig &config() const { return config_; }
    OpEnv &opEnv() { return env_; }

    // --- Tensors (allocated at setup time, outside tracing) -----------

    Tensor parameter(Shape shape, Dtype dtype = Dtype::kF32);
    Tensor input(Shape shape, Dtype dtype = Dtype::kF32);

    // --- Compile & run -------------------------------------------------

    /**
     * Trace @p fn and compile it (fusion pass included). Cached by name:
     * the second jit() with the same name reuses the executable without
     * recompiling, like jax.jit's trace cache.
     */
    JaxExecutable &jit(const std::string &name, const TraceFn &fn);

    /** Execute a compiled function once. */
    void run(JaxExecutable &executable);

    /** Device-synchronize. */
    void synchronize();

    // --- Instrumentation (used by DLMonitor) ---------------------------

    void setInstrumentation(JaxInstrumentation hooks);
    void clearInstrumentation();
    bool instrumented() const { return instrumented_; }

    /** Find a cached executable (nullptr if absent). */
    const JaxExecutable *findExecutable(const std::string &name) const;

    /** Total compiled steps executed. */
    std::uint64_t stepCount() const { return step_count_; }

  private:
    friend class JaxTracer;

    sim::SimContext &ctx_;
    sim::GpuRuntime &runtime_;
    JaxConfig config_;
    OpEnv env_;

    int xla_lib_ = -1;
    Pc execute_pc_ = 0;

    std::map<std::string, std::unique_ptr<JaxExecutable>> cache_;
    JaxInstrumentation hooks_;
    bool instrumented_ = false;

    SequenceId next_seq_ = 1;
    std::uint64_t step_count_ = 0;
    std::uint64_t persistent_bytes_ = 0;
};

} // namespace dc::fw

#pragma once

/**
 * @file
 * The XLA-style operator-fusion pass.
 *
 * Greedily merges runs of consecutive fusable nodes (elementwise maps,
 * normalizations, small reductions) into single fusion kernels, the way
 * XLA's instruction fusion eliminates intermediate tensor traffic. The
 * pass records which original nodes each fused kernel came from — the
 * mapping DLMonitor captures during compilation (Figure 4) — and never
 * fuses across the forward/backward boundary.
 */

#include "framework/jaxsim/graph.h"

namespace dc::fw {

/** Statistics of one fusion run (for tests and reports). */
struct FusionStats {
    std::size_t input_nodes = 0;
    std::size_t output_steps = 0;
    std::size_t fused_groups = 0;
    std::size_t nodes_fused = 0;
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_after = 0;
};

/** The fusion pass. */
class FusionPass
{
  public:
    /**
     * Run fusion on @p graph, producing executable steps.
     * @param[out] stats Optional statistics sink.
     */
    static std::vector<ExecStep> run(const JaxGraph &graph,
                                     FusionStats *stats = nullptr);

    /**
     * Merge the kernels of a fusable group into one fusion kernel.
     * Exposed for unit testing.
     */
    static sim::KernelDesc fuseKernels(
        const std::vector<const JaxNode *> &group, int fusion_index);
};

} // namespace dc::fw

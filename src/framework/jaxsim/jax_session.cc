#include "framework/jaxsim/jax_session.h"

#include <algorithm>

#include "common/logging.h"

namespace dc::fw {

namespace {

constexpr const char *kXlaLibrary = "libjax_xla_sim.so";

} // namespace

JaxTracer::JaxTracer(JaxSession &session, JaxGraph &graph)
    : session_(session), graph_(graph)
{
}

OpEnv &
JaxTracer::opEnv()
{
    return session_.env_;
}

Tensor
JaxTracer::apply(const OpSpec &spec)
{
    JaxNode node;
    node.id = next_node_id_++;
    node.spec = spec;
    node.is_backward = false;
    node.trace_py_path =
        session_.ctx_.currentThread().pyStack().frames();
    graph_.nodes.push_back(std::move(node));

    // Tracing itself is cheap but not free (abstract evaluation).
    session_.ctx_.advanceCpu(2'000);

    DC_CHECK(!spec.outputs.empty(), "op ", spec.name, " has no outputs");
    Tensor out = spec.outputs.front();
    out.device = session_.config_.device;
    return out;
}

JaxSession::JaxSession(sim::SimContext &ctx, sim::GpuRuntime &runtime,
                       JaxConfig config)
    : ctx_(ctx), runtime_(runtime), config_(config)
{
    DC_CHECK(config_.device >= 0 &&
                 config_.device < static_cast<int>(ctx_.deviceCount()),
             "jax session bound to unknown device ", config_.device);
    env_.arch = &ctx_.device(config_.device).arch();
    // XLA's layout assignment picks the backend-preferred layout for the
    // whole program, so traced tensors never need conversion kernels.

    xla_lib_ = ctx_.libraries().registerLibrary(kXlaLibrary, 64 << 20);
    execute_pc_ = ctx_.libraries().registerSymbol(
        xla_lib_, "xla::gpu::GpuExecutable::ExecuteAsyncOnStream", 4096);
}

Tensor
JaxSession::parameter(Shape shape, Dtype dtype)
{
    Tensor t = env_.newTensor(std::move(shape), dtype,
                              MemoryFormat::kContiguous);
    t.device = config_.device;
    ctx_.device(config_.device).allocate(t.bytes());
    persistent_bytes_ += t.bytes();
    return t;
}

Tensor
JaxSession::input(Shape shape, Dtype dtype)
{
    // Inputs are donated buffers reused across steps.
    return parameter(std::move(shape), dtype);
}

JaxExecutable &
JaxSession::jit(const std::string &name, const TraceFn &fn)
{
    auto it = cache_.find(name);
    if (it != cache_.end())
        return *it->second;

    if (instrumented_ && hooks_.compile_callback)
        hooks_.compile_callback(RecordPhase::kBegin, name);

    JaxGraph graph;
    graph.name = name;
    {
        JaxTracer tracer(*this, graph);
        fn(tracer);
    }

    // Autodiff: append backward nodes in reverse trace order. Each keeps
    // the forward node's compile-time Python path (jax.grad retraces the
    // same source).
    if (config_.training) {
        const std::size_t forward_count = graph.nodes.size();
        int next_id = static_cast<int>(forward_count);
        for (std::size_t i = forward_count; i > 0; --i) {
            const JaxNode &fwd = graph.nodes[i - 1];
            if (fwd.spec.backward.empty())
                continue;
            JaxNode bwd;
            bwd.id = next_id++;
            bwd.spec = fwd.spec;
            bwd.is_backward = true;
            bwd.trace_py_path = fwd.trace_py_path;
            graph.nodes.push_back(std::move(bwd));
        }
    }

    auto executable = std::make_unique<JaxExecutable>();
    executable->name = name;
    executable->nodes = graph.nodes;
    executable->steps = FusionPass::run(graph);

    // Workspace: one device block reused every run, sized by the live
    // intermediate footprint.
    std::uint64_t bytes = 0;
    for (const JaxNode &node : graph.nodes) {
        for (const Tensor &out : node.spec.outputs)
            bytes = std::max(bytes, out.bytes() * 4);
    }
    executable->workspace_bytes = bytes;
    ctx_.device(config_.device).allocate(bytes);

    // Compilation cost scales with the traced graph.
    ctx_.advanceCpu(static_cast<DurationNs>(graph.nodes.size()) *
                    config_.compile_cost_per_node_ns);

    if (instrumented_ && hooks_.compile_callback)
        hooks_.compile_callback(RecordPhase::kEnd, name);

    JaxExecutable &ref = *executable;
    cache_[name] = std::move(executable);
    return ref;
}

void
JaxSession::run(JaxExecutable &executable)
{
    sim::NativeStack &native = ctx_.currentThread().nativeStack();
    sim::NativeScope execute_frame(native, execute_pc_);

    for (const ExecStep &step : executable.steps) {
        const Pc step_pc = ctx_.libraries().registerSymbol(
            xla_lib_, "xla::thunk::" + step.name);
        sim::NativeScope step_frame(native, step_pc);
        const SequenceId seq = next_seq_++;
        ++step_count_;

        JaxOpEvent event;
        event.step = &step;
        event.executable = &executable;
        event.seq = seq;
        event.op_pc = step_pc;

        if (instrumented_ && hooks_.op_callback) {
            event.phase = RecordPhase::kBegin;
            hooks_.op_callback(event);
        }

        ctx_.advanceCpu(config_.step_cost_ns);
        for (const sim::KernelDesc &kernel : step.kernels) {
            ctx_.advanceCpu(config_.per_kernel_cpu_ns);
            runtime_.launchKernel(config_.device, config_.stream, kernel);
        }

        if (instrumented_ && hooks_.op_callback) {
            event.phase = RecordPhase::kEnd;
            hooks_.op_callback(event);
        }
    }
}

void
JaxSession::synchronize()
{
    runtime_.deviceSynchronize(config_.device);
}

void
JaxSession::setInstrumentation(JaxInstrumentation hooks)
{
    hooks_ = std::move(hooks);
    instrumented_ = true;
}

void
JaxSession::clearInstrumentation()
{
    hooks_ = JaxInstrumentation{};
    instrumented_ = false;
}

const JaxExecutable *
JaxSession::findExecutable(const std::string &name) const
{
    auto it = cache_.find(name);
    return it == cache_.end() ? nullptr : it->second.get();
}

} // namespace dc::fw

#pragma once

/**
 * @file
 * Traced computation graphs (the jaxpr/HLO equivalent).
 *
 * JAX compiles operators into computation graphs before execution; the
 * call path of each operator at runtime differs from the path where it
 * was written (Section 4.1). Each traced node therefore stores the
 * *compile-time* Python call path — the data behind Figure 4's
 * fused-to-original mapping.
 */

#include <string>
#include <vector>

#include "framework/ops/op_spec.h"
#include "pyrt/py_frame.h"

namespace dc::fw {

/** One traced operator. */
struct JaxNode {
    int id = 0;
    OpSpec spec;
    bool is_backward = false;
    /// Python call path captured while tracing (compile-time path).
    std::vector<pyrt::PyFrame> trace_py_path;
};

/** A traced (pre-compilation) graph. */
struct JaxGraph {
    std::string name;
    std::vector<JaxNode> nodes;
};

/** One step of a compiled executable: a fused group or a lone op. */
struct ExecStep {
    std::string name;                       ///< "fusion_3" or the op name.
    std::vector<sim::KernelDesc> kernels;
    std::vector<int> original_node_ids;     ///< Fused->original mapping.
    bool fused = false;
    bool is_backward = false;
};

/** A compiled executable: ordered steps plus the preserved trace. */
struct JaxExecutable {
    std::string name;
    std::vector<ExecStep> steps;
    std::vector<JaxNode> nodes;             ///< Original traced nodes.
    std::uint64_t workspace_bytes = 0;      ///< Per-run device workspace.

    /** Original nodes merged into step @p step_index. */
    std::vector<const JaxNode *> originalNodes(std::size_t step_index) const;

    /** Total kernels launched by one run. */
    std::size_t kernelCount() const;
};

} // namespace dc::fw

#include "framework/jaxsim/fusion.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace dc::fw {

std::vector<const JaxNode *>
JaxExecutable::originalNodes(std::size_t step_index) const
{
    DC_CHECK(step_index < steps.size(), "bad step index");
    std::vector<const JaxNode *> out;
    for (int id : steps[step_index].original_node_ids) {
        for (const JaxNode &node : nodes) {
            if (node.id == id) {
                out.push_back(&node);
                break;
            }
        }
    }
    return out;
}

std::size_t
JaxExecutable::kernelCount() const
{
    std::size_t count = 0;
    for (const ExecStep &step : steps)
        count += step.kernels.size();
    return count;
}

namespace {

bool
isFusable(const JaxNode &node)
{
    if (!node.spec.fusable)
        return false;
    // Only map/reduce-style kernels participate; compute (gemm/conv)
    // kernels would be their own XLA fusion roots.
    const auto &kernels =
        node.is_backward && !node.spec.backward.empty()
            ? node.spec.backward.front().kernels
            : node.spec.forward_kernels;
    for (const sim::KernelDesc &k : kernels) {
        if (k.kind != sim::KernelKind::kElementwise &&
            k.kind != sim::KernelKind::kReduction) {
            return false;
        }
    }
    return !kernels.empty();
}

const std::vector<sim::KernelDesc> &
nodeKernels(const JaxNode &node)
{
    if (node.is_backward && !node.spec.backward.empty())
        return node.spec.backward.front().kernels;
    return node.spec.forward_kernels;
}

std::string
nodeStepName(const JaxNode &node)
{
    if (node.is_backward && !node.spec.backward.empty())
        return node.spec.backward.front().name;
    return node.spec.name;
}

} // namespace

sim::KernelDesc
FusionPass::fuseKernels(const std::vector<const JaxNode *> &group,
                        int fusion_index)
{
    DC_CHECK(!group.empty(), "empty fusion group");

    sim::KernelDesc fused;
    fused.name = strformat("fusion_%d", fusion_index);
    fused.kind = sim::KernelKind::kElementwise;
    fused.block = 256;
    fused.regs_per_thread = 40;

    bool first = true;
    std::uint64_t first_read = 0;
    std::uint64_t last_written = 0;
    std::uint64_t other_traffic = 0;
    for (const JaxNode *node : group) {
        for (const sim::KernelDesc &k : nodeKernels(*node)) {
            fused.grid = std::max(fused.grid, k.grid);
            fused.flops += k.flops;
            fused.constant_bytes =
                std::max(fused.constant_bytes, k.constant_bytes);
            fused.vectorized = fused.vectorized && k.vectorized;
            fused.serialization_factor = std::max(
                fused.serialization_factor, k.serialization_factor);
            fused.atomic_factor =
                std::max(fused.atomic_factor, k.atomic_factor);
            if (k.kind == sim::KernelKind::kReduction)
                fused.kind = sim::KernelKind::kReduction;
            if (first) {
                first_read = k.bytes_read;
                first = false;
            } else {
                other_traffic += k.bytes_read;
            }
            last_written = k.bytes_written;
            other_traffic += k.bytes_written;
        }
    }
    other_traffic -= std::min(other_traffic, last_written);

    // Fusion's win: inputs are read once and the final output written
    // once; intermediate tensors stay in registers. A ~15% residue models
    // imperfect fusion (spills, multiple operands).
    fused.bytes_read =
        first_read + static_cast<std::uint64_t>(0.15 * other_traffic);
    fused.bytes_written = last_written;
    return fused;
}

std::vector<ExecStep>
FusionPass::run(const JaxGraph &graph, FusionStats *stats)
{
    std::vector<ExecStep> steps;
    FusionStats local;
    local.input_nodes = graph.nodes.size();

    for (const JaxNode &node : graph.nodes) {
        for (const sim::KernelDesc &k : nodeKernels(node))
            local.bytes_before += k.totalBytes();
    }

    int fusion_index = 0;
    std::size_t i = 0;
    while (i < graph.nodes.size()) {
        const JaxNode &node = graph.nodes[i];

        // Extend a fusable run as far as possible without crossing the
        // forward/backward boundary.
        if (isFusable(node)) {
            std::vector<const JaxNode *> group;
            std::size_t j = i;
            while (j < graph.nodes.size() && isFusable(graph.nodes[j]) &&
                   graph.nodes[j].is_backward == node.is_backward) {
                group.push_back(&graph.nodes[j]);
                ++j;
            }
            if (group.size() > 1) {
                ExecStep step;
                step.name = strformat("fusion_%d", fusion_index);
                step.kernels.push_back(fuseKernels(group, fusion_index));
                for (const JaxNode *member : group)
                    step.original_node_ids.push_back(member->id);
                step.fused = true;
                step.is_backward = node.is_backward;
                steps.push_back(std::move(step));
                ++fusion_index;
                ++local.fused_groups;
                local.nodes_fused += group.size();
                i = j;
                continue;
            }
        }

        // Epilogue fusion: XLA folds a lone elementwise op into the
        // preceding compute kernel (gemm/conv epilogues), eliminating the
        // intermediate's round trip through DRAM.
        if (isFusable(node) && !steps.empty() &&
            steps.back().is_backward == node.is_backward &&
            !steps.back().kernels.empty() &&
            steps.back().kernels.back().kind ==
                sim::KernelKind::kCompute) {
            sim::KernelDesc &base = steps.back().kernels.back();
            for (const sim::KernelDesc &k : nodeKernels(node)) {
                base.flops += k.flops;
                // The intermediate stays in registers; only the final
                // output is written.
                base.bytes_written = k.bytes_written;
            }
            steps.back().original_node_ids.push_back(node.id);
            steps.back().fused = true;
            ++local.nodes_fused;
            ++i;
            continue;
        }

        // Lone node: passes through with its own kernels.
        ExecStep step;
        step.name = nodeStepName(node);
        step.kernels = nodeKernels(node);
        step.original_node_ids.push_back(node.id);
        step.is_backward = node.is_backward;
        steps.push_back(std::move(step));
        ++i;
    }

    for (const ExecStep &step : steps) {
        for (const sim::KernelDesc &k : step.kernels)
            local.bytes_after += k.totalBytes();
    }
    local.output_steps = steps.size();
    if (stats != nullptr)
        *stats = local;
    return steps;
}

} // namespace dc::fw

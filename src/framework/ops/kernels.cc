#include "framework/ops/kernels.h"

#include <algorithm>

namespace dc::fw::kernels {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

sim::KernelDesc
elementwise(const std::string &name, std::int64_t elems, std::uint64_t bytes,
            double flops_per_elem)
{
    sim::KernelDesc k;
    k.name = name;
    k.kind = sim::KernelKind::kElementwise;
    k.block = 256;
    // PyTorch's elementwise kernels process 4 elements per thread.
    k.grid = std::max<std::uint64_t>(
        1, ceilDiv(static_cast<std::uint64_t>(elems), 256ull * 4ull));
    k.regs_per_thread = 24;
    k.flops = static_cast<double>(elems) * flops_per_elem;
    k.bytes_read = bytes / 2;
    k.bytes_written = bytes - k.bytes_read;
    return k;
}

sim::KernelDesc
gemm(const std::string &name, std::int64_t m, std::int64_t n, std::int64_t k,
     std::size_t elem_size, bool tensor_cores)
{
    sim::KernelDesc desc;
    desc.name = name;
    desc.kind = sim::KernelKind::kCompute;
    desc.block = 256;
    // 128x128 output tiles per CTA.
    desc.grid = std::max<std::uint64_t>(
        1, ceilDiv(static_cast<std::uint64_t>(m), 128) *
               ceilDiv(static_cast<std::uint64_t>(n), 128));
    // Skinny problems (GEMV-like m, or wgrad's huge reduction dimension)
    // are decomposed with split-K so the whole device streams the
    // operands: one CTA per ~128 KiB of input.
    const std::uint64_t input_bytes =
        (static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(k) +
         static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(n)) *
        elem_size;
    desc.grid = std::max(desc.grid,
                         std::min<std::uint64_t>(
                             8192, ceilDiv(input_bytes, 128 * 1024)));
    desc.regs_per_thread = 128;
    desc.shared_mem_bytes = 48 * 1024;
    desc.uses_tensor_cores = tensor_cores;
    desc.flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                 static_cast<double>(k);
    desc.bytes_read =
        (static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(k) +
         static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(n)) *
        elem_size;
    desc.bytes_written = static_cast<std::uint64_t>(m) *
                         static_cast<std::uint64_t>(n) * elem_size;
    return desc;
}

sim::KernelDesc
rowReduction(const std::string &name, std::int64_t rows, std::int64_t cols,
             std::uint64_t bytes)
{
    sim::KernelDesc k;
    k.name = name;
    k.kind = sim::KernelKind::kReduction;
    k.block = 256;
    k.grid = std::max<std::int64_t>(1, rows);
    k.regs_per_thread = 32;
    k.shared_mem_bytes = 4 * 1024;
    k.flops = static_cast<double>(rows) * static_cast<double>(cols) * 2.0;
    k.bytes_read = bytes;
    k.bytes_written = static_cast<std::uint64_t>(rows) * 4;
    return k;
}

sim::KernelDesc
layoutConversion(const std::string &name, std::uint64_t tensor_bytes)
{
    sim::KernelDesc k;
    k.name = name;
    k.kind = sim::KernelKind::kLayoutConversion;
    k.block = 256;
    k.grid = std::max<std::uint64_t>(1, ceilDiv(tensor_bytes / 4, 256 * 4));
    k.regs_per_thread = 32;
    k.bytes_read = tensor_bytes;
    k.bytes_written = tensor_bytes;
    // Transposing small-channel NCHW tensors is strided on one side; the
    // conversion kernels reach well under half of peak bandwidth.
    k.serialization_factor = 2.4;
    return k;
}

sim::KernelDesc
gather(const std::string &name, std::int64_t rows, std::uint64_t row_bytes)
{
    sim::KernelDesc k;
    k.name = name;
    k.kind = sim::KernelKind::kGatherScatter;
    k.block = 128;
    k.grid = std::max<std::int64_t>(1, ceilDiv(
        static_cast<std::uint64_t>(rows) * std::max<std::uint64_t>(
            1, row_bytes / 16), 128));
    k.grid = std::min<std::uint64_t>(k.grid, 65535);
    k.regs_per_thread = 32;
    k.bytes_read = static_cast<std::uint64_t>(rows) * row_bytes +
                   static_cast<std::uint64_t>(rows) * 8; // index reads
    k.bytes_written = static_cast<std::uint64_t>(rows) * row_bytes;
    return k;
}

sim::KernelDesc
scatter(const std::string &name, std::int64_t rows, std::uint64_t row_bytes,
        double serialization, double atomic)
{
    sim::KernelDesc k = gather(name, rows, row_bytes);
    k.serialization_factor = serialization;
    k.atomic_factor = atomic;
    return k;
}

} // namespace dc::fw::kernels

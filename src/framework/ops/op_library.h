#pragma once

/**
 * @file
 * Builders for every operator the workloads use.
 *
 * Each builder plans one operator: output metadata, the forward kernels
 * (with names and geometry mirroring the real cuDNN/MIOpen/ATen kernels),
 * and the backward operator autograd will run. The case-study mechanisms
 * are encoded here:
 *
 *  - conv2d inserts cudnn::nchwToNhwcKernel conversions when the input
 *    layout differs from the backend's preference (§6.2);
 *  - index's backward is the deterministic, serialized
 *    indexing_backward_kernel while index_select's backward uses atomics
 *    (§6.1);
 *  - the norm templates derive CTA counts from the warp size (§6.5);
 *  - cast kernels load constant memory and may use scalar conversion
 *    instructions (§6.7).
 */

#include <vector>

#include "framework/ops/op_spec.h"

namespace dc::fw::ops {

/** Convolution options. */
struct Conv2dOpts {
    int stride = 1;
    int pad = 1;
};

/** x[N,C,H,W] (*) w[K,C,R,S] -> [N,K,Ho,Wo]. */
OpSpec conv2d(OpEnv &env, const Tensor &x, const Tensor &w,
              Conv2dOpts opts = {});

/** Transposed convolution (U-Net upsampling path). */
OpSpec convTranspose2d(OpEnv &env, const Tensor &x, const Tensor &w,
                       int stride = 2);

/** a[M,K] x b[K,N]. */
OpSpec matmul(OpEnv &env, const Tensor &a, const Tensor &b);

/** Batched matmul a[B,M,K] x b[B,K,N]. */
OpSpec bmm(OpEnv &env, const Tensor &a, const Tensor &b);

/** x[...,K] x w[N,K] + bias. */
OpSpec linear(OpEnv &env, const Tensor &x, const Tensor &w);

// Elementwise ops.
OpSpec relu(OpEnv &env, const Tensor &x);
OpSpec gelu(OpEnv &env, const Tensor &x);
OpSpec add(OpEnv &env, const Tensor &a, const Tensor &b);
OpSpec mul(OpEnv &env, const Tensor &a, const Tensor &b);
OpSpec dropout(OpEnv &env, const Tensor &x);

// Normalizations. Instance/batch norm use the shared CUDA template whose
// CTA count depends on the warp size (§6.5).
OpSpec batchNorm(OpEnv &env, const Tensor &x);
OpSpec instanceNorm(OpEnv &env, const Tensor &x);
OpSpec layerNorm(OpEnv &env, const Tensor &x);
/** RMSNorm core (Llama); the surrounding casts are separate `to` ops. */
OpSpec rmsNorm(OpEnv &env, const Tensor &x);

/** Data-type conversion (torch.to). Honours env.vectorized_casts. */
OpSpec to(OpEnv &env, const Tensor &x, Dtype target);

/** Softmax over the last dimension. */
OpSpec softmax(OpEnv &env, const Tensor &x);
OpSpec logSoftmax(OpEnv &env, const Tensor &x);

/** Device-to-device copy (the `copy` kernel under loss_fn in Fig. 9). */
OpSpec copy(OpEnv &env, const Tensor &x);

/** NLL loss over probs[N, C] -> scalar. */
OpSpec nllLoss(OpEnv &env, const Tensor &probs);

/** Mean-squared-error loss -> scalar (U-Net). */
OpSpec mseLoss(OpEnv &env, const Tensor &pred);

/**
 * The manually-fused softmax+copy+nll_loss kernel from the §6.3
 * optimization (also what torch.compile produces for the loss).
 */
OpSpec fusedSoftmaxNll(OpEnv &env, const Tensor &logits);

/**
 * aten::index — advanced indexing (embedding_table[idx]): gather forward,
 * *deterministic serialized* scatter backward.
 * @param lookups Number of gathered rows.
 * @param avg_duplicates Mean occurrences of each distinct index; the
 *        backward serialization factor.
 */
OpSpec index(OpEnv &env, const Tensor &table, std::int64_t lookups,
             double avg_duplicates);

/** aten::index_select — same gather, atomic (non-deterministic) backward. */
OpSpec indexSelect(OpEnv &env, const Tensor &table, std::int64_t lookups,
                   double avg_duplicates);

/** scatter_add (GNN message aggregation). */
OpSpec scatterAdd(OpEnv &env, const Tensor &src, std::int64_t updates,
                  double avg_duplicates);

OpSpec maxPool2d(OpEnv &env, const Tensor &x, int kernel = 2);
OpSpec avgPool2d(OpEnv &env, const Tensor &x, int kernel = 2);

/** Concatenate along dim 1 (channel dim). */
OpSpec cat(OpEnv &env, const std::vector<Tensor> &inputs);

/**
 * Fused scaled-dot-product attention (FlashAttention-style single
 * kernel). q,k,v: [B, heads, S, Dh]. Eager PyTorch paths that lack the
 * fused kernel compose bmm+softmax+bmm instead.
 */
OpSpec sdpaFlash(OpEnv &env, const Tensor &q, const Tensor &k,
                 const Tensor &v);

/** Optimizer step over all parameters (multi_tensor_apply). */
OpSpec adamStep(OpEnv &env, std::uint64_t param_bytes);

/** Explicit layout conversion (x.contiguous(memory_format=...)). */
OpSpec contiguous(OpEnv &env, const Tensor &x, MemoryFormat format);

} // namespace dc::fw::ops

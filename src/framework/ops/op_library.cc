#include "framework/ops/op_library.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "framework/ops/kernels.h"

namespace dc::fw {

std::uint64_t
OpSpec::forwardBytes() const
{
    std::uint64_t total = 0;
    for (const sim::KernelDesc &k : forward_kernels)
        total += k.totalBytes();
    return total;
}

double
OpSpec::forwardFlops() const
{
    double total = 0.0;
    for (const sim::KernelDesc &k : forward_kernels)
        total += k.flops;
    return total;
}

namespace ops {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

bool
isNvidia(const OpEnv &env)
{
    return env.arch->vendor == sim::GpuVendor::kNvidia;
}

/**
 * CTA count of the shared batch_norm/instance_norm CUDA template.
 * The template packs (warp_size / 32) normalization slices per CTA, so a
 * warp-64 device produces half as many CTAs for the same problem (§6.5).
 * The norm_cta_fix knob packs one slice per CTA instead.
 */
std::uint64_t
normTemplateGrid(const OpEnv &env, std::int64_t slices)
{
    const int slices_per_cta =
        env.norm_cta_fix ? 1 : std::max(1, env.arch->warp_size / 32);
    return std::max<std::uint64_t>(
        1, ceilDiv(static_cast<std::uint64_t>(slices),
                   static_cast<std::uint64_t>(slices_per_cta)));
}

sim::KernelDesc
normTemplateKernel(const OpEnv &env, const std::string &name,
                   std::int64_t slices, std::uint64_t bytes, double flops)
{
    sim::KernelDesc k;
    k.name = name;
    k.kind = sim::KernelKind::kReduction;
    k.grid = normTemplateGrid(env, slices);
    k.block = 512;
    k.regs_per_thread = 64;
    k.shared_mem_bytes = 8 * 1024;
    k.bytes_read = bytes / 2;
    k.bytes_written = bytes - k.bytes_read;
    k.flops = flops;
    // The template's reductions use 32-lane shuffles: on wider wavefronts
    // half the lanes idle through every reduction step, and the fixed
    // shared-memory tile adds bank conflicts for 64-wide accesses (§6.5).
    if (env.arch->warp_size > 32 && !env.norm_cta_fix) {
        const double ratio =
            static_cast<double>(env.arch->warp_size) / 32.0;
        k.serialization_factor = ratio * 1.4;
    }
    return k;
}

/** Output spatial size of a convolution. */
std::int64_t
convOut(std::int64_t in, int kernel, int stride, int pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

} // namespace

OpSpec
conv2d(OpEnv &env, const Tensor &x, const Tensor &w, Conv2dOpts opts)
{
    DC_CHECK(x.shape.size() == 4 && w.shape.size() == 4,
             "conv2d expects 4-D tensors");
    const std::int64_t n = x.shape[0];
    const std::int64_t c = x.shape[1];
    const std::int64_t h = x.shape[2];
    const std::int64_t ww = x.shape[3];
    const std::int64_t k_out = w.shape[0];
    const std::int64_t r = w.shape[2];
    const std::int64_t s = w.shape[3];
    DC_CHECK(w.shape[1] == c, "conv2d channel mismatch");

    const std::int64_t ho = convOut(h, static_cast<int>(r), opts.stride,
                                    opts.pad);
    const std::int64_t wo = convOut(ww, static_cast<int>(s), opts.stride,
                                    opts.pad);

    OpSpec spec;
    spec.name = "aten::conv2d";

    const MemoryFormat preferred = env.preferredConvLayout();
    const bool needs_conversion =
        x.shape.size() == 4 && x.format != preferred;

    Tensor out = env.newTensor({n, k_out, ho, wo}, x.dtype, x.format);

    const char *to_backend = isNvidia(env) ? "cudnn::nchwToNhwcKernel"
                                           : "miopen::transposeNhwcToNchw";
    const char *from_backend = isNvidia(env) ? "cudnn::nhwcToNchwKernel"
                                             : "miopen::transposeNchwToNhwc";

    if (needs_conversion) {
        spec.forward_kernels.push_back(
            kernels::layoutConversion(to_backend, x.bytes()));
    }

    sim::KernelDesc main = kernels::gemm(
        isNvidia(env) ? "sm80_xmma_fprop_implicit_gemm_tf32f32"
                      : "miopen_igemm_fwd",
        n * ho * wo, k_out, c * r * s, dtypeSize(x.dtype),
        /*tensor_cores=*/true);
    main.kind = sim::KernelKind::kCompute;
    spec.forward_kernels.push_back(main);

    if (needs_conversion) {
        spec.forward_kernels.push_back(
            kernels::layoutConversion(from_backend, out.bytes()));
    }

    // Backward: dgrad + wgrad; conversions are paid again on the gradient
    // tensors when the layouts mismatch.
    BackwardOp bwd;
    bwd.name = "ConvolutionBackward0";
    if (needs_conversion) {
        bwd.kernels.push_back(
            kernels::layoutConversion(to_backend, out.bytes()));
    }
    bwd.kernels.push_back(kernels::gemm(
        isNvidia(env) ? "sm80_xmma_dgrad_implicit_gemm_tf32f32"
                      : "miopen_igemm_bwd_data",
        n * ho * wo, c, k_out * r * s, dtypeSize(x.dtype), true));
    bwd.kernels.push_back(kernels::gemm(
        isNvidia(env) ? "sm80_xmma_wgrad_implicit_gemm_tf32f32"
                      : "miopen_igemm_bwd_weights",
        k_out, c * r * s, n * ho * wo, dtypeSize(x.dtype), true));
    if (needs_conversion) {
        bwd.kernels.push_back(
            kernels::layoutConversion(from_backend, x.bytes()));
    }
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
convTranspose2d(OpEnv &env, const Tensor &x, const Tensor &w, int stride)
{
    DC_CHECK(x.shape.size() == 4 && w.shape.size() == 4,
             "conv_transpose2d expects 4-D tensors");
    const std::int64_t n = x.shape[0];
    const std::int64_t c = x.shape[1];
    const std::int64_t h = x.shape[2];
    const std::int64_t ww = x.shape[3];
    const std::int64_t k_out = w.shape[0];
    const std::int64_t r = w.shape[2];

    OpSpec spec;
    spec.name = "aten::conv_transpose2d";
    Tensor out =
        env.newTensor({n, k_out, h * stride, ww * stride}, x.dtype,
                      x.format);

    sim::KernelDesc main = kernels::gemm(
        isNvidia(env) ? "sm80_xmma_dgrad_implicit_gemm_tf32f32"
                      : "miopen_igemm_bwd_data",
        n * h * stride * ww * stride, k_out, c * r * r,
        dtypeSize(x.dtype), true);
    spec.forward_kernels.push_back(main);

    BackwardOp bwd;
    bwd.name = "ConvTranspose2DBackward0";
    bwd.kernels.push_back(kernels::gemm(
        isNvidia(env) ? "sm80_xmma_fprop_implicit_gemm_tf32f32"
                      : "miopen_igemm_fwd",
        n * h * ww, c, k_out * r * r, dtypeSize(x.dtype), true));
    bwd.kernels.push_back(kernels::gemm(
        isNvidia(env) ? "sm80_xmma_wgrad_implicit_gemm_tf32f32"
                      : "miopen_igemm_bwd_weights",
        k_out, c * r * r, n * h * ww, dtypeSize(x.dtype), true));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
matmul(OpEnv &env, const Tensor &a, const Tensor &b)
{
    DC_CHECK(a.shape.size() >= 2 && b.shape.size() == 2,
             "matmul expects [*,K] x [K,N]");
    const std::int64_t k = a.shape.back();
    DC_CHECK(b.shape[0] == k, "matmul inner-dimension mismatch");
    std::int64_t m = 1;
    for (std::size_t i = 0; i + 1 < a.shape.size(); ++i)
        m *= a.shape[i];
    const std::int64_t n = b.shape[1];

    OpSpec spec;
    spec.name = "aten::matmul";
    Shape out_shape(a.shape.begin(), a.shape.end() - 1);
    out_shape.push_back(n);
    Tensor out = env.newTensor(std::move(out_shape), a.dtype);

    spec.forward_kernels.push_back(kernels::gemm(
        isNvidia(env) ? "ampere_sgemm_128x128_tn" : "Cijk_Ailk_Bljk_SB",
        m, n, k, dtypeSize(a.dtype), true));

    BackwardOp bwd;
    bwd.name = "MmBackward0";
    bwd.kernels.push_back(kernels::gemm(
        isNvidia(env) ? "ampere_sgemm_128x128_nn" : "Cijk_Ailk_Bjlk_SB",
        m, k, n, dtypeSize(a.dtype), true));
    bwd.kernels.push_back(kernels::gemm(
        isNvidia(env) ? "ampere_sgemm_128x128_nt" : "Cijk_Alik_Bljk_SB",
        k, n, m, dtypeSize(a.dtype), true));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
bmm(OpEnv &env, const Tensor &a, const Tensor &b)
{
    DC_CHECK(a.shape.size() == 3 && b.shape.size() == 3,
             "bmm expects 3-D tensors");
    const std::int64_t batch = a.shape[0];
    const std::int64_t m = a.shape[1];
    const std::int64_t k = a.shape[2];
    const std::int64_t n = b.shape[2];
    DC_CHECK(b.shape[0] == batch && b.shape[1] == k, "bmm shape mismatch");

    OpSpec spec;
    spec.name = "aten::bmm";
    Tensor out = env.newTensor({batch, m, n}, a.dtype);

    spec.forward_kernels.push_back(kernels::gemm(
        isNvidia(env) ? "ampere_bmm_128x64_tn" : "Cijk_Bmm_SB",
        batch * m, n, k, dtypeSize(a.dtype), true));

    BackwardOp bwd;
    bwd.name = "BmmBackward0";
    bwd.kernels.push_back(kernels::gemm("bmm_dgrad_a", batch * m, k, n,
                                        dtypeSize(a.dtype), true));
    bwd.kernels.push_back(kernels::gemm("bmm_dgrad_b", batch * k, n, m,
                                        dtypeSize(a.dtype), true));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
linear(OpEnv &env, const Tensor &x, const Tensor &w)
{
    DC_CHECK(w.shape.size() == 2, "linear weight must be 2-D");
    const std::int64_t k = x.shape.back();
    DC_CHECK(w.shape[1] == k, "linear inner-dimension mismatch");
    std::int64_t m = 1;
    for (std::size_t i = 0; i + 1 < x.shape.size(); ++i)
        m *= x.shape[i];
    const std::int64_t n = w.shape[0];

    OpSpec spec;
    spec.name = "aten::linear";
    Shape out_shape(x.shape.begin(), x.shape.end() - 1);
    out_shape.push_back(n);
    Tensor out = env.newTensor(std::move(out_shape), x.dtype);

    spec.forward_kernels.push_back(kernels::gemm(
        isNvidia(env) ? "ampere_fp16_s16816gemm_fp16_128x128_ldg8_relu_tn"
                      : "Cijk_Linear_HB",
        m, n, k, dtypeSize(x.dtype), true));

    BackwardOp bwd;
    bwd.name = "AddmmBackward0";
    bwd.kernels.push_back(kernels::gemm("linear_dgrad", m, k, n,
                                        dtypeSize(x.dtype), true));
    bwd.kernels.push_back(kernels::gemm("linear_wgrad", n, k, m,
                                        dtypeSize(x.dtype), true));
    bwd.kernels.push_back(kernels::rowReduction(
        "reduce_kernel<BiasGrad>", n, m,
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
            dtypeSize(x.dtype)));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

namespace {

/** Shared shape for unary elementwise ops. */
OpSpec
unaryElementwise(OpEnv &env, const Tensor &x, const char *op_name,
                 const char *kernel_name, const char *backward_name,
                 double flops_per_elem)
{
    OpSpec spec;
    spec.name = op_name;
    spec.fusable = true;
    Tensor out = env.newTensor(x.shape, x.dtype, x.format);
    spec.forward_kernels.push_back(kernels::elementwise(
        kernel_name, x.elements(), 2 * x.bytes(), flops_per_elem));

    BackwardOp bwd;
    bwd.name = backward_name;
    bwd.kernels.push_back(kernels::elementwise(
        "elementwise_kernel<BackwardFunctor>", x.elements(), 3 * x.bytes(),
        flops_per_elem));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

} // namespace

OpSpec
relu(OpEnv &env, const Tensor &x)
{
    return unaryElementwise(env, x, "aten::relu",
                            "vectorized_elementwise_kernel<ReluFunctor>",
                            "ReluBackward0", 1.0);
}

OpSpec
gelu(OpEnv &env, const Tensor &x)
{
    return unaryElementwise(env, x, "aten::gelu",
                            "vectorized_elementwise_kernel<GeluFunctor>",
                            "GeluBackward0", 8.0);
}

OpSpec
dropout(OpEnv &env, const Tensor &x)
{
    return unaryElementwise(
        env, x, "aten::dropout",
        "fused_dropout_kernel_vec", "NativeDropoutBackward0", 3.0);
}

OpSpec
add(OpEnv &env, const Tensor &a, const Tensor &b)
{
    (void)b;
    OpSpec spec;
    spec.name = "aten::add";
    spec.fusable = true;
    Tensor out = env.newTensor(a.shape, a.dtype, a.format);
    spec.forward_kernels.push_back(kernels::elementwise(
        "vectorized_elementwise_kernel<AddFunctor>", a.elements(),
        3 * a.bytes(), 1.0));
    // Addition backward is a gradient pass-through: no kernels.
    spec.backward.push_back(BackwardOp{"AddBackward0", {}});
    spec.outputs.push_back(out);
    return spec;
}

OpSpec
mul(OpEnv &env, const Tensor &a, const Tensor &b)
{
    (void)b;
    OpSpec spec;
    spec.name = "aten::mul";
    spec.fusable = true;
    Tensor out = env.newTensor(a.shape, a.dtype, a.format);
    spec.forward_kernels.push_back(kernels::elementwise(
        "vectorized_elementwise_kernel<MulFunctor>", a.elements(),
        3 * a.bytes(), 1.0));
    BackwardOp bwd;
    bwd.name = "MulBackward0";
    bwd.kernels.push_back(kernels::elementwise(
        "elementwise_kernel<MulBackward>", a.elements(), 4 * a.bytes(),
        2.0));
    spec.backward.push_back(std::move(bwd));
    spec.outputs.push_back(out);
    return spec;
}

namespace {

OpSpec
normOp(OpEnv &env, const Tensor &x, const char *op_name,
       const char *backward_name, std::int64_t slices)
{
    OpSpec spec;
    spec.name = op_name;
    spec.fusable = true;
    Tensor out = env.newTensor(x.shape, x.dtype, x.format);

    spec.forward_kernels.push_back(normTemplateKernel(
        env, "batch_norm_collect_statistics_kernel", slices, x.bytes(),
        static_cast<double>(x.elements()) * 2.0));
    spec.forward_kernels.push_back(normTemplateKernel(
        env, "batch_norm_transform_input_kernel", slices, 2 * x.bytes(),
        static_cast<double>(x.elements()) * 2.0));

    BackwardOp bwd;
    bwd.name = backward_name;
    bwd.kernels.push_back(normTemplateKernel(
        env, "batch_norm_backward_cuda_template", slices, 3 * x.bytes(),
        static_cast<double>(x.elements()) * 4.0));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

} // namespace

OpSpec
batchNorm(OpEnv &env, const Tensor &x)
{
    DC_CHECK(x.shape.size() == 4, "batch_norm expects 4-D input");
    // One slice per channel.
    return normOp(env, x, "aten::batch_norm", "NativeBatchNormBackward0",
                  x.shape[1]);
}

OpSpec
instanceNorm(OpEnv &env, const Tensor &x)
{
    DC_CHECK(x.shape.size() == 4, "instance_norm expects 4-D input");
    // One slice per (sample, channel) plane.
    return normOp(env, x, "aten::instance_norm", "InstanceNormBackward0",
                  x.shape[0] * x.shape[1]);
}

OpSpec
layerNorm(OpEnv &env, const Tensor &x)
{
    const std::int64_t d = x.shape.back();
    const std::int64_t rows = x.elements() / std::max<std::int64_t>(1, d);

    OpSpec spec;
    spec.name = "aten::layer_norm";
    spec.fusable = true;
    Tensor out = env.newTensor(x.shape, x.dtype, x.format);
    spec.forward_kernels.push_back(kernels::rowReduction(
        "vectorized_layer_norm_kernel", rows, d, 2 * x.bytes()));

    BackwardOp bwd;
    bwd.name = "NativeLayerNormBackward0";
    bwd.kernels.push_back(kernels::rowReduction(
        "layer_norm_grad_input_kernel", rows, d, 3 * x.bytes()));
    bwd.kernels.push_back(kernels::rowReduction(
        "GammaBetaBackwardCUDAKernel", d, rows, x.bytes()));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
rmsNorm(OpEnv &env, const Tensor &x)
{
    const std::int64_t d = x.shape.back();
    const std::int64_t rows = x.elements() / std::max<std::int64_t>(1, d);

    OpSpec spec;
    spec.name = "aten::rms_norm";
    spec.fusable = true;
    Tensor out = env.newTensor(x.shape, x.dtype, x.format);
    sim::KernelDesc k = kernels::rowReduction("rms_norm_kernel", rows, d,
                                              2 * x.bytes());
    // The RMSNorm epsilon/weight constants live in constant memory.
    k.constant_bytes = 1024;
    spec.forward_kernels.push_back(k);

    BackwardOp bwd;
    bwd.name = "RmsNormBackward0";
    bwd.kernels.push_back(kernels::rowReduction("rms_norm_backward_kernel",
                                                rows, d, 3 * x.bytes()));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
to(OpEnv &env, const Tensor &x, Dtype target)
{
    OpSpec spec;
    spec.name = "aten::to";
    spec.fusable = true;
    Tensor out = env.newTensor(x.shape, target, x.format);

    const std::uint64_t bytes = x.bytes() + out.bytes();
    sim::KernelDesc k = kernels::elementwise(
        env.vectorized_casts
            ? "vectorized_elementwise_kernel<CastFunctor>"
            : "elementwise_kernel<CastFunctor>",
        x.elements(), bytes, 1.0);
    k.vectorized = env.vectorized_casts;
    // Conversion kernels load rounding-mode/scale constants per CTA.
    k.constant_bytes = 1536;
    spec.forward_kernels.push_back(k);

    BackwardOp bwd;
    bwd.name = "ToCopyBackward0";
    sim::KernelDesc kb = k;
    kb.name = env.vectorized_casts
                  ? "vectorized_elementwise_kernel<CastFunctor>"
                  : "elementwise_kernel<CastFunctor>";
    bwd.kernels.push_back(kb);
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
softmax(OpEnv &env, const Tensor &x)
{
    const std::int64_t d = x.shape.back();
    const std::int64_t rows = x.elements() / std::max<std::int64_t>(1, d);

    OpSpec spec;
    spec.name = "aten::softmax";
    spec.fusable = true;
    Tensor out = env.newTensor(x.shape, x.dtype, x.format);
    spec.forward_kernels.push_back(kernels::rowReduction(
        "softmax_warp_forward", rows, d, 2 * x.bytes()));

    BackwardOp bwd;
    bwd.name = "SoftmaxBackward0";
    bwd.kernels.push_back(kernels::rowReduction("softmax_warp_backward",
                                                rows, d, 3 * x.bytes()));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
logSoftmax(OpEnv &env, const Tensor &x)
{
    OpSpec spec = softmax(env, x);
    spec.name = "aten::log_softmax";
    spec.forward_kernels.front().name = "cunn_SoftMaxForward<LogSoftMax>";
    spec.backward.front().name = "LogSoftmaxBackward0";
    return spec;
}

OpSpec
copy(OpEnv &env, const Tensor &x)
{
    OpSpec spec;
    spec.name = "aten::copy_";
    spec.fusable = true;
    Tensor out = env.newTensor(x.shape, x.dtype, x.format);
    spec.forward_kernels.push_back(kernels::elementwise(
        "copy_device_to_device", x.elements(), 2 * x.bytes(), 0.0));
    spec.backward.push_back(BackwardOp{"CopyBackwards", {}});
    spec.outputs.push_back(out);
    return spec;
}

OpSpec
nllLoss(OpEnv &env, const Tensor &probs)
{
    const std::int64_t rows = probs.shape.front();

    OpSpec spec;
    spec.name = "aten::nll_loss";
    spec.fusable = true;
    Tensor out = env.newTensor({1}, probs.dtype);
    spec.forward_kernels.push_back(kernels::rowReduction(
        "nll_loss_forward_reduce_cuda_kernel_2d", rows,
        probs.elements() / std::max<std::int64_t>(1, rows),
        probs.bytes()));

    BackwardOp bwd;
    bwd.name = "NllLossBackward0";
    bwd.kernels.push_back(kernels::elementwise(
        "nll_loss_backward_reduce_cuda_kernel_2d", probs.elements(),
        2 * probs.bytes(), 1.0));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
mseLoss(OpEnv &env, const Tensor &pred)
{
    OpSpec spec;
    spec.name = "aten::mse_loss";
    spec.fusable = true;
    Tensor out = env.newTensor({1}, pred.dtype);
    spec.forward_kernels.push_back(kernels::rowReduction(
        "reduce_kernel<MseLoss>", 1, pred.elements(), pred.bytes()));

    BackwardOp bwd;
    bwd.name = "MseLossBackward0";
    bwd.kernels.push_back(kernels::elementwise(
        "elementwise_kernel<MseLossBackward>", pred.elements(),
        3 * pred.bytes(), 2.0));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
fusedSoftmaxNll(OpEnv &env, const Tensor &logits)
{
    const std::int64_t d = logits.shape.back();
    const std::int64_t rows =
        logits.elements() / std::max<std::int64_t>(1, d);

    OpSpec spec;
    spec.name = "compiled::fused_softmax_nll_loss";
    Tensor out = env.newTensor({1}, logits.dtype);
    // One pass over the logits instead of three.
    spec.forward_kernels.push_back(kernels::rowReduction(
        "triton_fused_softmax_nll", rows, d,
        logits.bytes() + logits.bytes() / 8));

    BackwardOp bwd;
    bwd.name = "FusedSoftmaxNllBackward";
    bwd.kernels.push_back(kernels::rowReduction(
        "triton_fused_softmax_nll_backward", rows, d,
        2 * logits.bytes()));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

namespace {

OpSpec
indexingOp(OpEnv &env, const Tensor &table, std::int64_t lookups,
           double avg_duplicates, bool deterministic)
{
    DC_CHECK(table.shape.size() == 2, "indexing expects a 2-D table");
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(table.shape[1]) * dtypeSize(table.dtype);

    OpSpec spec;
    spec.name = deterministic ? "aten::index" : "aten::index_select";
    Tensor out =
        env.newTensor({lookups, table.shape[1]}, table.dtype);
    spec.forward_kernels.push_back(kernels::gather(
        deterministic ? "index_elementwise_kernel"
                      : "indexSelectLargeIndex",
        lookups, row_bytes));

    BackwardOp bwd;
    bwd.name = deterministic ? "IndexBackward0" : "IndexSelectBackward0";
    if (deterministic) {
        // The deterministic kernel sorts and serializes threads that hit
        // the same row: execution time scales with the duplicate count
        // (GitHub issue #41162 referenced by the paper).
        bwd.kernels.push_back(kernels::scatter(
            "indexing_backward_kernel", lookups, row_bytes,
            /*serialization=*/std::max(1.0, avg_duplicates),
            /*atomic=*/1.0));
    } else {
        // index_select's backward scatters with atomics; contention adds
        // a modest constant factor instead of full serialization.
        bwd.kernels.push_back(kernels::scatter(
            "indexSelectLargeIndexBackward", lookups, row_bytes,
            /*serialization=*/1.0,
            /*atomic=*/1.0 + 0.05 * std::log2(
                std::max(1.0, avg_duplicates))));
    }
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

} // namespace

OpSpec
index(OpEnv &env, const Tensor &table, std::int64_t lookups,
      double avg_duplicates)
{
    return indexingOp(env, table, lookups, avg_duplicates,
                      /*deterministic=*/true);
}

OpSpec
indexSelect(OpEnv &env, const Tensor &table, std::int64_t lookups,
            double avg_duplicates)
{
    return indexingOp(env, table, lookups, avg_duplicates,
                      /*deterministic=*/false);
}

OpSpec
scatterAdd(OpEnv &env, const Tensor &src, std::int64_t updates,
           double avg_duplicates)
{
    const std::uint64_t row_bytes =
        src.shape.size() >= 2
            ? static_cast<std::uint64_t>(src.shape.back()) *
                  dtypeSize(src.dtype)
            : dtypeSize(src.dtype);

    OpSpec spec;
    spec.name = "aten::scatter_add";
    Tensor out = env.newTensor(src.shape, src.dtype);
    spec.forward_kernels.push_back(kernels::scatter(
        "scatter_add_kernel", updates, row_bytes, 1.0,
        1.0 + 0.05 * std::log2(std::max(1.0, avg_duplicates))));

    BackwardOp bwd;
    bwd.name = "ScatterAddBackward0";
    bwd.kernels.push_back(
        kernels::gather("gather_kernel", updates, row_bytes));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

namespace {

OpSpec
pool2d(OpEnv &env, const Tensor &x, int kernel, const char *op_name,
       const char *kernel_name, const char *backward_name)
{
    DC_CHECK(x.shape.size() == 4, "pool expects 4-D input");
    OpSpec spec;
    spec.name = op_name;
    Tensor out = env.newTensor(
        {x.shape[0], x.shape[1], x.shape[2] / kernel, x.shape[3] / kernel},
        x.dtype, x.format);
    spec.forward_kernels.push_back(kernels::elementwise(
        kernel_name, x.elements(), x.bytes() + out.bytes(), 1.0));

    BackwardOp bwd;
    bwd.name = backward_name;
    bwd.kernels.push_back(kernels::elementwise(
        "elementwise_kernel<PoolBackward>", x.elements(),
        x.bytes() + out.bytes(), 1.0));
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

} // namespace

OpSpec
maxPool2d(OpEnv &env, const Tensor &x, int kernel)
{
    return pool2d(env, x, kernel, "aten::max_pool2d",
                  "max_pool_forward_nchw",
                  "MaxPool2DWithIndicesBackward0");
}

OpSpec
avgPool2d(OpEnv &env, const Tensor &x, int kernel)
{
    return pool2d(env, x, kernel, "aten::avg_pool2d",
                  "avg_pool2d_out_cuda_frame",
                  "AvgPool2DBackward0");
}

OpSpec
cat(OpEnv &env, const std::vector<Tensor> &inputs)
{
    DC_CHECK(!inputs.empty(), "cat of nothing");
    Shape out_shape = inputs.front().shape;
    std::int64_t channel_sum = 0;
    std::uint64_t total_bytes = 0;
    for (const Tensor &t : inputs) {
        channel_sum += t.shape.size() > 1 ? t.shape[1] : t.shape[0];
        total_bytes += t.bytes();
    }
    if (out_shape.size() > 1)
        out_shape[1] = channel_sum;
    else
        out_shape[0] = channel_sum;

    OpSpec spec;
    spec.name = "aten::cat";
    Tensor out = env.newTensor(out_shape, inputs.front().dtype,
                               inputs.front().format);
    spec.forward_kernels.push_back(kernels::elementwise(
        "CatArrayBatchedCopy", out.elements(), 2 * total_bytes, 0.0));
    spec.backward.push_back(BackwardOp{"CatBackward0", {}});
    spec.outputs.push_back(out);
    return spec;
}

OpSpec
sdpaFlash(OpEnv &env, const Tensor &q, const Tensor &k, const Tensor &v)
{
    DC_CHECK(q.shape.size() == 4, "sdpa expects [B, heads, S, Dh]");
    const std::int64_t b = q.shape[0];
    const std::int64_t heads = q.shape[1];
    const std::int64_t s = q.shape[2];
    const std::int64_t dh = q.shape[3];
    (void)k;
    (void)v;

    OpSpec spec;
    spec.name = "aten::scaled_dot_product_attention";
    Tensor out = env.newTensor(q.shape, q.dtype);

    sim::KernelDesc main;
    main.name = "flash_fwd_kernel";
    main.kind = sim::KernelKind::kCompute;
    main.grid = static_cast<std::uint64_t>(b * heads) *
                ceilDiv(static_cast<std::uint64_t>(s), 128);
    main.block = 256;
    main.regs_per_thread = 160;
    main.shared_mem_bytes = 96 * 1024;
    main.uses_tensor_cores = true;
    main.flops = 4.0 * static_cast<double>(b * heads) *
                 static_cast<double>(s) * static_cast<double>(s) *
                 static_cast<double>(dh);
    main.bytes_read = 3 * q.bytes();
    main.bytes_written = out.bytes();
    spec.forward_kernels.push_back(main);

    BackwardOp bwd;
    bwd.name = "ScaledDotProductFlashAttentionBackward0";
    sim::KernelDesc bk = main;
    bk.name = "flash_bwd_kernel";
    bk.flops *= 2.5;
    bk.bytes_read = 4 * q.bytes();
    bk.bytes_written = 3 * q.bytes();
    bwd.kernels.push_back(bk);
    spec.backward.push_back(std::move(bwd));

    spec.outputs.push_back(out);
    return spec;
}

OpSpec
adamStep(OpEnv &env, std::uint64_t param_bytes)
{
    OpSpec spec;
    spec.name = "optim::adam_step";
    Tensor out = env.newTensor({1}, Dtype::kF32);
    const std::int64_t elems =
        static_cast<std::int64_t>(param_bytes / 4);
    // Parameters + exp_avg + exp_avg_sq each read and written.
    spec.forward_kernels.push_back(kernels::elementwise(
        "multi_tensor_apply_kernel<AdamFunctor>", elems, 6 * param_bytes,
        8.0));
    spec.outputs.push_back(out);
    return spec;
}

OpSpec
contiguous(OpEnv &env, const Tensor &x, MemoryFormat format)
{
    OpSpec spec;
    spec.name = "aten::contiguous";
    Tensor out = env.newTensor(x.shape, x.dtype, format);
    spec.forward_kernels.push_back(kernels::layoutConversion(
        env.arch->vendor == sim::GpuVendor::kNvidia
            ? "cudnn::nchwToNhwcKernel"
            : "miopen::transposeNhwcToNchw",
        2 * x.bytes()));
    spec.backward.push_back(BackwardOp{"ContiguousBackward", {}});
    spec.outputs.push_back(out);
    return spec;
}

} // namespace ops
} // namespace dc::fw

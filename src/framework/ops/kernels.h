#pragma once

/**
 * @file
 * Kernel-geometry helpers shared by the operator builders.
 *
 * Each helper produces a KernelDesc with launch geometry and volumes that
 * follow the conventions of real PyTorch/cuDNN/MIOpen kernels closely
 * enough that the cost model's occupancy and roofline terms respond the
 * way the paper's case studies describe.
 */

#include <string>

#include "framework/tensor/tensor.h"
#include "sim/gpu/kernel.h"

namespace dc::fw::kernels {

/** Elementwise map kernel: @p elems elements, @p bytes total traffic. */
sim::KernelDesc elementwise(const std::string &name, std::int64_t elems,
                            std::uint64_t bytes, double flops_per_elem = 1.0);

/** Dense GEMM kernel (optionally on the matrix units). */
sim::KernelDesc gemm(const std::string &name, std::int64_t m, std::int64_t n,
                     std::int64_t k, std::size_t elem_size,
                     bool tensor_cores = true);

/** Row-wise reduction kernel over a [rows, cols] view. */
sim::KernelDesc rowReduction(const std::string &name, std::int64_t rows,
                             std::int64_t cols, std::uint64_t bytes);

/** Pure layout-conversion kernel (nchwToNhwc and friends). */
sim::KernelDesc layoutConversion(const std::string &name,
                                 std::uint64_t tensor_bytes);

/** Gather kernel: @p rows lookups of @p row_bytes each. */
sim::KernelDesc gather(const std::string &name, std::int64_t rows,
                       std::uint64_t row_bytes);

/**
 * Scatter kernel. @p serialization > 1 models the deterministic
 * duplicate-index serialization of indexing_backward_kernel; @p atomic
 * models the contended-atomic alternative.
 */
sim::KernelDesc scatter(const std::string &name, std::int64_t rows,
                        std::uint64_t row_bytes, double serialization,
                        double atomic);

} // namespace dc::fw::kernels

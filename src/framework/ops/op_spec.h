#pragma once

/**
 * @file
 * Operator specifications: the framework-agnostic unit both simulated
 * frameworks execute.
 *
 * An OpSpec is one planned operator invocation: its name (aten::-style),
 * output tensors (metadata only; executors allocate), the GPU kernels the
 * forward pass launches, and the backward operator plan autograd will run.
 * Builders for every operator live in op_library.h; keeping the planning
 * in one place is what lets torchsim (eager) and jaxsim (traced+fused)
 * run identical models, which the cross-framework comparison (§6.6)
 * depends on.
 */

#include <string>
#include <vector>

#include "common/types.h"
#include "framework/tensor/tensor.h"
#include "sim/gpu/gpu_arch.h"
#include "sim/gpu/kernel.h"

namespace dc::fw {

/** The backward operator generated for one forward operator. */
struct BackwardOp {
    std::string name;                       ///< e.g. "ConvolutionBackward0".
    std::vector<sim::KernelDesc> kernels;   ///< Kernels it launches.
};

/** One planned operator invocation. */
struct OpSpec {
    std::string name;                       ///< e.g. "aten::conv2d".
    std::vector<Tensor> outputs;
    std::vector<sim::KernelDesc> forward_kernels;
    std::vector<BackwardOp> backward;       ///< Empty if not differentiable.

    /// True for ops whose kernels can be fused with neighbours by a JIT
    /// compiler (elementwise / normalization / small reductions). The
    /// jaxsim fusion pass consults this.
    bool fusable = false;

    const Tensor &
    output() const
    {
        return outputs.front();
    }

    /// Sum of forward kernel DRAM traffic (used by the fusion pass).
    std::uint64_t forwardBytes() const;

    /// Sum of forward kernel flops.
    double forwardFlops() const;
};

/**
 * Environment an op builder plans against: target architecture, tensor-id
 * generation, and the behavioural knobs the case studies flip.
 */
struct OpEnv {
    const sim::GpuArch *arch = nullptr;
    std::uint64_t next_tensor_id = 1;

    /// §6.5 fix: pack one channel per CTA in the norm templates on AMD
    /// (default templates derive CTA count from the warp size).
    bool norm_cta_fix = false;

    /// §6.7 fix: use vectorized data-type conversion instructions.
    bool vectorized_casts = false;

    /** Create a fresh output tensor on the current device. */
    Tensor
    newTensor(Shape shape, Dtype dtype,
              MemoryFormat format = MemoryFormat::kContiguous)
    {
        Tensor t;
        t.id = next_tensor_id++;
        t.shape = std::move(shape);
        t.dtype = dtype;
        t.format = format;
        return t;
    }

    /** Layout the convolution backend prefers on this architecture. */
    MemoryFormat
    preferredConvLayout() const
    {
        // cuDNN tensor cores want NHWC; MIOpen's fastest paths are NCHW.
        return arch->vendor == sim::GpuVendor::kNvidia
                   ? MemoryFormat::kChannelsLast
                   : MemoryFormat::kChannelsFirst;
    }
};

} // namespace dc::fw

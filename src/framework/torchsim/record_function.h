#pragma once

/**
 * @file
 * RecordFunction-style global callbacks.
 *
 * PyTorch's aten::addGlobalCallback lets tools observe every operator
 * dispatch without modifying framework source — the exact mechanism
 * DLMonitor uses for PyTorch (Section 4.1, "Intercepting Framework
 * Operations"). This reproduction fires the same begin/end pairs around
 * operators, autograd nodes, graph compilations, and tensor allocations.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace dc::fw {

/** Phase of a record event. */
enum class RecordPhase {
    kBegin,
    kEnd,
};

/** What kind of framework activity the event describes. */
enum class RecordKind {
    kOperator,       ///< A deep-learning operator (forward or backward).
    kMemory,         ///< Tensor allocation / deallocation.
    kGraphCompile,   ///< JIT graph compilation window.
};

/** One framework interception event. */
struct RecordEvent {
    RecordPhase phase = RecordPhase::kBegin;
    RecordKind kind = RecordKind::kOperator;
    std::string name;           ///< Operator or event name.
    SequenceId seq = 0;         ///< Autograd sequence number.
    bool is_backward = false;   ///< True on the autograd engine thread.
    Pc op_pc = 0;               ///< Native PC of the dispatch symbol; the
                                ///< merge algorithm matches operators to
                                ///< native frames through this address.
    std::uint64_t bytes = 0;    ///< Memory events: size.
    std::int64_t alloc_delta = 0; ///< Memory events: +alloc / -free.
};

/** Observer signature. */
using RecordCallback = std::function<void(const RecordEvent &)>;

/** Registry of global callbacks (the addGlobalCallback surface). */
class RecordFunctionRegistry
{
  public:
    /** Register a callback; returns a handle for removal. */
    int
    addGlobalCallback(RecordCallback callback)
    {
        const int handle = next_handle_++;
        callbacks_.emplace_back(handle, std::move(callback));
        return handle;
    }

    /** Remove a callback by handle. */
    void
    removeGlobalCallback(int handle)
    {
        std::erase_if(callbacks_, [handle](const auto &entry) {
            return entry.first == handle;
        });
    }

    /** Number of live callbacks. */
    std::size_t size() const { return callbacks_.size(); }

    /** Fire an event to all callbacks. */
    void
    fire(const RecordEvent &event) const
    {
        for (const auto &[handle, callback] : callbacks_)
            callback(event);
    }

  private:
    std::vector<std::pair<int, RecordCallback>> callbacks_;
    int next_handle_ = 1;
};

} // namespace dc::fw

#include "framework/torchsim/torch_session.h"

#include <algorithm>

#include "common/logging.h"

namespace dc::fw {

namespace {

constexpr const char *kTorchLibrary = "libtorch_sim.so";

/** "aten::conv2d" -> "at::_ops::conv2d::call". */
std::string
dispatchSymbol(const std::string &op_name)
{
    std::string base = op_name;
    const std::size_t pos = base.find("::");
    if (pos != std::string::npos)
        base = base.substr(pos + 2);
    return "at::_ops::" + base + "::call";
}

} // namespace

TorchSession::TorchSession(sim::SimContext &ctx, sim::GpuRuntime &runtime,
                           TorchConfig config)
    : ctx_(ctx), runtime_(runtime), config_(config)
{
    DC_CHECK(config_.device >= 0 &&
                 config_.device < static_cast<int>(ctx_.deviceCount()),
             "torch session bound to unknown device ", config_.device);
    env_.arch = &ctx_.device(config_.device).arch();

    torch_lib_ = ctx_.libraries().registerLibrary(kTorchLibrary, 64 << 20);
    engine_pc_ = ctx_.libraries().registerSymbol(
        torch_lib_, "torch::autograd::Engine::thread_main", 2048);
    node_apply_pc_ = ctx_.libraries().registerSymbol(
        torch_lib_, "torch::autograd::Node::operator()", 2048);
}

Pc
TorchSession::opDispatchPc(const std::string &op_name)
{
    return ctx_.libraries().registerSymbol(torch_lib_,
                                           dispatchSymbol(op_name));
}

void
TorchSession::fire(const RecordEvent &event)
{
    record_registry_.fire(event);
}

Tensor
TorchSession::parameter(Shape shape, Dtype dtype, MemoryFormat format)
{
    Tensor t = env_.newTensor(std::move(shape), dtype, format);
    t.device = config_.device;
    t.requires_grad = config_.training;
    ctx_.device(config_.device).allocate(t.bytes());
    persistent_bytes_ += t.bytes();

    RecordEvent event;
    event.kind = RecordKind::kMemory;
    event.name = "alloc";
    event.bytes = t.bytes();
    event.alloc_delta = static_cast<std::int64_t>(t.bytes());
    event.phase = RecordPhase::kBegin;
    fire(event);
    return t;
}

Tensor
TorchSession::input(Shape shape, Dtype dtype, MemoryFormat format)
{
    Tensor t = env_.newTensor(std::move(shape), dtype, format);
    t.device = config_.device;
    ctx_.device(config_.device).allocate(t.bytes());
    iteration_bytes_ += t.bytes();

    RecordEvent event;
    event.kind = RecordKind::kMemory;
    event.name = "alloc";
    event.bytes = t.bytes();
    event.alloc_delta = static_cast<std::int64_t>(t.bytes());
    event.phase = RecordPhase::kBegin;
    fire(event);
    return t;
}

void
TorchSession::allocateOutputs(const OpSpec &spec)
{
    for (const Tensor &out : spec.outputs) {
        ctx_.device(config_.device).allocate(out.bytes());
        iteration_bytes_ += out.bytes();
    }
}

void
TorchSession::launchKernels(const std::vector<sim::KernelDesc> &kernels)
{
    for (const sim::KernelDesc &kernel : kernels) {
        ctx_.advanceCpu(config_.per_kernel_cpu_ns);
        runtime_.launchKernel(config_.device, config_.stream, kernel);
    }
}

Tensor
TorchSession::run(const OpSpec &spec)
{
    const SequenceId seq = next_seq_++;
    ++op_count_;

    // The eager dispatcher's native frames.
    sim::NativeStack &native = ctx_.currentThread().nativeStack();
    const Pc op_pc = opDispatchPc(spec.name);
    sim::NativeScope dispatch_frame(native, op_pc);
    sim::NativeScope impl_frame(
        native, ctx_.libraries().registerSymbol(
                    torch_lib_, "at::native::" + spec.name.substr(
                                    spec.name.find("::") + 2) + "_cuda"));

    RecordEvent begin;
    begin.phase = RecordPhase::kBegin;
    begin.kind = RecordKind::kOperator;
    begin.name = spec.name;
    begin.seq = seq;
    begin.op_pc = op_pc;
    fire(begin);

    ctx_.advanceCpu(config_.dispatch_cost_ns);
    allocateOutputs(spec);
    launchKernels(spec.forward_kernels);

    RecordEvent end = begin;
    end.phase = RecordPhase::kEnd;
    fire(end);

    if (config_.training && !spec.backward.empty()) {
        TapeEntry entry;
        entry.seq = seq;
        entry.forward_name = spec.name;
        entry.backward_ops = spec.backward;
        tape_.push_back(std::move(entry));
    }

    DC_CHECK(!spec.outputs.empty(), "op ", spec.name, " has no outputs");
    Tensor out = spec.outputs.front();
    out.device = config_.device;
    out.requires_grad = config_.training;
    return out;
}

void
TorchSession::backward()
{
    if (tape_.empty())
        return;

    if (!backward_thread_created_) {
        // One autograd engine thread per device, created on first use.
        sim::SimThread &thread = ctx_.createThread(
            "autograd_engine_dev" + std::to_string(config_.device),
            sim::ThreadKind::kBackward, /*on_critical_path=*/true);
        backward_thread_ = thread.id();
        backward_thread_created_ = true;
    }

    // loss.backward() blocks the calling thread while the engine thread
    // runs, so the engine work stays on the critical path.
    sim::ThreadSwitch switch_to_engine(ctx_, backward_thread_);
    sim::NativeStack &native = ctx_.currentThread().nativeStack();
    sim::NativeScope engine_frame(native, engine_pc_);

    for (auto it = tape_.rbegin(); it != tape_.rend(); ++it) {
        for (const BackwardOp &bwd : it->backward_ops) {
            sim::NativeScope node_frame(native, node_apply_pc_);
            const Pc op_pc = ctx_.libraries().registerSymbol(
                torch_lib_, "torch::autograd::generated::" + bwd.name);
            sim::NativeScope apply_frame(native, op_pc);

            RecordEvent begin;
            begin.phase = RecordPhase::kBegin;
            begin.kind = RecordKind::kOperator;
            begin.name = bwd.name;
            begin.seq = it->seq;
            begin.is_backward = true;
            begin.op_pc = op_pc;
            fire(begin);
            ++op_count_;

            ctx_.advanceCpu(config_.backward_node_cost_ns);
            launchKernels(bwd.kernels);

            RecordEvent end = begin;
            end.phase = RecordPhase::kEnd;
            fire(end);
        }
    }
    tape_.clear();
}

void
TorchSession::endIteration()
{
    if (iteration_bytes_ > 0) {
        ctx_.device(config_.device).release(iteration_bytes_);

        RecordEvent event;
        event.kind = RecordKind::kMemory;
        event.name = "free";
        event.bytes = iteration_bytes_;
        event.alloc_delta = -static_cast<std::int64_t>(iteration_bytes_);
        event.phase = RecordPhase::kBegin;
        fire(event);
        iteration_bytes_ = 0;
    }
    tape_.clear();
}

void
TorchSession::synchronize()
{
    runtime_.deviceSynchronize(config_.device);
}

} // namespace dc::fw

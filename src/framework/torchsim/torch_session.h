#pragma once

/**
 * @file
 * The eager (PyTorch-like) framework.
 *
 * Executes OpSpecs one at a time: each run() dispatches through simulated
 * libtorch native frames, fires RecordFunction callbacks, charges eager
 * dispatch CPU time, allocates outputs, launches the planned kernels, and
 * records a tape entry. backward() replays the tape on a dedicated
 * backward thread whose native context has no Python frames — the exact
 * situation DeepContext's forward/backward association solves
 * (Section 4.1).
 */

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "framework/ops/op_spec.h"
#include "framework/torchsim/record_function.h"
#include "sim/runtime/gpu_runtime.h"
#include "sim/sim_context.h"

namespace dc::fw {

/** Eager-engine tuning knobs (virtual-time costs). */
struct TorchConfig {
    int device = 0;
    int stream = 0;
    bool training = true;
    /// Eager dispatcher cost per operator call.
    DurationNs dispatch_cost_ns = 26'000;
    /// Extra CPU per launched kernel (arg marshalling).
    DurationNs per_kernel_cpu_ns = 3'000;
    /// Autograd engine cost per backward node.
    DurationNs backward_node_cost_ns = 18'000;
};

/** One entry on the autograd tape. */
struct TapeEntry {
    SequenceId seq = 0;
    std::string forward_name;
    std::vector<BackwardOp> backward_ops;
};

/** The eager framework session (one model/process). */
class TorchSession
{
  public:
    TorchSession(sim::SimContext &ctx, sim::GpuRuntime &runtime,
                 TorchConfig config = {});

    sim::SimContext &context() { return ctx_; }
    sim::GpuRuntime &runtime() { return runtime_; }
    const TorchConfig &config() const { return config_; }
    OpEnv &opEnv() { return env_; }

    /** The aten::addGlobalCallback surface DLMonitor attaches to. */
    RecordFunctionRegistry &recordFunctions() { return record_registry_; }

    // --- Tensors -------------------------------------------------------

    /** Allocate a persistent tensor (parameters; freed at session end). */
    Tensor parameter(Shape shape, Dtype dtype = Dtype::kF32,
                     MemoryFormat format = MemoryFormat::kContiguous);

    /** Allocate a per-iteration tensor (inputs/activations). */
    Tensor input(Shape shape, Dtype dtype = Dtype::kF32,
                 MemoryFormat format = MemoryFormat::kContiguous);

    // --- Execution -----------------------------------------------------

    /**
     * Execute one planned operator eagerly. Returns the first output.
     * When training is enabled and the spec has a backward plan, a tape
     * entry is recorded.
     */
    Tensor run(const OpSpec &spec);

    /** Run the tape on the backward thread (loss.backward()). */
    void backward();

    /** Free this iteration's activations and reset the tape. */
    void endIteration();

    /** Device-synchronize the session's device. */
    void synchronize();

    /** Sequence number that will be assigned to the next operator. */
    SequenceId nextSequence() const { return next_seq_; }

    /** Total operators dispatched (forward + backward). */
    std::uint64_t opCount() const { return op_count_; }

    /** The backward thread id (created lazily; 0 means none yet). */
    ThreadId backwardThread() const { return backward_thread_; }

  private:
    Pc opDispatchPc(const std::string &op_name);
    void fire(const RecordEvent &event);
    void allocateOutputs(const OpSpec &spec);
    void launchKernels(const std::vector<sim::KernelDesc> &kernels);

    sim::SimContext &ctx_;
    sim::GpuRuntime &runtime_;
    TorchConfig config_;
    OpEnv env_;
    RecordFunctionRegistry record_registry_;

    int torch_lib_ = -1;
    Pc engine_pc_ = 0;
    Pc node_apply_pc_ = 0;

    SequenceId next_seq_ = 1;
    std::uint64_t op_count_ = 0;
    std::vector<TapeEntry> tape_;

    std::uint64_t iteration_bytes_ = 0;   ///< Live activation bytes.
    std::uint64_t persistent_bytes_ = 0;  ///< Parameter bytes.

    ThreadId backward_thread_ = 0;
    bool backward_thread_created_ = false;
};

} // namespace dc::fw

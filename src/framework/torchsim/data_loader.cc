#include "framework/torchsim/data_loader.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/cpu/cpu_info.h"

namespace dc::fw {

DataLoader::DataLoader(sim::SimContext &ctx,
                       const pyrt::PyInterpreter &interp,
                       DataLoaderConfig config)
    : ctx_(ctx), interp_(interp), config_(config)
{
    DC_CHECK(config_.num_workers > 0, "data loader needs workers");
    for (int i = 0; i < config_.num_workers; ++i) {
        sim::SimThread &worker = ctx_.createThread(
            "loader_worker_" + std::to_string(i),
            sim::ThreadKind::kLoaderWorker,
            /*on_critical_path=*/false);
        workers_.push_back(worker.id());
    }
    ctx_.hostMemory().allocate("dataloader", config_.host_buffer_bytes);
}

DataLoader::~DataLoader()
{
    ctx_.hostMemory().release("dataloader", config_.host_buffer_bytes);
}

DurationNs
DataLoader::batchPrepTime() const
{
    // Work is divided across workers, capped by available cores (one core
    // is kept busy by the main thread), then inflated by the scheduling
    // overhead of oversubscription.
    const int cores = std::max(1, ctx_.cpu().physical_cores - 1);
    const int effective = std::min(config_.num_workers, cores);
    const double factor = sim::schedulingOverheadFactor(
        config_.num_workers, cores);
    return static_cast<DurationNs>(
        static_cast<double>(config_.cpu_work_per_batch_ns) /
        static_cast<double>(effective) * factor);
}

void
DataLoader::chargeWorkerTime()
{
    // Total CPU burned, including the oversubscription penalty, spread
    // evenly across workers under the loader's Python call path.
    const int cores = std::max(1, ctx_.cpu().physical_cores - 1);
    const double factor = sim::schedulingOverheadFactor(
        config_.num_workers, cores);
    const DurationNs total = static_cast<DurationNs>(
        static_cast<double>(config_.cpu_work_per_batch_ns) * factor);
    const DurationNs per_worker = total / config_.num_workers;

    for (ThreadId id : workers_) {
        sim::ThreadSwitch to_worker(ctx_, id);
        sim::SimThread &worker = ctx_.currentThread();
        pyrt::PyScope loop(worker.pyStack(), worker.nativeStack(), interp_,
                           {"dataloader.py", "_worker_loop", 281});
        pyrt::PyScope select(worker.pyStack(), worker.nativeStack(),
                             interp_,
                             {config_.python_file, "data_selection", 74});
        ctx_.advanceCpu(per_worker);
    }
}

void
DataLoader::nextBatch(DurationNs compute_time_hint)
{
    const DurationNs prep = batchPrepTime();

    if (!first_batch_done_) {
        // Cold start: the whole first window is read from disk and
        // prepared while the GPU idles.
        const DurationNs stall = config_.first_batch_disk_ns + prep;
        ctx_.advanceWall(stall);
        total_stall_ += stall;
        chargeWorkerTime();
        first_batch_done_ = true;
        return;
    }

    // Steady state: workers prefetched during the previous iteration's
    // compute; the caller only stalls for the part that did not fit.
    const DurationNs stall = std::max<DurationNs>(
        0, prep - std::max<DurationNs>(0, compute_time_hint));
    if (stall > 0) {
        ctx_.advanceWall(stall);
        total_stall_ += stall;
    }
    chargeWorkerTime();
}

} // namespace dc::fw

#pragma once

/**
 * @file
 * Simulated multi-worker data loader.
 *
 * Models PyTorch's DataLoader timing: a cold first batch that reads from
 * disk while the GPU idles, prefetched subsequent batches that overlap
 * with compute, per-batch CPU work divided across worker threads, and a
 * scheduling-overhead penalty when workers oversubscribe the allocated
 * cores — the mechanism behind the Section 6.4 case study (16 hard-coded
 * workers on a 6-core allocation).
 *
 * Worker CPU time is attributed to worker SimThreads under a
 * data_selection Python call path, so CPU_TIME samplers see exactly what
 * the paper's CPU-latency analysis saw.
 */

#include <string>
#include <vector>

#include "common/types.h"
#include "pyrt/py_interp.h"
#include "sim/sim_context.h"

namespace dc::fw {

/** Data-loader configuration. */
struct DataLoaderConfig {
    int num_workers = 4;
    std::uint64_t batch_bytes = 64ull << 20;
    /// Total CPU work (decode/augment) to produce one batch.
    DurationNs cpu_work_per_batch_ns = 80 * kNsPerMs;
    /// Cold read of the first window from disk.
    DurationNs first_batch_disk_ns = 10 * kNsPerSec;
    /// Host-memory footprint of loader buffers (prefetch queue).
    std::uint64_t host_buffer_bytes = 512ull << 20;
    /// Python file shown in the loader call path.
    std::string python_file = "input_pipeline.py";
};

/** The loader. Create one per run; call nextBatch() once per iteration. */
class DataLoader
{
  public:
    DataLoader(sim::SimContext &ctx, const pyrt::PyInterpreter &interp,
               DataLoaderConfig config);
    ~DataLoader();

    DataLoader(const DataLoader &) = delete;
    DataLoader &operator=(const DataLoader &) = delete;

    /**
     * Produce the next batch. Advances the wall clock by any stall the
     * caller would experience (cold first batch, or prefetch not ready),
     * and charges worker CPU time under the data_selection call path.
     *
     * @param compute_time_hint How long the previous iteration's compute
     *        took; prefetch overlaps with it.
     */
    void nextBatch(DurationNs compute_time_hint);

    /** Wall-clock time spent stalled waiting for data so far. */
    DurationNs totalStall() const { return total_stall_; }

    /** Per-batch preparation latency under the current configuration. */
    DurationNs batchPrepTime() const;

    int numWorkers() const { return config_.num_workers; }

  private:
    void chargeWorkerTime();

    sim::SimContext &ctx_;
    const pyrt::PyInterpreter &interp_;
    DataLoaderConfig config_;
    std::vector<ThreadId> workers_;
    bool first_batch_done_ = false;
    DurationNs total_stall_ = 0;
};

} // namespace dc::fw

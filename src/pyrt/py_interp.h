#pragma once

/**
 * @file
 * Simulated Python interpreter: the libpython address-space registration
 * the loader-based merge algorithm relies on, and the RAII scope that
 * mirrors Python frames onto the native stack.
 *
 * DeepContext obtains the Python call path "using CPython's PyFrame-related
 * APIs" and detects the interpreter by checking whether native PCs fall in
 * the libpython address space recorded via LD_AUDIT (Section 4.1). Here
 * libpython is a simulated library image whose evaluator symbol is pushed
 * onto the native stack whenever Python "executes".
 */

#include <string>

#include "common/types.h"
#include "pyrt/py_frame.h"
#include "pyrt/py_stack.h"
#include "sim/loader/library_registry.h"
#include "sim/loader/native_stack.h"

namespace dc::pyrt {

/**
 * Process-wide interpreter state: owns the simulated libpython image so
 * the evaluator PC can be pushed on native stacks, letting the merge
 * algorithm detect "frames within the libpython address space".
 */
class PyInterpreter
{
  public:
    static constexpr const char *kLibraryName = "libpython3.11_sim.so";

    /** Map libpython into @p registry and mark it as the Python library. */
    explicit PyInterpreter(sim::LibraryRegistry &registry);

    /** PC of the simulated PyEval_EvalFrameDefault. */
    Pc evalFramePc() const { return eval_frame_pc_; }

    /** PC of the simulated C-API trampoline used by extension calls. */
    Pc callFunctionPc() const { return call_function_pc_; }

  private:
    Pc eval_frame_pc_ = 0;
    Pc call_function_pc_ = 0;
};

/**
 * RAII scope that enters a Python frame on a thread: pushes the PyFrame
 * and mirrors the interpreter's native frame (PyEval_EvalFrameDefault)
 * on the thread's native stack, as a real CPython stack would show.
 */
class PyScope
{
  public:
    PyScope(PyStack &py_stack, sim::NativeStack &native_stack,
            const PyInterpreter &interp, PyFrame frame)
        : py_stack_(py_stack), native_stack_(native_stack)
    {
        py_stack_.push(frame);
        native_stack_.push(interp.evalFramePc());
    }

    ~PyScope()
    {
        native_stack_.pop();
        py_stack_.pop();
    }

    PyScope(const PyScope &) = delete;
    PyScope &operator=(const PyScope &) = delete;

  private:
    PyStack &py_stack_;
    sim::NativeStack &native_stack_;
};

} // namespace dc::pyrt

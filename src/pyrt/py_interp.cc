#include "pyrt/py_interp.h"

namespace dc::pyrt {

PyInterpreter::PyInterpreter(sim::LibraryRegistry &registry)
{
    const int lib = registry.registerLibrary(kLibraryName, 4 << 20);
    eval_frame_pc_ =
        registry.registerSymbol(lib, "_PyEval_EvalFrameDefault", 4096);
    call_function_pc_ =
        registry.registerSymbol(lib, "_PyObject_Call", 1024);
    registry.markPythonLibrary(kLibraryName);
}

} // namespace dc::pyrt

#pragma once

/**
 * @file
 * Simulated Python frames.
 *
 * DeepContext obtains the Python call path "using CPython's PyFrame-related
 * APIs" (Section 4.1). This module reproduces the interpreter-visible
 * state: a per-thread stack of frames, each naming a file, function, and
 * current line. Frames are compared by (file, line) when collapsed into
 * calling-context-tree nodes, exactly as the paper specifies.
 */

#include <string>

namespace dc::pyrt {

/** One Python frame as seen through the PyFrame API. */
struct PyFrame {
    std::string file;       ///< Source file, e.g. "train.py".
    std::string function;   ///< Function (co_name), e.g. "train_step".
    int line = 0;           ///< Currently executing line.

    bool
    operator==(const PyFrame &other) const
    {
        return file == other.file && line == other.line &&
               function == other.function;
    }
};

} // namespace dc::pyrt

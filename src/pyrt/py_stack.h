#pragma once

/**
 * @file
 * Per-thread Python frame stack (header-only; no simulator dependencies,
 * so the CPU-thread model can embed one without a library cycle).
 */

#include <cassert>
#include <vector>

#include "pyrt/py_frame.h"

namespace dc::pyrt {

/** Per-thread Python frame stack. */
class PyStack
{
  public:
    void push(const PyFrame &frame) { frames_.push_back(frame); }

    void
    pop()
    {
        assert(!frames_.empty());
        frames_.pop_back();
    }

    /** Update the line of the leaf frame (the interpreter's f_lineno). */
    void
    setLine(int line)
    {
        assert(!frames_.empty());
        frames_.back().line = line;
    }

    std::size_t depth() const { return frames_.size(); }
    bool empty() const { return frames_.empty(); }

    /** Root-to-leaf snapshot (index 0 = outermost frame, like __main__). */
    const std::vector<PyFrame> &frames() const { return frames_; }

    void clear() { frames_.clear(); }

  private:
    std::vector<PyFrame> frames_;
};

} // namespace dc::pyrt

#include "profiler/cct.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <new>
#include <unordered_map>

#include "common/logging.h"
#include "common/strings.h"

namespace dc::prof {

namespace {

/// Live bytes charged per node: the arena slot plus one sibling link's
/// share of bookkeeping. Strings live once in the tree's StringTable,
/// not per node.
constexpr std::uint64_t kNodeBytes = sizeof(CctNode);
/// Bytes charged per metric entry in a node's inline vector.
constexpr std::uint64_t kMetricBytes = sizeof(CctNode::MetricEntry);

/**
 * Arena chunk geometry. Chunks are allocated aligned to their own
 * (power-of-two) size, so a node recovers its chunk — and through the
 * header, the owning tree's string table — by masking its address:
 * report paths resolve names per node without an 8-byte table pointer
 * in every node.
 */
constexpr std::size_t kChunkBytes = 1 << 15;
/// Node slots start here; padded so they stay cache-line aligned.
constexpr std::size_t kChunkHeaderBytes = 64;
constexpr std::size_t kChunkNodes =
    (kChunkBytes - kChunkHeaderBytes) / sizeof(CctNode);

struct ChunkHeader {
    StringTable *names;
};
static_assert(sizeof(ChunkHeader) <= kChunkHeaderBytes);
static_assert(kChunkHeaderBytes % alignof(CctNode) == 0);
static_assert(kChunkNodes > 0);

CctNode *
chunkNodes(unsigned char *chunk)
{
    return std::launder(
        reinterpret_cast<CctNode *>(chunk + kChunkHeaderBytes));
}

} // namespace

/**
 * Lazily-built src-table → dst-table id mapping for merging trees that
 * intern through different StringTables (a handed-off profile rebound
 * onto a store's corpus table, or partial merges across corpora). Each
 * distinct source id pays one str() + intern() once; every further
 * occurrence is a hash-map hit.
 */
class NameTranslator
{
  public:
    NameTranslator(const StringTable &src, StringTable &dst)
        : src_(src), dst_(dst)
    {
    }

    dlmon::FrameKey
    key(const dlmon::FrameKey &key)
    {
        dlmon::FrameKey out = key;
        out.file_id = map(key.file_id);
        out.name_id = map(key.name_id);
        return out;
    }

  private:
    StringTable::Id
    map(StringTable::Id id)
    {
        if (id == StringTable::kEmpty)
            return id;
        auto [it, fresh] = cache_.emplace(id, StringTable::kEmpty);
        if (fresh)
            it->second = dst_.intern(src_.str(id));
        return it->second;
    }

    const StringTable &src_;
    StringTable &dst_;
    std::unordered_map<StringTable::Id, StringTable::Id> cache_;
};

// ------------------------------------------------------------- CctNode

StringTable &
CctNode::names() const
{
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(this) &
        ~static_cast<std::uintptr_t>(kChunkBytes - 1);
    return *reinterpret_cast<const ChunkHeader *>(base)->names;
}

dlmon::Frame
CctNode::frame() const
{
    return key_.toFrame(names());
}

const std::string &
CctNode::name() const
{
    return names().str(key_.name_id);
}

const std::string &
CctNode::file() const
{
    return names().str(key_.file_id);
}

std::string
CctNode::label() const
{
    switch (key_.kind) {
      case dlmon::FrameKind::kPython:
        return strformat("%s:%d (%s)", file().c_str(), key_.aux,
                         name().c_str());
      case dlmon::FrameKind::kNative:
        return name().empty()
                   ? strformat("pc:0x%llx",
                               static_cast<unsigned long long>(key_.pc))
                   : name();
      case dlmon::FrameKind::kOperator:
      case dlmon::FrameKind::kGpuApi:
      case dlmon::FrameKind::kKernel:
        return name();
      case dlmon::FrameKind::kInstruction:
        return strformat("pc+0x%llx",
                         static_cast<unsigned long long>(key_.pc));
    }
    return "?";
}

CctNode *
CctNode::findChild(const dlmon::FrameKey &key)
{
    if (slots_.empty()) {
        for (CctNode *child = first_child_; child != nullptr;
             child = child->next_sibling_) {
            if (child->key_ == key)
                return child;
        }
        return nullptr;
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t index = key.hash() & mask;
    while (slots_[index] != nullptr) {
        if (slots_[index]->key_ == key)
            return slots_[index];
        index = (index + 1) & mask;
    }
    return nullptr;
}

const CctNode *
CctNode::findChild(const dlmon::FrameKey &key) const
{
    return const_cast<CctNode *>(this)->findChild(key);
}

CctNode *
CctNode::findChild(const dlmon::Frame &frame)
{
    // Pure lookup: the location-only key resolves through the owning
    // tree's table without interning anything into it.
    return findChild(dlmon::FrameKey::locator(frame, names()));
}

const CctNode *
CctNode::findChild(const dlmon::Frame &frame) const
{
    return const_cast<CctNode *>(this)->findChild(
        dlmon::FrameKey::locator(frame, names()));
}

void
CctNode::placeSlot(CctNode *child)
{
    const std::size_t mask = slots_.size() - 1;
    std::size_t index = child->key_.hash() & mask;
    while (slots_[index] != nullptr)
        index = (index + 1) & mask;
    slots_[index] = child;
}

void
CctNode::rebuildSlots(std::size_t capacity)
{
    slots_.assign(capacity, nullptr);
    for (CctNode *child = first_child_; child != nullptr;
         child = child->next_sibling_) {
        placeSlot(child);
    }
}

std::uint64_t
CctNode::linkChild(CctNode *child)
{
    if (last_child_ != nullptr)
        last_child_->next_sibling_ = child;
    else
        first_child_ = child;
    last_child_ = child;
    ++child_count_;

    std::uint64_t table_bytes = 0;
    if (!slots_.empty()) {
        // Keep the load factor under 3/4 so probes stay short.
        if (child_count_ * 4 >= slots_.size() * 3) {
            const std::size_t grown = slots_.size() * 2;
            table_bytes =
                static_cast<std::uint64_t>(grown - slots_.size()) *
                sizeof(CctNode *);
            rebuildSlots(grown);
        } else {
            placeSlot(child);
        }
    } else if (child_count_ > kLinearScanMax) {
        std::size_t capacity = 4;
        while (child_count_ * 4 >= capacity * 3)
            capacity *= 2;
        table_bytes = static_cast<std::uint64_t>(capacity) *
                      sizeof(CctNode *);
        rebuildSlots(capacity);
    }
    return table_bytes;
}

RunningStat &
CctNode::metric(int metric_id)
{
    auto it = std::lower_bound(
        metrics_.begin(), metrics_.end(), metric_id,
        [](const MetricEntry &entry, int id) { return entry.first < id; });
    if (it == metrics_.end() || it->first != metric_id)
        it = metrics_.emplace(it, metric_id, RunningStat{});
    return it->second;
}

const RunningStat *
CctNode::findMetric(int metric_id) const
{
    auto it = std::lower_bound(
        metrics_.begin(), metrics_.end(), metric_id,
        [](const MetricEntry &entry, int id) { return entry.first < id; });
    return it == metrics_.end() || it->first != metric_id ? nullptr
                                                          : &it->second;
}

void
CctNode::forEachChild(const std::function<void(CctNode &)> &fn)
{
    for (CctNode *child = first_child_; child != nullptr;
         child = child->next_sibling_) {
        fn(*child);
    }
}

void
CctNode::forEachChild(const std::function<void(const CctNode &)> &fn) const
{
    for (const CctNode *child = first_child_; child != nullptr;
         child = child->next_sibling_) {
        fn(*child);
    }
}

// ----------------------------------------------------------------- Cct

Cct::Cct(HostMemoryTracker *tracker)
    : Cct(StringTable::globalShared(), tracker)
{
}

Cct::Cct(std::shared_ptr<StringTable> names, HostMemoryTracker *tracker)
    : table_(names != nullptr ? std::move(names)
                              : StringTable::globalShared()),
      tracker_(tracker)
{
    root_ = newNode(
        dlmon::FrameKey::from(dlmon::Frame::op("<root>"), *table_),
        nullptr, 0);
    charge(kNodeBytes);
}

Cct::~Cct()
{
    if (tracker_ != nullptr && memory_bytes_ > 0)
        tracker_->release("profiler.cct", memory_bytes_);
    // Destroy arena-constructed nodes explicitly — releasing each
    // node's name references so the table's reclamation sees exactly
    // the live trees — then free the chunks. Every chunk before the
    // last is full.
    for (std::size_t c = 0; c < arena_chunks_.size(); ++c) {
        const std::size_t used = c + 1 < arena_chunks_.size()
                                     ? kChunkNodes
                                     : arena_used_in_last_;
        CctNode *nodes = chunkNodes(arena_chunks_[c]);
        for (std::size_t i = 0; i < used; ++i) {
            table_->release(nodes[i].key_.file_id);
            table_->release(nodes[i].key_.name_id);
            nodes[i].~CctNode();
        }
        ::operator delete(arena_chunks_[c],
                          std::align_val_t{kChunkBytes});
    }
}

void
Cct::charge(std::uint64_t bytes)
{
    memory_bytes_ += bytes;
    if (tracker_ != nullptr)
        tracker_->allocate("profiler.cct", bytes);
}

CctNode *
Cct::newNode(const dlmon::FrameKey &key, CctNode *parent, int depth)
{
    if (arena_chunks_.empty() || arena_used_in_last_ == kChunkNodes) {
        unsigned char *chunk = static_cast<unsigned char *>(
            ::operator new(kChunkBytes, std::align_val_t{kChunkBytes}));
        new (chunk) ChunkHeader{table_.get()};
        arena_chunks_.push_back(chunk);
        arena_used_in_last_ = 0;
    }
    CctNode *slot =
        chunkNodes(arena_chunks_.back()) + arena_used_in_last_;
    ++arena_used_in_last_;
    // The node references these names until the tree dies; the matching
    // releases are in ~Cct.
    table_->retain(key.file_id);
    table_->retain(key.name_id);
    return new (slot) CctNode(key, parent, depth);
}

CctNode *
Cct::createChild(CctNode *parent, const dlmon::FrameKey &key)
{
    CctNode *node = newNode(key, parent, parent->depth_ + 1);
    const std::uint64_t table_bytes = parent->linkChild(node);
    ++node_count_;
    charge(kNodeBytes + table_bytes);
    return node;
}

CctNode *
Cct::childOf(CctNode *parent, const dlmon::FrameKey &key, bool *created)
{
    CctNode *existing = parent->findChild(key);
    if (existing != nullptr) {
        if (created != nullptr)
            *created = false;
        return existing;
    }
    if (created != nullptr)
        *created = true;
    return createChild(parent, key);
}

CctNode *
Cct::descend(CctNode *node, const dlmon::CallPath &path,
             std::size_t begin, std::size_t *created_nodes)
{
    std::size_t created = 0;
    for (std::size_t i = begin; i < path.size(); ++i) {
        // Live profiling must never abort the host application: paths
        // beyond the depth cap are truncated (metrics then aggregate
        // at the truncated leaf, so totals stay conserved).
        if (node->depth() >= kMaxDepth) {
            if (!depth_warned_) {
                depth_warned_ = true;
                DC_WARN("call path of ", path.size(),
                        " frames truncated to max depth ", kMaxDepth,
                        " (warned once per tree)");
            }
            break;
        }
        // Look up with a location-only key (no interning); the full
        // key is built only when a node is actually created.
        CctNode *child = node->findChild(
            dlmon::FrameKey::locator(path[i], *table_));
        if (child == nullptr) {
            child = createChild(
                node, dlmon::FrameKey::from(path[i], *table_));
            ++created;
        }
        node = child;
    }
    if (created_nodes != nullptr)
        *created_nodes = created;
    return node;
}

CctNode *
Cct::insert(const dlmon::CallPath &path, std::size_t *created_nodes)
{
    return descend(root_, path, 0, created_nodes);
}

CctNode *
Cct::insert(const dlmon::CallPath &path, std::size_t *created_nodes,
            CctNode *cursor_leaf, std::size_t shared_depth)
{
    if (cursor_leaf == nullptr)
        return descend(root_, path, 0, created_nodes);
    // The cursor contract (leaf of a previous insert into this tree,
    // prefix same-location equal) is the caller's; clamping keeps a
    // short new path or a depth-truncated cursor safe.
    shared_depth = std::min(
        {shared_depth, path.size(),
         static_cast<std::size_t>(cursor_leaf->depth())});
    CctNode *node = cursor_leaf;
    while (static_cast<std::size_t>(node->depth()) > shared_depth)
        node = node->parent_;
    return descend(node, path, shared_depth, created_nodes);
}

CctNode *
Cct::atDepthCap(CctNode *parent)
{
    // Graceful degradation mirroring insert(): attribute to the
    // parent rather than grow past the cap (or abort the host).
    if (!depth_warned_) {
        depth_warned_ = true;
        DC_WARN("attach at max depth ", kMaxDepth,
                "; attributing to the parent node "
                "(warned once per tree)");
    }
    return parent;
}

CctNode *
Cct::attachChild(CctNode *parent, const dlmon::Frame &frame)
{
    DC_CHECK(parent != nullptr, "attach to null parent");
    if (parent->depth() >= kMaxDepth)
        return atDepthCap(parent);
    // One probe with the cheap location-only key; the full key (with
    // display strings interned) is built only for an actual creation.
    CctNode *existing = parent->findChild(
        dlmon::FrameKey::locator(frame, *table_));
    if (existing != nullptr)
        return existing;
    return createChild(parent, dlmon::FrameKey::from(frame, *table_));
}

CctNode *
Cct::attachChild(CctNode *parent, const dlmon::FrameKey &key)
{
    DC_CHECK(parent != nullptr, "attach to null parent");
    if (parent->depth() >= kMaxDepth)
        return atDepthCap(parent);
    return childOf(parent, key, nullptr);
}

namespace {

/// Translate a source metric id through a remap table (empty = ids
/// already agree). Shared by the merge and clone kernels.
int
remapMetricId(int metric_id, const std::vector<int> &remap)
{
    if (remap.empty())
        return metric_id;
    DC_CHECK(metric_id >= 0 &&
                 metric_id < static_cast<int>(remap.size()),
             "unmapped metric id ", metric_id, " while merging CCTs");
    return remap[static_cast<std::size_t>(metric_id)];
}

} // namespace

void
Cct::copyMetrics(CctNode &dst, const CctNode &src,
                 const std::vector<int> &remap)
{
    dst.metrics_ = src.metrics_;
    if (!remap.empty()) {
        for (CctNode::MetricEntry &entry : dst.metrics_)
            entry.first = remapMetricId(entry.first, remap);
        // A remap can permute ids; metrics() promises ascending order.
        std::sort(dst.metrics_.begin(), dst.metrics_.end(),
                  [](const CctNode::MetricEntry &a,
                     const CctNode::MetricEntry &b) {
                      return a.first < b.first;
                  });
    }
    charge(kMetricBytes * dst.metrics_.size());
}

void
Cct::cloneInto(CctNode *dst, const CctNode &src,
               const std::vector<int> &remap, NameTranslator *names)
{
    copyMetrics(*dst, src, remap);
    for (const CctNode *child = src.first_child_; child != nullptr;
         child = child->next_sibling_) {
        if (dst->depth() >= kMaxDepth) {
            // Mirror attachChild's degradation: aggregate at the cap.
            mergeNode(*atDepthCap(dst), *child, remap, names);
            continue;
        }
        // Every Cct keeps same-key children unified (insert, attach,
        // merge, and the parser all dedup), so under a just-created
        // node the copy needs no child probes.
        const dlmon::FrameKey key =
            names != nullptr ? names->key(child->key_) : child->key_;
        cloneInto(createChild(dst, key), *child, remap, names);
    }
}

void
Cct::mergeNode(CctNode &dst, const CctNode &src,
               const std::vector<int> &remap, NameTranslator *names)
{
    if (remap.empty()) {
        // Both metric vectors are sorted by id, so combine them with
        // one paired walk instead of a binary search per entry — on a
        // warehouse merge nearly every source id already exists in the
        // destination, making this a straight zip. This is the hottest
        // loop of a cold corpus merge.
        auto dst_it = dst.metrics_.begin();
        for (const CctNode::MetricEntry &entry : src.metrics_) {
            while (dst_it != dst.metrics_.end() &&
                   dst_it->first < entry.first) {
                ++dst_it;
            }
            if (dst_it != dst.metrics_.end() &&
                dst_it->first == entry.first) {
                dst_it->second.merge(entry.second);
                ++dst_it;
            } else {
                // Merge into an absent accumulator = copy the entry.
                dst_it = dst.metrics_.insert(dst_it, entry);
                ++dst_it;
                charge(kMetricBytes);
            }
        }
    } else {
        for (const auto &[metric_id, stat] : src.metrics_) {
            const int id = remapMetricId(metric_id, remap);
            const std::size_t before = dst.metrics_.size();
            dst.metric(id).merge(stat);
            if (dst.metrics_.size() != before)
                charge(kMetricBytes);
        }
    }
    if (dst.depth() >= kMaxDepth) {
        // Mirror attachChild's degradation: aggregate the whole
        // over-deep subtree at the cap.
        for (const CctNode *child = src.first_child_; child != nullptr;
             child = child->next_sibling_) {
            mergeNode(*atDepthCap(&dst), *child, remap, names);
        }
        return;
    }
    // Runs that share structure (one model, many executions — the
    // warehouse's common corpus) list children in the same order,
    // because merged children preserve source insertion order. Walk
    // the two sibling chains in lockstep and match by one POD key
    // compare; only a divergence pays the hashed child probe. Keys of
    // a foreign-table source are translated into this tree's table
    // first, so cross-corpus merges still unify by id equality.
    CctNode *hint = dst.first_child_;
    for (const CctNode *child = src.first_child_; child != nullptr;
         child = child->next_sibling_) {
        const dlmon::FrameKey key =
            names != nullptr ? names->key(child->key_) : child->key_;
        CctNode *dst_child = nullptr;
        if (hint != nullptr && hint->key_ == key) {
            dst_child = hint;
            hint = hint->next_sibling_;
        } else {
            bool created = false;
            dst_child = childOf(&dst, key, &created);
            hint = dst_child->next_sibling_;
            if (created) {
                cloneInto(dst_child, *child, remap, names);
                continue;
            }
        }
        mergeNode(*dst_child, *child, remap, names);
    }
}

std::size_t
Cct::mergeFrom(const Cct &other, const std::vector<int> &metric_remap)
{
    DC_CHECK(&other != this,
             "merge of a tree into itself would double every stat");
    const std::size_t before = node_count_;
    // Registries that interned the same metrics in the same order (the
    // common case for runs produced by one pipeline) yield an identity
    // remap; detecting it once here routes the whole walk through the
    // no-remap fast paths.
    bool identity = true;
    for (std::size_t i = 0; i < metric_remap.size(); ++i) {
        if (metric_remap[i] != static_cast<int>(i)) {
            identity = false;
            break;
        }
    }
    static const std::vector<int> kNoRemap;
    // Same-table merges (every within-store merge) unify by direct id
    // equality; a foreign-table source gets a per-merge translator.
    NameTranslator translator(other.names(), *table_);
    NameTranslator *names =
        other.table_.get() == table_.get() ? nullptr : &translator;
    mergeNode(*root_, other.root(), identity ? kNoRemap : metric_remap,
              names);
    return node_count_ - before;
}

std::unique_ptr<Cct>
Cct::clone() const
{
    auto copy = std::make_unique<Cct>(table_);
    // Roots share the same "<root>" key by construction; copy metrics
    // and block-copy the children (no probes: the copy is empty, and
    // both trees share a table so keys transfer untranslated).
    copy->copyMetrics(*copy->root_, *root_, {});
    for (const CctNode *child = root_->first_child_; child != nullptr;
         child = child->next_sibling_) {
        copy->cloneInto(copy->createChild(copy->root_, child->key_),
                        *child, {}, nullptr);
    }
    return copy;
}

std::size_t
Cct::addMetric(CctNode *node, int metric_id, double value, bool propagate)
{
    DC_CHECK(node != nullptr, "metric on null node");
    // Every stat in the tree stays finite and within RunningStat's
    // magnitude bounds: one inf/NaN or absurdly large sample (a rate
    // with a zero denominator, an overflowed sum) would otherwise be
    // serialized, then rejected by the hardened parser — making a
    // profile we saved unloadable — and would poison every aggregate
    // it merges into. With samples capped here, every stat the tree
    // can build (sums and Welford m2 over at most 2^64 samples) stays
    // inside the bounds, so profiler output always round-trips and
    // merges cleanly. Dropped with a warning, never an abort.
    if (!std::isfinite(value) ||
        std::abs(value) > RunningStat::kMaxAbsValue) {
        if (!metric_warned_) {
            metric_warned_ = true;
            DC_WARN("dropping out-of-range sample for metric ",
                    metric_id, " (warned once per tree)");
        }
        return 0;
    }
    std::size_t updated = 0;
    for (CctNode *cur = node; cur != nullptr; cur = cur->parent()) {
        const bool existed = cur->findMetric(metric_id) != nullptr;
        cur->metric(metric_id).add(value);
        if (!existed)
            charge(kMetricBytes);
        ++updated;
        if (!propagate)
            break;
    }
    return updated;
}

void
Cct::visit(const std::function<void(const CctNode &)> &fn) const
{
    std::function<void(const CctNode &)> walk =
        [&](const CctNode &node) {
            fn(node);
            node.forEachChild(walk);
        };
    walk(*root_);
}

void
Cct::visit(const std::function<void(CctNode &)> &fn)
{
    std::function<void(CctNode &)> walk = [&](CctNode &node) {
        fn(node);
        node.forEachChild(walk);
    };
    walk(*root_);
}

void
Cct::detachTracker()
{
    if (tracker_ != nullptr && memory_bytes_ > 0)
        tracker_->release("profiler.cct", memory_bytes_);
    tracker_ = nullptr;
}

} // namespace dc::prof

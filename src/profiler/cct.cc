#include "profiler/cct.h"

#include <cmath>

#include "common/logging.h"

namespace dc::prof {

namespace {

/// Approximate live bytes of one node (struct + bookkeeping).
constexpr std::uint64_t kNodeBytes = 224;
/// Approximate bytes of one metric accumulator.
constexpr std::uint64_t kMetricBytes = 64;

std::uint64_t
frameBytes(const dlmon::Frame &frame)
{
    return kNodeBytes + frame.file.size() + frame.function.size() +
           frame.name.size();
}

} // namespace

CctNode *
CctNode::findChild(const dlmon::Frame &frame)
{
    auto it = children_.find(frame.locationHash());
    if (it == children_.end())
        return nullptr;
    for (const auto &child : it->second) {
        if (child->frame().sameLocation(frame))
            return child.get();
    }
    return nullptr;
}

const CctNode *
CctNode::findChild(const dlmon::Frame &frame) const
{
    return const_cast<CctNode *>(this)->findChild(frame);
}

CctNode *
CctNode::child(const dlmon::Frame &frame, bool *created)
{
    CctNode *existing = findChild(frame);
    if (existing != nullptr) {
        if (created != nullptr)
            *created = false;
        return existing;
    }
    auto node = std::make_unique<CctNode>(frame, this, depth_ + 1);
    CctNode *raw = node.get();
    children_[frame.locationHash()].push_back(std::move(node));
    order_.push_back(raw);
    if (created != nullptr)
        *created = true;
    return raw;
}

const RunningStat *
CctNode::findMetric(int metric_id) const
{
    auto it = metrics_.find(metric_id);
    return it == metrics_.end() ? nullptr : &it->second;
}

void
CctNode::forEachChild(const std::function<void(CctNode &)> &fn)
{
    for (CctNode *child : order_)
        fn(*child);
}

void
CctNode::forEachChild(const std::function<void(const CctNode &)> &fn) const
{
    for (const CctNode *child : order_)
        fn(*child);
}

Cct::Cct(HostMemoryTracker *tracker) : tracker_(tracker)
{
    root_ = std::make_unique<CctNode>(dlmon::Frame::op("<root>"), nullptr,
                                      0);
    charge(kNodeBytes);
}

Cct::~Cct()
{
    if (tracker_ != nullptr && memory_bytes_ > 0)
        tracker_->release("profiler.cct", memory_bytes_);
}

void
Cct::charge(std::uint64_t bytes)
{
    memory_bytes_ += bytes;
    if (tracker_ != nullptr)
        tracker_->allocate("profiler.cct", bytes);
}

CctNode *
Cct::insert(const dlmon::CallPath &path, std::size_t *created_nodes)
{
    CctNode *node = root_.get();
    // Live profiling must never abort the host application: paths
    // beyond the depth cap are truncated (metrics then aggregate at the
    // truncated leaf, so totals stay conserved).
    std::size_t depth_budget = static_cast<std::size_t>(kMaxDepth);
    if (path.size() > depth_budget && !depth_warned_) {
        depth_warned_ = true;
        DC_WARN("call path of ", path.size(),
                " frames truncated to max depth ", kMaxDepth,
                " (warned once per tree)");
    }
    std::size_t created = 0;
    for (const dlmon::Frame &frame : path) {
        if (depth_budget-- == 0)
            break;
        bool was_created = false;
        node = node->child(frame, &was_created);
        if (was_created) {
            ++created;
            ++node_count_;
            charge(frameBytes(frame));
        }
    }
    if (created_nodes != nullptr)
        *created_nodes = created;
    return node;
}

CctNode *
Cct::attachChild(CctNode *parent, const dlmon::Frame &frame)
{
    DC_CHECK(parent != nullptr, "attach to null parent");
    if (parent->depth() >= kMaxDepth) {
        // Graceful degradation mirroring insert(): attribute to the
        // parent rather than grow past the cap (or abort the host).
        if (!depth_warned_) {
            depth_warned_ = true;
            DC_WARN("attach at max depth ", kMaxDepth,
                    "; attributing to the parent node "
                    "(warned once per tree)");
        }
        return parent;
    }
    bool created = false;
    CctNode *node = parent->child(frame, &created);
    if (created) {
        ++node_count_;
        charge(frameBytes(frame));
    }
    return node;
}

std::size_t
Cct::mergeFrom(const Cct &other, const std::vector<int> &metric_remap)
{
    DC_CHECK(&other != this,
             "merge of a tree into itself would double every stat");
    const std::size_t before = node_count_;

    std::function<void(CctNode &, const CctNode &)> mergeInto =
        [&](CctNode &dst, const CctNode &src) {
            for (const auto &[metric_id, stat] : src.metrics()) {
                int id = metric_id;
                if (!metric_remap.empty()) {
                    DC_CHECK(metric_id >= 0 &&
                                 metric_id < static_cast<int>(
                                                 metric_remap.size()),
                             "unmapped metric id ", metric_id,
                             " while merging CCTs");
                    id = metric_remap[static_cast<std::size_t>(metric_id)];
                }
                const bool existed = dst.findMetric(id) != nullptr;
                RunningStat &accumulator = dst.metric(id);
                accumulator = RunningStat::merged(accumulator, stat);
                if (!existed)
                    charge(kMetricBytes);
            }
            src.forEachChild([&](const CctNode &src_child) {
                CctNode *dst_child =
                    attachChild(&dst, src_child.frame());
                mergeInto(*dst_child, src_child);
            });
        };

    mergeInto(*root_, other.root());
    return node_count_ - before;
}

std::size_t
Cct::addMetric(CctNode *node, int metric_id, double value, bool propagate)
{
    DC_CHECK(node != nullptr, "metric on null node");
    // Every stat in the tree stays finite and within RunningStat's
    // magnitude bounds: one inf/NaN or absurdly large sample (a rate
    // with a zero denominator, an overflowed sum) would otherwise be
    // serialized, then rejected by the hardened parser — making a
    // profile we saved unloadable — and would poison every aggregate
    // it merges into. With samples capped here, every stat the tree
    // can build (sums and Welford m2 over at most 2^64 samples) stays
    // inside the bounds, so profiler output always round-trips and
    // merges cleanly. Dropped with a warning, never an abort.
    if (!std::isfinite(value) ||
        std::abs(value) > RunningStat::kMaxAbsValue) {
        if (!metric_warned_) {
            metric_warned_ = true;
            DC_WARN("dropping out-of-range sample for metric ",
                    metric_id, " (warned once per tree)");
        }
        return 0;
    }
    std::size_t updated = 0;
    for (CctNode *cur = node; cur != nullptr; cur = cur->parent()) {
        const bool existed = cur->findMetric(metric_id) != nullptr;
        cur->metric(metric_id).add(value);
        if (!existed)
            charge(kMetricBytes);
        ++updated;
        if (!propagate)
            break;
    }
    return updated;
}

void
Cct::visit(const std::function<void(const CctNode &)> &fn) const
{
    std::function<void(const CctNode &)> walk =
        [&](const CctNode &node) {
            fn(node);
            node.forEachChild(walk);
        };
    walk(*root_);
}

void
Cct::visit(const std::function<void(CctNode &)> &fn)
{
    std::function<void(CctNode &)> walk = [&](CctNode &node) {
        fn(node);
        node.forEachChild(walk);
    };
    walk(*root_);
}

void
Cct::detachTracker()
{
    if (tracker_ != nullptr && memory_bytes_ > 0)
        tracker_->release("profiler.cct", memory_bytes_);
    tracker_ = nullptr;
}

} // namespace dc::prof

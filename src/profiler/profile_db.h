#pragma once

/**
 * @file
 * The profile database: a finished CCT plus metric identity and run
 * metadata, with save/load in a compact line-oriented text format.
 *
 * Because metrics were aggregated online, the database is proportional
 * to the number of *distinct contexts*, not to the number of events —
 * the disk-size half of the paper's memory/disk claim.
 *
 * The current format (v2) carries a string-table section: each
 * file/function/operator/kernel name is written and parsed once per
 * profile, and node records reference names by id — both smaller on
 * disk and cheaper to ingest than the v1 format's per-node inline
 * strings. v1 files still load through tryDeserialize.
 */

#include <map>
#include <memory>
#include <string>

#include "profiler/cct.h"
#include "profiler/metrics.h"

namespace dc::prof {

/** A completed profile. */
class ProfileDb
{
  public:
    ProfileDb(std::unique_ptr<Cct> cct, MetricRegistry metrics,
              std::map<std::string, std::string> metadata);

    const Cct &cct() const { return *cct_; }
    Cct &cct() { return *cct_; }

    /** The string table the profile's names resolve through. */
    StringTable &names() const { return cct_->names(); }

    /**
     * Rebuild the CCT so its names intern through @p names (no-op when
     * they already do). The warehouse rebinds handed-off profiles onto
     * its per-corpus table at ingestion, so every stored tree shares
     * one table and merges unify frames by direct id equality.
     */
    void rebindNames(const std::shared_ptr<StringTable> &names);

    const MetricRegistry &metrics() const { return metrics_; }
    const std::map<std::string, std::string> &metadata() const
    {
        return metadata_;
    }

    /**
     * Check the invariants the parser enforces on untrusted input:
     * every node metric id is covered by the metric registry and every
     * stat is internally consistent (RunningStat::consistent). The
     * warehouse handoff path and merge entry points call this so a
     * hand-built profile meets the same bar as a parsed one. Walks at
     * most to the first violation.
     */
    bool validate(std::string *error = nullptr) const;

    /** Serialize to the v2 text format (string-table section). */
    std::string serialize() const;

    /**
     * Write serialize() to @p path atomically: the bytes land in a
     * temp file next to the target, are flushed, and are renamed into
     * place — a crash mid-save can never leave a truncated profile
     * where a complete one (or nothing) was expected. Returns the
     * bytes written, or 0 with a description in @p error when the path
     * is unwritable — never a panic; output paths are as untrusted as
     * warehouse inputs.
     */
    std::uint64_t save(const std::string &path,
                       std::string *error = nullptr) const;

    /**
     * Parse a serialized profile back into a ProfileDb. Panics (with the
     * parse error) on malformed input — for input you do not control,
     * use tryDeserialize.
     */
    static std::unique_ptr<ProfileDb> deserialize(const std::string &text);

    /**
     * Parse untrusted input: returns nullptr on malformed text (bad
     * header, non-numeric fields, duplicate node ids, dangling parent
     * ids, truncated records) with a description in @p error. Warehouse
     * ingestion uses this so one corrupt file cannot take the service
     * down. Names intern into @p names (null = the process-wide global
     * table); the warehouse passes its per-corpus table so ingestion
     * charges — and can later reclaim — exactly the text it caused.
     */
    static std::unique_ptr<ProfileDb>
    tryDeserialize(const std::string &text, std::string *error = nullptr,
                   std::shared_ptr<StringTable> names = nullptr);

    /** Load from a file. Panics on a missing or malformed file. */
    static std::unique_ptr<ProfileDb> load(const std::string &path);

    /**
     * Load an untrusted file: returns nullptr (with a description in
     * @p error) when the file is unreadable or malformed. Names intern
     * into @p names (null = the global table), as for tryDeserialize.
     */
    static std::unique_ptr<ProfileDb>
    tryLoad(const std::string &path, std::string *error = nullptr,
            std::shared_ptr<StringTable> names = nullptr);

  private:
    std::unique_ptr<Cct> cct_;
    MetricRegistry metrics_;
    std::map<std::string, std::string> metadata_;
};

} // namespace dc::prof

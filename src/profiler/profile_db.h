#pragma once

/**
 * @file
 * The profile database: a finished CCT plus metric identity and run
 * metadata, with save/load in a compact line-oriented text format.
 *
 * Because metrics were aggregated online, the database is proportional
 * to the number of *distinct contexts*, not to the number of events —
 * the disk-size half of the paper's memory/disk claim.
 */

#include <map>
#include <memory>
#include <string>

#include "profiler/cct.h"
#include "profiler/metrics.h"

namespace dc::prof {

/** A completed profile. */
class ProfileDb
{
  public:
    ProfileDb(std::unique_ptr<Cct> cct, MetricRegistry metrics,
              std::map<std::string, std::string> metadata);

    const Cct &cct() const { return *cct_; }
    Cct &cct() { return *cct_; }
    const MetricRegistry &metrics() const { return metrics_; }
    const std::map<std::string, std::string> &metadata() const
    {
        return metadata_;
    }

    /** Serialize to the v1 text format. */
    std::string serialize() const;

    /** Write serialize() to @p path. Returns bytes written. */
    std::uint64_t save(const std::string &path) const;

    /** Parse a serialized profile back into a ProfileDb. */
    static std::unique_ptr<ProfileDb> deserialize(const std::string &text);

    /** Load from a file. */
    static std::unique_ptr<ProfileDb> load(const std::string &path);

  private:
    std::unique_ptr<Cct> cct_;
    MetricRegistry metrics_;
    std::map<std::string, std::string> metadata_;
};

} // namespace dc::prof

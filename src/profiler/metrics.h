#pragma once

/**
 * @file
 * Metric identity for the profiler.
 *
 * Metrics are interned by name; well-known names used throughout the
 * profiler, analyzer, and GUI are provided as constants. Per Section 4.2,
 * each CCT node aggregates every metric type by sum / min / max / average
 * / standard deviation (RunningStat).
 */

#include <map>
#include <string>
#include <vector>

namespace dc::prof {

/** Well-known metric names. */
namespace metric_names {
inline constexpr const char *kGpuTime = "gpu_time_ns";
inline constexpr const char *kKernelCount = "kernel_count";
inline constexpr const char *kMemcpyTime = "memcpy_time_ns";
inline constexpr const char *kMemcpyBytes = "memcpy_bytes";
inline constexpr const char *kCpuTime = "cpu_time_ns";
inline constexpr const char *kRealTime = "real_time_ns";
inline constexpr const char *kOpCount = "op_count";
inline constexpr const char *kOpTime = "op_time_ns";
inline constexpr const char *kGridBlocks = "grid_blocks";
inline constexpr const char *kRegsPerThread = "regs_per_thread";
inline constexpr const char *kSharedMem = "shared_mem_bytes";
inline constexpr const char *kOccupancy = "occupancy";
inline constexpr const char *kAllocBytes = "alloc_bytes";
inline constexpr const char *kStallSamples = "stall_samples";
/** Per-stall-reason metrics are "stall_" + sim::stallReasonName(). */
inline constexpr const char *kStallPrefix = "stall_";
} // namespace metric_names

/** Interns metric names to dense integer IDs. */
class MetricRegistry
{
  public:
    /** Get-or-create the ID for @p name. */
    int intern(const std::string &name);

    /** ID of @p name, or -1 if never interned. */
    int find(const std::string &name) const;

    /** Name of an ID. */
    const std::string &name(int id) const;

    /**
     * Intern every metric of @p other into this registry.
     * @return A map from @p other's ids to this registry's ids
     *         (index = other id), for remapping per-node metrics when
     *         merging CCTs from different runs.
     */
    std::vector<int> mergeFrom(const MetricRegistry &other);

    /** Number of metrics interned. */
    std::size_t size() const { return names_.size(); }

    const std::vector<std::string> &allNames() const { return names_; }

  private:
    std::vector<std::string> names_;
    std::map<std::string, int> ids_;
};

} // namespace dc::prof

#include "profiler/profile_db.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace dc::prof {

namespace {

constexpr const char *kHeader = "# deepcontext profile v1";

std::string
encodeField(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '\t')
            out += "\\t";
        else if (c == '\n')
            out += "\\n";
        else if (c == '\\')
            out += "\\\\";
        else
            out += c;
    }
    return out;
}

std::string
decodeField(const std::string &s)
{
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            ++i;
            if (s[i] == 't')
                out += '\t';
            else if (s[i] == 'n')
                out += '\n';
            else
                out += s[i];
        } else {
            out += s[i];
        }
    }
    return out;
}

} // namespace

ProfileDb::ProfileDb(std::unique_ptr<Cct> cct, MetricRegistry metrics,
                     std::map<std::string, std::string> metadata)
    : cct_(std::move(cct)), metrics_(std::move(metrics)),
      metadata_(std::move(metadata))
{
    DC_CHECK(cct_ != nullptr, "profile without a CCT");
}

std::string
ProfileDb::serialize() const
{
    std::ostringstream out;
    out << kHeader << "\n";
    for (const auto &[key, value] : metadata_)
        out << "meta\t" << encodeField(key) << "\t" << encodeField(value)
            << "\n";
    for (const std::string &name : metrics_.allNames())
        out << "metric\t" << encodeField(name) << "\n";

    // Nodes in pre-order; ids assigned on the fly.
    int next_id = 0;
    std::map<const CctNode *, int> ids;
    std::function<void(const CctNode &)> walk = [&](const CctNode &node) {
        const int id = next_id++;
        ids[&node] = id;
        const int parent =
            node.parent() == nullptr ? -1 : ids[node.parent()];
        const dlmon::Frame &f = node.frame();
        out << "node\t" << id << "\t" << parent << "\t"
            << static_cast<int>(f.kind) << "\t" << encodeField(f.file)
            << "\t" << encodeField(f.function) << "\t" << f.line << "\t"
            << f.pc << "\t" << encodeField(f.name) << "\t" << f.stall;
        for (const auto &[metric_id, stat] : node.metrics()) {
            out << "\tm:" << metric_id << ":" << stat.count() << ":"
                << strformat("%.17g:%.17g:%.17g:%.17g:%.17g", stat.sum(),
                             stat.min(), stat.max(), stat.mean(),
                             stat.m2());
        }
        out << "\n";
        node.forEachChild(walk);
    };
    walk(cct_->root());
    return out.str();
}

std::uint64_t
ProfileDb::save(const std::string &path) const
{
    const std::string text = serialize();
    std::ofstream out(path, std::ios::binary);
    DC_CHECK(out.good(), "cannot open ", path, " for writing");
    out << text;
    return text.size();
}

std::unique_ptr<ProfileDb>
ProfileDb::deserialize(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);
    DC_CHECK(line == kHeader, "bad profile header: ", line);

    auto cct = std::make_unique<Cct>();
    MetricRegistry metrics;
    std::map<std::string, std::string> metadata;
    std::map<int, CctNode *> nodes;

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const std::vector<std::string> fields = split(line, '\t');
        if (fields[0] == "meta" && fields.size() >= 3) {
            metadata[decodeField(fields[1])] = decodeField(fields[2]);
        } else if (fields[0] == "metric" && fields.size() >= 2) {
            metrics.intern(decodeField(fields[1]));
        } else if (fields[0] == "node" && fields.size() >= 10) {
            const int id = std::stoi(fields[1]);
            const int parent_id = std::stoi(fields[2]);

            dlmon::Frame frame;
            frame.kind =
                static_cast<dlmon::FrameKind>(std::stoi(fields[3]));
            frame.file = decodeField(fields[4]);
            frame.function = decodeField(fields[5]);
            frame.line = std::stoi(fields[6]);
            frame.pc = std::stoull(fields[7]);
            frame.name = decodeField(fields[8]);
            frame.stall = std::stoi(fields[9]);

            CctNode *node = nullptr;
            if (parent_id < 0) {
                node = &cct->root();
            } else {
                auto it = nodes.find(parent_id);
                DC_CHECK(it != nodes.end(), "orphan node ", id);
                node = cct->attachChild(it->second, frame);
            }
            nodes[id] = node;

            for (std::size_t i = 10; i < fields.size(); ++i) {
                if (!startsWith(fields[i], "m:"))
                    continue;
                const std::vector<std::string> parts =
                    split(fields[i], ':');
                if (parts.size() < 8)
                    continue;
                const int metric_id = std::stoi(parts[1]);
                node->metric(metric_id) = RunningStat::fromRaw(
                    std::stoull(parts[2]), std::stod(parts[3]),
                    std::stod(parts[4]), std::stod(parts[5]),
                    std::stod(parts[6]), std::stod(parts[7]));
            }
        }
    }
    return std::make_unique<ProfileDb>(std::move(cct), std::move(metrics),
                                       std::move(metadata));
}

std::unique_ptr<ProfileDb>
ProfileDb::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    DC_CHECK(in.good(), "cannot open ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return deserialize(buffer.str());
}

} // namespace dc::prof

#include "profiler/profile_db.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/fs.h"
#include "common/logging.h"
#include "common/strings.h"

namespace dc::prof {

namespace {

constexpr const char *kHeaderV1 = "# deepcontext profile v1";
constexpr const char *kHeaderV2 = "# deepcontext profile v2";

std::string
encodeField(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '\t')
            out += "\\t";
        else if (c == '\n')
            out += "\\n";
        else if (c == '\\')
            out += "\\\\";
        else
            out += c;
    }
    return out;
}

std::string
decodeField(const std::string &s)
{
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            ++i;
            if (s[i] == 't')
                out += '\t';
            else if (s[i] == 'n')
                out += '\n';
            else
                out += s[i];
        } else {
            out += s[i];
        }
    }
    return out;
}

} // namespace

ProfileDb::ProfileDb(std::unique_ptr<Cct> cct, MetricRegistry metrics,
                     std::map<std::string, std::string> metadata)
    : cct_(std::move(cct)), metrics_(std::move(metrics)),
      metadata_(std::move(metadata))
{
    DC_CHECK(cct_ != nullptr, "profile without a CCT");
}

void
ProfileDb::rebindNames(const std::shared_ptr<StringTable> &names)
{
    DC_CHECK(names != nullptr, "rebind to a null string table");
    if (&cct_->names() == names.get())
        return;
    // A structural merge into an empty tree on the target table is a
    // one-pass translated block copy (Cct::mergeFrom's cross-table
    // path); metric ids are registry-local, so they transfer as-is.
    auto rebound = std::make_unique<Cct>(names);
    rebound->mergeFrom(*cct_);
    cct_ = std::move(rebound);
}

bool
ProfileDb::validate(std::string *error) const
{
    const int metric_count = static_cast<int>(metrics_.size());
    std::function<bool(const CctNode &)> walk =
        [&](const CctNode &node) -> bool {
        for (const auto &[metric_id, stat] : node.metrics()) {
            if (metric_id < 0 || metric_id >= metric_count) {
                if (error != nullptr) {
                    *error = "node metric id " +
                             std::to_string(metric_id) +
                             " outside the profile's metric registry";
                }
                return false;
            }
            if (!stat.consistent()) {
                if (error != nullptr) {
                    *error = "inconsistent stat for metric id " +
                             std::to_string(metric_id);
                }
                return false;
            }
        }
        bool ok = true;
        node.forEachChild([&](const CctNode &child) {
            if (ok)
                ok = walk(child);
        });
        return ok;
    };
    return walk(cct_->root());
}

namespace {

/**
 * The v1 node record's (file, function, name, line, pc, stall) fields
 * reconstructed from a compact FrameKey. file/function/name are string
 * ids; unused per-kind slots are the empty string / zero, matching what
 * the v1 serializer wrote for the equivalent Frame.
 */
struct WireFrame {
    StringTable::Id file = StringTable::kEmpty;
    StringTable::Id function = StringTable::kEmpty;
    StringTable::Id name = StringTable::kEmpty;
    int line = 0;
    Pc pc = 0;
    int stall = -1;
};

WireFrame
wireFrame(const dlmon::FrameKey &key)
{
    WireFrame wire;
    switch (key.kind) {
      case dlmon::FrameKind::kPython:
        wire.file = key.file_id;
        wire.function = key.name_id;
        wire.line = key.aux;
        break;
      case dlmon::FrameKind::kOperator:
      case dlmon::FrameKind::kKernel:
        wire.name = key.name_id;
        break;
      case dlmon::FrameKind::kNative:
      case dlmon::FrameKind::kGpuApi:
        wire.name = key.name_id;
        wire.pc = key.pc;
        break;
      case dlmon::FrameKind::kInstruction:
        wire.pc = key.pc;
        wire.stall = key.aux;
        break;
    }
    return wire;
}

} // namespace

std::string
ProfileDb::serialize() const
{
    std::ostringstream out;
    out << kHeaderV2 << "\n";
    for (const auto &[key, value] : metadata_)
        out << "meta\t" << encodeField(key) << "\t" << encodeField(value)
            << "\n";
    for (const std::string &name : metrics_.allNames())
        out << "metric\t" << encodeField(name) << "\n";

    // String-table section: each distinct name is written once per
    // profile (not once per node). Local ids are assigned in pre-order
    // first-use order, so equal trees serialize byte-identically —
    // regardless of which table (global or per-corpus) issued the ids.
    const StringTable &table = cct_->names();
    std::unordered_map<StringTable::Id, int> local_ids;
    std::vector<StringTable::Id> local_strings;
    auto localId = [&](StringTable::Id global_id) {
        auto [it, inserted] =
            local_ids.emplace(global_id,
                              static_cast<int>(local_strings.size()));
        if (inserted)
            local_strings.push_back(global_id);
        return it->second;
    };
    cct_->visit([&](const CctNode &node) {
        const WireFrame wire = wireFrame(node.key());
        localId(wire.file);
        localId(wire.function);
        localId(wire.name);
    });
    for (const StringTable::Id global_id : local_strings)
        out << "str\t" << encodeField(table.str(global_id)) << "\n";

    // Nodes in pre-order; ids assigned on the fly.
    int next_id = 0;
    std::map<const CctNode *, int> ids;
    std::function<void(const CctNode &)> walk = [&](const CctNode &node) {
        const int id = next_id++;
        ids[&node] = id;
        const int parent =
            node.parent() == nullptr ? -1 : ids[node.parent()];
        const WireFrame wire = wireFrame(node.key());
        out << "node\t" << id << "\t" << parent << "\t"
            << static_cast<int>(node.kind()) << "\t"
            << local_ids[wire.file] << "\t" << local_ids[wire.function]
            << "\t" << wire.line << "\t" << wire.pc << "\t"
            << local_ids[wire.name] << "\t" << wire.stall;
        for (const auto &[metric_id, stat] : node.metrics()) {
            out << "\tm:" << metric_id << ":" << stat.count() << ":"
                << strformat("%.17g:%.17g:%.17g:%.17g:%.17g", stat.sum(),
                             stat.min(), stat.max(), stat.mean(),
                             stat.m2());
        }
        out << "\n";
        node.forEachChild(walk);
    };
    walk(cct_->root());
    return out.str();
}

std::uint64_t
ProfileDb::save(const std::string &path, std::string *error) const
{
    const std::string text = serialize();
    std::string write_error;
    if (!atomicWriteFile(path, text, &write_error)) {
        DC_WARN("profile save failed: ", write_error);
        if (error != nullptr)
            *error = std::move(write_error);
        return 0;
    }
    return text.size();
}

namespace {

/**
 * Strict numeric parsing for untrusted profile text: the whole field
 * must be consumed, the value must fit, and floating-point values must
 * be finite (an inf/nan stat would poison every aggregate it is merged
 * into). Sets @p ok; never throws.
 */
template <typename T>
T
parseNumber(const std::string &field, bool *ok)
{
    T value{};
    const char *begin = field.data();
    const char *end = begin + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    *ok = ec == std::errc() && ptr == end && !field.empty();
    if constexpr (std::is_floating_point_v<T>) {
        if (!std::isfinite(value))
            *ok = false;
    }
    return value;
}

/**
 * Short excerpt of untrusted input for error messages: a multi-MB
 * garbage line must not pin O(N) memory in the store's failure log.
 */
std::string
excerpt(const std::string &s)
{
    constexpr std::size_t kMax = 64;
    if (s.size() <= kMax)
        return s;
    return s.substr(0, kMax) +
           strformat("...(%zu bytes)", s.size());
}

/** Parse context threaded through the record handlers. */
struct Parser {
    std::string error;
    int line_no = 0;

    bool
    fail(const std::string &message)
    {
        error = strformat("line %d: ", line_no) + message;
        return false;
    }

    template <typename T>
    bool
    number(const std::string &field, const char *what, T *out)
    {
        bool ok = false;
        *out = parseNumber<T>(field, &ok);
        if (!ok)
            return fail(strformat("non-numeric %s '", what) +
                        excerpt(field) + "'");
        return true;
    }
};

} // namespace

std::unique_ptr<ProfileDb>
ProfileDb::tryDeserialize(const std::string &text, std::string *error,
                          std::shared_ptr<StringTable> names)
{
    std::istringstream in(text);
    std::string line;
    Parser p;

    auto failed = [&]() -> std::unique_ptr<ProfileDb> {
        if (error != nullptr)
            *error = p.error;
        return nullptr;
    };

    ++p.line_no;
    bool v2 = false;
    if (!std::getline(in, line) ||
        (line != kHeaderV1 && line != kHeaderV2)) {
        p.fail("bad profile header '" + excerpt(line) + "'");
        return failed();
    }
    v2 = line == kHeaderV2;

    auto cct = std::make_unique<Cct>(std::move(names));
    MetricRegistry metrics;
    std::map<std::string, std::string> metadata;
    std::map<int, CctNode *> nodes;
    std::set<const CctNode *> materialized;
    /// v2 string-table section, interned lazily: interning an
    /// untrusted file's whole section eagerly would let a malformed
    /// (and then rejected) profile grow the destination table — which
    /// a store can only undo with a later compaction. Only strings a
    /// node record actually references are interned — the same
    /// exposure as the v1 path, which interns per materialized node.
    std::vector<std::string> string_texts;
    std::vector<StringTable::Id> string_ids; // 0 = not yet interned
    auto resolveSid = [&](int sid) {
        StringTable::Id &id =
            string_ids[static_cast<std::size_t>(sid)];
        if (id == 0 &&
            !string_texts[static_cast<std::size_t>(sid)].empty()) {
            id = cct->names().intern(
                string_texts[static_cast<std::size_t>(sid)]);
        }
        return id;
    };

    while (std::getline(in, line)) {
        ++p.line_no;
        if (line.empty())
            continue;
        const std::vector<std::string> fields = split(line, '\t');
        if (v2 && fields[0] == "str") {
            // One name per record, in local-id order; names are
            // interned once per profile here, not once per node.
            if (fields.size() != 2) {
                p.fail("malformed str record");
                return failed();
            }
            if (!nodes.empty()) {
                // Nodes reference sids by index; a table growing under
                // them would mean the writer was corrupt.
                p.fail("str record after the first node record");
                return failed();
            }
            string_texts.push_back(decodeField(fields[1]));
            string_ids.push_back(StringTable::kEmpty);
        } else if (fields[0] == "meta") {
            // Exactly 3 fields: the serializer escapes tabs, so extra
            // fields mean corruption — dropping them would silently
            // truncate the value.
            if (fields.size() != 3) {
                p.fail("malformed meta record");
                return failed();
            }
            const std::string key = decodeField(fields[1]);
            // Last-wins overwrite would silently misclassify the run
            // (e.g. under the wrong framework) in warehouse filters.
            if (metadata.count(key) != 0) {
                p.fail("duplicate meta key '" + excerpt(key) + "'");
                return failed();
            }
            metadata[key] = decodeField(fields[2]);
        } else if (fields[0] == "metric") {
            if (fields.size() != 2) {
                p.fail("malformed metric record");
                return failed();
            }
            const std::string name = decodeField(fields[1]);
            // intern() dedups, so a repeated name would silently shift
            // every later positional id onto the wrong metric.
            if (metrics.find(name) >= 0) {
                p.fail("duplicate metric name '" + excerpt(name) +
                       "'");
                return failed();
            }
            metrics.intern(name);
        } else if (fields[0] == "node") {
            if (fields.size() < 10) {
                p.fail("truncated node record");
                return failed();
            }
            int id = 0;
            int parent_id = 0;
            int kind = 0;
            int line = 0;
            Pc pc = 0;
            int stall = -1;
            if (!p.number(fields[1], "node id", &id) ||
                !p.number(fields[2], "parent id", &parent_id) ||
                !p.number(fields[3], "frame kind", &kind) ||
                !p.number(fields[6], "line", &line) ||
                !p.number(fields[7], "pc", &pc) ||
                !p.number(fields[9], "stall", &stall)) {
                return failed();
            }
            if (id < 0) {
                p.fail(strformat("negative node id %d", id));
                return failed();
            }
            if (nodes.count(id) != 0) {
                p.fail(strformat("duplicate node id %d", id));
                return failed();
            }
            if (kind < 0 ||
                kind > static_cast<int>(dlmon::FrameKind::kInstruction)) {
                p.fail(strformat("bad frame kind %d", kind));
                return failed();
            }

            dlmon::FrameKey key;
            key.kind = static_cast<dlmon::FrameKind>(kind);
            if (v2) {
                // v2: the file/function/name fields are indexes into
                // the profile's string-table section.
                int file_sid = 0;
                int func_sid = 0;
                int name_sid = 0;
                if (!p.number(fields[4], "file string id", &file_sid) ||
                    !p.number(fields[5], "function string id",
                              &func_sid) ||
                    !p.number(fields[8], "name string id", &name_sid)) {
                    return failed();
                }
                const int table_size =
                    static_cast<int>(string_texts.size());
                if (file_sid < 0 || file_sid >= table_size ||
                    func_sid < 0 || func_sid >= table_size ||
                    name_sid < 0 || name_sid >= table_size) {
                    p.fail(strformat(
                        "node %d: string id outside the %d-entry "
                        "string table",
                        id, table_size));
                    return failed();
                }
                switch (key.kind) {
                  case dlmon::FrameKind::kPython:
                    key.file_id = resolveSid(file_sid);
                    key.name_id = resolveSid(func_sid);
                    key.aux = line;
                    break;
                  case dlmon::FrameKind::kOperator:
                  case dlmon::FrameKind::kKernel:
                    key.name_id = resolveSid(name_sid);
                    break;
                  case dlmon::FrameKind::kNative:
                  case dlmon::FrameKind::kGpuApi:
                    key.pc = pc;
                    key.name_id = resolveSid(name_sid);
                    break;
                  case dlmon::FrameKind::kInstruction:
                    key.pc = pc;
                    key.aux = stall;
                    break;
                }
            } else {
                // v1: names inline in every node record.
                dlmon::Frame frame;
                frame.kind = key.kind;
                frame.file = decodeField(fields[4]);
                frame.function = decodeField(fields[5]);
                frame.line = line;
                frame.pc = pc;
                frame.name = decodeField(fields[8]);
                frame.stall = stall;
                key = dlmon::FrameKey::from(frame, cct->names());
            }

            CctNode *node = nullptr;
            if (parent_id < 0) {
                if (!nodes.empty()) {
                    p.fail(strformat(
                        "node %d: only the first node may be the root",
                        id));
                    return failed();
                }
                node = &cct->root();
            } else {
                auto it = nodes.find(parent_id);
                if (it == nodes.end()) {
                    p.fail(strformat(
                        "node %d: dangling parent id %d", id,
                        parent_id));
                    return failed();
                }
                if (it->second->depth() >= Cct::kMaxDepth) {
                    p.fail(strformat(
                        "node %d: exceeds max depth %d", id,
                        Cct::kMaxDepth));
                    return failed();
                }
                node = cct->attachChild(it->second, key);
            }
            // attachChild find-or-creates, so a sibling record whose
            // frame unifies with an earlier one would silently alias
            // that node and its metrics would clobber the original's.
            // The serializer never emits such text; reject it.
            if (!materialized.insert(node).second) {
                p.fail(strformat(
                    "node %d: duplicate sibling frame (same location "
                    "as an earlier node)",
                    id));
                return failed();
            }
            nodes[id] = node;

            std::set<int> metric_ids_seen;
            for (std::size_t i = 10; i < fields.size(); ++i) {
                if (!startsWith(fields[i], "m:")) {
                    p.fail("unrecognized node field '" +
                           excerpt(fields[i]) + "'");
                    return failed();
                }
                const std::vector<std::string> parts =
                    split(fields[i], ':');
                // Exactly 8: a stray ':' would shift every later field
                // one slot over and still parse as numbers — silently
                // wrong stats rather than an error.
                if (parts.size() != 8) {
                    p.fail("malformed metric entry '" +
                           excerpt(fields[i]) + "'");
                    return failed();
                }
                int metric_id = 0;
                std::uint64_t count = 0;
                double sum = 0, min = 0, max = 0, mean = 0, m2 = 0;
                if (!p.number(parts[1], "metric id", &metric_id) ||
                    !p.number(parts[2], "metric count", &count) ||
                    !p.number(parts[3], "metric sum", &sum) ||
                    !p.number(parts[4], "metric min", &min) ||
                    !p.number(parts[5], "metric max", &max) ||
                    !p.number(parts[6], "metric mean", &mean) ||
                    !p.number(parts[7], "metric m2", &m2)) {
                    return failed();
                }
                if (metric_id < 0 ||
                    metric_id >= static_cast<int>(metrics.size())) {
                    p.fail(strformat(
                        "node %d: metric id %d not in the metric table",
                        id, metric_id));
                    return failed();
                }
                // A repeated id would silently overwrite the earlier
                // entry's stats.
                if (!metric_ids_seen.insert(metric_id).second) {
                    p.fail(strformat(
                        "node %d: duplicate metric id %d", id,
                        metric_id));
                    return failed();
                }
                // Empty stats must be all-zero (what the serializer
                // emits for count == 0); fromRaw drops these fields,
                // so check the raw values before construction.
                if (count == 0 && (sum != 0.0 || min != 0.0 ||
                                   max != 0.0 || mean != 0.0 ||
                                   m2 != 0.0)) {
                    p.fail(strformat(
                        "node %d: nonzero metric fields with count 0",
                        id));
                    return failed();
                }
                const RunningStat parsed = RunningStat::fromRaw(
                    count, sum, min, max, mean, m2);
                // Shared cross-field bar (negative m2 would make
                // stddev NaN and merge additively poisons aggregates).
                if (!parsed.consistent()) {
                    p.fail(strformat(
                        "node %d: inconsistent metric stat", id));
                    return failed();
                }
                node->metric(metric_id) = parsed;
            }
        }
        // Unknown record tags are skipped for forward compatibility.
    }
    if (error != nullptr)
        error->clear();
    return std::make_unique<ProfileDb>(std::move(cct), std::move(metrics),
                                       std::move(metadata));
}

std::unique_ptr<ProfileDb>
ProfileDb::deserialize(const std::string &text)
{
    std::string error;
    auto db = tryDeserialize(text, &error);
    DC_CHECK(db != nullptr, "malformed profile: ", error);
    return db;
}

std::unique_ptr<ProfileDb>
ProfileDb::load(const std::string &path)
{
    std::string error;
    auto db = tryLoad(path, &error);
    DC_CHECK(db != nullptr, error);
    return db;
}

std::unique_ptr<ProfileDb>
ProfileDb::tryLoad(const std::string &path, std::string *error,
                   std::shared_ptr<StringTable> names)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return nullptr;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return tryDeserialize(buffer.str(), error, std::move(names));
}

} // namespace dc::prof

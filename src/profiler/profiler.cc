#include "profiler/profiler.h"

#include "common/logging.h"
#include "sim/cupti/cupti_sim.h"
#include "sim/roctracer/roctracer_sim.h"

namespace dc::prof {

Profiler::Profiler(dlmon::DlMonitor &monitor, ProfilerConfig config)
    : monitor_(monitor), ctx_(monitor.options().ctx), config_(config)
{
    cct_ = std::make_unique<Cct>(&ctx_->hostMemory());

    m_gpu_time_ = metrics_.intern(metric_names::kGpuTime);
    m_kernel_count_ = metrics_.intern(metric_names::kKernelCount);
    m_memcpy_time_ = metrics_.intern(metric_names::kMemcpyTime);
    m_memcpy_bytes_ = metrics_.intern(metric_names::kMemcpyBytes);
    m_cpu_time_ = metrics_.intern(metric_names::kCpuTime);
    m_real_time_ = metrics_.intern(metric_names::kRealTime);
    m_op_count_ = metrics_.intern(metric_names::kOpCount);
    m_op_time_ = metrics_.intern(metric_names::kOpTime);
    m_grid_ = metrics_.intern(metric_names::kGridBlocks);
    m_regs_ = metrics_.intern(metric_names::kRegsPerThread);
    m_shared_ = metrics_.intern(metric_names::kSharedMem);
    m_occupancy_ = metrics_.intern(metric_names::kOccupancy);
    m_alloc_bytes_ = metrics_.intern(metric_names::kAllocBytes);
    m_stall_samples_ = metrics_.intern(metric_names::kStallSamples);
    for (int r = 0; r < sim::kNumStallReasons; ++r) {
        m_stall_reason_.push_back(metrics_.intern(
            std::string(metric_names::kStallPrefix) +
            sim::stallReasonName(static_cast<sim::StallReason>(r))));
    }

    fw_handle_ = monitor_.callbackRegister(
        dlmon::Domain::kFramework,
        dlmon::FrameworkCallback(
            [this](const dlmon::OpCallbackInfo &info) {
                onFrameworkEvent(info);
            }));
    gpu_handle_ = monitor_.callbackRegister(
        dlmon::Domain::kGpu,
        dlmon::GpuCallback([this](const dlmon::GpuCallbackInfo &info) {
            onGpuEvent(info);
        }));
    attached_ = true;

    // Enable vendor activity collection on the monitored device.
    if (config_.gpu_activities) {
        sim::GpuRuntime &runtime = *monitor_.options().runtime;
        const int device = monitor_.options().device;
        const sim::GpuVendor vendor = ctx_->device(device).arch().vendor;
        auto handler = [this](std::vector<sim::ActivityRecord> &&records) {
            onActivities(std::move(records));
        };
        if (vendor == sim::GpuVendor::kNvidia) {
            auto result = sim::cupti::cuptiActivityEnable(
                runtime, device, handler,
                config_.activity_buffer_capacity);
            DC_CHECK(result == sim::cupti::CuptiResult::kSuccess,
                     "cuptiActivityEnable failed");
            sim::cupti::cuptiActivityConfigurePcSampling(
                runtime, device, config_.pc_sampling);
        } else if (vendor == sim::GpuVendor::kAmd) {
            const int status = sim::roctracer::roctracerOpenPool(
                runtime, device, handler,
                config_.activity_buffer_capacity);
            DC_CHECK(status == sim::roctracer::kRoctracerStatusSuccess,
                     "roctracerOpenPool failed");
            sim::roctracer::roctracerConfigureThreadTrace(
                runtime, device, config_.pc_sampling);
        } else {
            // Vendor-less device: attach the generic flush handler.
            ctx_->device(device).setFlushHandler(
                handler, config_.activity_buffer_capacity);
            ctx_->device(device).setPcSamplingEnabled(config_.pc_sampling);
        }
        activities_enabled_ = true;
    }

    if (config_.cpu_sampling) {
        cpu_sampler_ = std::make_unique<sim::SignalSampler>(
            *ctx_, sim::TimerEventKind::kCpuTime,
            config_.cpu_sample_period_ns,
            [this](sim::SimThread &thread, sim::TimerEventKind kind,
                   DurationNs interval, TimeNs wall_now) {
                onCpuSample(thread, kind, interval, wall_now);
            });
        real_sampler_ = std::make_unique<sim::SignalSampler>(
            *ctx_, sim::TimerEventKind::kRealTime,
            config_.cpu_sample_period_ns,
            [this](sim::SimThread &thread, sim::TimerEventKind kind,
                   DurationNs interval, TimeNs wall_now) {
                onCpuSample(thread, kind, interval, wall_now);
            });
    }
}

Profiler::~Profiler()
{
    if (attached_)
        finish();
}

unsigned
Profiler::pathFlags() const
{
    unsigned flags = 0;
    if (config_.python_path)
        flags |= dlmon::kCallPathPython;
    if (config_.framework_path)
        flags |= dlmon::kCallPathFramework;
    if (config_.native_path)
        flags |= dlmon::kCallPathNative;
    if (config_.gpu_kernel_frames)
        flags |= dlmon::kCallPathGpuKernel;
    return flags;
}

void
Profiler::chargeInsert(std::size_t walked_frames, std::size_t created)
{
    // Only frames the tree actually walked are billed: the leaf-cursor
    // fast path reaches the shared prefix by climbing from the
    // previous leaf, so those frames cost no child lookup — the
    // simulated overhead (Figure 6) tracks what the implementation
    // really does.
    const std::size_t hits =
        walked_frames - std::min(walked_frames, created);
    ctx_->chargeProfilingOverhead(
        static_cast<DurationNs>(hits) * config_.cct_insert_hit_ns +
        static_cast<DurationNs>(created) * config_.cct_insert_miss_ns);
}

CctNode *
Profiler::insertCurrentPath(unsigned flags)
{
    dlmon::CallPathOrigin origin;
    dlmon::CallPath path = monitor_.callpathGet(flags, &origin);
    // Leaf-cursor insertion: figure out how many leading frames this
    // path shares with the previous event's, and let the tree climb
    // from the last leaf instead of re-matching children from the
    // root. When DLMonitor reports both paths were spliced from the
    // same cached prefix (same nonzero epoch, same flags), the shared
    // length is known with no frame comparisons; only the short
    // volatile tail (API/kernel frames) is compared.
    const std::size_t shared =
        last_leaf_ == nullptr
            ? 0
            : dlmon::sharedPrefixLength(last_path_, last_origin_,
                                        last_flags_, path, origin,
                                        flags);
    std::size_t created = 0;
    CctNode *node = cct_->insert(path, &created, last_leaf_, shared);
    chargeInsert(path.size() - std::min(path.size(), shared), created);
    ++stats_.paths_inserted;
    stats_.nodes_created += created;
    last_path_ = std::move(path);
    last_origin_ = origin;
    last_flags_ = flags;
    last_leaf_ = node;
    return node;
}

void
Profiler::addMetricCharged(CctNode *node, int metric_id, double value)
{
    const std::size_t updated = cct_->addMetric(node, metric_id, value);
    ctx_->chargeProfilingOverhead(
        static_cast<DurationNs>(updated) * config_.metric_update_ns);
}

void
Profiler::onFrameworkEvent(const dlmon::OpCallbackInfo &info)
{
    ++stats_.op_events;
    switch (info.type) {
      case dlmon::FwEventType::kOperator: {
        auto &open = open_ops_[info.thread];
        if (info.phase == fw::RecordPhase::kBegin) {
            CctNode *node = insertCurrentPath(pathFlags() &
                                              ~dlmon::kCallPathGpuKernel);
            addMetricCharged(node, m_op_count_, 1.0);
            open.emplace_back(node, ctx_->now());
        } else if (!open.empty()) {
            auto [node, begin] = open.back();
            open.pop_back();
            addMetricCharged(node, m_op_time_,
                             static_cast<double>(ctx_->now() - begin));
        }
        break;
      }
      case dlmon::FwEventType::kMemory:
        if (info.alloc_delta > 0) {
            CctNode *node = insertCurrentPath(
                (pathFlags() & ~dlmon::kCallPathGpuKernel) &
                ~dlmon::kCallPathNative);
            addMetricCharged(node, m_alloc_bytes_,
                             static_cast<double>(info.bytes));
        }
        break;
      case dlmon::FwEventType::kGraphCompile:
        // Recorded as metadata only; compilation windows are rare.
        if (info.phase == fw::RecordPhase::kBegin) {
            metadata_["compiled." + info.name] = "1";
        }
        break;
    }
}

void
Profiler::onGpuEvent(const dlmon::GpuCallbackInfo &info)
{
    if (info.phase != sim::ApiPhase::kEnter)
        return;
    switch (info.api) {
      case sim::GpuApiKind::kKernelLaunch:
      case sim::GpuApiKind::kMemcpy: {
        CctNode *node = insertCurrentPath(pathFlags());
        correlation_[info.correlation_id] = node;
        break;
      }
      case sim::GpuApiKind::kMalloc:
      case sim::GpuApiKind::kFree:
      case sim::GpuApiKind::kSync:
        break;
    }
}

void
Profiler::onActivities(std::vector<sim::ActivityRecord> &&records)
{
    for (const sim::ActivityRecord &record : records) {
        ++stats_.activities_consumed;
        ctx_->chargeProfilingOverhead(config_.activity_record_ns);

        auto it = correlation_.find(record.correlation_id);
        if (it == correlation_.end())
            continue;
        CctNode *node = it->second;
        correlation_.erase(it);

        switch (record.kind) {
          case sim::ActivityKind::kKernel: {
            addMetricCharged(node, m_gpu_time_,
                             static_cast<double>(record.duration()));
            addMetricCharged(node, m_kernel_count_, 1.0);
            // Resource metrics aggregate at the kernel node only; they
            // are not meaningful summed across kernels.
            cct_->addMetric(node, m_grid_,
                            static_cast<double>(record.grid),
                            /*propagate=*/false);
            cct_->addMetric(node, m_regs_,
                            static_cast<double>(record.regs_per_thread),
                            false);
            cct_->addMetric(node, m_shared_,
                            static_cast<double>(record.shared_mem_bytes),
                            false);
            cct_->addMetric(node, m_occupancy_, record.occupancy, false);

            // Fine-grained samples extend the path with instruction
            // frames (Section 4.2, "GPU Metrics").
            for (const sim::PcSample &sample : record.pc_samples) {
                ++stats_.pc_samples_consumed;
                ctx_->chargeProfilingOverhead(config_.pc_sample_ns);
                const std::size_t before = cct_->nodeCount();
                CctNode *inst = cct_->attachChild(
                    node, dlmon::Frame::instruction(
                              sample.pc, static_cast<int>(sample.stall)));
                stats_.nodes_created += cct_->nodeCount() - before;
                cct_->addMetric(inst, m_stall_samples_, 1.0);
                cct_->addMetric(
                    inst,
                    m_stall_reason_[static_cast<int>(sample.stall)], 1.0,
                    /*propagate=*/false);
            }
            break;
          }
          case sim::ActivityKind::kMemcpy:
            addMetricCharged(node, m_memcpy_time_,
                             static_cast<double>(record.duration()));
            addMetricCharged(node, m_memcpy_bytes_,
                             static_cast<double>(record.bytes));
            break;
          case sim::ActivityKind::kMemset:
            break;
        }
    }
}

void
Profiler::onCpuSample(sim::SimThread &thread, sim::TimerEventKind kind,
                      DurationNs interval, TimeNs wall_now)
{
    (void)thread;
    (void)wall_now;
    ++stats_.cpu_samples;
    CctNode *node = insertCurrentPath(pathFlags() &
                                      ~dlmon::kCallPathGpuKernel);
    addMetricCharged(node,
                     kind == sim::TimerEventKind::kCpuTime ? m_cpu_time_
                                                           : m_real_time_,
                     static_cast<double>(interval));
}

void
Profiler::setMetadata(const std::string &key, const std::string &value)
{
    metadata_[key] = value;
}

std::unique_ptr<ProfileDb>
Profiler::finish()
{
    DC_CHECK(attached_, "profiler already finished");

    // Flush pending activity so nothing is lost.
    sim::GpuRuntime &runtime = *monitor_.options().runtime;
    const int device = monitor_.options().device;
    if (activities_enabled_) {
        ctx_->device(device).flushActivities();
        const sim::GpuVendor vendor = ctx_->device(device).arch().vendor;
        if (vendor == sim::GpuVendor::kNvidia) {
            sim::cupti::cuptiActivityDisable(runtime, device);
        } else if (vendor == sim::GpuVendor::kAmd) {
            sim::roctracer::roctracerClosePool(runtime, device);
        } else {
            ctx_->device(device).clearFlushHandler();
        }
        activities_enabled_ = false;
    }

    monitor_.callbackUnregister(dlmon::Domain::kFramework, fw_handle_);
    monitor_.callbackUnregister(dlmon::Domain::kGpu, gpu_handle_);
    cpu_sampler_.reset();
    real_sampler_.reset();
    attached_ = false;

    metadata_["device"] = ctx_->device(device).arch().name;
    metadata_["vendor"] =
        sim::gpuVendorName(ctx_->device(device).arch().vendor);

    // The profile may outlive the run (and its memory tracker).
    cct_->detachTracker();
    return std::make_unique<ProfileDb>(std::move(cct_),
                                       std::move(metrics_),
                                       std::move(metadata_));
}

} // namespace dc::prof

#pragma once

/**
 * @file
 * The calling context tree (Figure 5).
 *
 * Call paths from DLMonitor are inserted and frames referring to the same
 * location are collapsed (Frame::sameLocation implements the Section 4.2
 * equality rules). Each node aggregates metrics online with RunningStat
 * (sum/min/max/mean/stddev), and metric updates at a leaf propagate to
 * the root so every ancestor holds inclusive values — this online
 * aggregation is why DeepContext's profile size stays flat no matter how
 * long the workload runs.
 *
 * Hot-path layout (the paper's overhead claim depends on this):
 *
 *  - Nodes store a compact POD FrameKey (strings interned through a
 *    StringTable; resolved back to text only at report time), so child
 *    matching is integer compares.
 *  - Nodes are bump-allocated from a per-tree arena of chunk-size-
 *    aligned chunks and linked into their parent's intrusive sibling
 *    chain — no per-child unique_ptr, no per-bucket heap vectors. Each
 *    chunk's header records the tree's string table, so any node can
 *    recover the table that issued its ids with one pointer mask
 *    (CctNode::names()) and report paths resolve names correctly no
 *    matter which table the tree was built on, at zero bytes per node.
 *  - Small fan-out is matched by scanning the sibling chain; parents
 *    with many children (merged warehouse trees, instruction fan-out)
 *    get an open-addressed pointer table keyed by FrameKey::hash.
 *  - Per-node metrics live in a small id-sorted inline vector instead
 *    of a std::map.
 *  - insert() has a leaf-cursor fast path: given the previous event's
 *    leaf and the length of the shared prefix, only the changed suffix
 *    is walked — the common case for consecutive events from the same
 *    operator context (DLMonitor's call-path cache supplies exactly
 *    that locality).
 *
 * Name ownership: a tree holds a shared reference to its StringTable
 * (the process-wide global() by default; a store-owned table for
 * warehouse trees) and retains every name id its nodes store, so the
 * table's refcounted reclamation (StringTable::compact) can free a
 * name's text exactly when no tree references it any more. Merging
 * trees built on *different* tables translates source ids into the
 * destination table transparently.
 */

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/memory_tracker.h"
#include "common/stats.h"
#include "common/string_table.h"
#include "dlmonitor/callpath.h"

namespace dc::prof {

class Cct;
class NameTranslator;

/** One calling-context-tree node. */
class CctNode
{
  public:
    /** One (metric id, accumulator) entry; metrics() is sorted by id. */
    using MetricEntry = std::pair<int, RunningStat>;

    /** The node's compact location key. */
    const dlmon::FrameKey &key() const { return key_; }

    /** Frame layer without materializing the frame. */
    dlmon::FrameKind kind() const { return key_.kind; }

    /**
     * The string table this node's ids resolve through: the owning
     * tree's table, recovered from the arena chunk header (every node
     * is arena-allocated, so masking the node's address yields its
     * chunk).
     */
    StringTable &names() const;

    /**
     * Materialized frame with strings resolved through the owning
     * tree's table — report/analysis paths only; returns by value.
     */
    dlmon::Frame frame() const;

    /**
     * Display name resolved through the owning tree's table: operator/
     * kernel/GPU-API name, symbolized native name, or a python frame's
     * function. The reference is stable while the tree lives (the tree
     * retains its names).
     */
    const std::string &name() const;

    /** Python frame's file (empty for other kinds); stable ref. */
    const std::string &file() const;

    /** Python frame's line number (0 for other kinds). */
    int line() const
    {
        return key_.kind == dlmon::FrameKind::kPython ? key_.aux : 0;
    }

    /**
     * Short printable label ("train.py:42", "aten::conv2d", ...).
     * Matches Frame::label() without materializing a Frame — report
     * traversals call this once per visited node.
     */
    std::string label() const;

    CctNode *parent() { return parent_; }
    const CctNode *parent() const { return parent_; }
    int depth() const { return depth_; }

    /** Find a child matching @p key; nullptr if absent. */
    CctNode *findChild(const dlmon::FrameKey &key);
    const CctNode *findChild(const dlmon::FrameKey &key) const;

    /** Convenience overloads resolving @p frame through names(). */
    CctNode *findChild(const dlmon::Frame &frame);
    const CctNode *findChild(const dlmon::Frame &frame) const;

    /**
     * Metric accumulator (creating it if needed). The reference is
     * invalidated by a later metric() call that inserts a new id on
     * this node (entries live in an inline vector, not a node-based
     * map) — use it immediately, don't hold it across insertions.
     */
    RunningStat &metric(int metric_id);

    /** Metric accumulator or nullptr. */
    const RunningStat *findMetric(int metric_id) const;

    /** Metric entries, ascending by id. */
    const std::vector<MetricEntry> &metrics() const { return metrics_; }

    /** Visit children in deterministic (insertion) order. */
    void forEachChild(const std::function<void(CctNode &)> &fn);
    void forEachChild(const std::function<void(const CctNode &)> &fn) const;

    /**
     * Direct read-only child-chain iteration for traversal-heavy
     * consumers (warehouse merges, view index builds): no std::function
     * wrapper per visited node. Children are in insertion order;
     * iterate `for (c = firstChild(); c; c = c->nextSibling())`.
     */
    const CctNode *firstChild() const { return first_child_; }
    const CctNode *nextSibling() const { return next_sibling_; }

    std::size_t childCount() const { return child_count_; }

  private:
    friend class Cct;

    /// Arena-only: names() recovers the owning table by masking the
    /// node's address down to its arena chunk, so a node constructed
    /// anywhere else would resolve garbage — only Cct::newNode may
    /// build nodes.
    CctNode(const dlmon::FrameKey &key, CctNode *parent, int depth)
        : key_(key), parent_(parent), depth_(depth)
    {
    }

    /// Sibling chains beyond this length get the open-addressed table.
    static constexpr std::uint32_t kLinearScanMax = 8;

    /**
     * Append @p child (caller guarantees no same-location sibling
     * exists). @return Bytes newly allocated for the child table, for
     * the tree's memory accounting.
     */
    std::uint64_t linkChild(CctNode *child);

    /** Insert into slots_ (must have a free slot). */
    void placeSlot(CctNode *child);

    /** (Re)build slots_ at @p capacity (power of two). */
    void rebuildSlots(std::size_t capacity);

    dlmon::FrameKey key_;
    CctNode *parent_;
    CctNode *first_child_ = nullptr;
    CctNode *last_child_ = nullptr;
    CctNode *next_sibling_ = nullptr;
    std::uint32_t child_count_ = 0;
    std::int32_t depth_;
    /// Sorted by metric id; profiles carry tens of metrics at most, so
    /// a flat vector beats a node-based map on both memory and lookup.
    std::vector<MetricEntry> metrics_;
    /// Open-addressed child index (linear probing, power-of-two size);
    /// empty while the sibling chain is short enough to scan.
    std::vector<CctNode *> slots_;
};

/// bench_hotpath probes this to exercise the cursor insert overload.
#define DC_CCT_HAS_CURSOR 1

/** The tree. */
class Cct
{
  public:
    /**
     * Maximum node depth. Real unified call paths are tens of frames;
     * the cap is an invariant because consumers of the tree —
     * serialize, merge, visit — recurse once per level, so depth must
     * stay bounded for the warehouse to be safe against stack
     * overflow. Live insertion truncates over-deep paths with a
     * warning (profiling must never abort the host application);
     * profile parsing rejects files exceeding the cap outright.
     */
    static constexpr int kMaxDepth = 1000;

    /**
     * @param tracker Optional host-memory tracker; node and metric
     *        creation is charged to the "profiler.cct" category so the
     *        Figure 6 memory-overhead comparison is structural.
     */
    explicit Cct(HostMemoryTracker *tracker = nullptr);

    /**
     * A tree interning through @p names instead of the global table —
     * the warehouse's per-corpus form (null falls back to the global
     * table). The tree retains each name its nodes reference and
     * releases them on destruction, feeding the table's refcounted
     * reclamation.
     */
    explicit Cct(std::shared_ptr<StringTable> names,
                 HostMemoryTracker *tracker = nullptr);
    ~Cct();

    Cct(const Cct &) = delete;
    Cct &operator=(const Cct &) = delete;

    /** The table this tree's FrameKey ids resolve through. */
    StringTable &names() const { return *table_; }

    /** names() as the shared handle (for trees derived from this one). */
    const std::shared_ptr<StringTable> &namesShared() const
    {
        return table_;
    }

    CctNode &root() { return *root_; }
    const CctNode &root() const { return *root_; }

    /**
     * Insert a root-to-leaf call path, collapsing existing frames.
     * @param[out] created_nodes Number of new nodes (for overhead
     *        charging by the caller).
     * @return The leaf node.
     */
    CctNode *insert(const dlmon::CallPath &path,
                    std::size_t *created_nodes = nullptr);

    /**
     * Leaf-cursor fast path: @p cursor_leaf is the leaf a previous
     * insert into THIS tree returned, and the first @p shared_depth
     * frames of @p path are same-location equal to that leaf's
     * root-to-leaf path. Only the changed suffix is walked — ancestors
     * are reached by climbing from the cursor, with no child lookups
     * or string interning for the shared prefix. @p shared_depth is
     * clamped to both the cursor's depth and the path length; a null
     * cursor falls back to the root walk. Produces a tree identical to
     * root-walk insertion.
     */
    CctNode *insert(const dlmon::CallPath &path,
                    std::size_t *created_nodes, CctNode *cursor_leaf,
                    std::size_t shared_depth);

    /**
     * Find-or-create a direct child of @p parent with the tree's
     * bookkeeping (node count, memory accounting). Used by loaders and
     * by the instruction-frame extension.
     */
    CctNode *attachChild(CctNode *parent, const dlmon::Frame &frame);

    /**
     * attachChild for an already-interned key (merge, v2 parser). The
     * key's ids must have been issued by this tree's table.
     */
    CctNode *attachChild(CctNode *parent, const dlmon::FrameKey &key);

    /**
     * Add one metric sample at @p node; when @p propagate is set the
     * sample is also added to every ancestor up to the root (Figure 5's
     * "propagate metrics"). Non-finite samples are dropped with a
     * warning so tree stats always serialize and merge cleanly.
     * @return Number of nodes updated (0 for a dropped sample).
     */
    std::size_t addMetric(CctNode *node, int metric_id, double value,
                          bool propagate = true);

    /**
     * Structurally merge @p other into this tree: frames matching
     * Frame::sameLocation unify (by direct FrameKey equality when both
     * trees share a string table; when they do not, @p other's name
     * ids are translated into this tree's table on the fly), subtrees
     * absent here are created, and per-node RunningStat accumulators
     * are combined (parallel Welford). Metric ids of @p other are
     * translated through @p metric_remap (index = other id) when
     * non-empty; empty means ids already agree.
     *
     * This is the warehouse's merge kernel: the walk recurses directly
     * over the intrusive child chains (no per-node std::function
     * dispatch), and a source subtree with no destination counterpart
     * is block-copied without child probes — the partial trees of a
     * parallel reduction hit that path on their first runs.
     * @return Number of nodes created in this tree.
     */
    std::size_t mergeFrom(const Cct &other,
                          const std::vector<int> &metric_remap = {});

    /**
     * Deep copy: identical structure, child insertion order, metric
     * ids, stats, and string table (node identity is per-tree; parent/
     * cursor pointers do not transfer). The incremental corpus-view
     * refresh clones the cached merged tree and merges only
     * newly-ingested runs into the copy instead of re-merging the
     * corpus. Not attached to a memory tracker; memoryBytes() is
     * re-accounted on the copy.
     */
    std::unique_ptr<Cct> clone() const;

    /** Total node count (including the root). */
    std::size_t nodeCount() const { return node_count_; }

    /**
     * Estimated live bytes of the tree: arena nodes, child tables,
     * and metric entries. Name text is NOT included — names live once
     * in the tree's StringTable (see StringTable::textBytes() for that
     * shared pool), not per tree.
     */
    std::uint64_t memoryBytes() const { return memory_bytes_; }

    /** Pre-order traversal. */
    void visit(const std::function<void(const CctNode &)> &fn) const;
    void visit(const std::function<void(CctNode &)> &fn);

    /**
     * Release the tree's charge from the memory tracker and detach from
     * it. Called when the profile is handed to the user and outlives the
     * profiled run.
     */
    void detachTracker();

  private:
    void charge(std::uint64_t bytes);

    /** Arena-construct a node (no linking); retains the key's names. */
    CctNode *newNode(const dlmon::FrameKey &key, CctNode *parent,
                     int depth);

    /** Construct + link a child (caller checked it does not exist). */
    CctNode *createChild(CctNode *parent, const dlmon::FrameKey &key);

    /** Depth-cap degradation shared by the attach paths. */
    CctNode *atDepthCap(CctNode *parent);

    /** Find-or-create one child (attach/merge paths). */
    CctNode *childOf(CctNode *parent, const dlmon::FrameKey &key,
                     bool *created);

    /** Copy @p src's metrics onto @p dst (ids through @p remap). */
    void copyMetrics(CctNode &dst, const CctNode &src,
                     const std::vector<int> &remap);

    /**
     * Merge kernel: combine @p src (and its subtree) into @p dst.
     * @p names translates src name ids into this tree's table (null
     * when both trees share a table — the hot case).
     */
    void mergeNode(CctNode &dst, const CctNode &src,
                   const std::vector<int> &remap, NameTranslator *names);

    /**
     * Block-copy @p src's children under @p dst, which was just
     * created from src's (translated) key and has no children of its
     * own.
     */
    void cloneInto(CctNode *dst, const CctNode &src,
                   const std::vector<int> &remap, NameTranslator *names);

    /** Insert path[begin..] below @p node (depth-capped). */
    CctNode *descend(CctNode *node, const dlmon::CallPath &path,
                     std::size_t begin, std::size_t *created_nodes);

    std::shared_ptr<StringTable> table_;
    /// Chunk-size-aligned arena chunks (ChunkHeader + node slots);
    /// nodes never move, so parent/child/cursor pointers and the
    /// address-mask table recovery stay valid for the tree's lifetime.
    std::vector<unsigned char *> arena_chunks_;
    std::size_t arena_used_in_last_ = 0;
    CctNode *root_ = nullptr;
    HostMemoryTracker *tracker_;
    std::size_t node_count_ = 1;
    std::uint64_t memory_bytes_ = 0;
    /// Depth-cap truncation and non-finite-sample drops are warned
    /// once per tree: they fire on the profiling hot path, so
    /// per-event logging would itself become the overhead.
    bool depth_warned_ = false;
    bool metric_warned_ = false;
};

} // namespace dc::prof

#pragma once

/**
 * @file
 * The calling context tree (Figure 5).
 *
 * Call paths from DLMonitor are inserted and frames referring to the same
 * location are collapsed (Frame::sameLocation implements the Section 4.2
 * equality rules). Each node aggregates metrics online with RunningStat
 * (sum/min/max/mean/stddev), and metric updates at a leaf propagate to
 * the root so every ancestor holds inclusive values — this online
 * aggregation is why DeepContext's profile size stays flat no matter how
 * long the workload runs.
 */

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "common/stats.h"
#include "dlmonitor/callpath.h"

namespace dc::prof {

/** One calling-context-tree node. */
class CctNode
{
  public:
    CctNode(dlmon::Frame frame, CctNode *parent, int depth)
        : frame_(std::move(frame)), parent_(parent), depth_(depth)
    {
    }

    const dlmon::Frame &frame() const { return frame_; }
    CctNode *parent() { return parent_; }
    const CctNode *parent() const { return parent_; }
    int depth() const { return depth_; }

    /** Find a child matching @p frame; nullptr if absent. */
    CctNode *findChild(const dlmon::Frame &frame);
    const CctNode *findChild(const dlmon::Frame &frame) const;

    /** Find-or-create a child. @p created reports whether it was new. */
    CctNode *child(const dlmon::Frame &frame, bool *created);

    /** Metric accumulator (creating it if needed). */
    RunningStat &metric(int metric_id) { return metrics_[metric_id]; }

    /** Metric accumulator or nullptr. */
    const RunningStat *findMetric(int metric_id) const;

    const std::map<int, RunningStat> &metrics() const { return metrics_; }

    /** Visit children in deterministic (insertion) order. */
    void forEachChild(const std::function<void(CctNode &)> &fn);
    void forEachChild(const std::function<void(const CctNode &)> &fn) const;

    std::size_t childCount() const { return order_.size(); }

  private:
    dlmon::Frame frame_;
    CctNode *parent_;
    int depth_;
    std::map<int, RunningStat> metrics_;
    /// Hash buckets; collisions resolved by Frame::sameLocation.
    std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<CctNode>>>
        children_;
    /// Deterministic iteration order (pointers into children_).
    std::vector<CctNode *> order_;
};

/** The tree. */
class Cct
{
  public:
    /**
     * Maximum node depth. Real unified call paths are tens of frames;
     * the cap is an invariant because consumers of the tree —
     * serialize, merge, visit — recurse once per level, so depth must
     * stay bounded for the warehouse to be safe against stack
     * overflow. Live insertion truncates over-deep paths with a
     * warning (profiling must never abort the host application);
     * profile parsing rejects files exceeding the cap outright.
     */
    static constexpr int kMaxDepth = 1000;

    /**
     * @param tracker Optional host-memory tracker; node and metric
     *        creation is charged to the "profiler.cct" category so the
     *        Figure 6 memory-overhead comparison is structural.
     */
    explicit Cct(HostMemoryTracker *tracker = nullptr);
    ~Cct();

    Cct(const Cct &) = delete;
    Cct &operator=(const Cct &) = delete;

    CctNode &root() { return *root_; }
    const CctNode &root() const { return *root_; }

    /**
     * Insert a root-to-leaf call path, collapsing existing frames.
     * @param[out] created_nodes Number of new nodes (for overhead
     *        charging by the caller).
     * @return The leaf node.
     */
    CctNode *insert(const dlmon::CallPath &path,
                    std::size_t *created_nodes = nullptr);

    /**
     * Find-or-create a direct child of @p parent with the tree's
     * bookkeeping (node count, memory accounting). Used by loaders and
     * by the instruction-frame extension.
     */
    CctNode *attachChild(CctNode *parent, const dlmon::Frame &frame);

    /**
     * Add one metric sample at @p node; when @p propagate is set the
     * sample is also added to every ancestor up to the root (Figure 5's
     * "propagate metrics"). Non-finite samples are dropped with a
     * warning so tree stats always serialize and merge cleanly.
     * @return Number of nodes updated (0 for a dropped sample).
     */
    std::size_t addMetric(CctNode *node, int metric_id, double value,
                          bool propagate = true);

    /**
     * Structurally merge @p other into this tree: frames matching
     * Frame::sameLocation unify, subtrees absent here are created, and
     * per-node RunningStat accumulators are combined (parallel Welford).
     * Metric ids of @p other are translated through @p metric_remap
     * (index = other id) when non-empty; empty means ids already agree.
     * @return Number of nodes created in this tree.
     */
    std::size_t mergeFrom(const Cct &other,
                          const std::vector<int> &metric_remap = {});

    /** Total node count (including the root). */
    std::size_t nodeCount() const { return node_count_; }

    /** Estimated live bytes of the tree. */
    std::uint64_t memoryBytes() const { return memory_bytes_; }

    /** Pre-order traversal. */
    void visit(const std::function<void(const CctNode &)> &fn) const;
    void visit(const std::function<void(CctNode &)> &fn);

    /**
     * Release the tree's charge from the memory tracker and detach from
     * it. Called when the profile is handed to the user and outlives the
     * profiled run.
     */
    void detachTracker();

  private:
    void charge(std::uint64_t bytes);

    std::unique_ptr<CctNode> root_;
    HostMemoryTracker *tracker_;
    std::size_t node_count_ = 1;
    std::uint64_t memory_bytes_ = 0;
    /// Depth-cap truncation and non-finite-sample drops are warned
    /// once per tree: they fire on the profiling hot path, so
    /// per-event logging would itself become the overhead.
    bool depth_warned_ = false;
    bool metric_warned_ = false;
};

} // namespace dc::prof

#pragma once

/**
 * @file
 * The DeepContext profiler (Section 4.2).
 *
 * Registers callbacks on DLMonitor's FRAMEWORK and GPU domains, enables
 * vendor activity collection (CUPTI-sim / RocTracer-sim), and optionally
 * CPU sampling. Every observation is attributed to a calling-context-tree
 * node obtained via dlmonitor_callpath_get and aggregated online:
 *
 *  - kernel launches record a correlation-ID -> CCT-node mapping; the
 *    asynchronous activity flush later attributes GPU time, launch
 *    geometry, occupancy, and (optionally) PC samples to that node;
 *  - operator begin/end events attribute op counts and op CPU time;
 *  - CPU_TIME / REAL_TIME samplers attribute sampling intervals.
 *
 * All profiler work charges virtual time, so Figure 6's overhead numbers
 * emerge from the amount of work configured.
 */

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dlmonitor/dlmonitor.h"
#include "profiler/cct.h"
#include "profiler/metrics.h"
#include "profiler/profile_db.h"
#include "sim/perf/perf_events.h"

namespace dc::prof {

/** Profiler configuration. */
struct ProfilerConfig {
    bool python_path = true;
    bool framework_path = true;
    /// Collect native C/C++ call paths (the "DeepContext Native" variant
    /// in Figure 6; costs extra unwinding time).
    bool native_path = false;
    bool gpu_kernel_frames = true;

    bool gpu_activities = true;
    /// Fine-grained instruction sampling (Section 6.7).
    bool pc_sampling = false;
    std::size_t activity_buffer_capacity = 512;

    bool cpu_sampling = false;
    DurationNs cpu_sample_period_ns = 4'000'000; // 250 Hz

    // Virtual-time costs of the profiler's own work.
    /// Per existing frame the insert actually walked; frames skipped
    /// by the leaf-cursor fast path (shared, epoch-verified prefixes)
    /// are not billed — see Profiler::chargeInsert.
    DurationNs cct_insert_hit_ns = 60;
    DurationNs cct_insert_miss_ns = 450;  ///< Per created node.
    DurationNs metric_update_ns = 35;     ///< Per node on the propagation
                                          ///< path (frame unification +
                                          ///< aggregation cost).
    DurationNs activity_record_ns = 140;  ///< Per consumed record.
    DurationNs pc_sample_ns = 90;         ///< Per consumed PC sample.
};

/** Profiler run statistics (tests / ablations). */
struct ProfilerStats {
    std::uint64_t paths_inserted = 0;
    std::uint64_t nodes_created = 0;
    std::uint64_t activities_consumed = 0;
    std::uint64_t pc_samples_consumed = 0;
    std::uint64_t cpu_samples = 0;
    std::uint64_t op_events = 0;
};

/** The profiler. Construct to attach; finish() detaches and yields a DB. */
class Profiler
{
  public:
    Profiler(dlmon::DlMonitor &monitor, ProfilerConfig config = {});
    ~Profiler();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** Live CCT (inspectable mid-run). */
    const Cct &cct() const { return *cct_; }

    MetricRegistry &metrics() { return metrics_; }

    const ProfilerStats &stats() const { return stats_; }

    /** Set a metadata key recorded into the profile. */
    void setMetadata(const std::string &key, const std::string &value);

    /**
     * Flush outstanding activity, detach all callbacks, and build the
     * profile database. The profiler is inert afterwards.
     */
    std::unique_ptr<ProfileDb> finish();

  private:
    unsigned pathFlags() const;
    CctNode *insertCurrentPath(unsigned flags);
    void chargeInsert(std::size_t walked_frames, std::size_t created);
    void addMetricCharged(CctNode *node, int metric_id, double value);

    void onFrameworkEvent(const dlmon::OpCallbackInfo &info);
    void onGpuEvent(const dlmon::GpuCallbackInfo &info);
    void onActivities(std::vector<sim::ActivityRecord> &&records);
    void onCpuSample(sim::SimThread &thread, sim::TimerEventKind kind,
                     DurationNs interval, TimeNs wall_now);

    dlmon::DlMonitor &monitor_;
    sim::SimContext *ctx_;
    ProfilerConfig config_;

    std::unique_ptr<Cct> cct_;
    MetricRegistry metrics_;
    std::map<std::string, std::string> metadata_;
    ProfilerStats stats_;

    // Interned metric ids.
    int m_gpu_time_;
    int m_kernel_count_;
    int m_memcpy_time_;
    int m_memcpy_bytes_;
    int m_cpu_time_;
    int m_real_time_;
    int m_op_count_;
    int m_op_time_;
    int m_grid_;
    int m_regs_;
    int m_shared_;
    int m_occupancy_;
    int m_alloc_bytes_;
    int m_stall_samples_;
    std::vector<int> m_stall_reason_;

    int fw_handle_ = 0;
    int gpu_handle_ = 0;
    bool attached_ = false;
    bool activities_enabled_ = false;

    std::unordered_map<CorrelationId, CctNode *> correlation_;
    /// Per-thread stack of (node, begin wall time) for op timing.
    std::unordered_map<ThreadId, std::vector<std::pair<CctNode *, TimeNs>>>
        open_ops_;

    /// Leaf-cursor state: the previous event's path, its provenance,
    /// and its leaf. Each insert walks only the suffix that changed
    /// since the last event (consecutive events share deep prefixes —
    /// the same locality DLMonitor's call-path cache exploits, and its
    /// prefix epoch proves the sharing without frame comparisons).
    dlmon::CallPath last_path_;
    dlmon::CallPathOrigin last_origin_;
    unsigned last_flags_ = 0;
    CctNode *last_leaf_ = nullptr;

    std::unique_ptr<sim::SignalSampler> cpu_sampler_;
    std::unique_ptr<sim::SignalSampler> real_sampler_;
};

} // namespace dc::prof

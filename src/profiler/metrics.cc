#include "profiler/metrics.h"

#include "common/logging.h"

namespace dc::prof {

int
MetricRegistry::intern(const std::string &name)
{
    auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    const int id = static_cast<int>(names_.size());
    names_.push_back(name);
    ids_[name] = id;
    return id;
}

std::vector<int>
MetricRegistry::mergeFrom(const MetricRegistry &other)
{
    std::vector<int> remap;
    remap.reserve(other.names_.size());
    for (const std::string &name : other.names_)
        remap.push_back(intern(name));
    return remap;
}

int
MetricRegistry::find(const std::string &name) const
{
    auto it = ids_.find(name);
    return it == ids_.end() ? -1 : it->second;
}

const std::string &
MetricRegistry::name(int id) const
{
    DC_CHECK(id >= 0 && id < static_cast<int>(names_.size()),
             "bad metric id ", id);
    return names_[static_cast<std::size_t>(id)];
}

} // namespace dc::prof

#include "dlmonitor/dlmonitor.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/cupti/cupti_sim.h"
#include "sim/roctracer/roctracer_sim.h"

namespace dc::dlmon {

namespace {

/// Bytes charged per stored forward-association frame.
constexpr std::uint64_t kAssocFrameBytes = 72;

} // namespace

void
DlMonitor::roctracerThunk(sim::roctracer::RoctracerDomain domain,
                          const sim::ApiCallbackInfo &info, void *arg)
{
    (void)domain;
    static_cast<DlMonitor *>(arg)->onGpuApi(info);
}

std::unique_ptr<DlMonitor>
DlMonitor::init(const DlMonitorOptions &options)
{
    DC_CHECK(options.ctx != nullptr, "DlMonitor needs a SimContext");
    DC_CHECK(options.runtime != nullptr, "DlMonitor needs a GpuRuntime");
    auto monitor = std::unique_ptr<DlMonitor>(new DlMonitor(options));
    return monitor;
}

DlMonitor::DlMonitor(const DlMonitorOptions &options)
    : options_(options), ctx_(options.ctx)
{
    if (options_.torch != nullptr)
        attachTorch();
    if (options_.jax != nullptr)
        attachJax();
    attachGpu();
}

DlMonitor::~DlMonitor()
{
    finalize();
}

void
DlMonitor::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    if (torch_attached_) {
        options_.torch->recordFunctions().removeGlobalCallback(
            torch_handle_);
        torch_attached_ = false;
    }
    if (jax_attached_) {
        options_.jax->clearInstrumentation();
        jax_attached_ = false;
    }
    if (gpu_attached_) {
        if (roctracer_attached_) {
            sim::roctracer::roctracerDisableDomainCallback(
                *options_.runtime, options_.device,
                sim::roctracer::kDomainHipApi);
            roctracer_attached_ = false;
        } else {
            options_.runtime->unsubscribe(runtime_token_);
        }
        gpu_attached_ = false;
    }
    if (audit_attached_) {
        options_.runtime->clearAudit();
        audit_attached_ = false;
    }
    if (forward_context_bytes_ > 0) {
        ctx_->hostMemory().release("dlmonitor.assoc",
                                   forward_context_bytes_);
        forward_context_bytes_ = 0;
    }
    framework_callbacks_.clear();
    gpu_callbacks_.clear();
}

void
DlMonitor::attachTorch()
{
    torch_handle_ =
        options_.torch->recordFunctions().addGlobalCallback(
            [this](const fw::RecordEvent &event) { onTorchEvent(event); });
    torch_attached_ = true;
}

void
DlMonitor::attachJax()
{
    fw::JaxInstrumentation hooks;
    hooks.op_callback = [this](const fw::JaxOpEvent &event) {
        onJaxOpEvent(event);
    };
    hooks.compile_callback =
        [this](fw::RecordPhase phase, const std::string &name) {
            onJaxCompile(phase, name);
        };
    options_.jax->setInstrumentation(std::move(hooks));
    jax_attached_ = true;
}

void
DlMonitor::attachGpu()
{
    const sim::GpuVendor vendor =
        ctx_->device(options_.device).arch().vendor;

    if (!options_.audit_config_text.empty()) {
        // LD_AUDIT extension path: intercept functions listed in the
        // user's configuration file (for vendor-less hardware).
        const sim::AuditConfig config =
            sim::AuditConfig::parse(options_.audit_config_text);
        DC_CHECK(config.errors().empty(),
                 "audit config parse error: ",
                 config.errors().empty() ? "" : config.errors().front());
        options_.runtime->installAudit(
            config,
            [this](const sim::ApiCallbackInfo &info) { onGpuApi(info); });
        audit_attached_ = true;
        return;
    }

    if (vendor == sim::GpuVendor::kNvidia) {
        sim::cupti::Subscriber subscriber;
        const auto result = sim::cupti::cuptiSubscribe(
            *options_.runtime, options_.device,
            [this](const sim::ApiCallbackInfo &info) { onGpuApi(info); },
            &subscriber);
        DC_CHECK(result == sim::cupti::CuptiResult::kSuccess,
                 "cuptiSubscribe failed: ",
                 sim::cupti::cuptiResultName(result));
        runtime_token_ = subscriber.runtime_token;
        gpu_attached_ = true;
    } else if (vendor == sim::GpuVendor::kAmd) {
        const int status = sim::roctracer::roctracerEnableDomainCallback(
            *options_.runtime, options_.device,
            sim::roctracer::kDomainHipApi, &DlMonitor::roctracerThunk,
            this);
        DC_CHECK(status == sim::roctracer::kRoctracerStatusSuccess,
                 "roctracer enable failed: ", status);
        gpu_attached_ = true;
        roctracer_attached_ = true;
    } else {
        DC_CHECK(!options_.audit_config_text.empty() || true,
                 "custom device without audit config: GPU domain inactive");
    }
}

DlMonitor::ThreadState &
DlMonitor::state(ThreadId thread)
{
    if (state_memo_ != nullptr && state_memo_thread_ == thread)
        return *state_memo_;
    ThreadState &ts = thread_state_[thread];
    state_memo_thread_ = thread;
    state_memo_ = &ts; // stable: unordered_map never moves elements
    return ts;
}

std::size_t
DlMonitor::shadowDepth(ThreadId thread) const
{
    auto it = thread_state_.find(thread);
    return it == thread_state_.end() ? 0 : it->second.shadow_stack.size();
}

int
DlMonitor::callbackRegister(Domain domain, FrameworkCallback callback)
{
    DC_CHECK(domain == Domain::kFramework,
             "framework callback on non-framework domain");
    const int handle = next_handle_++;
    framework_callbacks_.emplace_back(handle, std::move(callback));
    return handle;
}

int
DlMonitor::callbackRegister(Domain domain, GpuCallback callback)
{
    DC_CHECK(domain == Domain::kGpu, "gpu callback on non-gpu domain");
    const int handle = next_handle_++;
    gpu_callbacks_.emplace_back(handle, std::move(callback));
    return handle;
}

void
DlMonitor::callbackUnregister(Domain domain, int handle)
{
    if (domain == Domain::kFramework) {
        std::erase_if(framework_callbacks_, [handle](const auto &entry) {
            return entry.first == handle;
        });
    } else {
        std::erase_if(gpu_callbacks_, [handle](const auto &entry) {
            return entry.first == handle;
        });
    }
}

void
DlMonitor::fireFramework(const OpCallbackInfo &info)
{
    for (auto &[handle, callback] : framework_callbacks_) {
        ctx_->chargeProfilingOverhead(options_.callback_dispatch_cost_ns);
        callback(info);
    }
}

void
DlMonitor::fireGpu(const GpuCallbackInfo &info)
{
    for (auto &[handle, callback] : gpu_callbacks_) {
        ctx_->chargeProfilingOverhead(options_.callback_dispatch_cost_ns);
        callback(info);
    }
}

const std::string &
DlMonitor::symbolize(Pc pc)
{
    auto it = symbol_memo_.find(pc);
    if (it == symbol_memo_.end())
        it = symbol_memo_.emplace(pc, ctx_->libraries().describe(pc)).first;
    return it->second;
}

std::vector<Frame>
DlMonitor::pythonFrames() const
{
    const auto &frames = ctx_->currentThread().pyStack().frames();
    ctx_->chargeProfilingOverhead(
        static_cast<DurationNs>(frames.size()) *
        options_.python_frame_cost_ns);
    std::vector<Frame> out;
    out.reserve(frames.size());
    for (const pyrt::PyFrame &f : frames)
        out.push_back(Frame::python(f.file, f.function, f.line));
    return out;
}

void
DlMonitor::recordForwardContext(SequenceId seq, const CallPath &prefix)
{
    auto it = forward_contexts_.find(seq);
    if (it != forward_contexts_.end()) {
        const std::uint64_t old_bytes =
            static_cast<std::uint64_t>(it->second.size()) *
            kAssocFrameBytes;
        ctx_->hostMemory().release("dlmonitor.assoc", old_bytes);
        forward_context_bytes_ -= old_bytes;
    }
    forward_contexts_[seq] = prefix;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(prefix.size()) * kAssocFrameBytes;
    ctx_->hostMemory().allocate("dlmonitor.assoc", bytes);
    forward_context_bytes_ += bytes;
}

CallPath
DlMonitor::mergeFull(ThreadState &ts, unsigned flags,
                     CallPathOrigin *origin)
{
    const bool want_python = flags & kCallPathPython;
    const bool want_framework = flags & kCallPathFramework;
    const bool want_kernel = flags & kCallPathGpuKernel;

    if (origin != nullptr)
        *origin = CallPathOrigin{};

    // Build leaf -> root, then reverse.
    std::vector<Frame> leaf_up;

    if (want_kernel && ts.in_gpu_callback && !ts.current_kernel.empty())
        leaf_up.push_back(Frame::kernel(ts.current_kernel));

    const sim::NativeStack &native = ctx_->currentThread().nativeStack();
    sim::UnwindCursor cursor(native);

    // Operator frames not yet emitted, innermost first.
    std::size_t next_shadow = ts.shadow_stack.size();

    bool reached_python = false;
    bool spliced_cache = false;

    while (cursor.step()) {
        ++stats_.native_steps;
        ctx_->chargeProfilingOverhead(options_.native_step_cost_ns);
        const Pc pc = cursor.current().pc;

        // Call-path caching mode B: stop unwinding once we reach the
        // frame the cached prefix ends at; splice the cached prefix
        // (filtered to the sources this request asked for).
        if (options_.enable_callpath_cache && ts.cache_valid &&
            pc == ts.cache_anchor_pc) {
            const std::size_t before_splice = leaf_up.size();
            for (auto it = ts.cached_prefix.rbegin();
                 it != ts.cached_prefix.rend(); ++it) {
                if (it->kind == FrameKind::kPython && !want_python)
                    continue;
                if (it->kind == FrameKind::kOperator && !want_framework)
                    continue;
                leaf_up.push_back(*it);
            }
            if (origin != nullptr) {
                // The spliced frames are root-most: after the reverse
                // below they are the leading prefix of the result.
                // Epochs are tagged by prefix source (cache splice =
                // even, assoc fallback = odd): within one epoch both
                // sources can be live with structurally different
                // prefixes, and a consumer must never treat them as
                // interchangeable.
                origin->prefix_epoch = ts.prefix_epoch * 2;
                origin->prefix_len = leaf_up.size() - before_splice;
            }
            ++stats_.cache_hits;
            spliced_cache = true;
            break;
        }

        if (ctx_->libraries().isPythonPc(pc)) {
            // Everything above the first libpython frame is replaced by
            // the Python call path.
            if (want_python) {
                std::vector<Frame> python = pythonFrames();
                for (auto it = python.rbegin(); it != python.rend(); ++it)
                    leaf_up.push_back(*it);
            }
            reached_python = true;
            break;
        }

        if (ts.in_gpu_callback && pc == ts.current_api_pc) {
            leaf_up.push_back(Frame::gpuApi(pc, ts.current_api_name));
        } else {
            Frame frame = Frame::native(pc);
            frame.name = symbolize(pc);
            leaf_up.push_back(std::move(frame));
        }

        // Insert the operator frame under its caller when this PC is the
        // recorded dispatch address of a shadow-stack operator.
        if (want_framework && next_shadow > 0 &&
            ts.shadow_stack[next_shadow - 1].op_pc == pc) {
            leaf_up.push_back(
                Frame::op(ts.shadow_stack[next_shadow - 1].name));
            --next_shadow;
        }
    }

    // Backward threads have no Python frames; adopt the forward context
    // recorded for this sequence number (Section 4.1 optimization).
    if (!reached_python && !spliced_cache && want_framework &&
        ts.assoc_valid) {
        const std::size_t before_assoc = leaf_up.size();
        for (auto it = ts.assoc_prefix.rbegin();
             it != ts.assoc_prefix.rend(); ++it) {
            leaf_up.push_back(*it);
        }
        if (origin != nullptr) {
            // Odd tag: the assoc prefix (python + operator frames
            // only) is not the cached-splice prefix (which carries
            // native frames too) — see the splice branch above.
            origin->prefix_epoch = ts.prefix_epoch * 2 + 1;
            origin->prefix_len = leaf_up.size() - before_assoc;
        }
    }

    ctx_->chargeProfilingOverhead(
        static_cast<DurationNs>(leaf_up.size()) *
        options_.merge_frame_cost_ns);

    return CallPath(leaf_up.rbegin(), leaf_up.rend());
}

CallPath
DlMonitor::callpathGet(unsigned flags, CallPathOrigin *origin)
{
    ++stats_.callpath_requests;
    ThreadState &ts = state(ctx_->currentThreadId());

    if (flags & kCallPathNative)
        return mergeFull(ts, flags, origin);

    // Cheap mode (native collection disabled): concatenate the cached
    // Python path, the shadow operator stack, the GPU API, and the
    // kernel function.
    const bool want_python = flags & kCallPathPython;
    const bool want_framework = flags & kCallPathFramework;
    const bool want_kernel = flags & kCallPathGpuKernel;

    // Everything up to (and including) the shadow operator frames is a
    // deterministic function of state that bumps the prefix epoch when
    // it changes — unless we fall back to a fresh python walk, which
    // the epoch does not cover.
    bool prefix_stable = true;

    CallPath out;
    if (want_framework && ts.assoc_valid) {
        out.insert(out.end(), ts.assoc_prefix.begin(),
                   ts.assoc_prefix.end());
    } else if (want_python) {
        bool from_cache = false;
        if (options_.enable_callpath_cache && ts.cache_valid) {
            for (const Frame &f : ts.cached_prefix) {
                if (f.kind == FrameKind::kPython)
                    out.push_back(f);
            }
            from_cache = true;
            ++stats_.cache_hits;
        }
        if (!from_cache) {
            std::vector<Frame> python = pythonFrames();
            out.insert(out.end(), python.begin(), python.end());
            prefix_stable = false;
        }
    }
    if (want_framework) {
        for (const ShadowOp &op : ts.shadow_stack) {
            if (!ts.assoc_valid || op.is_backward ||
                out.empty() ||
                out.back().kind != FrameKind::kOperator ||
                out.back().name != op.name) {
                out.push_back(Frame::op(op.name));
            }
        }
    }
    if (origin != nullptr) {
        // Even tag (matching the splice branch of mergeFull is
        // impossible anyway: cheap mode and native mode never share
        // flags, which the consumer also compares). Within cheap mode
        // the branch taken (assoc vs cached python) is a deterministic
        // function of state the epoch covers, so one tag suffices.
        origin->prefix_epoch = prefix_stable ? ts.prefix_epoch * 2 : 0;
        origin->prefix_len = out.size();
    }
    if (ts.in_gpu_callback && !ts.current_api_name.empty())
        out.push_back(Frame::gpuApi(ts.current_api_pc,
                                    ts.current_api_name));
    if (want_kernel && ts.in_gpu_callback && !ts.current_kernel.empty())
        out.push_back(Frame::kernel(ts.current_kernel));

    ctx_->chargeProfilingOverhead(
        static_cast<DurationNs>(out.size()) *
        options_.merge_frame_cost_ns);
    return out;
}

void
DlMonitor::opBegin(ThreadState &ts, ShadowOp op)
{
    const bool is_backward = op.is_backward;
    const SequenceId seq = op.seq;

    if (is_backward) {
        auto it = forward_contexts_.find(seq);
        if (it != forward_contexts_.end()) {
            ts.assoc_prefix = it->second;
            ts.assoc_valid = true;
        }
    }

    ts.shadow_stack.push_back(std::move(op));

    CallPath prefix_py_ops;
    if (options_.enable_callpath_cache) {
        // Snapshot the merged prefix once per operator entry; kernel
        // launches inside the operator splice it instead of re-unwinding.
        ts.cache_valid = false; // avoid splicing a stale anchor
        CallPath merged = mergeFull(
            ts, kCallPathPython | kCallPathFramework | kCallPathNative);
        const auto &native = ctx_->currentThread().nativeStack();
        if (!native.empty()) {
            ts.cache_anchor_pc = native.frames().back().pc;
            ts.cached_prefix = merged;
            ts.cache_valid = true;
        }
        for (const Frame &f : merged) {
            if (f.kind == FrameKind::kPython ||
                f.kind == FrameKind::kOperator) {
                prefix_py_ops.push_back(f);
            }
        }
    } else {
        std::vector<Frame> python = pythonFrames();
        prefix_py_ops.insert(prefix_py_ops.end(), python.begin(),
                             python.end());
        for (const ShadowOp &shadow : ts.shadow_stack)
            prefix_py_ops.push_back(Frame::op(shadow.name));
    }

    if (!is_backward && seq != 0)
        recordForwardContext(seq, prefix_py_ops);

    // Cache, association, and shadow stack all changed shape: paths
    // returned before this operator began share no guaranteed prefix
    // with paths returned after.
    bumpPrefixEpoch(ts);
}

void
DlMonitor::opEnd(ThreadState &ts)
{
    DC_CHECK(!ts.shadow_stack.empty(), "operator end without begin");
    ts.shadow_stack.pop_back();
    ts.cache_valid = false;
    if (ts.shadow_stack.empty())
        ts.assoc_valid = false;
    bumpPrefixEpoch(ts);
}

void
DlMonitor::onTorchEvent(const fw::RecordEvent &event)
{
    ++stats_.op_events;
    ThreadState &ts = state(ctx_->currentThreadId());

    OpCallbackInfo info;
    info.phase = event.phase;
    info.name = event.name;
    info.seq = event.seq;
    info.is_backward = event.is_backward;
    info.thread = ctx_->currentThreadId();
    info.bytes = event.bytes;
    info.alloc_delta = event.alloc_delta;

    switch (event.kind) {
      case fw::RecordKind::kOperator:
        info.type = FwEventType::kOperator;
        if (event.phase == fw::RecordPhase::kBegin) {
            ShadowOp op;
            op.name = event.name;
            op.seq = event.seq;
            op.is_backward = event.is_backward;
            op.op_pc = event.op_pc;
            opBegin(ts, std::move(op));
            fireFramework(info);
        } else {
            fireFramework(info);
            opEnd(ts);
        }
        break;
      case fw::RecordKind::kMemory:
        info.type = FwEventType::kMemory;
        fireFramework(info);
        break;
      case fw::RecordKind::kGraphCompile:
        info.type = FwEventType::kGraphCompile;
        fireFramework(info);
        break;
    }
}

void
DlMonitor::onJaxOpEvent(const fw::JaxOpEvent &event)
{
    ++stats_.op_events;
    ThreadState &ts = state(ctx_->currentThreadId());

    OpCallbackInfo info;
    info.phase = event.phase;
    info.name = event.step->name;
    info.seq = event.seq;
    info.is_backward = event.step->is_backward;
    info.thread = ctx_->currentThreadId();
    info.fused_step = event.step;
    info.executable = event.executable;

    if (event.phase == fw::RecordPhase::kBegin) {
        ShadowOp op;
        op.name = event.step->name;
        op.seq = event.seq;
        op.is_backward = event.step->is_backward;
        op.op_pc = event.op_pc;
        op.fused_step = event.step;
        opBegin(ts, std::move(op));
        fireFramework(info);
    } else {
        fireFramework(info);
        opEnd(ts);
    }
}

void
DlMonitor::onJaxCompile(fw::RecordPhase phase, const std::string &name)
{
    OpCallbackInfo info;
    info.phase = phase;
    info.type = FwEventType::kGraphCompile;
    info.name = name;
    info.thread = ctx_->currentThreadId();
    fireFramework(info);
}

void
DlMonitor::onGpuApi(const sim::ApiCallbackInfo &info)
{
    ++stats_.gpu_events;
    ThreadState &ts = state(ctx_->currentThreadId());

    if (!gpu_callbacks_.empty() &&
        ctx_->device(info.device_id).arch().vendor ==
            sim::GpuVendor::kAmd) {
        ctx_->chargeProfilingOverhead(options_.roctracer_event_extra_ns);
    }

    GpuCallbackInfo out;
    out.phase = info.phase;
    out.api = info.api;
    out.function_name = info.function_name;
    out.correlation_id = info.correlation_id;
    out.device = info.device_id;
    out.stream = info.stream;
    out.kernel = info.kernel;
    out.bytes = info.bytes;

    if (info.phase == sim::ApiPhase::kEnter) {
        ts.in_gpu_callback = true;
        const auto &native = ctx_->currentThread().nativeStack();
        ts.current_api_pc =
            native.empty() ? 0 : native.frames().back().pc;
        ts.current_api_name = info.function_name;
        if (info.kernel != nullptr)
            ts.current_kernel = info.kernel->name;
        fireGpu(out);
    } else {
        fireGpu(out);
        ts.in_gpu_callback = false;
        ts.current_api_pc = 0;
        ts.current_api_name.clear();
        ts.current_kernel.clear();
    }
}

// --- C-style global wrappers -------------------------------------------

namespace {

std::unique_ptr<DlMonitor> g_monitor;

} // namespace

DlMonitor *
dlmonitorInit(const DlMonitorOptions &options)
{
    g_monitor = DlMonitor::init(options);
    return g_monitor.get();
}

DlMonitor *
dlmonitorInstance()
{
    return g_monitor.get();
}

int
dlmonitorCallbackRegister(Domain domain, FrameworkCallback callback)
{
    DC_CHECK(g_monitor != nullptr, "dlmonitor not initialized");
    return g_monitor->callbackRegister(domain, std::move(callback));
}

int
dlmonitorCallbackRegister(Domain domain, GpuCallback callback)
{
    DC_CHECK(g_monitor != nullptr, "dlmonitor not initialized");
    return g_monitor->callbackRegister(domain, std::move(callback));
}

CallPath
dlmonitorCallpathGet(unsigned flags)
{
    DC_CHECK(g_monitor != nullptr, "dlmonitor not initialized");
    return g_monitor->callpathGet(flags);
}

void
dlmonitorFinalize()
{
    if (g_monitor != nullptr) {
        g_monitor->finalize();
        g_monitor.reset();
    }
}

} // namespace dc::dlmon

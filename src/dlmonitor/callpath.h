#pragma once

/**
 * @file
 * Multi-layer call-path frames.
 *
 * A unified call path spans Python frames, deep-learning operator frames,
 * native C/C++ frames, GPU API frames, GPU kernel frames, and (for
 * fine-grained metrics) instruction frames — Figure 3(b) of the paper.
 * Frame equality follows Section 4.2: native/GPU frames match by program
 * counter, Python frames by (file, line), operator frames by name.
 */

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/string_table.h"
#include "common/types.h"

namespace dc::dlmon {

/** Layer a frame belongs to. */
enum class FrameKind : std::uint8_t {
    kPython,      ///< Python file/function/line.
    kOperator,    ///< Deep-learning operator (framework layer).
    kNative,      ///< C/C++ frame (PC into a simulated library).
    kGpuApi,      ///< Driver API frame (also a PC).
    kKernel,      ///< GPU kernel function.
    kInstruction, ///< Sampled instruction inside a kernel.
};

/** Printable kind name. */
const char *frameKindName(FrameKind kind);

/** One frame of a unified call path. */
struct Frame {
    FrameKind kind = FrameKind::kNative;

    // Python frames.
    std::string file;
    std::string function;
    int line = 0;

    // Native / GPU API / instruction frames.
    Pc pc = 0;

    // Operator and kernel frames (and resolved native names in reports).
    std::string name;

    // Instruction frames: stall reason index (sim::StallReason).
    int stall = -1;

    /** Construct a Python frame. */
    static Frame python(std::string file, std::string function, int line);
    /** Construct an operator frame. */
    static Frame op(std::string name);
    /** Construct a native frame. */
    static Frame native(Pc pc);
    /** Construct a GPU API frame. */
    static Frame gpuApi(Pc pc, std::string name);
    /** Construct a kernel frame. */
    static Frame kernel(std::string name);
    /** Construct an instruction frame. */
    static Frame instruction(Pc pc, int stall);

    /** Equality under the paper's collapsing rules. */
    bool sameLocation(const Frame &other) const;

    /** Stable hash consistent with sameLocation. */
    std::uint64_t locationHash() const;

    /** Short printable label ("train.py:42", "aten::conv2d", ...). */
    std::string label() const;
};

/**
 * Compact canonical frame record for the profiling hot path.
 *
 * A FrameKey is the Frame with its strings interned through a
 * StringTable: 24 bytes of POD, trivially copyable, with equality and
 * hashing that follow exactly the Frame::sameLocation collapsing rules
 * (display-only fields — a native frame's symbolized name, a python
 * frame's function — do not participate). CCT nodes store FrameKeys and
 * resolve text only at report time, so per-event child lookup is
 * integer compares instead of string hashing.
 *
 * Field use per kind:
 *  - kPython:      file_id + aux(line) locate; name_id(function) displays.
 *  - kOperator:    name_id locates.
 *  - kNative:      pc locates; name_id (symbolized) displays.
 *  - kGpuApi:      pc locates; name_id displays.
 *  - kKernel:      name_id locates.
 *  - kInstruction: pc + aux(stall) locate.
 */
struct FrameKey {
    Pc pc = 0;                    ///< Native / GPU API / instruction PC.
    StringTable::Id file_id = 0;  ///< Python file.
    StringTable::Id name_id = 0;  ///< Function / operator / kernel name.
    std::int32_t aux = 0;         ///< Python line or instruction stall.
    FrameKind kind = FrameKind::kNative;

    /** Intern @p frame's strings and build its key. */
    static FrameKey from(const Frame &frame,
                         StringTable &table = StringTable::global());

    /**
     * Location-only key for child lookup: display-only strings (a
     * python frame's function, a native/GPU-API frame's symbolized
     * name) are left unresolved, skipping their interning cost on the
     * hot path, and location names are *looked up*, never interned —
     * a name @p table has never seen gets StringTable::kUnknown,
     * which matches no stored key, so probing for a frame cannot grow
     * the table. Compares equal to the full key of any same-location
     * frame already in the table; use from() when the key will be
     * stored in a new node.
     */
    static FrameKey locator(const Frame &frame,
                            const StringTable &table =
                                StringTable::global());

    /** Materialize a full Frame (report paths only). */
    Frame toFrame(const StringTable &table = StringTable::global()) const;

    /** Location equality; agrees with Frame::sameLocation. */
    bool operator==(const FrameKey &other) const
    {
        if (kind != other.kind)
            return false;
        switch (kind) {
          case FrameKind::kPython:
            return file_id == other.file_id && aux == other.aux;
          case FrameKind::kOperator:
          case FrameKind::kKernel:
            return name_id == other.name_id;
          case FrameKind::kNative:
          case FrameKind::kGpuApi:
            return pc == other.pc;
          case FrameKind::kInstruction:
            return pc == other.pc && aux == other.aux;
        }
        return false;
    }

    /** 64-bit hash over exactly the fields operator== compares. */
    std::uint64_t hash() const;
};

static_assert(sizeof(FrameKey) <= 24, "FrameKey must stay compact");
static_assert(std::is_trivially_copyable_v<FrameKey>,
              "FrameKey must stay POD");

/** A root-to-leaf call path. */
using CallPath = std::vector<Frame>;

/** Human-readable one-per-line rendering (for reports/tests). */
std::string toString(const CallPath &path);

/** Flags selecting which sources dlmonitor_callpath_get integrates. */
enum CallPathFlags : unsigned {
    kCallPathPython = 1u << 0,
    kCallPathFramework = 1u << 1,
    kCallPathNative = 1u << 2,
    kCallPathGpuKernel = 1u << 3,
    kCallPathAll = 0xffffffffu,
};

} // namespace dc::dlmon

#pragma once

/**
 * @file
 * Multi-layer call-path frames.
 *
 * A unified call path spans Python frames, deep-learning operator frames,
 * native C/C++ frames, GPU API frames, GPU kernel frames, and (for
 * fine-grained metrics) instruction frames — Figure 3(b) of the paper.
 * Frame equality follows Section 4.2: native/GPU frames match by program
 * counter, Python frames by (file, line), operator frames by name.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace dc::dlmon {

/** Layer a frame belongs to. */
enum class FrameKind : std::uint8_t {
    kPython,      ///< Python file/function/line.
    kOperator,    ///< Deep-learning operator (framework layer).
    kNative,      ///< C/C++ frame (PC into a simulated library).
    kGpuApi,      ///< Driver API frame (also a PC).
    kKernel,      ///< GPU kernel function.
    kInstruction, ///< Sampled instruction inside a kernel.
};

/** Printable kind name. */
const char *frameKindName(FrameKind kind);

/** One frame of a unified call path. */
struct Frame {
    FrameKind kind = FrameKind::kNative;

    // Python frames.
    std::string file;
    std::string function;
    int line = 0;

    // Native / GPU API / instruction frames.
    Pc pc = 0;

    // Operator and kernel frames (and resolved native names in reports).
    std::string name;

    // Instruction frames: stall reason index (sim::StallReason).
    int stall = -1;

    /** Construct a Python frame. */
    static Frame python(std::string file, std::string function, int line);
    /** Construct an operator frame. */
    static Frame op(std::string name);
    /** Construct a native frame. */
    static Frame native(Pc pc);
    /** Construct a GPU API frame. */
    static Frame gpuApi(Pc pc, std::string name);
    /** Construct a kernel frame. */
    static Frame kernel(std::string name);
    /** Construct an instruction frame. */
    static Frame instruction(Pc pc, int stall);

    /** Equality under the paper's collapsing rules. */
    bool sameLocation(const Frame &other) const;

    /** Stable hash consistent with sameLocation. */
    std::uint64_t locationHash() const;

    /** Short printable label ("train.py:42", "aten::conv2d", ...). */
    std::string label() const;
};

/** A root-to-leaf call path. */
using CallPath = std::vector<Frame>;

/** Human-readable one-per-line rendering (for reports/tests). */
std::string toString(const CallPath &path);

/** Flags selecting which sources dlmonitor_callpath_get integrates. */
enum CallPathFlags : unsigned {
    kCallPathPython = 1u << 0,
    kCallPathFramework = 1u << 1,
    kCallPathNative = 1u << 2,
    kCallPathGpuKernel = 1u << 3,
    kCallPathAll = 0xffffffffu,
};

} // namespace dc::dlmon

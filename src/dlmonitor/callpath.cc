#include "dlmonitor/callpath.h"

#include "common/strings.h"

namespace dc::dlmon {

namespace {

std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 12) +
                   (seed >> 4));
}

std::uint64_t
hashString(const std::string &s)
{
    // FNV-1a.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

const char *
frameKindName(FrameKind kind)
{
    switch (kind) {
      case FrameKind::kPython: return "python";
      case FrameKind::kOperator: return "operator";
      case FrameKind::kNative: return "native";
      case FrameKind::kGpuApi: return "gpu_api";
      case FrameKind::kKernel: return "kernel";
      case FrameKind::kInstruction: return "instruction";
    }
    return "?";
}

Frame
Frame::python(std::string file, std::string function, int line)
{
    Frame f;
    f.kind = FrameKind::kPython;
    f.file = std::move(file);
    f.function = std::move(function);
    f.line = line;
    return f;
}

Frame
Frame::op(std::string name)
{
    Frame f;
    f.kind = FrameKind::kOperator;
    f.name = std::move(name);
    return f;
}

Frame
Frame::native(Pc pc)
{
    Frame f;
    f.kind = FrameKind::kNative;
    f.pc = pc;
    return f;
}

Frame
Frame::gpuApi(Pc pc, std::string name)
{
    Frame f;
    f.kind = FrameKind::kGpuApi;
    f.pc = pc;
    f.name = std::move(name);
    return f;
}

Frame
Frame::kernel(std::string name)
{
    Frame f;
    f.kind = FrameKind::kKernel;
    f.name = std::move(name);
    return f;
}

Frame
Frame::instruction(Pc pc, int stall)
{
    Frame f;
    f.kind = FrameKind::kInstruction;
    f.pc = pc;
    f.stall = stall;
    return f;
}

bool
Frame::sameLocation(const Frame &other) const
{
    if (kind != other.kind)
        return false;
    switch (kind) {
      case FrameKind::kPython:
        // Compared by file path and line number (Section 4.2).
        return file == other.file && line == other.line;
      case FrameKind::kOperator:
        return name == other.name;
      case FrameKind::kNative:
      case FrameKind::kGpuApi:
        // Compared by library path + PC; PCs are globally unique in the
        // simulated loader, so the PC alone identifies the location.
        return pc == other.pc;
      case FrameKind::kKernel:
        return name == other.name;
      case FrameKind::kInstruction:
        return pc == other.pc && stall == other.stall;
    }
    return false;
}

std::uint64_t
Frame::locationHash() const
{
    std::uint64_t h = static_cast<std::uint64_t>(kind) * 0x9e3779b9ull;
    switch (kind) {
      case FrameKind::kPython:
        h = hashCombine(h, hashString(file));
        h = hashCombine(h, static_cast<std::uint64_t>(line));
        break;
      case FrameKind::kOperator:
      case FrameKind::kKernel:
        h = hashCombine(h, hashString(name));
        break;
      case FrameKind::kNative:
      case FrameKind::kGpuApi:
        h = hashCombine(h, pc);
        break;
      case FrameKind::kInstruction:
        h = hashCombine(h, pc);
        h = hashCombine(h, static_cast<std::uint64_t>(stall + 1));
        break;
    }
    return h;
}

std::string
Frame::label() const
{
    switch (kind) {
      case FrameKind::kPython:
        return strformat("%s:%d (%s)", file.c_str(), line,
                         function.c_str());
      case FrameKind::kOperator:
        return name;
      case FrameKind::kNative:
        return name.empty()
                   ? strformat("pc:0x%llx",
                               static_cast<unsigned long long>(pc))
                   : name;
      case FrameKind::kGpuApi:
        return name;
      case FrameKind::kKernel:
        return name;
      case FrameKind::kInstruction:
        return strformat("pc+0x%llx",
                         static_cast<unsigned long long>(pc));
    }
    return "?";
}

// FrameKey::hash mixes with the shared mix64 (common/string_table.h).

FrameKey
FrameKey::from(const Frame &frame, StringTable &table)
{
    FrameKey key;
    key.kind = frame.kind;
    switch (frame.kind) {
      case FrameKind::kPython:
        key.file_id = table.intern(frame.file);
        key.name_id = table.intern(frame.function);
        key.aux = frame.line;
        break;
      case FrameKind::kOperator:
      case FrameKind::kKernel:
        key.name_id = table.intern(frame.name);
        break;
      case FrameKind::kNative:
      case FrameKind::kGpuApi:
        key.pc = frame.pc;
        if (!frame.name.empty())
            key.name_id = table.intern(frame.name);
        break;
      case FrameKind::kInstruction:
        key.pc = frame.pc;
        key.aux = frame.stall;
        break;
    }
    return key;
}

FrameKey
FrameKey::locator(const Frame &frame, const StringTable &table)
{
    // Lookups must not grow the table: find() instead of intern(),
    // with kUnknown (never issued) standing in for absent names so
    // the resulting key is a guaranteed mismatch.
    const auto lookup = [&table](const std::string &text) {
        StringTable::Id id = StringTable::kUnknown;
        return table.find(text, &id) ? id : StringTable::kUnknown;
    };
    FrameKey key;
    key.kind = frame.kind;
    switch (frame.kind) {
      case FrameKind::kPython:
        key.file_id = lookup(frame.file);
        key.aux = frame.line;
        break;
      case FrameKind::kOperator:
      case FrameKind::kKernel:
        key.name_id = lookup(frame.name);
        break;
      case FrameKind::kNative:
      case FrameKind::kGpuApi:
        key.pc = frame.pc;
        break;
      case FrameKind::kInstruction:
        key.pc = frame.pc;
        key.aux = frame.stall;
        break;
    }
    return key;
}

Frame
FrameKey::toFrame(const StringTable &table) const
{
    Frame frame;
    frame.kind = kind;
    switch (kind) {
      case FrameKind::kPython:
        frame.file = table.str(file_id);
        frame.function = table.str(name_id);
        frame.line = aux;
        break;
      case FrameKind::kOperator:
      case FrameKind::kKernel:
      case FrameKind::kNative:
      case FrameKind::kGpuApi:
        frame.pc = pc;
        frame.name = table.str(name_id);
        break;
      case FrameKind::kInstruction:
        frame.pc = pc;
        frame.stall = aux;
        break;
    }
    return frame;
}

std::uint64_t
FrameKey::hash() const
{
    std::uint64_t h = static_cast<std::uint64_t>(kind) * 0x9e3779b9ull;
    switch (kind) {
      case FrameKind::kPython:
        h = mix64(h ^ (static_cast<std::uint64_t>(file_id) << 32 |
                       static_cast<std::uint32_t>(aux)));
        break;
      case FrameKind::kOperator:
      case FrameKind::kKernel:
        h = mix64(h ^ name_id);
        break;
      case FrameKind::kNative:
      case FrameKind::kGpuApi:
        h = mix64(h ^ pc);
        break;
      case FrameKind::kInstruction:
        h = mix64(h ^ pc) ^
            mix64(static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(aux)) +
                  0x9e3779b97f4a7c15ull);
        break;
    }
    return h;
}

std::string
toString(const CallPath &path)
{
    std::string out;
    for (std::size_t i = 0; i < path.size(); ++i) {
        out += std::string(i * 2, ' ');
        out += path[i].label();
        out += "\n";
    }
    return out;
}

} // namespace dc::dlmon

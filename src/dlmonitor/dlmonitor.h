#pragma once

/**
 * @file
 * DLMonitor: the "shim" layer between profilers and deep-learning
 * frameworks (Section 4.1).
 *
 * Profilers never talk to frameworks or vendor APIs directly; they
 * register callbacks for two domains:
 *
 *   - kFramework: operator begin/end (forward and backward), tensor
 *     allocation, and graph-compilation events, adapted from torchsim's
 *     addGlobalCallback and from jaxsim via the binary-instrumentation
 *     hooks;
 *   - kGpu: driver API callbacks, adapted from CUPTI-sim (Nvidia),
 *     RocTracer-sim (AMD), or LD_AUDIT config entries (custom hardware).
 *
 * callpathGet() assembles the unified call path: it walks the native
 * stack bottom-up, inserts operator frames where a frame's PC matches a
 * recorded operator dispatch address, replaces everything above the first
 * libpython frame with the Python call path, and appends the kernel frame
 * when called from a launch callback. Forward/backward association and
 * the two call-path caching modes from the paper's Optimizations section
 * are implemented here.
 */

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dlmonitor/callpath.h"
#include "framework/jaxsim/jax_session.h"
#include "framework/torchsim/torch_session.h"
#include "pyrt/py_interp.h"
#include "sim/loader/audit_config.h"
#include "sim/roctracer/roctracer_sim.h"
#include "sim/runtime/gpu_runtime.h"
#include "sim/sim_context.h"

namespace dc::dlmon {

/** Callback domains (the paper's DLMONITOR_FRAMEWORK / DLMONITOR_GPU). */
enum class Domain {
    kFramework,
    kGpu,
};

/** Framework-event categories delivered on the kFramework domain. */
enum class FwEventType {
    kOperator,
    kMemory,
    kGraphCompile,
};

/** Framework-domain callback payload. */
struct OpCallbackInfo {
    fw::RecordPhase phase = fw::RecordPhase::kBegin;
    FwEventType type = FwEventType::kOperator;
    std::string name;
    SequenceId seq = 0;
    bool is_backward = false;
    ThreadId thread = 0;
    std::uint64_t bytes = 0;
    std::int64_t alloc_delta = 0;

    /// JAX only: the fused step and executable (fused→original mapping).
    const fw::ExecStep *fused_step = nullptr;
    const fw::JaxExecutable *executable = nullptr;
};

/** GPU-domain callback payload. */
struct GpuCallbackInfo {
    sim::ApiPhase phase = sim::ApiPhase::kEnter;
    sim::GpuApiKind api = sim::GpuApiKind::kKernelLaunch;
    std::string function_name;
    CorrelationId correlation_id = 0;
    int device = 0;
    int stream = 0;
    const sim::KernelDesc *kernel = nullptr;
    std::uint64_t bytes = 0;
};

using FrameworkCallback = std::function<void(const OpCallbackInfo &)>;
using GpuCallback = std::function<void(const GpuCallbackInfo &)>;

/** Construction options (the dlmonitor_init argument block). */
struct DlMonitorOptions {
    sim::SimContext *ctx = nullptr;
    sim::GpuRuntime *runtime = nullptr;
    const pyrt::PyInterpreter *interp = nullptr;
    fw::TorchSession *torch = nullptr; ///< Attach via addGlobalCallback.
    fw::JaxSession *jax = nullptr;     ///< Attach via binary instrumentation.
    int device = 0;

    /// Call-path caching (paper Optimizations). Off for the ablation.
    bool enable_callpath_cache = true;

    /// LD_AUDIT config text for vendor-less hardware ("" = unused).
    std::string audit_config_text;

    // Virtual-time costs of DLMonitor's own work.
    DurationNs python_frame_cost_ns = 350;   ///< Per PyFrame walked.
    DurationNs native_step_cost_ns = 1'800;  ///< Per unw_step (DWARF CFI).
    DurationNs merge_frame_cost_ns = 70;     ///< Per merged output frame.
    DurationNs callback_dispatch_cost_ns = 250; ///< Per callback fired.
    /// Extra cost per GPU API event on AMD: roctracer's HSA intercept
    /// layer is heavier than CUPTI's subscriber path.
    DurationNs roctracer_event_extra_ns = 2'600;
};

/**
 * Provenance of a call path returned by callpathGet, for leaf-cursor
 * CCT insertion (the profiler's fast path).
 *
 * The leading @p prefix_len frames of the returned path were copied
 * verbatim from the thread's cached/associated prefix (and shadow
 * operator stack) identified by @p prefix_epoch. Two paths obtained
 * with the same flags and the same nonzero epoch are therefore
 * guaranteed identical over the first min(prefix_len) frames — the
 * consumer can skip re-matching them (Cct's leaf-cursor insert) with
 * no frame comparisons at all. Epoch 0 means "no stable prefix"
 * (cache disabled or a fresh python walk) and never matches.
 *
 * Epoch values encode the prefix *source* as well as its generation
 * (cache splice vs backward-association fallback get distinct tags):
 * within one generation both sources can be live with structurally
 * different prefixes, and they must never compare equal.
 */
struct CallPathOrigin {
    std::uint64_t prefix_epoch = 0;
    std::size_t prefix_len = 0;
};

/**
 * The leaf-cursor protocol's shared-prefix computation, in one place
 * for every consumer (Profiler, benches): frames proven shared by a
 * matching nonzero epoch + equal flags are skipped outright, then the
 * short volatile tail is extended by direct sameLocation comparison.
 * @return How many leading frames of @p cur equal @p prev.
 */
inline std::size_t
sharedPrefixLength(const CallPath &prev, const CallPathOrigin &prev_origin,
                   unsigned prev_flags, const CallPath &cur,
                   const CallPathOrigin &cur_origin, unsigned cur_flags)
{
    const std::size_t limit = std::min(prev.size(), cur.size());
    std::size_t shared = 0;
    if (cur_origin.prefix_epoch != 0 &&
        cur_origin.prefix_epoch == prev_origin.prefix_epoch &&
        cur_flags == prev_flags) {
        shared = std::min(
            {cur_origin.prefix_len, prev_origin.prefix_len, limit});
    }
    while (shared < limit && cur[shared].sameLocation(prev[shared]))
        ++shared;
    return shared;
}

/** Aggregate statistics for tests and the caching ablation. */
struct DlMonitorStats {
    std::uint64_t callpath_requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t native_steps = 0;
    std::uint64_t op_events = 0;
    std::uint64_t gpu_events = 0;
};

/** The shim layer. One instance per profiled process. */
class DlMonitor
{
  public:
    /** dlmonitor_init: attach to the configured substrates. */
    static std::unique_ptr<DlMonitor> init(const DlMonitorOptions &options);

    ~DlMonitor();

    /** dlmonitor_finalize: release every interception. */
    void finalize();

    /** Register a framework-domain callback; returns a handle. */
    int callbackRegister(Domain domain, FrameworkCallback callback);

    /** Register a GPU-domain callback; returns a handle. */
    int callbackRegister(Domain domain, GpuCallback callback);

    /** Remove a callback. */
    void callbackUnregister(Domain domain, int handle);

    /**
     * dlmonitor_callpath_get: assemble the unified call path for the
     * current thread. @p flags selects the sources to integrate.
     * @p origin (optional) reports how much of the result came from
     * the thread's stable cached prefix — see CallPathOrigin.
     */
    CallPath callpathGet(unsigned flags = kCallPathAll,
                         CallPathOrigin *origin = nullptr);

    /** Stats (cache hit rates etc.). */
    const DlMonitorStats &stats() const { return stats_; }

    /** The options the monitor was initialized with. */
    const DlMonitorOptions &options() const { return options_; }

    /** Shadow operator-stack depth of a thread (for tests). */
    std::size_t shadowDepth(ThreadId thread) const;

  private:
    explicit DlMonitor(const DlMonitorOptions &options);

    /** One entry of a thread's shadow operator stack. */
    struct ShadowOp {
        std::string name;
        SequenceId seq = 0;
        bool is_backward = false;
        Pc op_pc = 0;
        const fw::ExecStep *fused_step = nullptr;
    };

    /** Per-thread DLMonitor state. */
    struct ThreadState {
        std::vector<ShadowOp> shadow_stack;
        /// Cached merged prefix ending at the innermost operator frame.
        CallPath cached_prefix;
        Pc cache_anchor_pc = 0;
        bool cache_valid = false;
        /// Forward context adopted by a backward op (assoc. override).
        CallPath assoc_prefix;
        bool assoc_valid = false;
        /// Inside a GPU API callback: the API frame and kernel name.
        Pc current_api_pc = 0;
        std::string current_api_name;
        std::string current_kernel;
        bool in_gpu_callback = false;
        /// Identity of the cached/associated prefix + shadow stack as
        /// seen by callpathGet; bumped (from the monitor-wide counter,
        /// so values are unique across threads) whenever any of them
        /// change. 0 only before the first operator event.
        std::uint64_t prefix_epoch = 0;
    };

    ThreadState &state(ThreadId thread);

    void attachTorch();
    void attachJax();
    void attachGpu();

    void onTorchEvent(const fw::RecordEvent &event);
    void onJaxOpEvent(const fw::JaxOpEvent &event);
    void onJaxCompile(fw::RecordPhase phase, const std::string &name);
    void onGpuApi(const sim::ApiCallbackInfo &info);

    /** C-style trampoline handed to roctracer (user-arg = this). */
    static void roctracerThunk(sim::roctracer::RoctracerDomain domain,
                               const sim::ApiCallbackInfo &info, void *arg);

    void opBegin(ThreadState &ts, ShadowOp op);
    void opEnd(ThreadState &ts);

    /** Record the forward context of @p seq for backward association. */
    void recordForwardContext(SequenceId seq, const CallPath &prefix);

    /** Full merge of the current thread's stacks (no cache). */
    CallPath mergeFull(ThreadState &ts, unsigned flags,
                       CallPathOrigin *origin = nullptr);

    /** Stamp a fresh prefix epoch on @p ts (its prefix changed). */
    void bumpPrefixEpoch(ThreadState &ts)
    {
        ts.prefix_epoch = ++prefix_epoch_counter_;
    }

    /** Python call path of the current thread as frames (leaf last). */
    std::vector<Frame> pythonFrames() const;

    /** Memoized native-frame symbolization ("lib!symbol"). */
    const std::string &symbolize(Pc pc);

    void fireFramework(const OpCallbackInfo &info);
    void fireGpu(const GpuCallbackInfo &info);

    DlMonitorOptions options_;
    sim::SimContext *ctx_ = nullptr;
    bool finalized_ = false;

    std::vector<std::pair<int, FrameworkCallback>> framework_callbacks_;
    std::vector<std::pair<int, GpuCallback>> gpu_callbacks_;
    int next_handle_ = 1;

    /// Per-thread state lives on the per-event hot path: every op and
    /// GPU callback resolves it. unordered_map never invalidates
    /// element addresses, so the one-entry memo below stays valid as
    /// other threads register.
    std::unordered_map<ThreadId, ThreadState> thread_state_;
    /// One-entry (thread, state) memo: events arrive in long
    /// same-thread bursts, so the common case skips even the hash.
    ThreadId state_memo_thread_ = 0;
    ThreadState *state_memo_ = nullptr;

    /// Source of per-thread prefix epochs (unique across threads).
    std::uint64_t prefix_epoch_counter_ = 0;

    /// seq -> forward (python + operator) prefix, for backward assoc.
    std::map<SequenceId, CallPath> forward_contexts_;
    /// pc -> display name memo (symbolization is pure; cache it).
    std::unordered_map<Pc, std::string> symbol_memo_;
    std::uint64_t forward_context_bytes_ = 0;

    // Adapter registrations to tear down on finalize.
    int torch_handle_ = 0;
    bool torch_attached_ = false;
    bool jax_attached_ = false;
    int runtime_token_ = 0;
    bool gpu_attached_ = false;
    bool roctracer_attached_ = false;
    bool audit_attached_ = false;

    DlMonitorStats stats_;
};

// --- C-style API from the paper (thin wrappers over a process-global
// --- instance, mirroring libdlmonitor.so's exported surface) -----------

/** dlmonitor_init: create the process-global monitor. */
DlMonitor *dlmonitorInit(const DlMonitorOptions &options);

/** The process-global monitor (nullptr before init / after finalize). */
DlMonitor *dlmonitorInstance();

/** dlmonitor_callback_register on the global instance. */
int dlmonitorCallbackRegister(Domain domain, FrameworkCallback callback);
int dlmonitorCallbackRegister(Domain domain, GpuCallback callback);

/** dlmonitor_callpath_get on the global instance. */
CallPath dlmonitorCallpathGet(unsigned flags = kCallPathAll);

/** dlmonitor_finalize: tear down the global instance. */
void dlmonitorFinalize();

} // namespace dc::dlmon

#include "sim/perf/perf_events.h"

#include "common/logging.h"

namespace dc::sim {

const char *
timerEventKindName(TimerEventKind kind)
{
    switch (kind) {
      case TimerEventKind::kCpuTime: return "CPU_TIME";
      case TimerEventKind::kRealTime: return "REAL_TIME";
    }
    return "?";
}

SignalSampler::SignalSampler(SimContext &ctx, TimerEventKind kind,
                             DurationNs period, SampleCallback callback)
    : ctx_(ctx), kind_(kind), period_(period), callback_(std::move(callback))
{
    DC_CHECK(period_ > 0, "sampling period must be positive");
    hook_token_ = ctx_.addCpuTickHook(
        [this](SimThread &thread, DurationNs delta, TimeNs wall_now) {
            onTick(thread, delta, wall_now);
        });
}

SignalSampler::~SignalSampler()
{
    ctx_.removeCpuTickHook(hook_token_);
}

void
SignalSampler::onTick(SimThread &thread, DurationNs delta, TimeNs wall_now)
{
    const std::size_t tid = thread.id();
    if (clock_value_.size() <= tid) {
        clock_value_.resize(tid + 1, 0);
        last_sample_.resize(tid + 1, 0);
    }

    // Advance the clock this timer follows.
    if (kind_ == TimerEventKind::kCpuTime) {
        clock_value_[tid] += delta;
    } else {
        clock_value_[tid] = wall_now;
    }

    // Deliver one sample per elapsed period, attributing the interval
    // since the previous sample (the paper's subtract-previous-timestamp
    // scheme).
    while (clock_value_[tid] - last_sample_[tid] >= period_) {
        const DurationNs interval = clock_value_[tid] - last_sample_[tid];
        last_sample_[tid] = clock_value_[tid];
        ++sample_count_;
        callback_(thread, kind_, interval, wall_now);
    }
}

const char *
perfCounterName(PerfCounter counter)
{
    switch (counter) {
      case PerfCounter::kCycles: return "PAPI_TOT_CYC";
      case PerfCounter::kInstructions: return "PAPI_TOT_INS";
      case PerfCounter::kL2Misses: return "PAPI_L2_TCM";
      case PerfCounter::kBranchMisses: return "PAPI_BR_MSP";
    }
    return "?";
}

PapiCounterSet::PapiCounterSet(SimContext &ctx) : ctx_(ctx)
{
    hook_token_ = ctx_.addCpuTickHook(
        [this](SimThread &thread, DurationNs delta, TimeNs wall_now) {
            onTick(thread, delta, wall_now);
        });
}

PapiCounterSet::~PapiCounterSet()
{
    ctx_.removeCpuTickHook(hook_token_);
}

void
PapiCounterSet::onTick(SimThread &thread, DurationNs delta, TimeNs wall_now)
{
    (void)thread;
    (void)wall_now;
    const double cycles =
        static_cast<double>(delta) * ctx_.cpu().base_clock_ghz;
    cycles_ += cycles;
    instructions_ += cycles * 1.25;   // IPC of a busy host thread.
    l2_misses_ += cycles * 0.004;     // misses per cycle.
    branch_misses_ += cycles * 0.0015;
}

std::uint64_t
PapiCounterSet::read(PerfCounter counter) const
{
    switch (counter) {
      case PerfCounter::kCycles:
        return static_cast<std::uint64_t>(cycles_);
      case PerfCounter::kInstructions:
        return static_cast<std::uint64_t>(instructions_);
      case PerfCounter::kL2Misses:
        return static_cast<std::uint64_t>(l2_misses_);
      case PerfCounter::kBranchMisses:
        return static_cast<std::uint64_t>(branch_misses_);
    }
    return 0;
}

void
PapiCounterSet::reset()
{
    cycles_ = instructions_ = l2_misses_ = branch_misses_ = 0.0;
}

} // namespace dc::sim

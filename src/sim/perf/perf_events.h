#pragma once

/**
 * @file
 * CPU measurement substrates: sigaction-style sampling timers and
 * perf/PAPI-style hardware counters, all driven by virtual time.
 *
 * The paper (Section 4.2, "CPU Metrics"): DeepContext registers a signal
 * callback for CPU_TIME and REAL_TIME events; each sample computes the
 * interval since the previous sample and attributes it to the current call
 * path. SignalSampler reproduces this on the SimContext tick stream.
 * PapiCounterSet models PAPI_read()-style accumulating counters derived
 * from executed virtual time.
 */

#include <functional>

#include "common/types.h"
#include "sim/sim_context.h"

namespace dc::sim {

/** Which clock a sampling timer follows. */
enum class TimerEventKind {
    kCpuTime,  ///< Per-thread CPU time (ITIMER_VIRTUAL-like).
    kRealTime, ///< Wall-clock time (ITIMER_REAL-like).
};

/** Printable timer kind. */
const char *timerEventKindName(TimerEventKind kind);

/**
 * Sample delivery: thread that was interrupted, the timer kind, the
 * interval since the previous sample on that thread, and the current
 * wall time.
 */
using SampleCallback = std::function<void(
    SimThread &, TimerEventKind, DurationNs interval, TimeNs wall_now)>;

/**
 * A sigaction-registered sampling timer. Lives as long as profiling is
 * enabled; unregisters from the context on destruction.
 */
class SignalSampler
{
  public:
    SignalSampler(SimContext &ctx, TimerEventKind kind, DurationNs period,
                  SampleCallback callback);
    ~SignalSampler();

    SignalSampler(const SignalSampler &) = delete;
    SignalSampler &operator=(const SignalSampler &) = delete;

    /** Samples delivered so far. */
    std::uint64_t sampleCount() const { return sample_count_; }

  private:
    void onTick(SimThread &thread, DurationNs delta, TimeNs wall_now);

    SimContext &ctx_;
    TimerEventKind kind_;
    DurationNs period_;
    SampleCallback callback_;
    int hook_token_ = 0;
    std::uint64_t sample_count_ = 0;

    // Per-thread progress: accumulated clock value at last sample.
    std::vector<TimeNs> last_sample_;
    std::vector<TimeNs> clock_value_;
};

/** Hardware counters a PapiCounterSet can expose. */
enum class PerfCounter {
    kCycles,
    kInstructions,
    kL2Misses,
    kBranchMisses,
};

/** Printable counter name (PAPI-style). */
const char *perfCounterName(PerfCounter counter);

/**
 * PAPI-style accumulating counter set for the current thread stream.
 * Values are derived from executed virtual CPU time and the host clock
 * rate; deterministic by construction.
 */
class PapiCounterSet
{
  public:
    explicit PapiCounterSet(SimContext &ctx);
    ~PapiCounterSet();

    PapiCounterSet(const PapiCounterSet &) = delete;
    PapiCounterSet &operator=(const PapiCounterSet &) = delete;

    /** PAPI_read: current value of @p counter. */
    std::uint64_t read(PerfCounter counter) const;

    /** PAPI_reset. */
    void reset();

  private:
    void onTick(SimThread &thread, DurationNs delta, TimeNs wall_now);

    SimContext &ctx_;
    int hook_token_ = 0;
    double cycles_ = 0.0;
    double instructions_ = 0.0;
    double l2_misses_ = 0.0;
    double branch_misses_ = 0.0;
};

} // namespace dc::sim

#pragma once

/**
 * @file
 * SimContext: the root object of one simulation run.
 *
 * Owns the wall clock, logical threads, GPU devices, the dynamic-loader
 * registry, source maps, host-memory accounting, and the CPU-tick hooks
 * that drive virtual-time samplers. Everything in a run is reachable from
 * here, and two runs with the same inputs are bit-identical.
 *
 * Timing model: CPU work performed by a thread on the critical path
 * advances the wall clock; GPU streams run asynchronously and a
 * synchronize() advances the wall clock to the device completion time.
 * Profiling overhead is charged through the same advanceCpu() path, so
 * end-to-end overhead (Figure 6) emerges from the work each profiler does.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/cpu/cpu_info.h"
#include "sim/cpu/sim_thread.h"
#include "sim/gpu/gpu_device.h"
#include "sim/loader/library_registry.h"
#include "sim/loader/source_map.h"

namespace dc::sim {

/**
 * Called on every CPU advance of a thread. Used by virtual-time samplers
 * (sim::perf). Not re-entered: CPU work performed inside a hook does not
 * trigger further hooks (signals are masked inside a signal handler).
 */
using CpuTickHook =
    std::function<void(SimThread &, DurationNs, TimeNs wall_now)>;

/** Root of one deterministic simulation run. */
class SimContext
{
  public:
    explicit SimContext(CpuInfo cpu = CpuInfo{},
                        std::uint64_t seed = 0xdeadbeefull);

    // Not copyable or movable: components hold references into it.
    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    // --- Time ------------------------------------------------------------

    /** Current wall-clock virtual time. */
    TimeNs now() const { return wall_now_; }

    /** Unconditionally advance the wall clock (model-level phases). */
    void advanceWall(DurationNs delta);

    /** Advance the wall clock to at least @p t. */
    void advanceWallTo(TimeNs t);

    /**
     * Charge CPU work to the current thread. Advances the thread's CPU
     * clock, the wall clock if the thread is on the critical path, and
     * notifies tick hooks (unless called from inside one).
     */
    void advanceCpu(DurationNs delta);

    /** Like advanceCpu but also tallied as profiling overhead. */
    void chargeProfilingOverhead(DurationNs delta);

    /** Total virtual time charged via chargeProfilingOverhead. */
    DurationNs profilingOverheadTotal() const { return overhead_total_; }

    // --- Threads ---------------------------------------------------------

    /** Create a logical thread; the first created becomes current. */
    SimThread &createThread(const std::string &name, ThreadKind kind,
                            bool on_critical_path = true);

    SimThread &thread(ThreadId id);
    const SimThread &thread(ThreadId id) const;
    std::size_t threadCount() const { return threads_.size(); }

    SimThread &currentThread();
    const SimThread &currentThread() const;
    void setCurrentThread(ThreadId id);
    ThreadId currentThreadId() const { return current_thread_; }

    // --- Devices ---------------------------------------------------------

    /** Add a GPU; returns it. Device IDs are assigned in order. */
    GpuDevice &addDevice(GpuArch arch);

    GpuDevice &device(int id);
    const GpuDevice &device(int id) const;
    std::size_t deviceCount() const { return devices_.size(); }

    /** Block until all devices drain; advances the wall clock. */
    void synchronizeAllDevices();

    // --- Shared components -------------------------------------------

    LibraryRegistry &libraries() { return libraries_; }
    const LibraryRegistry &libraries() const { return libraries_; }

    SourceMap &sources() { return sources_; }
    const SourceMap &sources() const { return sources_; }

    HostMemoryTracker &hostMemory() { return host_memory_; }
    const HostMemoryTracker &hostMemory() const { return host_memory_; }

    Rng &rng() { return rng_; }

    const CpuInfo &cpu() const { return cpu_; }

    // --- Tick hooks --------------------------------------------------

    /** Register a CPU-tick hook; returns a token for unregistering. */
    int addCpuTickHook(CpuTickHook hook);

    /** Remove a hook by token. */
    void removeCpuTickHook(int token);

  private:
    CpuInfo cpu_;
    Rng rng_;
    TimeNs wall_now_ = 0;
    DurationNs overhead_total_ = 0;

    std::vector<std::unique_ptr<SimThread>> threads_;
    ThreadId current_thread_ = 0;

    std::vector<std::unique_ptr<GpuDevice>> devices_;

    LibraryRegistry libraries_;
    SourceMap sources_;
    HostMemoryTracker host_memory_;

    std::vector<std::pair<int, CpuTickHook>> tick_hooks_;
    int next_hook_token_ = 1;
    bool in_tick_hook_ = false;
};

/** RAII switch of the current thread (restores the previous on exit). */
class ThreadSwitch
{
  public:
    ThreadSwitch(SimContext &ctx, ThreadId id)
        : ctx_(ctx), previous_(ctx.currentThreadId())
    {
        ctx_.setCurrentThread(id);
    }

    ~ThreadSwitch() { ctx_.setCurrentThread(previous_); }

    ThreadSwitch(const ThreadSwitch &) = delete;
    ThreadSwitch &operator=(const ThreadSwitch &) = delete;

  private:
    SimContext &ctx_;
    ThreadId previous_;
};

} // namespace dc::sim

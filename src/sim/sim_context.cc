#include "sim/sim_context.h"

#include <algorithm>

#include "common/logging.h"

namespace dc::sim {

SimContext::SimContext(CpuInfo cpu, std::uint64_t seed)
    : cpu_(std::move(cpu)), rng_(seed)
{
    createThread("main", ThreadKind::kMain, /*on_critical_path=*/true);
}

void
SimContext::advanceWall(DurationNs delta)
{
    DC_CHECK(delta >= 0, "wall clock cannot move backwards");
    wall_now_ += delta;
}

void
SimContext::advanceWallTo(TimeNs t)
{
    wall_now_ = std::max(wall_now_, t);
}

void
SimContext::advanceCpu(DurationNs delta)
{
    DC_CHECK(delta >= 0, "cpu time cannot move backwards");
    SimThread &thread = currentThread();
    thread.addCpuTime(delta);
    if (thread.onCriticalPath())
        wall_now_ += delta;

    if (!in_tick_hook_ && !tick_hooks_.empty()) {
        in_tick_hook_ = true;
        for (auto &[token, hook] : tick_hooks_)
            hook(thread, delta, wall_now_);
        in_tick_hook_ = false;
    }
}

void
SimContext::chargeProfilingOverhead(DurationNs delta)
{
    overhead_total_ += delta;
    advanceCpu(delta);
}

SimThread &
SimContext::createThread(const std::string &name, ThreadKind kind,
                         bool on_critical_path)
{
    const ThreadId id = static_cast<ThreadId>(threads_.size());
    threads_.push_back(
        std::make_unique<SimThread>(id, name, kind, on_critical_path));
    return *threads_.back();
}

SimThread &
SimContext::thread(ThreadId id)
{
    DC_CHECK(id < threads_.size(), "bad thread id ", id);
    return *threads_[id];
}

const SimThread &
SimContext::thread(ThreadId id) const
{
    DC_CHECK(id < threads_.size(), "bad thread id ", id);
    return *threads_[id];
}

SimThread &
SimContext::currentThread()
{
    return thread(current_thread_);
}

const SimThread &
SimContext::currentThread() const
{
    return thread(current_thread_);
}

void
SimContext::setCurrentThread(ThreadId id)
{
    DC_CHECK(id < threads_.size(), "bad thread id ", id);
    current_thread_ = id;
}

GpuDevice &
SimContext::addDevice(GpuArch arch)
{
    const int id = static_cast<int>(devices_.size());
    devices_.push_back(std::make_unique<GpuDevice>(id, std::move(arch)));
    return *devices_.back();
}

GpuDevice &
SimContext::device(int id)
{
    DC_CHECK(id >= 0 && id < static_cast<int>(devices_.size()),
             "bad device id ", id);
    return *devices_[static_cast<std::size_t>(id)];
}

const GpuDevice &
SimContext::device(int id) const
{
    DC_CHECK(id >= 0 && id < static_cast<int>(devices_.size()),
             "bad device id ", id);
    return *devices_[static_cast<std::size_t>(id)];
}

void
SimContext::synchronizeAllDevices()
{
    for (auto &device : devices_) {
        advanceWallTo(device->completionTime(wall_now_));
        device->flushActivities();
    }
}

int
SimContext::addCpuTickHook(CpuTickHook hook)
{
    const int token = next_hook_token_++;
    tick_hooks_.emplace_back(token, std::move(hook));
    return token;
}

void
SimContext::removeCpuTickHook(int token)
{
    tick_hooks_.erase(
        std::remove_if(tick_hooks_.begin(), tick_hooks_.end(),
                       [token](const auto &entry) {
                           return entry.first == token;
                       }),
        tick_hooks_.end());
}

const char *
threadKindName(ThreadKind kind)
{
    switch (kind) {
      case ThreadKind::kMain: return "main";
      case ThreadKind::kBackward: return "backward";
      case ThreadKind::kLoaderWorker: return "loader_worker";
    }
    return "?";
}

} // namespace dc::sim

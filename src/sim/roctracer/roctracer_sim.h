#pragma once

/**
 * @file
 * RocTracer-shaped profiling API for the AMD-sim device.
 *
 * Intentionally a *different* API shape from CUPTI-sim (C-style status
 * ints, domain enable calls, an explicit activity "pool"), matching how
 * roctracer diverges from CUPTI in the real world. DLMonitor must adapt
 * both — this asymmetry is the point of the shim layer.
 */

#include <functional>

#include "sim/gpu/gpu_device.h"
#include "sim/runtime/gpu_runtime.h"

namespace dc::sim::roctracer {

/** roctracer uses plain int status codes: 0 success, negative errors. */
constexpr int kRoctracerStatusSuccess = 0;
constexpr int kRoctracerStatusBadDevice = -1;
constexpr int kRoctracerStatusBadArgument = -2;
constexpr int kRoctracerStatusNotEnabled = -3;

/** Callback/activity domains (only HIP API + HIP ops modeled). */
enum RoctracerDomain {
    kDomainHipApi = 1,
    kDomainHipOps = 2,
};

/** API callback signature (domain, info, user arg). */
using ApiCallbackFn = void (*)(RoctracerDomain domain,
                               const ApiCallbackInfo &info, void *arg);

/** Activity records are delivered through a pool callback. */
using ActivityPoolFn =
    std::function<void(std::vector<ActivityRecord> &&records)>;

/**
 * Enable API callbacks on the HIP domain for @p device.
 * @return 0 on success, negative status otherwise.
 */
int roctracerEnableDomainCallback(GpuRuntime &runtime, int device,
                                  RoctracerDomain domain,
                                  ApiCallbackFn callback, void *arg);

/** Disable API callbacks previously enabled. */
int roctracerDisableDomainCallback(GpuRuntime &runtime, int device,
                                   RoctracerDomain domain);

/** Open the default activity pool; records flow to @p consumer. */
int roctracerOpenPool(GpuRuntime &runtime, int device,
                      ActivityPoolFn consumer,
                      std::size_t buffer_capacity = 512);

/** Close the pool (flushes first). */
int roctracerClosePool(GpuRuntime &runtime, int device);

/** Flush pending activity records. */
int roctracerFlushActivity(GpuRuntime &runtime, int device);

/** Enable/disable wavefront-level instruction sampling (SQTT-like). */
int roctracerConfigureThreadTrace(GpuRuntime &runtime, int device,
                                  bool enabled);

} // namespace dc::sim::roctracer

#include "sim/roctracer/roctracer_sim.h"

#include <map>

namespace dc::sim::roctracer {

namespace {

bool
isAmd(GpuRuntime &runtime, int device)
{
    if (device < 0 ||
        device >= static_cast<int>(runtime.context().deviceCount())) {
        return false;
    }
    return runtime.context().device(device).arch().vendor == GpuVendor::kAmd;
}

// roctracer's C API has process-global callback state; the sim keeps the
// same shape, keyed by (runtime, device).
struct CallbackState {
    int token = 0;
    bool active = false;
};

std::map<std::pair<GpuRuntime *, int>, CallbackState> g_callbacks;

} // namespace

int
roctracerEnableDomainCallback(GpuRuntime &runtime, int device,
                              RoctracerDomain domain, ApiCallbackFn callback,
                              void *arg)
{
    if (!isAmd(runtime, device))
        return kRoctracerStatusBadDevice;
    if (callback == nullptr || domain != kDomainHipApi)
        return kRoctracerStatusBadArgument;

    const int token = runtime.subscribe(
        [device, callback, arg](const ApiCallbackInfo &info) {
            if (info.device_id == device)
                callback(kDomainHipApi, info, arg);
        });
    g_callbacks[{&runtime, device}] = CallbackState{token, true};
    return kRoctracerStatusSuccess;
}

int
roctracerDisableDomainCallback(GpuRuntime &runtime, int device,
                               RoctracerDomain domain)
{
    if (domain != kDomainHipApi)
        return kRoctracerStatusBadArgument;
    auto it = g_callbacks.find({&runtime, device});
    if (it == g_callbacks.end() || !it->second.active)
        return kRoctracerStatusNotEnabled;
    runtime.unsubscribe(it->second.token);
    g_callbacks.erase(it);
    return kRoctracerStatusSuccess;
}

int
roctracerOpenPool(GpuRuntime &runtime, int device, ActivityPoolFn consumer,
                  std::size_t buffer_capacity)
{
    if (!isAmd(runtime, device))
        return kRoctracerStatusBadDevice;
    if (!consumer)
        return kRoctracerStatusBadArgument;
    runtime.context().device(device).setFlushHandler(std::move(consumer),
                                                     buffer_capacity);
    return kRoctracerStatusSuccess;
}

int
roctracerClosePool(GpuRuntime &runtime, int device)
{
    if (!isAmd(runtime, device))
        return kRoctracerStatusBadDevice;
    runtime.context().device(device).clearFlushHandler();
    return kRoctracerStatusSuccess;
}

int
roctracerFlushActivity(GpuRuntime &runtime, int device)
{
    if (!isAmd(runtime, device))
        return kRoctracerStatusBadDevice;
    runtime.context().device(device).flushActivities();
    return kRoctracerStatusSuccess;
}

int
roctracerConfigureThreadTrace(GpuRuntime &runtime, int device, bool enabled)
{
    if (!isAmd(runtime, device))
        return kRoctracerStatusBadDevice;
    runtime.context().device(device).setPcSamplingEnabled(enabled);
    return kRoctracerStatusSuccess;
}

} // namespace dc::sim::roctracer

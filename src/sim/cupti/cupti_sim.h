#pragma once

/**
 * @file
 * CUPTI-shaped profiling API for the Nvidia-sim device.
 *
 * Deliberately mirrors the real CUPTI surface DeepContext uses
 * (Section 4.1/4.2): subscriber-based runtime-API callbacks
 * (cuptiSubscribe / cuptiEnableDomain), buffered asynchronous activity
 * records (cuptiActivityEnable + buffer-completed handler), and PC-sampling
 * activation. All calls validate that the target device is an Nvidia-sim
 * part — using CUPTI against the AMD device fails exactly like the real
 * library would, which is the portability gap DLMonitor exists to paper
 * over.
 */

#include <functional>

#include "sim/gpu/gpu_device.h"
#include "sim/runtime/gpu_runtime.h"

namespace dc::sim::cupti {

/** CUPTI-style status codes. */
enum class CuptiResult {
    kSuccess = 0,
    kErrorInvalidDevice,     ///< Device is not an Nvidia-sim part.
    kErrorNotInitialized,
    kErrorInvalidParameter,
};

/** Printable result name. */
const char *cuptiResultName(CuptiResult result);

/** Callback domains (only the runtime API domain is modeled). */
enum class CallbackDomain {
    kRuntimeApi,
};

/** Handle returned by cuptiSubscribe. */
struct Subscriber {
    int runtime_token = 0;
    int device_id = -1;
    GpuRuntime *runtime = nullptr;
    bool active = false;
};

/** Runtime-API callback: phase + info, CUPTI's cbdata equivalent. */
using RuntimeApiCallback = std::function<void(const ApiCallbackInfo &)>;

/** Activity-buffer-completed callback. */
using ActivityBufferCompleted =
    std::function<void(std::vector<ActivityRecord> &&)>;

/**
 * Subscribe to runtime-API callbacks for @p device.
 * Fails with kErrorInvalidDevice on non-Nvidia devices.
 */
CuptiResult cuptiSubscribe(GpuRuntime &runtime, int device,
                           RuntimeApiCallback callback,
                           Subscriber *out_subscriber);

/** Unsubscribe a previously created subscriber. */
CuptiResult cuptiUnsubscribe(Subscriber *subscriber);

/**
 * Enable buffered activity collection on @p device; @p completed is
 * invoked whenever the device flushes its buffer.
 */
CuptiResult cuptiActivityEnable(GpuRuntime &runtime, int device,
                                ActivityBufferCompleted completed,
                                std::size_t buffer_capacity = 512);

/** Disable activity collection (flushes first). */
CuptiResult cuptiActivityDisable(GpuRuntime &runtime, int device);

/** Force a flush of all pending activity records. */
CuptiResult cuptiActivityFlushAll(GpuRuntime &runtime, int device);

/** Enable or disable fine-grained PC sampling. */
CuptiResult cuptiActivityConfigurePcSampling(GpuRuntime &runtime, int device,
                                             bool enabled);

} // namespace dc::sim::cupti

#include "sim/cupti/cupti_sim.h"

namespace dc::sim::cupti {

const char *
cuptiResultName(CuptiResult result)
{
    switch (result) {
      case CuptiResult::kSuccess: return "CUPTI_SUCCESS";
      case CuptiResult::kErrorInvalidDevice:
        return "CUPTI_ERROR_INVALID_DEVICE";
      case CuptiResult::kErrorNotInitialized:
        return "CUPTI_ERROR_NOT_INITIALIZED";
      case CuptiResult::kErrorInvalidParameter:
        return "CUPTI_ERROR_INVALID_PARAMETER";
    }
    return "?";
}

namespace {

bool
isNvidia(GpuRuntime &runtime, int device)
{
    if (device < 0 ||
        device >= static_cast<int>(runtime.context().deviceCount())) {
        return false;
    }
    return runtime.context().device(device).arch().vendor ==
           GpuVendor::kNvidia;
}

} // namespace

CuptiResult
cuptiSubscribe(GpuRuntime &runtime, int device, RuntimeApiCallback callback,
               Subscriber *out_subscriber)
{
    if (out_subscriber == nullptr || !callback)
        return CuptiResult::kErrorInvalidParameter;
    if (!isNvidia(runtime, device))
        return CuptiResult::kErrorInvalidDevice;

    const int token = runtime.subscribe(
        [device, cb = std::move(callback)](const ApiCallbackInfo &info) {
            if (info.device_id == device)
                cb(info);
        });
    out_subscriber->runtime_token = token;
    out_subscriber->device_id = device;
    out_subscriber->runtime = &runtime;
    out_subscriber->active = true;
    return CuptiResult::kSuccess;
}

CuptiResult
cuptiUnsubscribe(Subscriber *subscriber)
{
    if (subscriber == nullptr || !subscriber->active)
        return CuptiResult::kErrorNotInitialized;
    subscriber->runtime->unsubscribe(subscriber->runtime_token);
    subscriber->active = false;
    return CuptiResult::kSuccess;
}

CuptiResult
cuptiActivityEnable(GpuRuntime &runtime, int device,
                    ActivityBufferCompleted completed,
                    std::size_t buffer_capacity)
{
    if (!isNvidia(runtime, device))
        return CuptiResult::kErrorInvalidDevice;
    if (!completed)
        return CuptiResult::kErrorInvalidParameter;
    runtime.context().device(device).setFlushHandler(std::move(completed),
                                                     buffer_capacity);
    return CuptiResult::kSuccess;
}

CuptiResult
cuptiActivityDisable(GpuRuntime &runtime, int device)
{
    if (!isNvidia(runtime, device))
        return CuptiResult::kErrorInvalidDevice;
    runtime.context().device(device).clearFlushHandler();
    return CuptiResult::kSuccess;
}

CuptiResult
cuptiActivityFlushAll(GpuRuntime &runtime, int device)
{
    if (!isNvidia(runtime, device))
        return CuptiResult::kErrorInvalidDevice;
    runtime.context().device(device).flushActivities();
    return CuptiResult::kSuccess;
}

CuptiResult
cuptiActivityConfigurePcSampling(GpuRuntime &runtime, int device,
                                 bool enabled)
{
    if (!isNvidia(runtime, device))
        return CuptiResult::kErrorInvalidDevice;
    runtime.context().device(device).setPcSamplingEnabled(enabled);
    return CuptiResult::kSuccess;
}

} // namespace dc::sim::cupti

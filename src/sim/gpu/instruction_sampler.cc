#include "sim/gpu/instruction_sampler.h"

#include <numeric>

#include "common/logging.h"

namespace dc::sim {

InstructionSampler::InstructionSampler(DurationNs period_ns,
                                       std::uint64_t seed)
    : period_ns_(period_ns), rng_(seed)
{
    DC_CHECK(period_ns_ > 0, "sampling period must be positive");
}

std::vector<double>
InstructionSampler::stallMix(const KernelDesc &kernel, const KernelCost &cost)
{
    // Index order matches the StallReason enum.
    std::vector<double> mix(kNumStallReasons, 0.0);
    auto at = [&mix](StallReason r) -> double & {
        return mix[static_cast<int>(r)];
    };

    at(StallReason::kNone) = 0.25;
    at(StallReason::kNotSelected) = 0.05;

    if (cost.memory_bound) {
        at(StallReason::kLongScoreboard) += 0.35;
        at(StallReason::kMemoryThrottle) += 0.05;
    } else {
        at(StallReason::kExecDependency) += 0.20;
        at(StallReason::kShortScoreboard) += 0.10;
    }

    if (kernel.kind == KernelKind::kReduction)
        at(StallReason::kBarrier) += 0.15;

    if (kernel.serialization_factor > 1.5 || kernel.atomic_factor > 1.2)
        at(StallReason::kMemoryThrottle) += 0.30;

    // §6.7 signals: constant loads on tiny inputs dominate; scalar
    // conversions create long dependency chains in the math pipe.
    if (kernel.constant_bytes > 0 &&
        kernel.totalBytes() < 4ull * 1024 * 1024) {
        at(StallReason::kConstantMiss) += 0.35;
    }
    if (!kernel.vectorized)
        at(StallReason::kExecDependency) += 0.35;

    const double total = std::accumulate(mix.begin(), mix.end(), 0.0);
    for (double &p : mix)
        p /= total;
    return mix;
}

std::vector<PcSample>
InstructionSampler::sample(const GpuArch &arch, const KernelDesc &kernel,
                           const KernelCost &cost)
{
    (void)arch;
    const std::uint64_t count =
        static_cast<std::uint64_t>(cost.duration_ns / period_ns_);
    std::vector<PcSample> samples;
    samples.reserve(count);
    const std::vector<double> mix = stallMix(kernel, cost);

    // Model the kernel body as 32 virtual instruction slots; stalls of a
    // given kind cluster on a few PCs, as on real hardware.
    constexpr int kSlots = 32;
    for (std::uint64_t i = 0; i < count; ++i) {
        const double u = rng_.uniform();
        double acc = 0.0;
        int reason = 0;
        for (int r = 0; r < kNumStallReasons; ++r) {
            acc += mix[r];
            if (u < acc) {
                reason = r;
                break;
            }
        }
        PcSample s;
        // Hash the reason into a stable PC slot, plus a little jitter so
        // each reason maps to ~3 hot PCs.
        const int slot = (reason * 5 + static_cast<int>(rng_.below(3))) %
                         kSlots;
        s.pc = static_cast<Pc>(slot) * 16;
        s.stall = static_cast<StallReason>(reason);
        samples.push_back(s);
    }
    return samples;
}

} // namespace dc::sim

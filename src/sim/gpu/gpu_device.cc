#include "sim/gpu/gpu_device.h"

#include <algorithm>

#include "common/logging.h"

namespace dc::sim {

const char *
activityKindName(ActivityKind kind)
{
    switch (kind) {
      case ActivityKind::kKernel: return "kernel";
      case ActivityKind::kMemcpy: return "memcpy";
      case ActivityKind::kMemset: return "memset";
    }
    return "?";
}

GpuDevice::GpuDevice(int device_id, GpuArch arch)
    : device_id_(device_id), arch_(std::move(arch)),
      sampler_(/*period_ns=*/1'500,
               /*seed=*/0x5eedull + static_cast<std::uint64_t>(device_id))
{
}

void
GpuDevice::setFlushHandler(FlushHandler handler, std::size_t capacity)
{
    flush_handler_ = std::move(handler);
    flush_capacity_ = std::max<std::size_t>(1, capacity);
}

void
GpuDevice::clearFlushHandler()
{
    flushActivities();
    flush_handler_ = nullptr;
}

TimeNs
GpuDevice::enqueue(int stream, TimeNs submit_ns, DurationNs duration)
{
    TimeNs &tail = stream_tails_[stream];
    const TimeNs start = std::max(tail, submit_ns);
    tail = start + duration;
    return start;
}

KernelCost
GpuDevice::launchKernel(int stream, const KernelDesc &kernel,
                        CorrelationId correlation_id, TimeNs submit_ns)
{
    const KernelCost cost = CostModel::evaluate(arch_, kernel);
    const TimeNs start = enqueue(stream, submit_ns, cost.duration_ns);

    ActivityRecord record;
    record.kind = ActivityKind::kKernel;
    record.correlation_id = correlation_id;
    record.name = kernel.name;
    record.stream = stream;
    record.start_ns = start;
    record.end_ns = start + cost.duration_ns;
    record.grid = kernel.grid;
    record.block = kernel.block;
    record.regs_per_thread = kernel.regs_per_thread;
    record.shared_mem_bytes = kernel.shared_mem_bytes;
    record.occupancy = cost.occupancy;
    record.utilization = cost.utilization;
    if (pc_sampling_)
        record.pc_samples = sampler_.sample(arch_, kernel, cost);

    total_kernel_time_ += cost.duration_ns;
    ++kernel_count_;
    bufferRecord(std::move(record));
    return cost;
}

DurationNs
GpuDevice::memcpyAsync(int stream, std::uint64_t bytes,
                       const std::string &name,
                       CorrelationId correlation_id, TimeNs submit_ns)
{
    const DurationNs duration = CostModel::memcpyDuration(arch_, bytes);
    const TimeNs start = enqueue(stream, submit_ns, duration);

    ActivityRecord record;
    record.kind = ActivityKind::kMemcpy;
    record.correlation_id = correlation_id;
    record.name = name;
    record.stream = stream;
    record.start_ns = start;
    record.end_ns = start + duration;
    record.bytes = bytes;
    bufferRecord(std::move(record));
    return duration;
}

void
GpuDevice::allocate(std::uint64_t bytes)
{
    memory_used_ += bytes;
    memory_peak_ = std::max(memory_peak_, memory_used_);
    if (memory_used_ > arch_.memory_bytes) {
        DC_WARN("device ", device_id_, " over-subscribed: ",
                memory_used_, " of ", arch_.memory_bytes, " bytes");
    }
}

void
GpuDevice::release(std::uint64_t bytes)
{
    DC_CHECK(memory_used_ >= bytes, "freeing more device memory than live");
    memory_used_ -= bytes;
}

TimeNs
GpuDevice::streamTail(int stream) const
{
    auto it = stream_tails_.find(stream);
    return it == stream_tails_.end() ? 0 : it->second;
}

TimeNs
GpuDevice::completionTime(TimeNs now) const
{
    TimeNs latest = now;
    for (const auto &[stream, tail] : stream_tails_)
        latest = std::max(latest, tail);
    return latest;
}

void
GpuDevice::bufferRecord(ActivityRecord &&record)
{
    buffer_.push_back(std::move(record));
    if (buffer_.size() >= flush_capacity_)
        flushActivities();
}

void
GpuDevice::flushActivities()
{
    if (buffer_.empty())
        return;
    std::vector<ActivityRecord> out;
    out.swap(buffer_);
    if (flush_handler_)
        flush_handler_(std::move(out));
}

void
GpuDevice::reset()
{
    stream_tails_.clear();
    buffer_.clear();
    total_kernel_time_ = 0;
    kernel_count_ = 0;
    memory_used_ = 0;
    memory_peak_ = 0;
}

} // namespace dc::sim

#include "sim/gpu/kernel.h"

namespace dc::sim {

const char *
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::kCompute: return "compute";
      case KernelKind::kElementwise: return "elementwise";
      case KernelKind::kReduction: return "reduction";
      case KernelKind::kLayoutConversion: return "layout_conversion";
      case KernelKind::kGatherScatter: return "gather_scatter";
      case KernelKind::kMemcpy: return "memcpy";
      case KernelKind::kMemset: return "memset";
    }
    return "?";
}

const char *
stallReasonName(StallReason reason)
{
    switch (reason) {
      case StallReason::kNone: return "issued";
      case StallReason::kLongScoreboard: return "long_scoreboard";
      case StallReason::kShortScoreboard: return "short_scoreboard";
      case StallReason::kExecDependency: return "exec_dependency";
      case StallReason::kConstantMiss: return "constant_miss";
      case StallReason::kMemoryThrottle: return "memory_throttle";
      case StallReason::kBarrier: return "barrier";
      case StallReason::kNotSelected: return "not_selected";
      case StallReason::kDispatch: return "dispatch";
    }
    return "?";
}

} // namespace dc::sim

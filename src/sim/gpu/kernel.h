#pragma once

/**
 * @file
 * Kernel descriptors: the unit of work submitted to a simulated GPU.
 *
 * A KernelDesc carries everything the analytical cost model and the
 * instruction sampler need: launch geometry, resource usage, arithmetic
 * and memory volumes, and behavioural flags that encode the mechanisms
 * behind the paper's case studies (deterministic-scatter serialization,
 * constant-memory pressure, non-vectorized conversions).
 */

#include <cstdint>
#include <string>

#include "common/types.h"

namespace dc::sim {

/** Broad behavioural class of a kernel; selects the cost-model path. */
enum class KernelKind {
    kCompute,          ///< Math-limited (matmul, conv).
    kElementwise,      ///< Bandwidth-limited map over elements.
    kReduction,        ///< Bandwidth-limited with a tree phase.
    kLayoutConversion, ///< Pure data movement (e.g. nchwToNhwc).
    kGatherScatter,    ///< Index-driven memory traffic.
    kMemcpy,           ///< Driver-level copy.
    kMemset,           ///< Driver-level fill.
};

/** Printable kind name (used in activity records and reports). */
const char *kernelKindName(KernelKind kind);

/** Full description of one kernel launch. */
struct KernelDesc {
    std::string name;           ///< Mangled-ish kernel name, e.g.
                                ///< "indexing_backward_kernel".
    KernelKind kind = KernelKind::kElementwise;

    std::uint64_t grid = 1;     ///< Number of CTAs.
    int block = 256;            ///< Threads per CTA.
    int regs_per_thread = 32;   ///< Register usage; limits occupancy.
    std::uint64_t shared_mem_bytes = 0; ///< Static shared memory per CTA.

    double flops = 0.0;                 ///< Floating-point operations.
    std::uint64_t bytes_read = 0;       ///< DRAM bytes read.
    std::uint64_t bytes_written = 0;    ///< DRAM bytes written.
    bool uses_tensor_cores = false;     ///< Use matrix-unit throughput.

    /// Execution-time multiplier for serialized memory conflicts. The
    /// deterministic `indexing_backward_kernel` sets this to the mean
    /// duplicate count of the gathered indices (Section 6.1).
    double serialization_factor = 1.0;

    /// Multiplier for atomic contention (index_select backward uses
    /// atomics: mildly contended, far cheaper than full serialization).
    double atomic_factor = 1.0;

    /// Constant-memory bytes loaded by every CTA (0 = none). Non-zero
    /// values trigger constant-cache-miss stalls on small inputs (§6.7).
    std::uint64_t constant_bytes = 0;

    /// False for data-type conversion kernels that use scalar (rather
    /// than vectorized) conversion instructions (§6.7).
    bool vectorized = true;

    /// Total DRAM traffic.
    std::uint64_t totalBytes() const { return bytes_read + bytes_written; }

    /// Total threads in the launch.
    std::uint64_t totalThreads() const
    {
        return grid * static_cast<std::uint64_t>(block);
    }
};

/** Reasons a sampled GPU instruction may be stalled (PC sampling). */
enum class StallReason {
    kNone,            ///< Instruction issued (not stalled).
    kLongScoreboard,  ///< Waiting on DRAM/L2 load (memory dependency).
    kShortScoreboard, ///< Waiting on shared-memory / MIO operation.
    kExecDependency,  ///< Math pipeline dependency (non-vectorized casts).
    kConstantMiss,    ///< Immediate-constant cache miss (§6.7).
    kMemoryThrottle,  ///< LSU queue full (serialized scatter traffic).
    kBarrier,         ///< Waiting at __syncthreads.
    kNotSelected,     ///< Eligible but not picked by the scheduler.
    kDispatch,        ///< Dispatch stall.
};

/** Printable stall-reason name. */
const char *stallReasonName(StallReason reason);

/** Number of StallReason values (for iteration in reports). */
constexpr int kNumStallReasons = 9;

} // namespace dc::sim

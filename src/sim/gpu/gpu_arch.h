#pragma once

/**
 * @file
 * Simulated GPU architecture descriptors.
 *
 * The two presets mirror Table 2 of the paper: an Nvidia A100 SXM 80 GB
 * (108 SMs, warp size 32, 156 TF32 TFLOP/s, 2 TB/s) and an AMD MI250
 * (208 compute units, warp/wavefront size 64, 362.1 FP16 TFLOP/s,
 * 3.2 TB/s). The analytical cost model consumes these numbers; the
 * warp-size difference drives the instance-norm parallelism case study
 * (Section 6.5).
 */

#include <cstdint>
#include <string>

#include "common/types.h"

namespace dc::sim {

/** GPU vendor; selects which vendor profiling API (cupti/roctracer) works. */
enum class GpuVendor {
    kNvidia,
    kAmd,
    kCustom, ///< No vendor callback API; only LD_AUDIT interception works.
};

/** Printable vendor name. */
const char *gpuVendorName(GpuVendor vendor);

/** Static description of a simulated GPU. */
struct GpuArch {
    GpuVendor vendor = GpuVendor::kNvidia;
    std::string name;

    /// Streaming multiprocessors (Nvidia) or compute units (AMD).
    int sm_count = 108;
    /// Warp (Nvidia) or wavefront (AMD) width in lanes.
    int warp_size = 32;
    /// Maximum resident threads per SM.
    int max_threads_per_sm = 2048;
    /// Maximum resident CTAs (thread blocks) per SM.
    int max_ctas_per_sm = 32;
    /// Register file size per SM, in 32-bit registers.
    int regs_per_sm = 65536;
    /// Shared memory (LDS) per SM in bytes.
    std::uint64_t shared_mem_per_sm = 164 * 1024;

    /// Peak dense math throughput used by matmul/conv kernels (TFLOP/s).
    double tensor_tflops = 156.0;
    /// Peak vector FP32 throughput for elementwise kernels (TFLOP/s).
    double fp32_tflops = 19.5;
    /// Peak DRAM bandwidth (GB/s).
    double mem_bandwidth_gbps = 2000.0;

    /// Device memory capacity in bytes.
    std::uint64_t memory_bytes = 80ull * 1024 * 1024 * 1024;

    /// Fixed device-side cost charged to every kernel (pipeline/launch).
    DurationNs kernel_launch_overhead_ns = 3'000;
    /// Latency of a cold constant-cache fill, charged per CTA wave when a
    /// kernel loads constant memory (Llama3 RMSNorm case study, §6.7).
    DurationNs constant_miss_latency_ns = 900;

    /** Maximum CTAs resident on the whole device for a given kernel. */
    int concurrentCtas(int threads_per_cta, int regs_per_thread,
                       std::uint64_t shared_bytes_per_cta) const;
};

/** Nvidia A100 SXM 80 GB preset (Table 2, row 1). */
GpuArch makeA100();

/** AMD MI250 64 GB preset (Table 2, row 2). */
GpuArch makeMi250();

/** A vendor-less accelerator for the LD_AUDIT extension example. */
GpuArch makeCustomAccelerator();

} // namespace dc::sim

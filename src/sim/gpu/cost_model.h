#pragma once

/**
 * @file
 * Analytical kernel cost model.
 *
 * Kernel duration follows a roofline with an occupancy/parallelism
 * correction:
 *
 *   duration = max(compute_time, memory_time)
 *            * serialization_factor * atomic_factor
 *            + constant_fill_time + launch_overhead
 *
 * where compute_time and memory_time are scaled by how well the launch
 * geometry fills the device. The correction is what makes the Section 6.5
 * case study work: the batch-norm/instance-norm template derives its CTA
 * count from the warp size, so on the AMD device (wavefront 64) the same
 * problem produces half as many CTAs and utilization collapses.
 */

#include "common/types.h"
#include "sim/gpu/gpu_arch.h"
#include "sim/gpu/kernel.h"

namespace dc::sim {

/** Derived execution properties for one kernel on one architecture. */
struct KernelCost {
    DurationNs duration_ns = 0;   ///< Total device time.
    double occupancy = 1.0;       ///< Resident warps / max warps per SM.
    double utilization = 1.0;     ///< Fraction of the device doing work.
    int waves = 1;                ///< CTA waves needed to drain the grid.
    DurationNs compute_ns = 0;    ///< Roofline compute leg.
    DurationNs memory_ns = 0;     ///< Roofline memory leg.
    bool memory_bound = false;    ///< memory_ns >= compute_ns.
};

/** Pure-function cost model (stateless; all knobs live in GpuArch). */
class CostModel
{
  public:
    /** Full cost breakdown of launching @p kernel on @p arch. */
    static KernelCost evaluate(const GpuArch &arch, const KernelDesc &kernel);

    /** Convenience: just the duration. */
    static DurationNs
    duration(const GpuArch &arch, const KernelDesc &kernel)
    {
        return evaluate(arch, kernel).duration_ns;
    }

    /** Duration of a host<->device or device<->device copy. */
    static DurationNs memcpyDuration(const GpuArch &arch,
                                     std::uint64_t bytes);
};

} // namespace dc::sim

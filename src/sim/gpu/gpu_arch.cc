#include "sim/gpu/gpu_arch.h"

#include <algorithm>

#include "common/logging.h"

namespace dc::sim {

const char *
gpuVendorName(GpuVendor vendor)
{
    switch (vendor) {
      case GpuVendor::kNvidia: return "Nvidia";
      case GpuVendor::kAmd: return "AMD";
      case GpuVendor::kCustom: return "Custom";
    }
    return "?";
}

int
GpuArch::concurrentCtas(int threads_per_cta, int regs_per_thread,
                        std::uint64_t shared_bytes_per_cta) const
{
    DC_CHECK(threads_per_cta > 0, "kernel with no threads");
    int by_threads = max_threads_per_sm / threads_per_cta;
    int by_ctas = max_ctas_per_sm;
    int by_regs = regs_per_thread > 0
                      ? regs_per_sm / (regs_per_thread * threads_per_cta)
                      : max_ctas_per_sm;
    int by_shared = shared_bytes_per_cta > 0
                        ? static_cast<int>(shared_mem_per_sm /
                                           shared_bytes_per_cta)
                        : max_ctas_per_sm;
    int per_sm = std::max(1, std::min({by_threads, by_ctas, by_regs,
                                       by_shared}));
    return per_sm * sm_count;
}

GpuArch
makeA100()
{
    GpuArch arch;
    arch.vendor = GpuVendor::kNvidia;
    arch.name = "A100 SXM 80GB";
    arch.sm_count = 108;
    arch.warp_size = 32;
    arch.max_threads_per_sm = 2048;
    arch.max_ctas_per_sm = 32;
    arch.regs_per_sm = 65536;
    arch.shared_mem_per_sm = 164 * 1024;
    arch.tensor_tflops = 156.0; // TF32
    arch.fp32_tflops = 19.5;
    arch.mem_bandwidth_gbps = 2000.0;
    arch.memory_bytes = 80ull * 1024 * 1024 * 1024;
    return arch;
}

GpuArch
makeMi250()
{
    GpuArch arch;
    arch.vendor = GpuVendor::kAmd;
    arch.name = "MI250 64GB";
    arch.sm_count = 208;
    arch.warp_size = 64;
    arch.max_threads_per_sm = 2048;
    arch.max_ctas_per_sm = 32;
    arch.regs_per_sm = 65536 * 2; // larger VGPR file per CU
    arch.shared_mem_per_sm = 64 * 1024;
    arch.tensor_tflops = 362.1; // FP16 matrix
    arch.fp32_tflops = 45.3;
    arch.mem_bandwidth_gbps = 3200.0;
    arch.memory_bytes = 64ull * 1024 * 1024 * 1024;
    arch.kernel_launch_overhead_ns = 4'500; // ROCm launch path is longer
    return arch;
}

GpuArch
makeCustomAccelerator()
{
    GpuArch arch;
    arch.vendor = GpuVendor::kCustom;
    arch.name = "CustomNPU";
    arch.sm_count = 16;
    arch.warp_size = 128;
    arch.max_threads_per_sm = 1024;
    arch.max_ctas_per_sm = 8;
    arch.tensor_tflops = 32.0;
    arch.fp32_tflops = 8.0;
    arch.mem_bandwidth_gbps = 400.0;
    arch.memory_bytes = 16ull * 1024 * 1024 * 1024;
    return arch;
}

} // namespace dc::sim

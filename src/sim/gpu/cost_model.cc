#include "sim/gpu/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dc::sim {

namespace {

/// Fraction of peak bandwidth a copy engine achieves.
constexpr double kCopyEfficiency = 0.85;

/// Fraction of peak DRAM bandwidth achievable by a fully occupied kernel.
constexpr double kStreamEfficiency = 0.80;

/// Memory latency in ns used to bound poorly-occupied memory kernels.
constexpr double kMemLatencyNs = 450.0;

/// Warps per SM needed to hide memory latency completely.
constexpr double kLatencyHidingWarps = 16.0;

} // namespace

KernelCost
CostModel::evaluate(const GpuArch &arch, const KernelDesc &kernel)
{
    DC_CHECK(kernel.grid > 0 && kernel.block > 0,
             "empty launch for kernel ", kernel.name);

    KernelCost cost;

    const int concurrent = arch.concurrentCtas(
        kernel.block, kernel.regs_per_thread, kernel.shared_mem_bytes);
    cost.waves = static_cast<int>(
        (kernel.grid + static_cast<std::uint64_t>(concurrent) - 1) /
        static_cast<std::uint64_t>(concurrent));

    // Fraction of the device's CTA slots kept busy averaged over waves.
    const double slots = static_cast<double>(cost.waves) *
                         static_cast<double>(concurrent);
    cost.utilization = static_cast<double>(kernel.grid) / slots;
    // A grid smaller than the SM count cannot use every SM regardless of
    // per-SM occupancy; this is the §6.5 parallelism cliff.
    if (kernel.grid < static_cast<std::uint64_t>(arch.sm_count)) {
        cost.utilization = std::min(
            cost.utilization,
            static_cast<double>(kernel.grid) /
                static_cast<double>(arch.sm_count));
    }
    cost.utilization = std::clamp(cost.utilization, 0.01, 1.0);

    // Occupancy: resident warps relative to the per-SM maximum.
    const int warps_per_cta =
        (kernel.block + arch.warp_size - 1) / arch.warp_size;
    const int ctas_per_sm = std::max(1, concurrent / arch.sm_count);
    const double resident_warps =
        static_cast<double>(warps_per_cta) * ctas_per_sm;
    const double max_warps = static_cast<double>(arch.max_threads_per_sm) /
                             arch.warp_size;
    cost.occupancy = std::clamp(resident_warps / max_warps, 0.0, 1.0);

    // --- Compute leg -----------------------------------------------------
    const double peak_tflops = kernel.uses_tensor_cores ? arch.tensor_tflops
                                                        : arch.fp32_tflops;
    // Real kernels rarely exceed ~70% of peak math.
    const double math_eff = 0.70 * cost.utilization;
    if (kernel.flops > 0.0) {
        const double seconds =
            kernel.flops / (peak_tflops * 1e12 * std::max(math_eff, 1e-3));
        cost.compute_ns = static_cast<DurationNs>(seconds * 1e9);
    }

    // --- Memory leg ------------------------------------------------------
    if (kernel.totalBytes() > 0) {
        // Bandwidth achieved scales with latency hiding: few resident warps
        // leave the memory system underutilized.
        const double hiding = std::min(
            1.0, (resident_warps * cost.utilization) / kLatencyHidingWarps);
        const double bw =
            arch.mem_bandwidth_gbps * 1e9 * kStreamEfficiency *
            std::max(hiding, 0.05);
        double seconds = static_cast<double>(kernel.totalBytes()) / bw;
        // Latency floor: at least a couple of round trips per wave.
        seconds = std::max(seconds,
                           cost.waves * 2.0 * kMemLatencyNs * 1e-9);
        cost.memory_ns = static_cast<DurationNs>(seconds * 1e9);
    }

    cost.memory_bound = cost.memory_ns >= cost.compute_ns;

    double ns = static_cast<double>(std::max(cost.compute_ns,
                                             cost.memory_ns));
    ns *= std::max(1.0, kernel.serialization_factor);
    ns *= std::max(1.0, kernel.atomic_factor);

    // Constant-cache fills: each CTA wave pays a cold fill (§6.7). The cost
    // matters when the kernel body itself is tiny.
    if (kernel.constant_bytes > 0) {
        ns += static_cast<double>(cost.waves) *
              static_cast<double>(arch.constant_miss_latency_ns);
    }

    // Scalar (non-vectorized) conversion instructions roughly halve the
    // effective math rate of conversion-heavy elementwise kernels (§6.7).
    if (!kernel.vectorized)
        ns *= 1.9;

    ns += static_cast<double>(arch.kernel_launch_overhead_ns);

    cost.duration_ns = static_cast<DurationNs>(ns);
    return cost;
}

DurationNs
CostModel::memcpyDuration(const GpuArch &arch, std::uint64_t bytes)
{
    // PCIe/NVLink staging approximated as a fraction of device bandwidth
    // with a fixed setup latency.
    const double bw = arch.mem_bandwidth_gbps * 1e9 * 0.012; // ~24 GB/s
    const double seconds = static_cast<double>(bytes) /
                           std::max(bw, 1.0) / kCopyEfficiency;
    return static_cast<DurationNs>(seconds * 1e9) + 8'000; // 8 us setup
}

} // namespace dc::sim

#pragma once

/**
 * @file
 * The simulated GPU device: streams, asynchronous execution in virtual
 * time, activity records, and device-memory accounting.
 *
 * Work is enqueued at a host submit time; each stream is an ordered queue
 * whose tail advances by the cost-model duration of each item. Completed
 * work produces ActivityRecords, buffered and delivered to a registered
 * flush handler — the same asynchronous-buffer discipline CUPTI and
 * RocTracer use, which DeepContext's GPU collector depends on
 * (correlation IDs link records back to call paths).
 */

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/gpu/cost_model.h"
#include "sim/gpu/gpu_arch.h"
#include "sim/gpu/instruction_sampler.h"
#include "sim/gpu/kernel.h"

namespace dc::sim {

/** Kind of asynchronous device activity. */
enum class ActivityKind {
    kKernel,
    kMemcpy,
    kMemset,
};

/** Printable activity kind. */
const char *activityKindName(ActivityKind kind);

/** One completed device activity (what CUPTI calls an activity record). */
struct ActivityRecord {
    ActivityKind kind = ActivityKind::kKernel;
    CorrelationId correlation_id = 0;
    std::string name;
    int stream = 0;
    TimeNs start_ns = 0;
    TimeNs end_ns = 0;

    // Kernel-only resource metrics (coarse-grained metrics in the paper).
    std::uint64_t grid = 0;
    int block = 0;
    int regs_per_thread = 0;
    std::uint64_t shared_mem_bytes = 0;
    double occupancy = 0.0;
    double utilization = 0.0;

    // Memcpy/memset payload size.
    std::uint64_t bytes = 0;

    /// Fine-grained PC samples (only populated when sampling is enabled).
    std::vector<PcSample> pc_samples;

    DurationNs duration() const { return end_ns - start_ns; }
};

/** A simulated GPU with ordered streams and an activity buffer. */
class GpuDevice
{
  public:
    /** Called when the activity buffer is flushed. */
    using FlushHandler = std::function<void(std::vector<ActivityRecord> &&)>;

    GpuDevice(int device_id, GpuArch arch);

    int deviceId() const { return device_id_; }
    const GpuArch &arch() const { return arch_; }

    /** Enable/disable fine-grained PC sampling for subsequent kernels. */
    void setPcSamplingEnabled(bool enabled) { pc_sampling_ = enabled; }
    bool pcSamplingEnabled() const { return pc_sampling_; }

    /**
     * Register the activity flush handler and the buffer capacity (number
     * of records) after which a flush is triggered automatically.
     */
    void setFlushHandler(FlushHandler handler, std::size_t capacity = 512);

    /** Drop the flush handler (activities are then discarded on flush). */
    void clearFlushHandler();

    /**
     * Enqueue a kernel.
     *
     * @param stream Stream index.
     * @param kernel The kernel to run.
     * @param correlation_id Host-side correlation ID.
     * @param submit_ns Host virtual time of the launch call.
     * @return The evaluated cost (duration etc.) of this kernel.
     */
    KernelCost launchKernel(int stream, const KernelDesc &kernel,
                            CorrelationId correlation_id, TimeNs submit_ns);

    /** Enqueue an async copy; returns its duration. */
    DurationNs memcpyAsync(int stream, std::uint64_t bytes,
                           const std::string &name,
                           CorrelationId correlation_id, TimeNs submit_ns);

    /** Allocate device memory (accounted against the arch capacity). */
    void allocate(std::uint64_t bytes);

    /** Free device memory. */
    void release(std::uint64_t bytes);

    /** Completion time of one stream (>= now). */
    TimeNs streamTail(int stream) const;

    /** Completion time across all streams (>= @p now). */
    TimeNs completionTime(TimeNs now) const;

    /** Force a flush of buffered activity records to the handler. */
    void flushActivities();

    /** Total busy time summed over all kernels so far. */
    DurationNs totalKernelTime() const { return total_kernel_time_; }

    /** Number of kernels launched so far. */
    std::uint64_t kernelCount() const { return kernel_count_; }

    /** Live device memory in bytes. */
    std::uint64_t memoryUsed() const { return memory_used_; }

    /** Peak device memory in bytes. */
    std::uint64_t memoryPeak() const { return memory_peak_; }

    /** Reset dynamic state (streams, counters); arch is preserved. */
    void reset();

  private:
    TimeNs enqueue(int stream, TimeNs submit_ns, DurationNs duration);
    void bufferRecord(ActivityRecord &&record);

    int device_id_;
    GpuArch arch_;
    InstructionSampler sampler_;
    bool pc_sampling_ = false;

    std::map<int, TimeNs> stream_tails_;
    std::vector<ActivityRecord> buffer_;
    FlushHandler flush_handler_;
    std::size_t flush_capacity_ = 512;

    DurationNs total_kernel_time_ = 0;
    std::uint64_t kernel_count_ = 0;
    std::uint64_t memory_used_ = 0;
    std::uint64_t memory_peak_ = 0;
};

} // namespace dc::sim

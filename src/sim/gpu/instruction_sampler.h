#pragma once

/**
 * @file
 * Fine-grained GPU instruction (PC) sampling.
 *
 * Mirrors CUPTI PC Sampling / ROCm SQTT at the granularity the paper's
 * fine-grained stall analysis needs: each sample is a (virtual PC within
 * the kernel, stall reason) pair. The per-kernel stall mix is derived from
 * the KernelDesc flags so that the analyses in Section 6.7 (constant-memory
 * misses and math-dependency stalls in Llama3's RMSNorm cast kernels) find
 * real signal in the data.
 */

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/gpu/cost_model.h"
#include "sim/gpu/gpu_arch.h"
#include "sim/gpu/kernel.h"

namespace dc::sim {

/** One sampled instruction. */
struct PcSample {
    Pc pc = 0;                ///< Virtual PC (kernel-relative offset).
    StallReason stall = StallReason::kNone;
};

/** Generates deterministic PC samples for a kernel execution. */
class InstructionSampler
{
  public:
    /**
     * Construct a sampler.
     *
     * @param period_ns Virtual time between samples.
     * @param seed RNG seed so sampling is reproducible.
     */
    explicit InstructionSampler(DurationNs period_ns = 1'500,
                                std::uint64_t seed = 17);

    /**
     * Sample one kernel execution.
     *
     * @param arch Architecture the kernel ran on.
     * @param kernel The kernel descriptor.
     * @param cost Evaluated cost (for duration and boundedness).
     * @return One PcSample per elapsed sampling period.
     */
    std::vector<PcSample> sample(const GpuArch &arch,
                                 const KernelDesc &kernel,
                                 const KernelCost &cost);

    /** Stall-probability mix for a kernel (exposed for testing). */
    static std::vector<double> stallMix(const KernelDesc &kernel,
                                        const KernelCost &cost);

  private:
    DurationNs period_ns_;
    Rng rng_;
};

} // namespace dc::sim

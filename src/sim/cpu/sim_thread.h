#pragma once

/**
 * @file
 * Logical (simulated) CPU threads.
 *
 * PyTorch creates dedicated backward threads per device, and data loaders
 * spawn worker threads; DeepContext must reassemble contexts across them
 * (Section 4.1, "Forward and backward operator association"). A SimThread
 * carries exactly the per-thread state those mechanisms need: a Python
 * stack, a native stack, and a virtual CPU-time clock.
 */

#include <string>

#include "common/types.h"
#include "pyrt/py_stack.h"
#include "sim/loader/native_stack.h"

namespace dc::sim {

/** Role of a logical thread. */
enum class ThreadKind {
    kMain,         ///< Drives iterations; runs forward ops.
    kBackward,     ///< Autograd engine thread (one per device).
    kLoaderWorker, ///< Data-loader worker.
};

/** Printable thread kind. */
const char *threadKindName(ThreadKind kind);

/** One logical CPU thread. */
class SimThread
{
  public:
    SimThread(ThreadId id, std::string name, ThreadKind kind,
              bool on_critical_path)
        : id_(id), name_(std::move(name)), kind_(kind),
          on_critical_path_(on_critical_path)
    {
    }

    ThreadId id() const { return id_; }
    const std::string &name() const { return name_; }
    ThreadKind kind() const { return kind_; }

    /** Whether this thread's CPU work advances the wall clock. */
    bool onCriticalPath() const { return on_critical_path_; }
    void setOnCriticalPath(bool value) { on_critical_path_ = value; }

    /** Accumulated CPU time of this thread. */
    DurationNs cpuTime() const { return cpu_time_; }
    void addCpuTime(DurationNs delta) { cpu_time_ += delta; }

    NativeStack &nativeStack() { return native_stack_; }
    const NativeStack &nativeStack() const { return native_stack_; }

    pyrt::PyStack &pyStack() { return py_stack_; }
    const pyrt::PyStack &pyStack() const { return py_stack_; }

  private:
    ThreadId id_;
    std::string name_;
    ThreadKind kind_;
    bool on_critical_path_;
    DurationNs cpu_time_ = 0;
    NativeStack native_stack_;
    pyrt::PyStack py_stack_;
};

} // namespace dc::sim

#pragma once

/**
 * @file
 * Host CPU description.
 *
 * Both evaluation platforms in Table 2 use an AMD EPYC 7543, but the
 * *allocated* core count matters for the CPU-latency case study
 * (Section 6.4: a 6-core allocation with a 16-thread data loader), so the
 * visible core count is a per-run parameter.
 */

#include <string>

namespace dc::sim {

/** Host CPU visible to one simulation run. */
struct CpuInfo {
    std::string name = "AMD EPYC 7543";
    int physical_cores = 32;
    int threads_per_core = 2;
    double base_clock_ghz = 2.8;

    int
    logicalCpus() const
    {
        return physical_cores * threads_per_core;
    }
};

/** Full EPYC 7543 node (Table 2). */
inline CpuInfo
makeEpyc7543()
{
    return CpuInfo{};
}

/** The 6-core slurm allocation used in the Section 6.4 case study. */
inline CpuInfo
makeSmallAllocation()
{
    CpuInfo info;
    info.physical_cores = 6;
    return info;
}

/**
 * Scheduling-overhead factor for running @p workers CPU-bound threads on
 * @p cores physical cores: 1.0 when not oversubscribed, growing with the
 * oversubscription ratio (context switches, cache thrash). This drives the
 * Section 6.4 finding that 16 loader threads on 6 cores are slower than 8.
 */
double schedulingOverheadFactor(int workers, int cores);

} // namespace dc::sim

#include "sim/cpu/cpu_info.h"

#include <algorithm>

namespace dc::sim {

double
schedulingOverheadFactor(int workers, int cores)
{
    if (workers <= 0 || cores <= 0)
        return 1.0;
    if (workers <= cores)
        return 1.0;
    const double ratio = static_cast<double>(workers) /
                         static_cast<double>(cores);
    // ~35% extra per full level of oversubscription; saturates so the
    // model stays sane for pathological configurations.
    return std::min(1.0 + 0.35 * (ratio - 1.0), 2.5);
}

} // namespace dc::sim

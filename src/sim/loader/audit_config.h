#pragma once

/**
 * @file
 * LD_AUDIT-style interception configuration.
 *
 * The paper: "To extend DLMonitor for hardware that does not have a
 * vendor-provided callback mechanism, users can define the function
 * signature of the driver function in a configuration file. DLMonitor
 * will register custom callbacks using LD_AUDIT for all functions recorded
 * in the configuration file." This module parses that configuration format
 * and holds the resulting interception table; the GPU runtime consults it
 * on every driver entry point when no vendor API is attached.
 *
 * Config format (one entry per line, '#' comments):
 *
 *     library_name  function_name  kind
 *
 * where kind is one of: kernel_launch, memcpy, malloc, free, sync.
 */

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace dc::sim {

/** Driver-function category named in an audit config entry. */
enum class AuditKind {
    kKernelLaunch,
    kMemcpy,
    kMalloc,
    kFree,
    kSync,
};

/** Parse an AuditKind from its config-file spelling. */
std::optional<AuditKind> parseAuditKind(const std::string &text);

/** One parsed config entry. */
struct AuditEntry {
    std::string library;
    std::string function;
    AuditKind kind = AuditKind::kKernelLaunch;
};

/** Parsed LD_AUDIT interception table. */
class AuditConfig
{
  public:
    /**
     * Parse configuration text. Malformed lines are collected into
     * errors() rather than aborting, matching how a robust tool treats
     * user config.
     */
    static AuditConfig parse(const std::string &text);

    const std::vector<AuditEntry> &entries() const { return entries_; }
    const std::vector<std::string> &errors() const { return errors_; }

    /** Find the entry matching a (library, function) pair, if any. */
    const AuditEntry *match(const std::string &library,
                            const std::string &function) const;

  private:
    std::vector<AuditEntry> entries_;
    std::vector<std::string> errors_;
};

} // namespace dc::sim

#include "sim/loader/library_registry.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace dc::sim {

LibraryRegistry::LibraryRegistry() = default;

int
LibraryRegistry::registerLibrary(const std::string &name, std::uint64_t size)
{
    auto it = by_name_.find(name);
    if (it != by_name_.end())
        return it->second;

    LibraryImage image;
    image.name = name;
    image.base = next_base_;
    image.size = size;
    next_base_ += ((size + 0xfffff) & ~0xfffffull) + 0x100000;

    const int handle = static_cast<int>(libraries_.size());
    libraries_.push_back(std::move(image));
    by_name_[name] = handle;
    return handle;
}

Pc
LibraryRegistry::registerSymbol(int library, const std::string &name,
                                std::uint64_t size)
{
    DC_CHECK(library >= 0 &&
                 library < static_cast<int>(libraries_.size()),
             "bad library handle ", library);
    LibraryImage &image = libraries_[static_cast<std::size_t>(library)];

    const auto key = std::make_pair(library, name);
    auto it = symbol_cache_.find(key);
    if (it != symbol_cache_.end())
        return it->second;

    Pc address = image.base;
    if (!image.symbols.empty()) {
        const Symbol &last = image.symbols.back();
        address = last.address + last.size;
    }
    DC_CHECK(address + size <= image.base + image.size,
             "library ", image.name, " symbol space exhausted");
    image.symbols.push_back(Symbol{name, address, size});
    symbol_cache_[key] = address;
    return address;
}

Pc
LibraryRegistry::internSymbol(const std::string &library,
                              const std::string &symbol)
{
    return registerSymbol(registerLibrary(library), symbol);
}

const LibraryImage *
LibraryRegistry::findLibrary(Pc pc) const
{
    for (const LibraryImage &image : libraries_) {
        if (pc >= image.base && pc < image.base + image.size)
            return &image;
    }
    return nullptr;
}

const LibraryImage *
LibraryRegistry::findLibraryByName(const std::string &name) const
{
    auto it = by_name_.find(name);
    if (it == by_name_.end())
        return nullptr;
    return &libraries_[static_cast<std::size_t>(it->second)];
}

const Symbol *
LibraryRegistry::findSymbol(Pc pc) const
{
    const LibraryImage *image = findLibrary(pc);
    if (image == nullptr)
        return nullptr;
    for (const Symbol &symbol : image->symbols) {
        if (pc >= symbol.address && pc < symbol.address + symbol.size)
            return &symbol;
    }
    return nullptr;
}

std::string
LibraryRegistry::describe(Pc pc) const
{
    const LibraryImage *image = findLibrary(pc);
    if (image == nullptr)
        return strformat("0x%llx", static_cast<unsigned long long>(pc));
    const Symbol *symbol = findSymbol(pc);
    if (symbol == nullptr) {
        return strformat("%s!+0x%llx", image->name.c_str(),
                         static_cast<unsigned long long>(pc - image->base));
    }
    const std::uint64_t off = pc - symbol->address;
    if (off == 0)
        return image->name + "!" + symbol->name;
    return strformat("%s!%s+0x%llx", image->name.c_str(),
                     symbol->name.c_str(),
                     static_cast<unsigned long long>(off));
}

bool
LibraryRegistry::isPythonPc(Pc pc) const
{
    if (python_library_.empty())
        return false;
    const LibraryImage *image = findLibrary(pc);
    return image != nullptr && image->name == python_library_;
}

void
LibraryRegistry::markPythonLibrary(const std::string &name)
{
    python_library_ = name;
}

} // namespace dc::sim

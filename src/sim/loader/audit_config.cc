#include "sim/loader/audit_config.h"

#include <sstream>

#include "common/strings.h"

namespace dc::sim {

std::optional<AuditKind>
parseAuditKind(const std::string &text)
{
    if (text == "kernel_launch")
        return AuditKind::kKernelLaunch;
    if (text == "memcpy")
        return AuditKind::kMemcpy;
    if (text == "malloc")
        return AuditKind::kMalloc;
    if (text == "free")
        return AuditKind::kFree;
    if (text == "sync")
        return AuditKind::kSync;
    return std::nullopt;
}

AuditConfig
AuditConfig::parse(const std::string &text)
{
    AuditConfig config;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        std::istringstream fields(line);
        std::string library;
        std::string function;
        std::string kind_text;
        fields >> library >> function >> kind_text;
        if (library.empty() || function.empty() || kind_text.empty()) {
            config.errors_.push_back(
                strformat("line %d: expected 'library function kind'",
                          lineno));
            continue;
        }
        const auto kind = parseAuditKind(kind_text);
        if (!kind) {
            config.errors_.push_back(
                strformat("line %d: unknown kind '%s'", lineno,
                          kind_text.c_str()));
            continue;
        }
        config.entries_.push_back(AuditEntry{library, function, *kind});
    }
    return config;
}

const AuditEntry *
AuditConfig::match(const std::string &library,
                   const std::string &function) const
{
    for (const AuditEntry &entry : entries_) {
        if (entry.library == library && entry.function == function)
            return &entry;
    }
    return nullptr;
}

} // namespace dc::sim

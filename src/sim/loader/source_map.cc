#include "sim/loader/source_map.h"

namespace dc::sim {

void
SourceMap::add(Pc pc, const std::string &file, int line)
{
    records_[pc] = SourceLocation{file, line};
}

std::optional<SourceLocation>
SourceMap::resolve(Pc pc) const
{
    auto it = records_.upper_bound(pc);
    if (it == records_.begin())
        return std::nullopt;
    --it;
    if (pc - it->first > 4096)
        return std::nullopt;
    return it->second;
}

} // namespace dc::sim

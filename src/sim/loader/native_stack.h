#pragma once

/**
 * @file
 * Simulated native (C/C++) call stack with libunwind-style access.
 *
 * Frameworks and the runtime push a NativeFrame for every simulated C/C++
 * function on the current thread's stack. Two access modes mirror
 * libunwind: a full snapshot unwind, and an UnwindCursor whose step()
 * walks one frame at a time from the leaf upwards — the API DeepContext's
 * call-path caching mode uses to stop unwinding at the cached operator
 * frame (Section 4.1, "Optimizations").
 */

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dc::sim {

/** One native stack frame (just a PC; symbolization is via the registry). */
struct NativeFrame {
    Pc pc = 0;
};

/** Per-thread native shadow stack. */
class NativeStack
{
  public:
    /** Push a frame (function entry). */
    void push(Pc pc) { frames_.push_back(NativeFrame{pc}); }

    /** Pop the leaf frame (function exit). */
    void pop();

    /** Current depth. */
    std::size_t depth() const { return frames_.size(); }

    bool empty() const { return frames_.empty(); }

    /** Root-to-leaf snapshot (index 0 is the outermost frame). */
    const std::vector<NativeFrame> &frames() const { return frames_; }

    /** Remove all frames. */
    void clear() { frames_.clear(); }

  private:
    std::vector<NativeFrame> frames_;
};

/**
 * libunwind-style cursor: starts at the leaf and step() moves toward the
 * root, returning false once the stack is exhausted.
 */
class UnwindCursor
{
  public:
    explicit UnwindCursor(const NativeStack &stack)
        : stack_(stack), index_(static_cast<std::int64_t>(stack.depth()))
    {
    }

    /**
     * Move one frame toward the root.
     * @return true if a frame is now available via current().
     */
    bool
    step()
    {
        if (index_ <= 0)
            return false;
        --index_;
        return true;
    }

    /** Frame the cursor currently points at (valid after step()). */
    const NativeFrame &
    current() const
    {
        return stack_.frames()[static_cast<std::size_t>(index_)];
    }

    /** Number of step() calls performed so far. */
    std::size_t
    stepsTaken() const
    {
        return stack_.depth() - static_cast<std::size_t>(index_);
    }

  private:
    const NativeStack &stack_;
    std::int64_t index_;
};

/** RAII helper that pushes a native frame for the current scope. */
class NativeScope
{
  public:
    NativeScope(NativeStack &stack, Pc pc) : stack_(stack)
    {
        stack_.push(pc);
    }

    ~NativeScope() { stack_.pop(); }

    NativeScope(const NativeScope &) = delete;
    NativeScope &operator=(const NativeScope &) = delete;

  private:
    NativeStack &stack_;
};

} // namespace dc::sim

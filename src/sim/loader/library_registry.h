#pragma once

/**
 * @file
 * Simulated dynamic-loader state: which libraries are mapped where, and
 * what symbols they export.
 *
 * DeepContext records the libpython address space using LD_AUDIT and later
 * classifies native frames by the library their PC falls into (Section 4.1,
 * "Call Path Integration"). This registry reproduces that mechanism:
 * libraries are registered with a synthetic base address, symbols get PC
 * ranges inside them, and lookups map a PC back to (library, symbol).
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace dc::sim {

/** One exported function inside a simulated library. */
struct Symbol {
    std::string name;
    Pc address = 0;     ///< Absolute start PC.
    std::uint64_t size = 64;
};

/** One mapped library image. */
struct LibraryImage {
    std::string name;   ///< e.g. "libtorch_sim.so".
    Pc base = 0;
    std::uint64_t size = 0;
    std::vector<Symbol> symbols;
};

/** Registry of mapped libraries and their symbols. */
class LibraryRegistry
{
  public:
    LibraryRegistry();

    /**
     * Map a library and return its handle. Addresses are assigned
     * deterministically in registration order.
     */
    int registerLibrary(const std::string &name,
                        std::uint64_t size = 1 << 20);

    /** Register a symbol in @p library; returns its assigned PC. */
    Pc registerSymbol(int library, const std::string &name,
                      std::uint64_t size = 64);

    /**
     * Convenience: register (or find) a symbol by library name, mapping
     * the library on first use.
     */
    Pc internSymbol(const std::string &library, const std::string &symbol);

    /** Library containing @p pc, if any. */
    const LibraryImage *findLibrary(Pc pc) const;

    /** Library by exact name, if mapped. */
    const LibraryImage *findLibraryByName(const std::string &name) const;

    /** Symbol covering @p pc, if any. */
    const Symbol *findSymbol(Pc pc) const;

    /** Pretty "lib.so!symbol+0x10" form for a PC (for reports). */
    std::string describe(Pc pc) const;

    /** True if @p pc falls inside the library registered as Python. */
    bool isPythonPc(Pc pc) const;

    /** Mark a library name as the Python interpreter (LD_AUDIT record). */
    void markPythonLibrary(const std::string &name);

    const std::vector<LibraryImage> &libraries() const { return libraries_; }

  private:
    std::vector<LibraryImage> libraries_;
    std::map<std::string, int> by_name_;
    std::map<std::pair<int, std::string>, Pc> symbol_cache_;
    Pc next_base_ = 0x7f0000000000ull;
    std::string python_library_;
};

} // namespace dc::sim

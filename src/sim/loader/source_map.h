#pragma once

/**
 * @file
 * DWARF-like source mapping: PC -> (file, line).
 *
 * The performance analyzer "maps GPU/CPU instructions back to the source
 * code using the DWARF information" (Section 4.3). Simulated libraries
 * register line records for their symbols here; the analyzer and the GUI
 * editor-navigation backend read them.
 */

#include <map>
#include <optional>
#include <string>

#include "common/types.h"

namespace dc::sim {

/** One resolved source location. */
struct SourceLocation {
    std::string file;
    int line = 0;
};

/** PC -> source-location table. */
class SourceMap
{
  public:
    /** Register the location for a PC (typically a symbol start). */
    void add(Pc pc, const std::string &file, int line);

    /**
     * Resolve @p pc: the nearest registered record at or below @p pc
     * within 4 KiB, mirroring DWARF line-table semantics.
     */
    std::optional<SourceLocation> resolve(Pc pc) const;

    std::size_t size() const { return records_.size(); }

  private:
    std::map<Pc, SourceLocation> records_;
};

} // namespace dc::sim

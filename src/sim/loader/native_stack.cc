#include "sim/loader/native_stack.h"

#include "common/logging.h"

namespace dc::sim {

void
NativeStack::pop()
{
    DC_CHECK(!frames_.empty(), "pop from empty native stack");
    frames_.pop_back();
}

} // namespace dc::sim

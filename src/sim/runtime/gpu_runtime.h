#pragma once

/**
 * @file
 * The GPU driver/runtime API the frameworks call.
 *
 * This is the simulated equivalent of the CUDA/HIP runtime: kernel
 * launches, async copies, allocation, and synchronization. Every entry
 * point:
 *   1. pushes the vendor-appropriate native frame (cudaLaunchKernel /
 *      hipLaunchKernel / the custom accelerator's symbol),
 *   2. assigns a correlation ID,
 *   3. notifies API subscribers (enter/exit) — this is the hook CUPTI-sim,
 *      RocTracer-sim, and the LD_AUDIT interception attach to,
 *   4. charges host CPU time for the call, and
 *   5. enqueues the work on the device in virtual time.
 */

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/gpu/gpu_device.h"
#include "sim/gpu/kernel.h"
#include "sim/loader/audit_config.h"
#include "sim/sim_context.h"

namespace dc::sim {

/** Which driver API a callback describes. */
enum class GpuApiKind {
    kKernelLaunch,
    kMemcpy,
    kMalloc,
    kFree,
    kSync,
};

/** Printable API kind. */
const char *gpuApiKindName(GpuApiKind kind);

/** Enter/exit phase of an API callback. */
enum class ApiPhase {
    kEnter,
    kExit,
};

/** Payload delivered to API subscribers. */
struct ApiCallbackInfo {
    GpuApiKind api = GpuApiKind::kKernelLaunch;
    ApiPhase phase = ApiPhase::kEnter;
    std::string function_name;      ///< e.g. "cudaLaunchKernel".
    CorrelationId correlation_id = 0;
    int device_id = 0;
    int stream = 0;
    const KernelDesc *kernel = nullptr; ///< Launches only.
    std::uint64_t bytes = 0;            ///< Copies / allocations.
};

/** Subscriber callback type. */
using ApiCallback = std::function<void(const ApiCallbackInfo &)>;

/** Simulated CUDA/HIP-style runtime bound to one SimContext. */
class GpuRuntime
{
  public:
    explicit GpuRuntime(SimContext &ctx);

    SimContext &context() { return ctx_; }

    /**
     * Subscribe to driver API callbacks for one device's vendor. Returns
     * a token for unsubscribing. Vendor profiling layers use this.
     */
    int subscribe(ApiCallback callback);

    /** Remove a subscriber. */
    void unsubscribe(int token);

    /**
     * Install an LD_AUDIT interception table: entries whose library
     * matches the device vendor's runtime library produce callbacks to
     * @p callback even with no vendor profiling API attached.
     */
    void installAudit(const AuditConfig &config, ApiCallback callback);

    /** Remove the audit interception. */
    void clearAudit();

    /**
     * Launch @p kernel on @p device / @p stream.
     * @return the correlation ID assigned to the launch.
     */
    CorrelationId launchKernel(int device, int stream,
                               const KernelDesc &kernel);

    /** Async host/device copy. */
    CorrelationId memcpyAsync(int device, int stream, std::uint64_t bytes,
                              const std::string &name = "memcpy");

    /** Allocate device memory. */
    CorrelationId deviceMalloc(int device, std::uint64_t bytes);

    /** Free device memory. */
    CorrelationId deviceFree(int device, std::uint64_t bytes);

    /** Synchronize one device: wall clock reaches completion; flush. */
    void deviceSynchronize(int device);

    /** Runtime library name for a vendor ("libcudart_sim.so", ...). */
    static const char *runtimeLibraryName(GpuVendor vendor);

    /** API function name for (vendor, api), e.g. "hipMemcpyAsync". */
    static const char *apiFunctionName(GpuVendor vendor, GpuApiKind api);

    /** Number of kernel launches through this runtime. */
    std::uint64_t launchCount() const { return launch_count_; }

  private:
    Pc apiPc(GpuVendor vendor, GpuApiKind api);
    void emit(const ApiCallbackInfo &info);
    DurationNs hostApiCost(GpuVendor vendor, GpuApiKind api) const;

    SimContext &ctx_;
    std::vector<std::pair<int, ApiCallback>> subscribers_;
    int next_token_ = 1;

    AuditConfig audit_config_;
    ApiCallback audit_callback_;
    bool audit_installed_ = false;

    CorrelationId next_correlation_ = 1;
    std::uint64_t launch_count_ = 0;
};

} // namespace dc::sim

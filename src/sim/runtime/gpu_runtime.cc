#include "sim/runtime/gpu_runtime.h"

#include "common/logging.h"

namespace dc::sim {

const char *
gpuApiKindName(GpuApiKind kind)
{
    switch (kind) {
      case GpuApiKind::kKernelLaunch: return "kernel_launch";
      case GpuApiKind::kMemcpy: return "memcpy";
      case GpuApiKind::kMalloc: return "malloc";
      case GpuApiKind::kFree: return "free";
      case GpuApiKind::kSync: return "sync";
    }
    return "?";
}

GpuRuntime::GpuRuntime(SimContext &ctx) : ctx_(ctx) {}

int
GpuRuntime::subscribe(ApiCallback callback)
{
    const int token = next_token_++;
    subscribers_.emplace_back(token, std::move(callback));
    return token;
}

void
GpuRuntime::unsubscribe(int token)
{
    std::erase_if(subscribers_, [token](const auto &entry) {
        return entry.first == token;
    });
}

void
GpuRuntime::installAudit(const AuditConfig &config, ApiCallback callback)
{
    audit_config_ = config;
    audit_callback_ = std::move(callback);
    audit_installed_ = true;
}

void
GpuRuntime::clearAudit()
{
    audit_installed_ = false;
    audit_callback_ = nullptr;
}

const char *
GpuRuntime::runtimeLibraryName(GpuVendor vendor)
{
    switch (vendor) {
      case GpuVendor::kNvidia: return "libcudart_sim.so";
      case GpuVendor::kAmd: return "libamdhip64_sim.so";
      case GpuVendor::kCustom: return "libnpu_runtime_sim.so";
    }
    return "?";
}

const char *
GpuRuntime::apiFunctionName(GpuVendor vendor, GpuApiKind api)
{
    const bool nv = vendor == GpuVendor::kNvidia;
    const bool amd = vendor == GpuVendor::kAmd;
    switch (api) {
      case GpuApiKind::kKernelLaunch:
        return nv ? "cudaLaunchKernel" : amd ? "hipLaunchKernel"
                                             : "npuLaunchKernel";
      case GpuApiKind::kMemcpy:
        return nv ? "cudaMemcpyAsync" : amd ? "hipMemcpyAsync"
                                            : "npuMemcpyAsync";
      case GpuApiKind::kMalloc:
        return nv ? "cudaMalloc" : amd ? "hipMalloc" : "npuMalloc";
      case GpuApiKind::kFree:
        return nv ? "cudaFree" : amd ? "hipFree" : "npuFree";
      case GpuApiKind::kSync:
        return nv ? "cudaDeviceSynchronize"
                  : amd ? "hipDeviceSynchronize" : "npuDeviceSynchronize";
    }
    return "?";
}

Pc
GpuRuntime::apiPc(GpuVendor vendor, GpuApiKind api)
{
    return ctx_.libraries().internSymbol(runtimeLibraryName(vendor),
                                         apiFunctionName(vendor, api));
}

DurationNs
GpuRuntime::hostApiCost(GpuVendor vendor, GpuApiKind api) const
{
    // Host-side cost of the driver call itself (virtual time). ROCm's
    // launch path is measurably longer than CUDA's; allocation hits the
    // caching allocator fast path.
    switch (api) {
      case GpuApiKind::kKernelLaunch:
        return vendor == GpuVendor::kAmd ? 9'000 : 6'500;
      case GpuApiKind::kMemcpy: return 5'500;
      case GpuApiKind::kMalloc: return 1'800;
      case GpuApiKind::kFree: return 1'200;
      case GpuApiKind::kSync: return 4'000;
    }
    return 1'000;
}

void
GpuRuntime::emit(const ApiCallbackInfo &info)
{
    for (auto &[token, callback] : subscribers_)
        callback(info);

    if (audit_installed_ && audit_callback_) {
        // LD_AUDIT matches by (library, function) pairs from the config.
        // Only APIs named in the config produce callbacks.
        const GpuVendor vendor =
            ctx_.device(info.device_id).arch().vendor;
        const AuditEntry *entry = audit_config_.match(
            runtimeLibraryName(vendor), info.function_name);
        if (entry != nullptr)
            audit_callback_(info);
    }
}

CorrelationId
GpuRuntime::launchKernel(int device, int stream, const KernelDesc &kernel)
{
    GpuDevice &dev = ctx_.device(device);
    const GpuVendor vendor = dev.arch().vendor;
    const CorrelationId correlation = next_correlation_++;
    ++launch_count_;

    NativeScope api_frame(ctx_.currentThread().nativeStack(),
                          apiPc(vendor, GpuApiKind::kKernelLaunch));

    ApiCallbackInfo info;
    info.api = GpuApiKind::kKernelLaunch;
    info.phase = ApiPhase::kEnter;
    info.function_name = apiFunctionName(vendor, GpuApiKind::kKernelLaunch);
    info.correlation_id = correlation;
    info.device_id = device;
    info.stream = stream;
    info.kernel = &kernel;
    emit(info);

    ctx_.advanceCpu(hostApiCost(vendor, GpuApiKind::kKernelLaunch));
    dev.launchKernel(stream, kernel, correlation, ctx_.now());

    info.phase = ApiPhase::kExit;
    emit(info);
    return correlation;
}

CorrelationId
GpuRuntime::memcpyAsync(int device, int stream, std::uint64_t bytes,
                        const std::string &name)
{
    GpuDevice &dev = ctx_.device(device);
    const GpuVendor vendor = dev.arch().vendor;
    const CorrelationId correlation = next_correlation_++;

    NativeScope api_frame(ctx_.currentThread().nativeStack(),
                          apiPc(vendor, GpuApiKind::kMemcpy));

    ApiCallbackInfo info;
    info.api = GpuApiKind::kMemcpy;
    info.phase = ApiPhase::kEnter;
    info.function_name = apiFunctionName(vendor, GpuApiKind::kMemcpy);
    info.correlation_id = correlation;
    info.device_id = device;
    info.stream = stream;
    info.bytes = bytes;
    emit(info);

    ctx_.advanceCpu(hostApiCost(vendor, GpuApiKind::kMemcpy));
    dev.memcpyAsync(stream, bytes, name, correlation, ctx_.now());

    info.phase = ApiPhase::kExit;
    emit(info);
    return correlation;
}

CorrelationId
GpuRuntime::deviceMalloc(int device, std::uint64_t bytes)
{
    GpuDevice &dev = ctx_.device(device);
    const GpuVendor vendor = dev.arch().vendor;
    const CorrelationId correlation = next_correlation_++;

    NativeScope api_frame(ctx_.currentThread().nativeStack(),
                          apiPc(vendor, GpuApiKind::kMalloc));

    ApiCallbackInfo info;
    info.api = GpuApiKind::kMalloc;
    info.phase = ApiPhase::kEnter;
    info.function_name = apiFunctionName(vendor, GpuApiKind::kMalloc);
    info.correlation_id = correlation;
    info.device_id = device;
    info.bytes = bytes;
    emit(info);

    ctx_.advanceCpu(hostApiCost(vendor, GpuApiKind::kMalloc));
    dev.allocate(bytes);

    info.phase = ApiPhase::kExit;
    emit(info);
    return correlation;
}

CorrelationId
GpuRuntime::deviceFree(int device, std::uint64_t bytes)
{
    GpuDevice &dev = ctx_.device(device);
    const GpuVendor vendor = dev.arch().vendor;
    const CorrelationId correlation = next_correlation_++;

    NativeScope api_frame(ctx_.currentThread().nativeStack(),
                          apiPc(vendor, GpuApiKind::kFree));

    ApiCallbackInfo info;
    info.api = GpuApiKind::kFree;
    info.phase = ApiPhase::kEnter;
    info.function_name = apiFunctionName(vendor, GpuApiKind::kFree);
    info.correlation_id = correlation;
    info.device_id = device;
    info.bytes = bytes;
    emit(info);

    ctx_.advanceCpu(hostApiCost(vendor, GpuApiKind::kFree));
    dev.release(bytes);

    info.phase = ApiPhase::kExit;
    emit(info);
    return correlation;
}

void
GpuRuntime::deviceSynchronize(int device)
{
    GpuDevice &dev = ctx_.device(device);
    const GpuVendor vendor = dev.arch().vendor;
    const CorrelationId correlation = next_correlation_++;

    NativeScope api_frame(ctx_.currentThread().nativeStack(),
                          apiPc(vendor, GpuApiKind::kSync));

    ApiCallbackInfo info;
    info.api = GpuApiKind::kSync;
    info.phase = ApiPhase::kEnter;
    info.function_name = apiFunctionName(vendor, GpuApiKind::kSync);
    info.correlation_id = correlation;
    info.device_id = device;
    emit(info);

    ctx_.advanceCpu(hostApiCost(vendor, GpuApiKind::kSync));
    ctx_.advanceWallTo(dev.completionTime(ctx_.now()));
    dev.flushActivities();

    info.phase = ApiPhase::kExit;
    emit(info);
}

} // namespace dc::sim

#pragma once

/**
 * @file
 * Cross-profile comparison (the §6.6 JAX-vs-PyTorch and §6.5 AMD-vs-
 * Nvidia workflows): totals, kernel-operation counts, and the largest
 * per-kernel deltas between two profiles.
 */

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "profiler/profile_db.h"

namespace dc::analysis {

/** One named quantity present in both profiles. */
struct DiffEntry {
    std::string name;
    double value_a = 0.0;
    double value_b = 0.0;

    double delta() const { return value_a - value_b; }
};

/** Result of comparing two profiles. */
struct ProfileComparison {
    double gpu_time_a = 0.0;
    double gpu_time_b = 0.0;
    std::uint64_t kernel_launches_a = 0;
    std::uint64_t kernel_launches_b = 0;
    std::size_t contexts_a = 0;
    std::size_t contexts_b = 0;
    /// Per-kernel-name GPU time, sorted by |delta| descending.
    std::vector<DiffEntry> kernels;

    /**
     * a/b speed ratio (how much faster b is than a). NaN — rendered as
     * "n/a" by toString() — when profile b recorded no GPU time: a CPU-
     * only or empty run has no defined ratio, and the old 0.0 return
     * made "b measured nothing" indistinguishable from "b is
     * infinitely slower" ("0.00x") in every report comparing against
     * such a run. Check with hasSpeedup().
     */
    double speedup() const
    {
        return gpu_time_b > 0.0
                   ? gpu_time_a / gpu_time_b
                   : std::numeric_limits<double>::quiet_NaN();
    }

    /** Whether speedup() is a defined ratio. */
    bool hasSpeedup() const { return !std::isnan(speedup()); }

    /** Render a small table. */
    std::string toString(const std::string &label_a,
                         const std::string &label_b,
                         std::size_t top_n = 8) const;
};

/** Compare two profiles by aggregate GPU behaviour. */
ProfileComparison compareProfiles(const prof::ProfileDb &a,
                                  const prof::ProfileDb &b);

} // namespace dc::analysis

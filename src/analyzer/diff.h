#pragma once

/**
 * @file
 * Cross-profile comparison (the §6.6 JAX-vs-PyTorch and §6.5 AMD-vs-
 * Nvidia workflows): totals, kernel-operation counts, and the largest
 * per-kernel deltas between two profiles.
 */

#include <string>
#include <vector>

#include "profiler/profile_db.h"

namespace dc::analysis {

/** One named quantity present in both profiles. */
struct DiffEntry {
    std::string name;
    double value_a = 0.0;
    double value_b = 0.0;

    double delta() const { return value_a - value_b; }
};

/** Result of comparing two profiles. */
struct ProfileComparison {
    double gpu_time_a = 0.0;
    double gpu_time_b = 0.0;
    std::uint64_t kernel_launches_a = 0;
    std::uint64_t kernel_launches_b = 0;
    std::size_t contexts_a = 0;
    std::size_t contexts_b = 0;
    /// Per-kernel-name GPU time, sorted by |delta| descending.
    std::vector<DiffEntry> kernels;

    /** a/b speed ratio (how much faster b is than a). */
    double speedup() const
    {
        return gpu_time_b > 0.0 ? gpu_time_a / gpu_time_b : 0.0;
    }

    /** Render a small table. */
    std::string toString(const std::string &label_a,
                         const std::string &label_b,
                         std::size_t top_n = 8) const;
};

/** Compare two profiles by aggregate GPU behaviour. */
ProfileComparison compareProfiles(const prof::ProfileDb &a,
                                  const prof::ProfileDb &b);

} // namespace dc::analysis

#include "analyzer/analyses.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "profiler/metrics.h"
#include "sim/gpu/kernel.h"

namespace dc::analysis {

using prof::metric_names::kCpuTime;
using prof::metric_names::kGpuTime;
using prof::metric_names::kGridBlocks;
using prof::metric_names::kKernelCount;
using prof::metric_names::kStallPrefix;
using prof::metric_names::kStallSamples;

std::vector<Issue>
HotspotAnalysis::run(const AnalysisContext &ctx) const
{
    std::vector<Issue> issues;
    const double total = ctx.totalMetric(kGpuTime);
    if (total <= 0.0)
        return issues;

    for (const prof::CctNode *kernel : ctx.kernels()) {
        const double time = ctx.metricSum(*kernel, kGpuTime);
        const double fraction = time / total;
        if (fraction <= threshold_)
            continue;
        Issue issue;
        issue.analysis = name();
        issue.node = kernel;
        issue.severity = fraction > 2 * threshold_ ? Severity::kCritical
                                                   : Severity::kWarning;
        issue.metric_value = fraction;
        issue.message = strformat("kernel takes %.1f%% of total GPU time",
                                  100.0 * fraction);
        issue.suggestion =
            "inspect the highlighted call path; this kernel dominates "
            "device time";
        issues.push_back(std::move(issue));
    }
    return issues;
}

std::vector<Issue>
KernelFusionAnalysis::run(const AnalysisContext &ctx) const
{
    std::vector<Issue> issues;
    ctx.bfs([&](const prof::CctNode &node) {
        // Apply at operator/Python frames that aggregate many kernels.
        if (node.kind() != dlmon::FrameKind::kOperator &&
            node.kind() != dlmon::FrameKind::kPython) {
            return;
        }
        const std::uint64_t kernels =
            static_cast<std::uint64_t>(ctx.metricSum(node, kKernelCount));
        if (kernels < min_kernels_)
            return;
        const double gpu = ctx.metricSum(node, kGpuTime);
        const double mean = gpu / static_cast<double>(kernels);
        if (mean >= static_cast<double>(gpu_threshold_ns_))
            return;
        // Only flag the outermost frame exhibiting the pattern: if the
        // parent already qualifies, skip this node.
        if (node.parent() != nullptr) {
            const prof::CctNode &parent = *node.parent();
            const std::uint64_t parent_kernels =
                static_cast<std::uint64_t>(
                    ctx.metricSum(parent, kKernelCount));
            if (parent.parent() != nullptr &&
                parent_kernels >= min_kernels_ &&
                ctx.metricSum(parent, kGpuTime) /
                        static_cast<double>(parent_kernels) <
                    static_cast<double>(gpu_threshold_ns_)) {
                return;
            }
        }
        Issue issue;
        issue.analysis = name();
        issue.node = &node;
        issue.metric_value = static_cast<double>(kernels);
        issue.message = strformat(
            "Small GPU kernels: %llu launches averaging %.1f us",
            static_cast<unsigned long long>(kernels), mean / 1000.0);
        issue.suggestion =
            "fuse small kernels (e.g. torch.compile or manual fusion) to "
            "amortize launch overhead";
        issues.push_back(std::move(issue));
    });
    return issues;
}

namespace {

/** Inclusive GPU time of backward-operator descendants of @p node. */
double
backwardGpuTime(const AnalysisContext &ctx, const prof::CctNode &node)
{
    double total = 0.0;
    std::function<void(const prof::CctNode &)> walk =
        [&](const prof::CctNode &cur) {
            if (AnalysisContext::isBackwardOperator(cur)) {
                total += ctx.metricSum(cur, kGpuTime);
                return; // inclusive metric covers the subtree
            }
            cur.forEachChild(walk);
        };
    node.forEachChild(walk);
    return total;
}

} // namespace

std::vector<Issue>
ForwardBackwardAnalysis::run(const AnalysisContext &ctx) const
{
    std::vector<Issue> issues;
    for (const prof::CctNode *op : ctx.operators()) {
        if (AnalysisContext::isBackwardOperator(*op))
            continue;
        // Only analyze "aten::"-style forward operators whose subtree
        // contains associated backward work.
        const double backward = backwardGpuTime(ctx, *op);
        if (backward <= 0.0)
            continue;
        const double total = ctx.metricSum(*op, kGpuTime);
        const double forward = std::max(0.0, total - backward);
        if (forward <= 0.0)
            continue;
        const double ratio = backward / forward;
        if (ratio <= ratio_threshold_)
            continue;
        Issue issue;
        issue.analysis = name();
        issue.node = op;
        issue.severity =
            ratio > 5 * ratio_threshold_ ? Severity::kCritical
                                         : Severity::kWarning;
        issue.metric_value = ratio;
        issue.message = strformat(
            "Backward abnormality: backward/forward GPU time = %.1fx",
            ratio);
        issue.suggestion =
            op->name() == "aten::index"
                ? "replace aten::index with aten::index_select (the "
                  "deterministic backward serializes duplicate indices)"
                : "inspect the backward kernels of this operator";
        issues.push_back(std::move(issue));
    }
    return issues;
}

std::vector<Issue>
StallAnalysis::run(const AnalysisContext &ctx) const
{
    std::vector<Issue> issues;
    const double total = ctx.totalMetric(kGpuTime);
    if (total <= 0.0)
        return issues;

    // The same kernel appears under many call paths; hotspots are judged
    // on the bottom-up aggregation by kernel name, as in the GUI.
    std::map<std::string, double> time_by_name;
    std::map<std::string, const prof::CctNode *> biggest_by_name;
    for (const prof::CctNode *kernel : ctx.kernels()) {
        const double time = ctx.metricSum(*kernel, kGpuTime);
        time_by_name[kernel->name()] += time;
        const prof::CctNode *&best = biggest_by_name[kernel->name()];
        if (best == nullptr || time > ctx.metricSum(*best, kGpuTime))
            best = kernel;
    }

    for (const auto &[name, group_time] : time_by_name) {
        if (group_time / total <= hotspot_threshold_)
            continue;
        const prof::CctNode *kernel = biggest_by_name[name];
        const double time = group_time;

        // Aggregate per-reason samples over the instruction children of
        // every context of this kernel.
        std::map<std::string, double> by_reason;
        double total_samples = 0.0;
        for (const prof::CctNode *instance : ctx.kernels()) {
            if (instance->name() != name)
                continue;
            instance->forEachChild([&](const prof::CctNode &child) {
                if (child.kind() != dlmon::FrameKind::kInstruction)
                    return;
                for (int r = 0; r < sim::kNumStallReasons; ++r) {
                    const auto reason = static_cast<sim::StallReason>(r);
                    if (reason == sim::StallReason::kNone)
                        continue;
                    const std::string metric =
                        std::string(kStallPrefix) +
                        sim::stallReasonName(reason);
                    const double v = ctx.metricSum(child, metric);
                    by_reason[sim::stallReasonName(reason)] += v;
                    total_samples += v;
                }
                total_samples +=
                    ctx.metricSum(child, std::string(kStallPrefix) +
                                             sim::stallReasonName(
                                                 sim::StallReason::kNone));
            });
        }
        if (total_samples <= 0.0)
            continue;

        std::vector<std::pair<std::string, double>> sorted(
            by_reason.begin(), by_reason.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });

        std::vector<std::string> top;
        for (int i = 0; i < topk_ && i < static_cast<int>(sorted.size());
             ++i) {
            const double fraction = sorted[static_cast<std::size_t>(
                                        i)].second / total_samples;
            if (fraction < stall_fraction_threshold_)
                break;
            top.push_back(strformat(
                "%s (%.0f%%)",
                sorted[static_cast<std::size_t>(i)].first.c_str(),
                100.0 * fraction));
        }
        if (top.empty())
            continue;

        Issue issue;
        issue.analysis = this->name();
        issue.node = kernel;
        issue.metric_value = time / total;
        issue.message =
            "Kernel is mainly stalled by " + join(top, ", ");
        if (contains(issue.message, "constant_miss")) {
            issue.suggestion =
                "minimize constant-memory loads per CTA (load fewer "
                "bytes per block; fuse the conversion with neighbours)";
        } else if (contains(issue.message, "exec_dependency")) {
            issue.suggestion =
                "use vectorized data-type conversion instructions";
        } else if (contains(issue.message, "memory_throttle")) {
            issue.suggestion =
                "reduce conflicting memory traffic (serialized or "
                "contended atomics)";
        } else {
            issue.suggestion = "inspect the kernel's memory access pattern";
        }
        issues.push_back(std::move(issue));
    }
    return issues;
}

std::vector<Issue>
CpuLatencyAnalysis::run(const AnalysisContext &ctx) const
{
    std::vector<Issue> issues;
    const double total_cpu = ctx.totalMetric(kCpuTime);
    if (total_cpu <= 0.0)
        return issues;

    ctx.bfs([&](const prof::CctNode &node) {
        if (node.kind() != dlmon::FrameKind::kPython)
            return;
        const double cpu = ctx.metricSum(node, kCpuTime);
        if (cpu / total_cpu < min_cpu_fraction_)
            return;
        const double gpu = ctx.metricSum(node, kGpuTime);
        if (gpu > 0.0 && cpu / gpu <= cpu_threshold_)
            return;
        // Flag the outermost frame showing the imbalance.
        if (node.parent() != nullptr &&
            node.parent()->kind() == dlmon::FrameKind::kPython) {
            const double parent_cpu =
                ctx.metricSum(*node.parent(), kCpuTime);
            const double parent_gpu =
                ctx.metricSum(*node.parent(), kGpuTime);
            if (parent_cpu / total_cpu >= min_cpu_fraction_ &&
                (parent_gpu <= 0.0 ||
                 parent_cpu / parent_gpu > cpu_threshold_)) {
                return;
            }
        }
        Issue issue;
        issue.analysis = name();
        issue.node = &node;
        issue.metric_value = cpu / total_cpu;
        issue.message = strformat(
            "CPU time abnormality: %.0f%% of CPU time with %s GPU time",
            100.0 * cpu / total_cpu,
            gpu > 0.0 ? humanTime(static_cast<std::int64_t>(gpu)).c_str()
                      : "no");
        issue.suggestion =
            AnalysisContext::isDataLoadingFrame(node)
                ? "match worker_num with the number of allocated CPU "
                  "cores; oversubscription adds scheduling overhead"
                : "overlap this CPU work with GPU execution or reduce it";
        issues.push_back(std::move(issue));
    });
    return issues;
}

std::vector<Issue>
LayoutConversionAnalysis::run(const AnalysisContext &ctx) const
{
    std::vector<Issue> issues;
    const double total = ctx.totalMetric(kGpuTime);
    if (total <= 0.0)
        return issues;

    double conversion_time = 0.0;
    std::vector<const prof::CctNode *> conv_kernels;
    for (const prof::CctNode *kernel : ctx.kernels()) {
        const std::string &name = kernel->name();
        if (contains(name, "nchwToNhwc") || contains(name, "nhwcToNchw") ||
            contains(name, "transposeNhwc") ||
            contains(name, "transposeNchw")) {
            conversion_time += ctx.metricSum(*kernel, kGpuTime);
            conv_kernels.push_back(kernel);
        }
    }
    const double fraction = conversion_time / total;
    if (fraction <= fraction_threshold_ || conv_kernels.empty())
        return issues;

    Issue issue;
    issue.analysis = name();
    issue.node = conv_kernels.front();
    issue.severity = Severity::kCritical;
    issue.metric_value = fraction;
    issue.message = strformat(
        "memory-format conversions consume %.1f%% of GPU time",
        100.0 * fraction);
    issue.suggestion =
        "store input tensors in channels_last before the compute and keep "
        "normalization weights in the same layout to avoid round-trips";
    issues.push_back(std::move(issue));
    return issues;
}

std::vector<Issue>
ParallelismAnalysis::run(const AnalysisContext &ctx) const
{
    std::vector<Issue> issues;
    if (ctx.smCount() <= 0)
        return issues;
    const double total = ctx.totalMetric(kGpuTime);
    if (total <= 0.0)
        return issues;

    for (const prof::CctNode *kernel : ctx.kernels()) {
        const double time = ctx.metricSum(*kernel, kGpuTime);
        if (time / total <= time_fraction_threshold_)
            continue;
        const double mean_grid = ctx.metricMean(*kernel, kGridBlocks);
        if (mean_grid <= 0.0 ||
            mean_grid >= static_cast<double>(ctx.smCount())) {
            continue;
        }
        Issue issue;
        issue.analysis = name();
        issue.node = kernel;
        issue.metric_value = time / total;
        issue.message = strformat(
            "kernel launches %.0f CTAs on a %d-SM device (%.1f%% of GPU "
            "time at low parallelism)",
            mean_grid, ctx.smCount(), 100.0 * time / total);
        issue.suggestion =
            "adjust the number of threads per CTA so the grid fills the "
            "device (kernel templates shared across warp sizes "
            "under-decompose on wide-wavefront GPUs)";
        issues.push_back(std::move(issue));
    }
    return issues;
}

Analyzer
Analyzer::withDefaultAnalyses()
{
    Analyzer analyzer;
    analyzer.add(std::make_unique<HotspotAnalysis>());
    analyzer.add(std::make_unique<KernelFusionAnalysis>());
    analyzer.add(std::make_unique<ForwardBackwardAnalysis>());
    analyzer.add(std::make_unique<StallAnalysis>());
    analyzer.add(std::make_unique<CpuLatencyAnalysis>());
    analyzer.add(std::make_unique<LayoutConversionAnalysis>());
    analyzer.add(std::make_unique<ParallelismAnalysis>());
    return analyzer;
}

} // namespace dc::analysis

#include "analyzer/analysis.h"

#include <algorithm>
#include <deque>

#include "common/strings.h"

namespace dc::analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::kInfo: return "info";
      case Severity::kWarning: return "warning";
      case Severity::kCritical: return "critical";
    }
    return "?";
}

std::string
Issue::toString() const
{
    std::string where = node != nullptr ? node->label() : "<...>";
    return strformat("[%s] %s: %s (at %s) -> %s",
                     severityName(severity), analysis.c_str(),
                     message.c_str(), where.c_str(), suggestion.c_str());
}

AnalysisContext::AnalysisContext(const prof::ProfileDb &db,
                                 const sim::LibraryRegistry *libraries,
                                 const sim::SourceMap *sources,
                                 int sm_count)
    : db_(db), libraries_(libraries), sources_(sources), sm_count_(sm_count)
{
}

double
AnalysisContext::metricSum(const prof::CctNode &node,
                           const std::string &name) const
{
    const int id = db_.metrics().find(name);
    if (id < 0)
        return 0.0;
    const RunningStat *stat = node.findMetric(id);
    return stat == nullptr ? 0.0 : stat->sum();
}

std::uint64_t
AnalysisContext::metricCount(const prof::CctNode &node,
                             const std::string &name) const
{
    const int id = db_.metrics().find(name);
    if (id < 0)
        return 0;
    const RunningStat *stat = node.findMetric(id);
    return stat == nullptr ? 0 : stat->count();
}

double
AnalysisContext::metricMean(const prof::CctNode &node,
                            const std::string &name) const
{
    const int id = db_.metrics().find(name);
    if (id < 0)
        return 0.0;
    const RunningStat *stat = node.findMetric(id);
    return stat == nullptr ? 0.0 : stat->mean();
}

double
AnalysisContext::totalMetric(const std::string &name) const
{
    return metricSum(cct().root(), name);
}

void
AnalysisContext::bfs(
    const std::function<void(const prof::CctNode &)> &fn) const
{
    std::deque<const prof::CctNode *> queue;
    queue.push_back(&cct().root());
    while (!queue.empty()) {
        const prof::CctNode *node = queue.front();
        queue.pop_front();
        fn(*node);
        node->forEachChild([&queue](const prof::CctNode &child) {
            queue.push_back(&child);
        });
    }
}

std::vector<const prof::CctNode *>
AnalysisContext::kernels() const
{
    std::vector<const prof::CctNode *> out;
    bfs([&out](const prof::CctNode &node) {
        if (node.kind() == dlmon::FrameKind::kKernel)
            out.push_back(&node);
    });
    return out;
}

std::vector<const prof::CctNode *>
AnalysisContext::operators() const
{
    std::vector<const prof::CctNode *> out;
    bfs([&out](const prof::CctNode &node) {
        if (node.kind() == dlmon::FrameKind::kOperator &&
            node.parent() != nullptr) {
            out.push_back(&node);
        }
    });
    return out;
}

std::vector<std::string>
AnalysisContext::pathLabels(const prof::CctNode &node)
{
    std::vector<std::string> labels;
    for (const prof::CctNode *cur = &node; cur != nullptr;
         cur = cur->parent()) {
        labels.push_back(cur->label());
    }
    std::reverse(labels.begin(), labels.end());
    return labels;
}

bool
AnalysisContext::isBackwardOperator(const prof::CctNode &node)
{
    if (node.kind() != dlmon::FrameKind::kOperator)
        return false;
    const std::string &name = node.name();
    return contains(name, "Backward") || contains(name, "backward");
}

bool
AnalysisContext::isLossFrame(const prof::CctNode &node)
{
    if (node.kind() != dlmon::FrameKind::kPython)
        return false;
    return contains(node.name(), "loss");
}

bool
AnalysisContext::isDataLoadingFrame(const prof::CctNode &node)
{
    if (node.kind() != dlmon::FrameKind::kPython)
        return false;
    return contains(node.name(), "data_selection") ||
           contains(node.name(), "_worker_loop") ||
           contains(node.file(), "dataloader");
}

FrameMatcher
matchOperator(const std::string &name)
{
    return [name](const dlmon::Frame &frame) {
        return frame.kind == dlmon::FrameKind::kOperator &&
               frame.name == name;
    };
}

FrameMatcher
matchKernelContains(const std::string &substring)
{
    return [substring](const dlmon::Frame &frame) {
        return frame.kind == dlmon::FrameKind::kKernel &&
               contains(frame.name, substring);
    };
}

FrameMatcher
matchPythonFunction(const std::string &function)
{
    return [function](const dlmon::Frame &frame) {
        return frame.kind == dlmon::FrameKind::kPython &&
               frame.function == function;
    };
}

FrameMatcher
matchAnyFrame()
{
    return [](const dlmon::Frame &) { return true; };
}

std::vector<const prof::CctNode *>
findPaths(const AnalysisContext &ctx,
          const std::vector<FrameMatcher> &pattern)
{
    std::vector<const prof::CctNode *> out;
    if (pattern.empty())
        return out;

    // DFS carrying how many pattern elements are already matched along
    // the current root-to-node path.
    std::function<void(const prof::CctNode &, std::size_t)> walk =
        [&](const prof::CctNode &node, std::size_t matched) {
            std::size_t next = matched;
            if (next < pattern.size() && pattern[next](node.frame()))
                ++next;
            if (next == pattern.size())
                out.push_back(&node);
            node.forEachChild([&](const prof::CctNode &child) {
                walk(child, next);
            });
        };
    ctx.cct().root().forEachChild(
        [&](const prof::CctNode &child) { walk(child, 0); });
    return out;
}

void
Analyzer::add(std::unique_ptr<Analysis> analysis)
{
    analyses_.push_back(std::move(analysis));
}

std::vector<Issue>
Analyzer::runAll(const AnalysisContext &ctx) const
{
    std::vector<Issue> issues;
    for (const auto &analysis : analyses_) {
        std::vector<Issue> found = analysis->run(ctx);
        issues.insert(issues.end(),
                      std::make_move_iterator(found.begin()),
                      std::make_move_iterator(found.end()));
    }
    std::stable_sort(issues.begin(), issues.end(),
                     [](const Issue &a, const Issue &b) {
                         if (a.severity != b.severity)
                             return static_cast<int>(a.severity) >
                                    static_cast<int>(b.severity);
                         return a.metric_value > b.metric_value;
                     });
    return issues;
}

std::string
reportToString(const std::vector<Issue> &issues)
{
    if (issues.empty())
        return "no issues detected\n";
    std::string out;
    for (const Issue &issue : issues) {
        out += issue.toString();
        out += "\n";
    }
    return out;
}

} // namespace dc::analysis

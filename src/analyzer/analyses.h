#pragma once

/**
 * @file
 * Concrete analyses: the five examples from Section 4.3 plus two
 * DeepContext-style extras used by the case studies (layout-conversion
 * detection for §6.2 and a low-parallelism check for §6.5).
 */

#include "analyzer/analysis.h"

namespace dc::analysis {

/** (1) Hotspot identification: kernels above a total-time fraction. */
class HotspotAnalysis : public Analysis
{
  public:
    explicit HotspotAnalysis(double threshold = 0.10)
        : threshold_(threshold)
    {
    }

    std::string name() const override { return "hotspot"; }
    std::vector<Issue> run(const AnalysisContext &ctx) const override;

  private:
    double threshold_;
};

/**
 * (2) Kernel-fusion analysis: frames launching many kernels whose mean
 * GPU time is below a threshold ("Small GPU kernels").
 */
class KernelFusionAnalysis : public Analysis
{
  public:
    KernelFusionAnalysis(DurationNs gpu_threshold_ns = 25'000,
                         std::uint64_t min_kernels = 64)
        : gpu_threshold_ns_(gpu_threshold_ns), min_kernels_(min_kernels)
    {
    }

    std::string name() const override { return "kernel_fusion"; }
    std::vector<Issue> run(const AnalysisContext &ctx) const override;

  private:
    DurationNs gpu_threshold_ns_;
    std::uint64_t min_kernels_;
};

/**
 * (3) Forward/backward operator analysis: backward passes taking
 * disproportionately longer than their forward counterparts.
 */
class ForwardBackwardAnalysis : public Analysis
{
  public:
    explicit ForwardBackwardAnalysis(double ratio_threshold = 2.0)
        : ratio_threshold_(ratio_threshold)
    {
    }

    std::string name() const override { return "forward_backward"; }
    std::vector<Issue> run(const AnalysisContext &ctx) const override;

  private:
    double ratio_threshold_;
};

/**
 * (4) Fine-grained stall analysis: dominant stall reasons inside hotspot
 * kernels, from instruction samples.
 */
class StallAnalysis : public Analysis
{
  public:
    StallAnalysis(double hotspot_threshold = 0.05,
                  double stall_fraction_threshold = 0.15, int topk = 2)
        : hotspot_threshold_(hotspot_threshold),
          stall_fraction_threshold_(stall_fraction_threshold), topk_(topk)
    {
    }

    std::string name() const override { return "fine_grained_stall"; }
    std::vector<Issue> run(const AnalysisContext &ctx) const override;

  private:
    double hotspot_threshold_;
    double stall_fraction_threshold_;
    int topk_;
};

/**
 * (5) CPU latency analysis: frames whose CPU time dwarfs their GPU time
 * (imbalanced work or synchronization problems).
 */
class CpuLatencyAnalysis : public Analysis
{
  public:
    CpuLatencyAnalysis(double cpu_threshold = 4.0,
                       double min_cpu_fraction = 0.10)
        : cpu_threshold_(cpu_threshold), min_cpu_fraction_(min_cpu_fraction)
    {
    }

    std::string name() const override { return "cpu_latency"; }
    std::vector<Issue> run(const AnalysisContext &ctx) const override;

  private:
    double cpu_threshold_;
    double min_cpu_fraction_;
};

/**
 * Extra: memory-layout conversion analysis (§6.2) — flags time sunk in
 * nchwToNhwc-style conversion kernels.
 */
class LayoutConversionAnalysis : public Analysis
{
  public:
    explicit LayoutConversionAnalysis(double fraction_threshold = 0.05)
        : fraction_threshold_(fraction_threshold)
    {
    }

    std::string name() const override { return "layout_conversion"; }
    std::vector<Issue> run(const AnalysisContext &ctx) const override;

  private:
    double fraction_threshold_;
};

/**
 * Extra: low-parallelism analysis (§6.5) — kernels whose CTA count
 * cannot fill the device's SMs/CUs.
 */
class ParallelismAnalysis : public Analysis
{
  public:
    explicit ParallelismAnalysis(double time_fraction_threshold = 0.05)
        : time_fraction_threshold_(time_fraction_threshold)
    {
    }

    std::string name() const override { return "low_parallelism"; }
    std::vector<Issue> run(const AnalysisContext &ctx) const override;

  private:
    double time_fraction_threshold_;
};

} // namespace dc::analysis

#include "analyzer/diff.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"
#include "profiler/metrics.h"

namespace dc::analysis {

namespace {

void
collectKernelTimes(const prof::ProfileDb &db,
                   std::map<std::string, double> &times,
                   double &total_time, std::uint64_t &launches,
                   std::size_t &contexts)
{
    const int gpu_time = db.metrics().find(prof::metric_names::kGpuTime);
    const int kcount = db.metrics().find(prof::metric_names::kKernelCount);
    contexts = db.cct().nodeCount();

    db.cct().visit([&](const prof::CctNode &node) {
        if (node.parent() == nullptr) {
            if (gpu_time >= 0 && node.findMetric(gpu_time) != nullptr)
                total_time = node.findMetric(gpu_time)->sum();
            if (kcount >= 0 && node.findMetric(kcount) != nullptr) {
                launches = static_cast<std::uint64_t>(
                    node.findMetric(kcount)->sum());
            }
            return;
        }
        if (node.kind() != dlmon::FrameKind::kKernel)
            return;
        if (gpu_time >= 0 && node.findMetric(gpu_time) != nullptr)
            times[node.name()] += node.findMetric(gpu_time)->sum();
    });
}

} // namespace

ProfileComparison
compareProfiles(const prof::ProfileDb &a, const prof::ProfileDb &b)
{
    ProfileComparison cmp;
    std::map<std::string, double> times_a;
    std::map<std::string, double> times_b;
    collectKernelTimes(a, times_a, cmp.gpu_time_a, cmp.kernel_launches_a,
                       cmp.contexts_a);
    collectKernelTimes(b, times_b, cmp.gpu_time_b, cmp.kernel_launches_b,
                       cmp.contexts_b);

    std::map<std::string, DiffEntry> merged;
    for (const auto &[name, value] : times_a) {
        merged[name].name = name;
        merged[name].value_a = value;
    }
    for (const auto &[name, value] : times_b) {
        merged[name].name = name;
        merged[name].value_b = value;
    }
    for (auto &[name, entry] : merged)
        cmp.kernels.push_back(entry);
    std::sort(cmp.kernels.begin(), cmp.kernels.end(),
              [](const DiffEntry &x, const DiffEntry &y) {
                  return std::abs(x.delta()) > std::abs(y.delta());
              });
    return cmp;
}

std::string
ProfileComparison::toString(const std::string &label_a,
                            const std::string &label_b,
                            std::size_t top_n) const
{
    std::string out;
    out += strformat("%-34s %14s %14s\n", "", label_a.c_str(),
                     label_b.c_str());
    out += strformat("%-34s %14s %14s\n", "total GPU time",
                     humanTime(static_cast<std::int64_t>(gpu_time_a))
                         .c_str(),
                     humanTime(static_cast<std::int64_t>(gpu_time_b))
                         .c_str());
    out += strformat("%-34s %14llu %14llu\n", "kernel launches",
                     static_cast<unsigned long long>(kernel_launches_a),
                     static_cast<unsigned long long>(kernel_launches_b));
    out += strformat("%-34s %14zu %14zu\n", "distinct contexts",
                     contexts_a, contexts_b);
    if (hasSpeedup()) {
        out += strformat("speedup (%s / %s): %.2fx\n", label_a.c_str(),
                         label_b.c_str(), speedup());
    } else {
        out += strformat("speedup (%s / %s): n/a (no GPU time in %s)\n",
                         label_a.c_str(), label_b.c_str(),
                         label_b.c_str());
    }
    out += "top kernel deltas:\n";
    for (std::size_t i = 0; i < std::min(top_n, kernels.size()); ++i) {
        const DiffEntry &entry = kernels[i];
        out += strformat(
            "  %-32s %14s %14s\n", entry.name.substr(0, 32).c_str(),
            humanTime(static_cast<std::int64_t>(entry.value_a)).c_str(),
            humanTime(static_cast<std::int64_t>(entry.value_b)).c_str());
    }
    return out;
}

} // namespace dc::analysis

#pragma once

/**
 * @file
 * Analysis framework (Section 4.3).
 *
 * The analyzer initializes an environment around a finished profile
 * (CCT + metrics + symbol/source information) and exposes the three
 * dimensions the paper names: program-structure queries (call-path
 * pattern matching), model-level semantics (loss/forward/backward/
 * dataloader classification), and operator-level efficiency. Concrete
 * analyses (analyses.h) traverse the tree, apply metric filters, and
 * flag issue nodes with actionable suggestions — the flags drive the
 * GUI's color coding.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "profiler/profile_db.h"
#include "sim/loader/library_registry.h"
#include "sim/loader/source_map.h"

namespace dc::analysis {

/** Severity for GUI color coding. */
enum class Severity {
    kInfo,
    kWarning,
    kCritical,
};

/** Printable severity. */
const char *severityName(Severity severity);

/** One flagged issue. */
struct Issue {
    std::string analysis;          ///< Producing analysis name.
    const prof::CctNode *node = nullptr;
    std::string message;
    std::string suggestion;        ///< Optimization advice.
    Severity severity = Severity::kWarning;
    double metric_value = 0.0;     ///< Analysis-specific magnitude.

    /** "analysis: message (at <path leaf>)" rendering. */
    std::string toString() const;
};

/** Environment an analysis runs against. */
class AnalysisContext
{
  public:
    /**
     * @param db The finished profile.
     * @param libraries Optional symbol registry for native frames.
     * @param sources Optional DWARF-like source map.
     * @param sm_count SM/CU count of the profiled device (parallelism
     *        analyses); 0 disables them.
     */
    AnalysisContext(const prof::ProfileDb &db,
                    const sim::LibraryRegistry *libraries = nullptr,
                    const sim::SourceMap *sources = nullptr,
                    int sm_count = 0);

    const prof::Cct &cct() const { return db_.cct(); }
    const prof::ProfileDb &db() const { return db_; }
    const sim::LibraryRegistry *libraries() const { return libraries_; }
    const sim::SourceMap *sources() const { return sources_; }
    int smCount() const { return sm_count_; }

    // --- Metric access --------------------------------------------------

    /** Sum of a metric at a node (0 when absent). */
    double metricSum(const prof::CctNode &node,
                     const std::string &name) const;

    /** Sample count of a metric at a node. */
    std::uint64_t metricCount(const prof::CctNode &node,
                              const std::string &name) const;

    /** Mean of a metric at a node. */
    double metricMean(const prof::CctNode &node,
                      const std::string &name) const;

    /** Total (root-inclusive) value of a metric. */
    double totalMetric(const std::string &name) const;

    // --- Traversal ------------------------------------------------------

    /** Breadth-first visit of every node. */
    void bfs(const std::function<void(const prof::CctNode &)> &fn) const;

    /** All kernel-frame nodes. */
    std::vector<const prof::CctNode *> kernels() const;

    /** All operator-frame nodes. */
    std::vector<const prof::CctNode *> operators() const;

    /** Root-to-node frame labels (for reports). */
    static std::vector<std::string> pathLabels(const prof::CctNode &node);

    // --- Semantics (model dimension) -------------------------------------

    /** True if the node's subtree is rooted at a backward operator. */
    static bool isBackwardOperator(const prof::CctNode &node);

    /** True for loss-related Python frames (loss_fn etc.). */
    static bool isLossFrame(const prof::CctNode &node);

    /** True for data-loading Python frames. */
    static bool isDataLoadingFrame(const prof::CctNode &node);

  private:
    const prof::ProfileDb &db_;
    const sim::LibraryRegistry *libraries_;
    const sim::SourceMap *sources_;
    int sm_count_;
};

/** A frame predicate for call-path pattern matching. */
using FrameMatcher = std::function<bool(const dlmon::Frame &)>;

/** Matchers for common cases. */
FrameMatcher matchOperator(const std::string &name);
FrameMatcher matchKernelContains(const std::string &substring);
FrameMatcher matchPythonFunction(const std::string &function);
FrameMatcher matchAnyFrame();

/**
 * Program-structure dimension: find nodes whose root-to-node path
 * contains the matcher sequence (in order, gaps allowed).
 */
std::vector<const prof::CctNode *> findPaths(
    const AnalysisContext &ctx, const std::vector<FrameMatcher> &pattern);

/** Base class for analyses. */
class Analysis
{
  public:
    virtual ~Analysis() = default;
    virtual std::string name() const = 0;
    virtual std::vector<Issue> run(const AnalysisContext &ctx) const = 0;
};

/** An ordered collection of analyses producing a combined report. */
class Analyzer
{
  public:
    /** Register an analysis (takes ownership). */
    void add(std::unique_ptr<Analysis> analysis);

    /** Construct with the paper's example analyses pre-registered. */
    static Analyzer withDefaultAnalyses();

    /** Run everything; issues are ordered by severity then magnitude. */
    std::vector<Issue> runAll(const AnalysisContext &ctx) const;

    std::size_t size() const { return analyses_.size(); }

  private:
    std::vector<std::unique_ptr<Analysis>> analyses_;
};

/** Render a report (one line per issue). */
std::string reportToString(const std::vector<Issue> &issues);

} // namespace dc::analysis

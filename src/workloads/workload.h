#pragma once

/**
 * @file
 * Workload identity and configuration: the ten MLCommons-AlgoPerf-derived
 * models of the paper's evaluation (Section 5), each implemented once and
 * runnable under both simulated frameworks.
 *
 * Per-workload knobs encode the case-study optimizations so each Table 3
 * row is a before/after pair of the same model.
 */

#include <cstdint>
#include <string>

#include "common/types.h"

namespace dc::workloads {

/** The evaluated workloads. */
enum class WorkloadId {
    kConformer,
    kDlrmSmall,
    kUnet,
    kGnn,
    kResnet,
    kVit,
    kTransformerBig,
    kLlama3,
    kGemma,
    kNanoGpt,
};

constexpr int kNumWorkloads = 10;

/** Printable workload name. */
const char *workloadName(WorkloadId id);

/** Dataset used by the workload (Section 5). */
const char *workloadDataset(WorkloadId id);

/** True for inference-only workloads (Llama3, Gemma, nanoGPT). */
bool workloadIsInference(WorkloadId id);

/** Baseline host-memory footprint of the workload process. */
std::uint64_t workloadHostBaselineBytes(WorkloadId id);

/** Case-study optimization toggles (all off = the paper's baseline). */
struct WorkloadKnobs {
    /// §6.1: replace aten::index with aten::index_select (DLRM, GNN).
    bool use_index_select = false;
    /// §6.2: store tensors channels_last end-to-end (U-Net).
    bool channels_last = false;
    /// §6.4: data-loader worker count; 0 = the workload's (bad) default.
    int data_loader_workers = 0;
    /// §6.3: fuse the loss kernels (Transformer-Big).
    bool fuse_loss = false;
    /// §6.7: vectorized dtype-conversion instructions (Llama3).
    bool vectorized_casts = false;
    /// §6.5: fix the norm template's CTA count on wide-warp devices.
    bool norm_cta_fix = false;
    /// Enable fine-grained PC sampling during profiling.
    bool pc_sampling = false;
};

} // namespace dc::workloads

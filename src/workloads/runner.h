#pragma once

/**
 * @file
 * The run harness: one function that assembles a full simulated process
 * (context, device, runtime, framework session, optional profiler),
 * executes N iterations of a workload, and reports the measurements the
 * paper's evaluation uses (end-to-end time, GPU time, kernel counts,
 * peak host memory, OOM flags, and optionally the finished profile).
 */

#include <memory>
#include <optional>

#include "dlmonitor/dlmonitor.h"
#include "profiler/profiler.h"
#include "sim/cpu/cpu_info.h"
#include "workloads/models.h"
#include "workloads/workload.h"

namespace dc::workloads {

/** Which framework executes the model. */
enum class FrameworkSel {
    kTorch,
    kJax,
};

const char *frameworkName(FrameworkSel framework);

/** Which evaluation platform (Table 2). */
enum class PlatformSel {
    kNvidiaA100,
    kAmdMi250,
};

const char *platformName(PlatformSel platform);

/** GPU architecture preset for a platform. */
sim::GpuArch archFor(PlatformSel platform);

/** Host DRAM capacity of a platform (Table 2). */
std::uint64_t dramBytesFor(PlatformSel platform);

/** Profiler attached to the run (the Figure 6 configurations). */
enum class ProfilerMode {
    kNone,
    kFrameworkProfiler,   ///< PyTorch-profiler / JAX-profiler baseline.
    kDeepContext,         ///< Python + framework call paths.
    kDeepContextNative,   ///< Plus native C/C++ call paths.
};

const char *profilerModeName(ProfilerMode mode);

/** One run's configuration. */
struct RunConfig {
    WorkloadId workload = WorkloadId::kResnet;
    FrameworkSel framework = FrameworkSel::kTorch;
    PlatformSel platform = PlatformSel::kNvidiaA100;
    ProfilerMode profiler = ProfilerMode::kNone;
    int iterations = 100;
    WorkloadKnobs knobs;
    /// Enable DeepContext CPU sampling (CPU_TIME/REAL_TIME, §6.4).
    bool cpu_sampling = false;
    /// Host CPU visible to the run (§6.4 uses a 6-core allocation).
    sim::CpuInfo cpu = sim::makeEpyc7543();
    std::uint64_t seed = 42;
    /// Retain the profile database in the result (DeepContext modes).
    bool keep_profile = false;
    /// Disable DLMonitor's call-path cache (ablation A1).
    bool disable_callpath_cache = false;
};

/** One run's measurements. */
struct RunResult {
    DurationNs end_to_end_ns = 0;
    DurationNs gpu_kernel_time_ns = 0;
    /// CPU time of the critical-path threads (main + autograd engine).
    DurationNs cpu_time_ns = 0;
    std::uint64_t kernel_count = 0;
    std::uint64_t op_dispatches = 0;
    std::uint64_t peak_host_bytes = 0;
    std::uint64_t baseline_host_bytes = 0;
    DurationNs profiling_overhead_ns = 0;

    /// Framework-profiler runs: trace size and export outcome.
    std::uint64_t trace_events = 0;
    std::uint64_t trace_bytes = 0;
    bool export_oom = false;

    /// DeepContext runs with keep_profile.
    std::unique_ptr<prof::ProfileDb> profile;
    dlmon::DlMonitorStats dlmonitor_stats;
    prof::ProfilerStats profiler_stats;
};

/** Execute one configured run. */
RunResult runWorkload(const RunConfig &config);

} // namespace dc::workloads

#include "workloads/runner.h"

#include "baselines/trace_profiler.h"
#include "common/logging.h"
#include "framework/jaxsim/jax_session.h"
#include "framework/torchsim/data_loader.h"
#include "framework/torchsim/torch_session.h"
#include "pyrt/py_interp.h"
#include "sim/runtime/gpu_runtime.h"

namespace dc::workloads {

const char *
frameworkName(FrameworkSel framework)
{
    switch (framework) {
      case FrameworkSel::kTorch: return "PyTorch";
      case FrameworkSel::kJax: return "JAX";
    }
    return "?";
}

const char *
platformName(PlatformSel platform)
{
    switch (platform) {
      case PlatformSel::kNvidiaA100: return "Nvidia";
      case PlatformSel::kAmdMi250: return "AMD";
    }
    return "?";
}

sim::GpuArch
archFor(PlatformSel platform)
{
    return platform == PlatformSel::kNvidiaA100 ? sim::makeA100()
                                                : sim::makeMi250();
}

std::uint64_t
dramBytesFor(PlatformSel platform)
{
    // Table 2: 256 GB on the Nvidia node, 2048 GB on the AMD node.
    return platform == PlatformSel::kNvidiaA100
               ? 256ull << 30
               : 2048ull << 30;
}

const char *
profilerModeName(ProfilerMode mode)
{
    switch (mode) {
      case ProfilerMode::kNone: return "none";
      case ProfilerMode::kFrameworkProfiler: return "framework-profiler";
      case ProfilerMode::kDeepContext: return "DeepContext";
      case ProfilerMode::kDeepContextNative: return "DeepContext-Native";
    }
    return "?";
}

namespace {

/** Data-loader parameters for workloads that stream from disk. */
std::optional<fw::DataLoaderConfig>
loaderConfigFor(WorkloadId id, const WorkloadKnobs &knobs)
{
    if (id != WorkloadId::kUnet)
        return std::nullopt;
    fw::DataLoaderConfig config;
    // The fastMRI input pipeline hard-codes 16 workers (§6.4).
    config.num_workers = knobs.data_loader_workers > 0
                             ? knobs.data_loader_workers
                             : 16;
    config.cpu_work_per_batch_ns = 30 * kNsPerMs;
    config.first_batch_disk_ns = 250 * kNsPerMs;
    config.batch_bytes = 64ull << 20;
    config.host_buffer_bytes = 1ull << 30;
    config.python_file = "unet/input_pipeline.py";
    return config;
}

prof::ProfilerConfig
profilerConfigFor(const RunConfig &config)
{
    prof::ProfilerConfig pc;
    pc.native_path = config.profiler == ProfilerMode::kDeepContextNative;
    pc.cpu_sampling = config.cpu_sampling;
    pc.pc_sampling = config.knobs.pc_sampling;
    return pc;
}

/** Record the run's identity so warehouse queries can filter on it. */
void
stampMetadata(prof::Profiler &profiler, const RunConfig &config)
{
    profiler.setMetadata("framework", frameworkName(config.framework));
    profiler.setMetadata("platform", platformName(config.platform));
    profiler.setMetadata("model", workloadName(config.workload));
    profiler.setMetadata("iterations",
                         std::to_string(config.iterations));
}

/** Shared measurement collection at the end of a run. */
void
collectCommon(RunResult &result, sim::SimContext &ctx, int device)
{
    result.end_to_end_ns = ctx.now();
    result.gpu_kernel_time_ns = ctx.device(device).totalKernelTime();
    result.kernel_count = ctx.device(device).kernelCount();
    result.peak_host_bytes = ctx.hostMemory().peakBytes();
    result.profiling_overhead_ns = ctx.profilingOverheadTotal();
    for (ThreadId t = 0; t < ctx.threadCount(); ++t) {
        if (ctx.thread(t).onCriticalPath())
            result.cpu_time_ns += ctx.thread(t).cpuTime();
    }
}

RunResult
runTorch(const RunConfig &config)
{
    RunResult result;
    const ModelDef &model = modelDef(config.workload);
    const bool training = !workloadIsInference(config.workload);

    sim::SimContext ctx(config.cpu, config.seed);
    ctx.addDevice(archFor(config.platform));
    sim::GpuRuntime runtime(ctx);
    pyrt::PyInterpreter interp(ctx.libraries());

    result.baseline_host_bytes =
        workloadHostBaselineBytes(config.workload);
    ctx.hostMemory().allocate("workload", result.baseline_host_bytes);

    fw::TorchConfig torch_config;
    torch_config.training = training;
    fw::TorchSession session(ctx, runtime, torch_config);
    session.opEnv().vectorized_casts = config.knobs.vectorized_casts;
    session.opEnv().norm_cta_fix = config.knobs.norm_cta_fix;

    // Profiler attachment.
    std::unique_ptr<dlmon::DlMonitor> monitor;
    std::unique_ptr<prof::Profiler> profiler;
    std::unique_ptr<baselines::TraceProfiler> tracer;
    if (config.profiler == ProfilerMode::kDeepContext ||
        config.profiler == ProfilerMode::kDeepContextNative) {
        dlmon::DlMonitorOptions options;
        options.ctx = &ctx;
        options.runtime = &runtime;
        options.interp = &interp;
        options.torch = &session;
        options.enable_callpath_cache = !config.disable_callpath_cache;
        monitor = dlmon::DlMonitor::init(options);
        profiler = std::make_unique<prof::Profiler>(
            *monitor, profilerConfigFor(config));
        stampMetadata(*profiler, config);
    } else if (config.profiler == ProfilerMode::kFrameworkProfiler) {
        tracer = std::make_unique<baselines::TraceProfiler>(
            ctx, runtime, 0, &session, nullptr);
    }

    // Build parameters.
    ModelContext mctx;
    mctx.ctx = &ctx;
    mctx.interp = &interp;
    mctx.env = &session.opEnv();
    mctx.apply = [&session](const fw::OpSpec &spec) {
        return session.run(spec);
    };
    mctx.fused_attention = false;
    mctx.knobs = config.knobs;

    ModelParams params = model.build(
        mctx, [&session](fw::Shape shape, fw::Dtype dtype,
                         fw::MemoryFormat format) {
            return session.parameter(std::move(shape), dtype, format);
        });

    std::optional<fw::DataLoader> loader;
    if (auto loader_config = loaderConfigFor(config.workload,
                                             config.knobs)) {
        loader.emplace(ctx, interp, *loader_config);
    }

    // Training / generation loop.
    pyrt::PyScope main_scope(ctx.currentThread().pyStack(),
                             ctx.currentThread().nativeStack(), interp,
                             {"train.py", "main", 22});
    DurationNs prev_compute = 0;
    for (int iteration = 0; iteration < config.iterations; ++iteration) {
        const TimeNs iter_start = ctx.now();
        if (loader) {
            Py fetch(mctx, "train.py", "next_batch", 31);
            loader->nextBatch(prev_compute);
        }
        model.forward(mctx, params);
        if (training) {
            {
                Py bwd(mctx, "train.py", "backward", 64);
                session.backward();
            }
            Py opt(mctx, "train.py", "optimizer_step", 71);
            session.run(fw::ops::adamStep(session.opEnv(),
                                          params.denseBytes()));
        }
        session.endIteration();
        session.synchronize();
        prev_compute = ctx.now() - iter_start;
    }
    session.synchronize();

    result.op_dispatches = session.opCount();

    if (tracer != nullptr) {
        result.trace_events = tracer->eventCount();
        result.trace_bytes = tracer->traceBytes();
        const auto exported =
            tracer->exportChromeTrace(dramBytesFor(config.platform));
        result.export_oom = exported.oom;
        if (!exported.oom) {
            // Export peak counts toward the run's memory footprint.
            result.peak_host_bytes = ctx.hostMemory().peakBytes();
        } else {
            // The paper reports infinity: the process died at the DRAM
            // ceiling.
            result.peak_host_bytes = dramBytesFor(config.platform);
        }
        tracer->detach();
    }
    if (profiler != nullptr) {
        result.profiler_stats = profiler->stats();
        auto db = profiler->finish();
        if (config.keep_profile)
            result.profile = std::move(db);
    }
    if (monitor != nullptr) {
        result.dlmonitor_stats = monitor->stats();
        monitor->finalize();
    }

    collectCommon(result, ctx, 0);
    if (tracer != nullptr && result.export_oom)
        result.peak_host_bytes = dramBytesFor(config.platform);
    return result;
}

RunResult
runJax(const RunConfig &config)
{
    RunResult result;
    const ModelDef &model = modelDef(config.workload);
    const bool training = !workloadIsInference(config.workload);

    sim::SimContext ctx(config.cpu, config.seed);
    ctx.addDevice(archFor(config.platform));
    sim::GpuRuntime runtime(ctx);
    pyrt::PyInterpreter interp(ctx.libraries());

    result.baseline_host_bytes =
        workloadHostBaselineBytes(config.workload);
    ctx.hostMemory().allocate("workload", result.baseline_host_bytes);

    fw::JaxConfig jax_config;
    jax_config.training = training;
    fw::JaxSession session(ctx, runtime, jax_config);
    session.opEnv().vectorized_casts = config.knobs.vectorized_casts;
    session.opEnv().norm_cta_fix = config.knobs.norm_cta_fix;

    std::unique_ptr<dlmon::DlMonitor> monitor;
    std::unique_ptr<prof::Profiler> profiler;
    std::unique_ptr<baselines::TraceProfiler> tracer;
    if (config.profiler == ProfilerMode::kDeepContext ||
        config.profiler == ProfilerMode::kDeepContextNative) {
        dlmon::DlMonitorOptions options;
        options.ctx = &ctx;
        options.runtime = &runtime;
        options.interp = &interp;
        options.jax = &session;
        options.enable_callpath_cache = !config.disable_callpath_cache;
        monitor = dlmon::DlMonitor::init(options);
        profiler = std::make_unique<prof::Profiler>(
            *monitor, profilerConfigFor(config));
        stampMetadata(*profiler, config);
    } else if (config.profiler == ProfilerMode::kFrameworkProfiler) {
        tracer = std::make_unique<baselines::TraceProfiler>(
            ctx, runtime, 0, nullptr, &session);
    }

    ModelParams params;
    {
        ModelContext build_ctx;
        build_ctx.ctx = &ctx;
        build_ctx.interp = &interp;
        build_ctx.env = &session.opEnv();
        build_ctx.knobs = config.knobs;
        params = model.build(
            build_ctx,
            [&session](fw::Shape shape, fw::Dtype dtype,
                       fw::MemoryFormat format) {
                (void)format; // XLA assigns layouts itself.
                return session.parameter(std::move(shape), dtype);
            });
    }

    pyrt::PyScope main_scope(ctx.currentThread().pyStack(),
                             ctx.currentThread().nativeStack(), interp,
                             {"train.py", "main", 22});

    // Trace + compile once (jax.jit), then run the executable.
    fw::JaxExecutable *executable = nullptr;
    {
        pyrt::PyScope jit_scope(ctx.currentThread().pyStack(),
                                ctx.currentThread().nativeStack(), interp,
                                {"train.py", "train_step", 48});
        executable = &session.jit(
            workloadName(config.workload), [&](fw::JaxTracer &tracer_ref) {
                ModelContext mctx;
                mctx.ctx = &ctx;
                mctx.interp = &interp;
                mctx.env = &session.opEnv();
                mctx.apply = [&tracer_ref](const fw::OpSpec &spec) {
                    return tracer_ref.apply(spec);
                };
                mctx.fused_attention = true;
                mctx.knobs = config.knobs;
                model.forward(mctx, params);
                if (training) {
                    tracer_ref.apply(fw::ops::adamStep(
                        session.opEnv(), params.denseBytes()));
                }
            });
    }

    for (int iteration = 0; iteration < config.iterations; ++iteration) {
        pyrt::PyScope step_scope(ctx.currentThread().pyStack(),
                                 ctx.currentThread().nativeStack(),
                                 interp,
                                 {"train.py", "train_step", 48});
        session.run(*executable);
        session.synchronize();
    }
    session.synchronize();

    result.op_dispatches = session.stepCount();

    if (tracer != nullptr) {
        result.trace_events = tracer->eventCount();
        result.trace_bytes = tracer->traceBytes();
        const auto exported =
            tracer->exportChromeTrace(dramBytesFor(config.platform));
        result.export_oom = exported.oom;
        tracer->detach();
    }
    if (profiler != nullptr) {
        result.profiler_stats = profiler->stats();
        auto db = profiler->finish();
        if (config.keep_profile)
            result.profile = std::move(db);
    }
    if (monitor != nullptr) {
        result.dlmonitor_stats = monitor->stats();
        monitor->finalize();
    }

    collectCommon(result, ctx, 0);
    if (tracer != nullptr && result.export_oom)
        result.peak_host_bytes = dramBytesFor(config.platform);
    return result;
}

} // namespace

RunResult
runWorkload(const RunConfig &config)
{
    DC_CHECK(config.iterations > 0, "run needs iterations");
    return config.framework == FrameworkSel::kTorch ? runTorch(config)
                                                    : runJax(config);
}

} // namespace dc::workloads

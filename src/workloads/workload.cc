#include "workloads/workload.h"

namespace dc::workloads {

const char *
workloadName(WorkloadId id)
{
    switch (id) {
      case WorkloadId::kConformer: return "Conformer";
      case WorkloadId::kDlrmSmall: return "DLRM-small";
      case WorkloadId::kUnet: return "UNet";
      case WorkloadId::kGnn: return "GNN";
      case WorkloadId::kResnet: return "ResNet";
      case WorkloadId::kVit: return "ViT";
      case WorkloadId::kTransformerBig: return "Transformer-Big";
      case WorkloadId::kLlama3: return "Llama3-8B";
      case WorkloadId::kGemma: return "Gemma-7B";
      case WorkloadId::kNanoGpt: return "NanoGPT";
    }
    return "?";
}

const char *
workloadDataset(WorkloadId id)
{
    switch (id) {
      case WorkloadId::kConformer: return "LibriSpeech";
      case WorkloadId::kDlrmSmall: return "Criteo 1TB";
      case WorkloadId::kUnet: return "fastMRI";
      case WorkloadId::kGnn: return "OGBG-MOLPCBA";
      case WorkloadId::kResnet: return "ImageNet";
      case WorkloadId::kVit: return "ImageNet";
      case WorkloadId::kTransformerBig: return "WMT";
      case WorkloadId::kLlama3: return "Sample Prompt";
      case WorkloadId::kGemma: return "Sample Prompt";
      case WorkloadId::kNanoGpt: return "Sample Prompt";
    }
    return "?";
}

bool
workloadIsInference(WorkloadId id)
{
    return id == WorkloadId::kLlama3 || id == WorkloadId::kGemma ||
           id == WorkloadId::kNanoGpt;
}

std::uint64_t
workloadHostBaselineBytes(WorkloadId id)
{
    // Host-process footprints (code + CPU-side buffers + pinned staging).
    constexpr std::uint64_t kMb = 1ull << 20;
    switch (id) {
      case WorkloadId::kConformer: return 1600 * kMb;
      case WorkloadId::kDlrmSmall: return 6144 * kMb; // Criteo shards
      case WorkloadId::kUnet: return 2048 * kMb;
      case WorkloadId::kGnn: return 1200 * kMb;
      case WorkloadId::kResnet: return 2500 * kMb;
      case WorkloadId::kVit: return 2500 * kMb;
      case WorkloadId::kTransformerBig: return 1800 * kMb;
      case WorkloadId::kLlama3: return 2048 * kMb;
      case WorkloadId::kGemma: return 1800 * kMb;
      case WorkloadId::kNanoGpt: return 512 * kMb;
    }
    return 1024 * kMb;
}

} // namespace dc::workloads

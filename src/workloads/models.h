#pragma once

/**
 * @file
 * The ten evaluation models, written once against a framework-agnostic
 * apply() function so the same model code runs eagerly (torchsim) or
 * under tracing (jaxsim). Python scopes annotate every phase the way the
 * real training scripts would, giving DLMonitor real frames to merge.
 */

#include <functional>
#include <map>
#include <string>

#include "framework/ops/op_library.h"
#include "pyrt/py_interp.h"
#include "sim/sim_context.h"
#include "workloads/workload.h"

namespace dc::workloads {

/** Creates a parameter tensor (framework-specific allocation). */
using ParamFactory = std::function<fw::Tensor(
    fw::Shape, fw::Dtype, fw::MemoryFormat)>;

/** Executes one planned op (eager run or trace apply). */
using ApplyFn = std::function<fw::Tensor(const fw::OpSpec &)>;

/** Everything a model forward needs. */
struct ModelContext {
    sim::SimContext *ctx = nullptr;
    const pyrt::PyInterpreter *interp = nullptr;
    fw::OpEnv *env = nullptr;
    ApplyFn apply;
    /// True under jaxsim: XLA provides a fused attention kernel.
    bool fused_attention = false;
    WorkloadKnobs knobs;
};

/** RAII Python scope on the current simulated thread. */
class Py
{
  public:
    Py(ModelContext &m, std::string file, std::string function, int line)
        : scope_(m.ctx->currentThread().pyStack(),
                 m.ctx->currentThread().nativeStack(), *m.interp,
                 pyrt::PyFrame{std::move(file), std::move(function), line})
    {
    }

  private:
    pyrt::PyScope scope_;
};

/** Named parameter set of a model. */
struct ModelParams {
    std::map<std::string, fw::Tensor> tensors;
    std::uint64_t total_bytes = 0;
    /// Bytes held in sparse tables (embedding tables): updated row-wise
    /// by the optimizer, not by the dense Adam step.
    std::uint64_t sparse_bytes = 0;

    void
    add(const std::string &name, fw::Tensor tensor)
    {
        total_bytes += tensor.bytes();
        tensors[name] = std::move(tensor);
    }

    void
    addSparse(const std::string &name, fw::Tensor tensor)
    {
        sparse_bytes += tensor.bytes();
        add(name, std::move(tensor));
    }

    std::uint64_t denseBytes() const { return total_bytes - sparse_bytes; }

    fw::Tensor &at(const std::string &name) { return tensors.at(name); }
};

/** A model: parameter construction plus the per-iteration forward. */
struct ModelDef {
    WorkloadId id;
    std::function<ModelParams(ModelContext &, const ParamFactory &)> build;
    /// Returns the loss tensor (training) or last output (inference).
    std::function<fw::Tensor(ModelContext &, ModelParams &)> forward;
};

/** Lookup the definition for a workload. */
const ModelDef &modelDef(WorkloadId id);

} // namespace dc::workloads

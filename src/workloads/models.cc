#include "workloads/models.h"

#include "common/logging.h"

namespace dc::workloads {

namespace ops = fw::ops;
using fw::Dtype;
using fw::MemoryFormat;
using fw::OpSpec;
using fw::Shape;
using fw::Tensor;

namespace {

// ----------------------------------------------------------------------
// Shared building blocks
// ----------------------------------------------------------------------

/** Multi-head attention; eager composes bmm+softmax+bmm, JIT uses flash. */
Tensor
attention(ModelContext &m, const Tensor &x, ModelParams &params,
          const std::string &prefix, int heads)
{
    Py frame(m, "modules/attention.py", "self_attention", 57);
    const std::int64_t tokens = x.shape[0];
    const std::int64_t d = x.shape[1];
    const std::int64_t dh = d / heads;

    Tensor qkv = m.apply(ops::linear(*m.env, x,
                                     params.at(prefix + ".wqkv")));
    if (m.fused_attention) {
        Tensor q = m.env->newTensor({1, heads, tokens, dh}, x.dtype);
        Tensor out = m.apply(ops::sdpaFlash(*m.env, q, q, q));
        (void)out;
        Tensor proj = m.apply(ops::linear(*m.env, x,
                                          params.at(prefix + ".wo")));
        return m.apply(ops::add(*m.env, proj, x));
    }
    // Eager path: explicit bmm / softmax / bmm.
    Tensor q = m.env->newTensor({heads, tokens, dh}, x.dtype);
    Tensor kt = m.env->newTensor({heads, dh, tokens}, x.dtype);
    Tensor scores = m.apply(ops::bmm(*m.env, q, kt));
    Tensor probs = m.apply(ops::softmax(*m.env, scores));
    Tensor v = m.env->newTensor({heads, tokens, dh}, x.dtype);
    Tensor ctx_t = m.apply(ops::bmm(*m.env, probs, v));
    (void)ctx_t;
    Tensor proj = m.apply(ops::linear(*m.env, x, params.at(prefix + ".wo")));
    return m.apply(ops::add(*m.env, proj, x));
}

/** Transformer FFN block. */
Tensor
ffn(ModelContext &m, const Tensor &x, ModelParams &params,
    const std::string &prefix)
{
    Py frame(m, "modules/mlp.py", "feed_forward", 31);
    Tensor up = m.apply(ops::linear(*m.env, x, params.at(prefix + ".w1")));
    Tensor act = m.apply(ops::gelu(*m.env, up));
    Tensor down = m.apply(ops::linear(*m.env, act,
                                      params.at(prefix + ".w2")));
    return m.apply(ops::add(*m.env, down, x));
}

/** Cross-entropy loss: softmax + copy + nll, or the fused kernel. */
Tensor
crossEntropyLoss(ModelContext &m, const Tensor &logits)
{
    Py frame(m, "train.py", "loss_fn", 118);
    if (m.knobs.fuse_loss)
        return m.apply(ops::fusedSoftmaxNll(*m.env, logits));
    Tensor probs = m.apply(ops::softmax(*m.env, logits));
    Tensor staged = m.apply(ops::copy(*m.env, probs));
    return m.apply(ops::nllLoss(*m.env, staged));
}

// ----------------------------------------------------------------------
// Conformer (LibriSpeech)
// ----------------------------------------------------------------------

constexpr int kConformerLayers = 4;
constexpr std::int64_t kConformerTokens = 768; // B=16 x T=48 frames
constexpr std::int64_t kConformerDim = 384;

ModelParams
buildConformer(ModelContext &m, const ParamFactory &param)
{
    (void)m;
    ModelParams p;
    for (int layer = 0; layer < kConformerLayers; ++layer) {
        const std::string lp = "layer" + std::to_string(layer);
        p.add(lp + ".attn.wqkv",
              param({3 * kConformerDim, kConformerDim}, Dtype::kF16,
                    MemoryFormat::kContiguous));
        p.add(lp + ".attn.wo", param({kConformerDim, kConformerDim},
                                     Dtype::kF16,
                                     MemoryFormat::kContiguous));
        p.add(lp + ".conv.w", param({kConformerDim, kConformerDim, 9, 1},
                                    Dtype::kF16,
                                    MemoryFormat::kChannelsFirst));
        p.add(lp + ".ffn.w1", param({4 * kConformerDim, kConformerDim},
                                    Dtype::kF16,
                                    MemoryFormat::kContiguous));
        p.add(lp + ".ffn.w2", param({kConformerDim, 4 * kConformerDim},
                                    Dtype::kF16,
                                    MemoryFormat::kContiguous));
    }
    p.add("head", param({1024, kConformerDim}, Dtype::kF16,
                        MemoryFormat::kContiguous));
    return p;
}

Tensor
forwardConformer(ModelContext &m, ModelParams &params)
{
    Py frame(m, "conformer/train.py", "train_step", 92);
    Tensor x = m.env->newTensor({kConformerTokens, kConformerDim},
                                Dtype::kF16);
    for (int layer = 0; layer < kConformerLayers; ++layer) {
        Py layer_frame(m, "conformer/model.py", "conformer_block",
                       140 + layer);
        const std::string lp = "layer" + std::to_string(layer);
        Tensor normed = m.apply(ops::layerNorm(*m.env, x));
        x = attention(m, normed, params, lp + ".attn", 8);
        // Convolution module (depthwise conv over time).
        Tensor conv_in = m.env->newTensor(
            {16, kConformerDim, kConformerTokens / 16, 1}, Dtype::kF16,
            MemoryFormat::kChannelsFirst);
        Tensor conv = m.apply(ops::conv2d(*m.env, conv_in,
                                          params.at(lp + ".conv.w"),
                                          {1, 4}));
        Tensor bn = m.apply(ops::batchNorm(*m.env, conv));
        (void)bn;
        x = ffn(m, x, params, lp + ".ffn");
    }
    Tensor logits = m.apply(ops::linear(*m.env, x, params.at("head")));
    return crossEntropyLoss(m, logits);
}

// ----------------------------------------------------------------------
// DLRM-small (Criteo 1TB)
// ----------------------------------------------------------------------

constexpr std::int64_t kDlrmBatch = 4096;
constexpr std::int64_t kDlrmEmbDim = 128;
constexpr int kDlrmTables = 8;
/// Criteo's hot features: high duplicate counts per batch (§6.1).
constexpr double kCriteoAvgDuplicates = 30.0;

ModelParams
buildDlrm(ModelContext &m, const ParamFactory &param)
{
    (void)m;
    ModelParams p;
    for (int t = 0; t < kDlrmTables; ++t) {
        // Embedding tables use a row-wise sparse optimizer, not Adam.
        p.addSparse("emb" + std::to_string(t),
                    param({1 << 20, kDlrmEmbDim}, Dtype::kF32,
                          MemoryFormat::kContiguous));
    }
    p.add("bottom.w0", param({512, 13}, Dtype::kF32,
                             MemoryFormat::kContiguous));
    p.add("bottom.w1", param({256, 512}, Dtype::kF32,
                             MemoryFormat::kContiguous));
    p.add("bottom.w2", param({kDlrmEmbDim, 256}, Dtype::kF32,
                             MemoryFormat::kContiguous));
    p.add("top.w0", param({512, kDlrmEmbDim * (kDlrmTables + 1)},
                          Dtype::kF32, MemoryFormat::kContiguous));
    p.add("top.w1", param({256, 512}, Dtype::kF32,
                          MemoryFormat::kContiguous));
    p.add("top.w2", param({1, 256}, Dtype::kF32,
                          MemoryFormat::kContiguous));
    return p;
}

Tensor
forwardDlrm(ModelContext &m, ModelParams &params)
{
    Py frame(m, "dlrm/train.py", "train_step", 203);

    // Sparse path: one embedding lookup per categorical feature.
    std::vector<Tensor> embeddings;
    {
        Py sparse(m, "dlrm/model.py", "sparse_forward", 88);
        for (int t = 0; t < kDlrmTables; ++t) {
            // embedding_table[idx_lookup] — aten::index by default.
            Tensor &table = params.at("emb" + std::to_string(t));
            OpSpec lookup =
                m.knobs.use_index_select
                    ? ops::indexSelect(*m.env, table, kDlrmBatch,
                                       kCriteoAvgDuplicates)
                    : ops::index(*m.env, table, kDlrmBatch,
                                 kCriteoAvgDuplicates);
            embeddings.push_back(m.apply(lookup));
        }
    }

    // Dense path: bottom MLP.
    Tensor dense;
    {
        Py dense_frame(m, "dlrm/model.py", "dense_forward", 61);
        Tensor x = m.env->newTensor({kDlrmBatch, 13}, Dtype::kF32);
        Tensor h0 = m.apply(ops::linear(*m.env, x, params.at("bottom.w0")));
        Tensor r0 = m.apply(ops::relu(*m.env, h0));
        Tensor h1 = m.apply(ops::linear(*m.env, r0,
                                        params.at("bottom.w1")));
        Tensor r1 = m.apply(ops::relu(*m.env, h1));
        Tensor h2 = m.apply(ops::linear(*m.env, r1,
                                        params.at("bottom.w2")));
        dense = m.apply(ops::relu(*m.env, h2));
    }

    // Feature interaction: batched dot products + concat.
    Tensor interacted;
    {
        Py inter(m, "dlrm/model.py", "interaction", 124);
        Tensor stacked = m.env->newTensor(
            {kDlrmBatch, kDlrmTables + 1, kDlrmEmbDim}, Dtype::kF32);
        Tensor stacked_t = m.env->newTensor(
            {kDlrmBatch, kDlrmEmbDim, kDlrmTables + 1}, Dtype::kF32);
        Tensor pairwise = m.apply(ops::bmm(*m.env, stacked, stacked_t));
        (void)pairwise;
        std::vector<Tensor> cat_in = embeddings;
        cat_in.push_back(dense);
        interacted = m.apply(ops::cat(*m.env, cat_in));
    }

    // Top MLP + loss.
    Py top(m, "dlrm/model.py", "top_mlp", 150);
    Tensor h0 = m.apply(ops::linear(*m.env, interacted,
                                    params.at("top.w0")));
    Tensor r0 = m.apply(ops::relu(*m.env, h0));
    Tensor h1 = m.apply(ops::linear(*m.env, r0, params.at("top.w1")));
    Tensor r1 = m.apply(ops::relu(*m.env, h1));
    Tensor logits = m.apply(ops::linear(*m.env, r1, params.at("top.w2")));
    return m.apply(ops::mseLoss(*m.env, logits));
}

// ----------------------------------------------------------------------
// U-Net (fastMRI)
// ----------------------------------------------------------------------

constexpr std::int64_t kUnetBatch = 4;
constexpr int kUnetLevels = 4;

ModelParams
buildUnet(ModelContext &m, const ParamFactory &param)
{
    ModelParams p;
    const MemoryFormat fmt = m.knobs.channels_last
                                 ? MemoryFormat::kChannelsLast
                                 : MemoryFormat::kChannelsFirst;
    std::int64_t ch = 16;
    for (int level = 0; level < kUnetLevels; ++level) {
        const std::string lp = "enc" + std::to_string(level);
        const std::int64_t in_ch = level == 0 ? 1 : ch / 2;
        p.add(lp + ".conv0", param({ch, in_ch, 3, 3}, Dtype::kF32, fmt));
        p.add(lp + ".conv1", param({ch, ch, 3, 3}, Dtype::kF32, fmt));
        ch *= 2;
    }
    ch /= 2;
    for (int level = 0; level < kUnetLevels - 1; ++level) {
        const std::string lp = "dec" + std::to_string(level);
        p.add(lp + ".up", param({ch / 2, ch, 2, 2}, Dtype::kF32, fmt));
        p.add(lp + ".conv0", param({ch / 2, ch, 3, 3}, Dtype::kF32, fmt));
        ch /= 2;
    }
    p.add("final", param({1, ch, 1, 1}, Dtype::kF32, fmt));
    return p;
}

Tensor
forwardUnet(ModelContext &m, ModelParams &params)
{
    Py frame(m, "unet/train.py", "train_step", 77);
    const MemoryFormat fmt = m.knobs.channels_last
                                 ? MemoryFormat::kChannelsLast
                                 : MemoryFormat::kChannelsFirst;

    Tensor x = m.env->newTensor({kUnetBatch, 1, 320, 320}, Dtype::kF32,
                                fmt);
    std::vector<Tensor> skips;
    std::int64_t ch = 16;

    for (int level = 0; level < kUnetLevels; ++level) {
        Py enc(m, "unet/model.py", "encoder_block", 45 + level);
        const std::string lp = "enc" + std::to_string(level);
        Tensor c0 = m.apply(ops::conv2d(*m.env, x,
                                        params.at(lp + ".conv0")));
        Tensor n0 = m.apply(ops::instanceNorm(*m.env, c0));
        Tensor a0 = m.apply(ops::relu(*m.env, n0));
        Tensor c1 = m.apply(ops::conv2d(*m.env, a0,
                                        params.at(lp + ".conv1")));
        Tensor n1 = m.apply(ops::instanceNorm(*m.env, c1));
        Tensor a1 = m.apply(ops::relu(*m.env, n1));
        skips.push_back(a1);
        x = m.apply(ops::avgPool2d(*m.env, a1));
        ch *= 2;
    }
    ch /= 2;

    for (int level = 0; level < kUnetLevels - 1; ++level) {
        Py dec(m, "unet/model.py", "decoder_block", 96 + level);
        const std::string lp = "dec" + std::to_string(level);
        Tensor up = m.apply(ops::convTranspose2d(*m.env, x,
                                                 params.at(lp + ".up")));
        Tensor merged = m.apply(ops::cat(
            *m.env, {up, skips[static_cast<std::size_t>(
                        kUnetLevels - 2 - level)]}));
        Tensor c0 = m.apply(ops::conv2d(*m.env, merged,
                                        params.at(lp + ".conv0")));
        Tensor n0 = m.apply(ops::instanceNorm(*m.env, c0));
        x = m.apply(ops::relu(*m.env, n0));
        ch /= 2;
    }

    Py head(m, "unet/model.py", "output_head", 131);
    Tensor out = m.apply(ops::conv2d(*m.env, x, params.at("final"),
                                     {1, 0}));
    Py loss(m, "unet/train.py", "loss_fn", 102);
    return m.apply(ops::mseLoss(*m.env, out));
}

// ----------------------------------------------------------------------
// GNN (OGBG-MOLPCBA)
// ----------------------------------------------------------------------

constexpr std::int64_t kGnnNodes = 1 << 15;
constexpr std::int64_t kGnnEdges = 1 << 15;
constexpr std::int64_t kGnnDim = 128;
constexpr int kGnnLayers = 3;
constexpr double kGnnAvgDuplicates = 2.2;

ModelParams
buildGnn(ModelContext &m, const ParamFactory &param)
{
    (void)m;
    ModelParams p;
    for (int layer = 0; layer < kGnnLayers; ++layer) {
        p.add("layer" + std::to_string(layer) + ".w",
              param({kGnnDim, kGnnDim}, Dtype::kF32,
                    MemoryFormat::kContiguous));
    }
    p.add("readout", param({128, kGnnDim}, Dtype::kF32,
                           MemoryFormat::kContiguous));
    return p;
}

Tensor
forwardGnn(ModelContext &m, ModelParams &params)
{
    Py frame(m, "gnn/train.py", "train_step", 64);
    Tensor nodes = m.env->newTensor({kGnnNodes, kGnnDim}, Dtype::kF32);
    nodes.requires_grad = true;

    for (int layer = 0; layer < kGnnLayers; ++layer) {
        Py mp(m, "gnn/model.py", "message_passing", 52 + layer);
        // Gather source-node features along edges.
        OpSpec gather_spec =
            m.knobs.use_index_select
                ? ops::indexSelect(*m.env, nodes, kGnnEdges,
                                   kGnnAvgDuplicates)
                : ops::index(*m.env, nodes, kGnnEdges, kGnnAvgDuplicates);
        Tensor messages = m.apply(gather_spec);
        Tensor transformed = m.apply(ops::linear(
            *m.env, messages,
            params.at("layer" + std::to_string(layer) + ".w")));
        Tensor activated = m.apply(ops::relu(*m.env, transformed));
        Tensor regularized = m.apply(ops::dropout(*m.env, activated));
        nodes = m.apply(ops::scatterAdd(*m.env, regularized, kGnnEdges,
                                        kGnnAvgDuplicates));
        nodes.shape = {kGnnNodes, kGnnDim};
    }

    Py readout(m, "gnn/model.py", "readout", 97);
    Tensor graph_repr = m.env->newTensor({512, kGnnDim}, Dtype::kF32);
    Tensor logits = m.apply(ops::linear(*m.env, graph_repr,
                                        params.at("readout")));
    return crossEntropyLoss(m, logits);
}

// ----------------------------------------------------------------------
// ResNet (ImageNet)
// ----------------------------------------------------------------------

constexpr std::int64_t kResnetBatch = 8;
constexpr int kResnetBlocks = 8;

ModelParams
buildResnet(ModelContext &m, const ParamFactory &param)
{
    (void)m;
    ModelParams p;
    p.add("stem", param({64, 3, 7, 7}, Dtype::kF32,
                        MemoryFormat::kChannelsFirst));
    std::int64_t ch = 64;
    for (int block = 0; block < kResnetBlocks; ++block) {
        const std::string bp = "block" + std::to_string(block);
        const std::int64_t out_ch = (block % 2 == 1) ? ch * 2 : ch;
        p.add(bp + ".conv0", param({ch, ch, 1, 1}, Dtype::kF32,
                                   MemoryFormat::kChannelsFirst));
        p.add(bp + ".conv1", param({ch, ch, 3, 3}, Dtype::kF32,
                                   MemoryFormat::kChannelsFirst));
        p.add(bp + ".conv2", param({out_ch, ch, 1, 1}, Dtype::kF32,
                                   MemoryFormat::kChannelsFirst));
        ch = out_ch;
    }
    p.add("fc", param({1000, ch}, Dtype::kF32,
                      MemoryFormat::kContiguous));
    return p;
}

Tensor
forwardResnet(ModelContext &m, ModelParams &params)
{
    Py frame(m, "resnet/train.py", "train_step", 118);
    Tensor x = m.env->newTensor({kResnetBatch, 3, 224, 224}, Dtype::kF32,
                                MemoryFormat::kChannelsFirst);
    {
        Py stem(m, "resnet/model.py", "stem", 33);
        Tensor c = m.apply(ops::conv2d(*m.env, x, params.at("stem"),
                                       {2, 3}));
        Tensor n = m.apply(ops::batchNorm(*m.env, c));
        Tensor a = m.apply(ops::relu(*m.env, n));
        x = m.apply(ops::maxPool2d(*m.env, a));
    }
    std::int64_t spatial = 56;
    for (int block = 0; block < kResnetBlocks; ++block) {
        Py blk(m, "resnet/model.py", "bottleneck_block", 70 + block);
        const std::string bp = "block" + std::to_string(block);
        Tensor c0 = m.apply(ops::conv2d(*m.env, x, params.at(bp + ".conv0"),
                                        {1, 0}));
        Tensor n0 = m.apply(ops::batchNorm(*m.env, c0));
        Tensor a0 = m.apply(ops::relu(*m.env, n0));
        const int stride = (block % 2 == 1 && spatial > 14) ? 2 : 1;
        Tensor c1 = m.apply(ops::conv2d(*m.env, a0,
                                        params.at(bp + ".conv1"),
                                        {stride, 1}));
        Tensor n1 = m.apply(ops::batchNorm(*m.env, c1));
        Tensor a1 = m.apply(ops::relu(*m.env, n1));
        Tensor c2 = m.apply(ops::conv2d(*m.env, a1,
                                        params.at(bp + ".conv2"),
                                        {1, 0}));
        Tensor n2 = m.apply(ops::batchNorm(*m.env, c2));
        Tensor sum = m.apply(ops::add(*m.env, n2, n2));
        x = m.apply(ops::relu(*m.env, sum));
        if (stride == 2)
            spatial /= 2;
    }
    Py head(m, "resnet/model.py", "classifier", 141);
    Tensor pooled = m.apply(ops::avgPool2d(*m.env, x, 7));
    pooled.shape = {kResnetBatch, x.shape[1]};
    Tensor logits = m.apply(ops::linear(*m.env, pooled, params.at("fc")));
    return crossEntropyLoss(m, logits);
}

// ----------------------------------------------------------------------
// ViT (ImageNet)
// ----------------------------------------------------------------------

constexpr std::int64_t kVitTokens = 8 * 197; // B=8, 196 patches + cls
constexpr std::int64_t kVitDim = 512;
constexpr int kVitLayers = 4;

ModelParams
buildVit(ModelContext &m, const ParamFactory &param)
{
    (void)m;
    ModelParams p;
    p.add("patch", param({kVitDim, 3, 16, 16}, Dtype::kF16,
                         MemoryFormat::kChannelsFirst));
    for (int layer = 0; layer < kVitLayers; ++layer) {
        const std::string lp = "layer" + std::to_string(layer);
        p.add(lp + ".attn.wqkv", param({3 * kVitDim, kVitDim}, Dtype::kF16,
                                       MemoryFormat::kContiguous));
        p.add(lp + ".attn.wo", param({kVitDim, kVitDim}, Dtype::kF16,
                                     MemoryFormat::kContiguous));
        p.add(lp + ".ffn.w1", param({4 * kVitDim, kVitDim}, Dtype::kF16,
                                    MemoryFormat::kContiguous));
        p.add(lp + ".ffn.w2", param({kVitDim, 4 * kVitDim}, Dtype::kF16,
                                    MemoryFormat::kContiguous));
    }
    p.add("head", param({1000, kVitDim}, Dtype::kF16,
                        MemoryFormat::kContiguous));
    return p;
}

Tensor
forwardVit(ModelContext &m, ModelParams &params)
{
    Py frame(m, "vit/train.py", "train_step", 84);
    Tensor images = m.env->newTensor({8, 3, 224, 224}, Dtype::kF16,
                                     MemoryFormat::kChannelsFirst);
    Tensor patches = m.apply(ops::conv2d(*m.env, images,
                                         params.at("patch"), {16, 0}));
    (void)patches;
    Tensor x = m.env->newTensor({kVitTokens, kVitDim}, Dtype::kF16);
    for (int layer = 0; layer < kVitLayers; ++layer) {
        Py blk(m, "vit/model.py", "encoder_block", 58 + layer);
        const std::string lp = "layer" + std::to_string(layer);
        Tensor n0 = m.apply(ops::layerNorm(*m.env, x));
        x = attention(m, n0, params, lp + ".attn", 12);
        Tensor n1 = m.apply(ops::layerNorm(*m.env, x));
        x = ffn(m, n1, params, lp + ".ffn");
    }
    Py head(m, "vit/model.py", "classifier", 120);
    Tensor cls = m.env->newTensor({8, kVitDim}, Dtype::kF16);
    Tensor logits = m.apply(ops::linear(*m.env, cls, params.at("head")));
    return crossEntropyLoss(m, logits);
}

// ----------------------------------------------------------------------
// Transformer-Big (WMT)
// ----------------------------------------------------------------------

constexpr std::int64_t kTbTokens = 32 * 64; // 32 sentences x 64 tokens
constexpr std::int64_t kTbDim = 1024;
constexpr std::int64_t kTbVocab = 32768;
constexpr int kTbLayers = 4;
constexpr int kTbLossChunks = 32; // per-sentence-chunk loss kernels

ModelParams
buildTransformerBig(ModelContext &m, const ParamFactory &param)
{
    (void)m;
    ModelParams p;
    for (int layer = 0; layer < kTbLayers; ++layer) {
        const std::string lp = "layer" + std::to_string(layer);
        p.add(lp + ".attn.wqkv", param({3 * kTbDim, kTbDim}, Dtype::kF16,
                                       MemoryFormat::kContiguous));
        p.add(lp + ".attn.wo", param({kTbDim, kTbDim}, Dtype::kF16,
                                     MemoryFormat::kContiguous));
        p.add(lp + ".ffn.w1", param({4 * kTbDim, kTbDim}, Dtype::kF16,
                                    MemoryFormat::kContiguous));
        p.add(lp + ".ffn.w2", param({kTbDim, 4 * kTbDim}, Dtype::kF16,
                                    MemoryFormat::kContiguous));
    }
    p.add("vocab_proj", param({kTbVocab, kTbDim}, Dtype::kF16,
                              MemoryFormat::kContiguous));
    return p;
}

Tensor
forwardTransformerBig(ModelContext &m, ModelParams &params)
{
    Py frame(m, "transformer/train.py", "train_step", 143);
    Tensor x = m.env->newTensor({kTbTokens, kTbDim}, Dtype::kF16);
    for (int layer = 0; layer < kTbLayers; ++layer) {
        Py blk(m, "transformer/model.py", "encoder_layer", 66 + layer);
        const std::string lp = "layer" + std::to_string(layer);
        Tensor n0 = m.apply(ops::layerNorm(*m.env, x));
        x = attention(m, n0, params, lp + ".attn", 16);
        Tensor n1 = m.apply(ops::layerNorm(*m.env, x));
        x = ffn(m, n1, params, lp + ".ffn");
    }

    // One vocabulary projection in the decoder head...
    Tensor all_logits;
    {
        Py head_frame(m, "transformer/model.py", "vocab_projection", 158);
        all_logits = m.apply(ops::linear(*m.env, x,
                                         params.at("vocab_proj")));
        (void)all_logits;
    }
    // ...then the loss evaluated per sentence chunk: many small
    // softmax/copy/nll kernels under loss_fn (the §6.3 fusion
    // opportunity, Figure 9).
    Py loss_frame(m, "transformer/train.py", "loss_fn", 171);
    Tensor loss;
    const std::int64_t chunk_tokens = kTbTokens / kTbLossChunks;
    for (int chunk = 0; chunk < kTbLossChunks; ++chunk) {
        Tensor logits = m.env->newTensor({chunk_tokens, kTbVocab},
                                         Dtype::kF16);
        if (m.knobs.fuse_loss) {
            loss = m.apply(ops::fusedSoftmaxNll(*m.env, logits));
        } else {
            Tensor probs = m.apply(ops::softmax(*m.env, logits));
            Tensor staged = m.apply(ops::copy(*m.env, probs));
            loss = m.apply(ops::nllLoss(*m.env, staged));
        }
    }
    return loss;
}

// ----------------------------------------------------------------------
// Decoder LLMs (Llama3-8B / Gemma-7B / nanoGPT), inference
// ----------------------------------------------------------------------

struct LlmShape {
    const char *script;
    int layers;
    std::int64_t dim;
    std::int64_t ffn_dim;
    int tokens_per_iter;
    bool rms_with_casts; ///< Llama/Gemma RMSNorm converts f16->f32->f16.
};

constexpr LlmShape kLlamaShape = {"llama/generate.py", 10, 3072, 8192, 4,
                                  true};
constexpr LlmShape kGemmaShape = {"gemma/generate.py", 9, 2560, 7168, 4,
                                  true};
constexpr LlmShape kNanoGptShape = {"nanogpt/sample.py", 6, 384, 1536, 8,
                                    false};

ModelParams
buildLlm(ModelContext &m, const ParamFactory &param, const LlmShape &shape)
{
    (void)m;
    ModelParams p;
    for (int layer = 0; layer < shape.layers; ++layer) {
        const std::string lp = "layer" + std::to_string(layer);
        p.add(lp + ".wqkv", param({3 * shape.dim, shape.dim}, Dtype::kF16,
                                  MemoryFormat::kContiguous));
        p.add(lp + ".wo", param({shape.dim, shape.dim}, Dtype::kF16,
                                MemoryFormat::kContiguous));
        p.add(lp + ".w_gate", param({shape.ffn_dim, shape.dim},
                                    Dtype::kF16,
                                    MemoryFormat::kContiguous));
        p.add(lp + ".w_down", param({shape.dim, shape.ffn_dim},
                                    Dtype::kF16,
                                    MemoryFormat::kContiguous));
    }
    p.add("lm_head", param({32000, shape.dim}, Dtype::kF16,
                           MemoryFormat::kContiguous));
    return p;
}

/** RMSNorm as the HF modeling code writes it: cast up, norm, cast down. */
Tensor
llmRmsNorm(ModelContext &m, const Tensor &x, const LlmShape &shape)
{
    Py frame(m, "transformers/models/modeling_llama.py", "LlamaRMSNorm",
             69);
    if (!shape.rms_with_casts)
        return m.apply(ops::layerNorm(*m.env, x));
    Tensor up = m.apply(ops::to(*m.env, x, Dtype::kF32));
    Tensor normed = m.apply(ops::rmsNorm(*m.env, up));
    return m.apply(ops::to(*m.env, normed, Dtype::kF16));
}

Tensor
forwardLlm(ModelContext &m, ModelParams &params, const LlmShape &shape)
{
    // HuggingFace-style generation stacks are deep: generate ->
    // sample -> forward -> Model.__call__ -> per-module __call__ chains.
    // The depth is what makes call-path collection expensive on these
    // workloads (the Figure 6 Llama/Gemma spike).
    Py frame(m, shape.script, "generate", 31);
    Py sample(m, "transformers/generation/utils.py", "_sample", 2641);
    Tensor logits;
    for (int token = 0; token < shape.tokens_per_iter; ++token) {
        Py decode(m, shape.script, "decode_one_token", 58);
        Py model_call(m, "torch/nn/modules/module.py", "_call_impl",
                      1518);
        Py model_fwd(m, "transformers/models/modeling_llama.py",
                     "LlamaModel.forward", 978);
        // Single-token decode: [1, dim] activations, tiny kernels.
        Tensor x = m.env->newTensor({1, shape.dim}, Dtype::kF16);
        for (int layer = 0; layer < shape.layers; ++layer) {
            Py lyr_call(m, "torch/nn/modules/module.py", "_call_impl",
                        1518 + layer);
            Py lyr(m, "transformers/models/modeling_llama.py",
                   "LlamaDecoderLayer", 310 + layer);
            Tensor n0 = llmRmsNorm(m, x, shape);
            Tensor qkv;
            {
                Py attn_frame(m, "transformers/models/modeling_llama.py",
                              "LlamaAttention.forward", 450);
                qkv = m.apply(ops::linear(
                    *m.env, n0,
                    params.at("layer" + std::to_string(layer) + ".wqkv")));
                (void)qkv;
                Tensor q = m.env->newTensor({1, 8, 1, shape.dim / 8},
                                            Dtype::kF16);
                Tensor attn_out = m.apply(ops::sdpaFlash(*m.env, q, q, q));
                (void)attn_out;
            }
            Tensor proj = m.apply(ops::linear(
                *m.env, n0,
                params.at("layer" + std::to_string(layer) + ".wo")));
            Tensor res0 = m.apply(ops::add(*m.env, proj, x));
            Tensor n1 = llmRmsNorm(m, res0, shape);
            Py mlp_frame(m, "transformers/models/modeling_llama.py",
                         "LlamaMLP.forward", 230);
            Tensor gate = m.apply(ops::linear(
                *m.env, n1,
                params.at("layer" + std::to_string(layer) + ".w_gate")));
            Tensor act = m.apply(ops::mul(*m.env, gate, gate));
            Tensor down = m.apply(ops::linear(
                *m.env, act,
                params.at("layer" + std::to_string(layer) + ".w_down")));
            x = m.apply(ops::add(*m.env, down, res0));
        }
        Py head(m, shape.script, "lm_head", 84);
        logits = m.apply(ops::linear(*m.env, x, params.at("lm_head")));
        Tensor probs = m.apply(ops::softmax(*m.env, logits));
        (void)probs;
    }
    return logits;
}

} // namespace

const ModelDef &
modelDef(WorkloadId id)
{
    static const std::map<WorkloadId, ModelDef> defs = [] {
        std::map<WorkloadId, ModelDef> out;
        out[WorkloadId::kConformer] = {WorkloadId::kConformer,
                                       buildConformer, forwardConformer};
        out[WorkloadId::kDlrmSmall] = {WorkloadId::kDlrmSmall, buildDlrm,
                                       forwardDlrm};
        out[WorkloadId::kUnet] = {WorkloadId::kUnet, buildUnet,
                                  forwardUnet};
        out[WorkloadId::kGnn] = {WorkloadId::kGnn, buildGnn, forwardGnn};
        out[WorkloadId::kResnet] = {WorkloadId::kResnet, buildResnet,
                                    forwardResnet};
        out[WorkloadId::kVit] = {WorkloadId::kVit, buildVit, forwardVit};
        out[WorkloadId::kTransformerBig] = {WorkloadId::kTransformerBig,
                                            buildTransformerBig,
                                            forwardTransformerBig};
        out[WorkloadId::kLlama3] = {
            WorkloadId::kLlama3,
            [](ModelContext &m, const ParamFactory &p) {
                return buildLlm(m, p, kLlamaShape);
            },
            [](ModelContext &m, ModelParams &params) {
                return forwardLlm(m, params, kLlamaShape);
            }};
        out[WorkloadId::kGemma] = {
            WorkloadId::kGemma,
            [](ModelContext &m, const ParamFactory &p) {
                return buildLlm(m, p, kGemmaShape);
            },
            [](ModelContext &m, ModelParams &params) {
                return forwardLlm(m, params, kGemmaShape);
            }};
        out[WorkloadId::kNanoGpt] = {
            WorkloadId::kNanoGpt,
            [](ModelContext &m, const ParamFactory &p) {
                return buildLlm(m, p, kNanoGptShape);
            },
            [](ModelContext &m, ModelParams &params) {
                return forwardLlm(m, params, kNanoGptShape);
            }};
        return out;
    }();
    return defs.at(id);
}

} // namespace dc::workloads

#include "service/cct_merger.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace dc::service {

CctMerger::CctMerger() : cct_(std::make_unique<prof::Cct>()) {}

void
CctMerger::add(const prof::ProfileDb &profile, const std::string &run_id)
{
    // An invalid profile (e.g. node metric ids not covered by its
    // registry) would merge stats into the wrong metric: with an empty
    // source registry the remap below is empty, which mergeFrom takes
    // as "ids already agree".
    std::string error;
    DC_CHECK(profile.validate(&error), "unmergeable profile: ", error);
    addPrevalidated(profile, run_id);
}

void
CctMerger::addPrevalidated(const prof::ProfileDb &profile,
                           const std::string &run_id)
{
    const std::vector<int> remap = metrics_.mergeFrom(profile.metrics());
    cct_->mergeFrom(profile.cct(), remap);

    for (const auto &[key, value] : profile.metadata()) {
        auto it = metadata_.find(key);
        if (it == metadata_.end() && run_ids_.empty())
            metadata_[key] = value;
        else if (it == metadata_.end() || it->second != value)
            metadata_conflict_.insert(key);
    }
    // Keys present before but absent from this profile also conflict.
    for (const auto &[key, value] : metadata_) {
        (void)value;
        if (profile.metadata().count(key) == 0)
            metadata_conflict_.insert(key);
    }
    run_ids_.push_back(run_id);
}

std::unique_ptr<prof::ProfileDb>
CctMerger::finish()
{
    for (const std::string &key : metadata_conflict_)
        metadata_.erase(key);
    std::sort(run_ids_.begin(), run_ids_.end());
    metadata_["merged_runs"] = join(run_ids_, ",");
    auto db = std::make_unique<prof::ProfileDb>(
        std::move(cct_), std::move(metrics_), std::move(metadata_));
    *this = CctMerger();
    return db;
}

std::unique_ptr<prof::ProfileDb>
CctMerger::mergeAll(const std::vector<const prof::ProfileDb *> &profiles,
                    const std::vector<std::string> &run_ids)
{
    DC_CHECK(profiles.size() == run_ids.size(),
             "mergeAll needs one run id per profile");
    CctMerger merger;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        DC_CHECK(profiles[i] != nullptr, "null profile in mergeAll");
        merger.add(*profiles[i], run_ids[i]);
    }
    return merger.finish();
}

} // namespace dc::service

#include "service/cct_merger.h"

#include <algorithm>
#include <atomic>

#include "common/executor.h"
#include "common/logging.h"
#include "common/strings.h"

namespace dc::service {

void
intersectMetadataWith(std::map<std::string, std::string> &agreed,
                      const std::map<std::string, std::string> &meta)
{
    for (auto it = agreed.begin(); it != agreed.end();) {
        auto found = meta.find(it->first);
        if (found == meta.end() || found->second != it->second)
            it = agreed.erase(it);
        else
            ++it;
    }
}

namespace {

/**
 * Metadata agreement across profiles, matching CctMerger::finish():
 * pure intersection, so it composes across partial merges in any
 * grouping — the parallel reduction computes it flat instead.
 */
std::map<std::string, std::string>
intersectMetadata(const std::vector<const prof::ProfileDb *> &profiles)
{
    std::map<std::string, std::string> agreed;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        if (i == 0)
            agreed = profiles[i]->metadata();
        else
            intersectMetadataWith(agreed, profiles[i]->metadata());
    }
    return agreed;
}

} // namespace

CctMerger::CctMerger() = default;

void
CctMerger::add(const prof::ProfileDb &profile, const std::string &run_id)
{
    // An invalid profile (e.g. node metric ids not covered by its
    // registry) would merge stats into the wrong metric: with an empty
    // source registry the remap below is empty, which mergeFrom takes
    // as "ids already agree".
    std::string error;
    DC_CHECK(profile.validate(&error), "unmergeable profile: ", error);
    addPrevalidated(profile, run_id);
}

void
CctMerger::addPrevalidated(const prof::ProfileDb &profile,
                           const std::string &run_id)
{
    if (cct_ == nullptr)
        cct_ = std::make_unique<prof::Cct>(profile.cct().namesShared());
    const std::vector<int> remap = metrics_.mergeFrom(profile.metrics());
    cct_->mergeFrom(profile.cct(), remap);

    for (const auto &[key, value] : profile.metadata()) {
        auto it = metadata_.find(key);
        if (it == metadata_.end() && run_ids_.empty())
            metadata_[key] = value;
        else if (it == metadata_.end() || it->second != value)
            metadata_conflict_.insert(key);
    }
    // Keys present before but absent from this profile also conflict.
    for (const auto &[key, value] : metadata_) {
        (void)value;
        if (profile.metadata().count(key) == 0)
            metadata_conflict_.insert(key);
    }
    run_ids_.push_back(run_id);
}

std::unique_ptr<prof::ProfileDb>
CctMerger::finish()
{
    for (const std::string &key : metadata_conflict_)
        metadata_.erase(key);
    if (cct_ == nullptr) // nothing merged: an empty global-table tree
        cct_ = std::make_unique<prof::Cct>();
    std::sort(run_ids_.begin(), run_ids_.end());
    metadata_["merged_runs"] = join(run_ids_, ",");
    auto db = std::make_unique<prof::ProfileDb>(
        std::move(cct_), std::move(metrics_), std::move(metadata_));
    *this = CctMerger();
    return db;
}

std::unique_ptr<prof::ProfileDb>
CctMerger::mergeAll(const std::vector<const prof::ProfileDb *> &profiles,
                    const std::vector<std::string> &run_ids)
{
    DC_CHECK(profiles.size() == run_ids.size(),
             "mergeAll needs one run id per profile");
    CctMerger merger;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        DC_CHECK(profiles[i] != nullptr, "null profile in mergeAll");
        merger.add(*profiles[i], run_ids[i]);
    }
    return merger.finish();
}

std::unique_ptr<prof::ProfileDb>
CctMerger::mergeAllPrevalidated(
    const std::vector<const prof::ProfileDb *> &profiles,
    const std::vector<std::string> &run_ids, std::size_t workers,
    std::size_t grain, const Deadline *deadline,
    common::Executor *executor)
{
    DC_CHECK(profiles.size() == run_ids.size(),
             "mergeAllPrevalidated needs one run id per profile");
    std::size_t total_nodes = 0;
    for (const prof::ProfileDb *profile : profiles) {
        DC_CHECK(profile != nullptr,
                 "null profile in mergeAllPrevalidated");
        total_nodes += profile->cct().nodeCount();
    }
    common::Executor &exec =
        executor != nullptr ? *executor : common::Executor::global();
    if (workers == 0)
        workers = exec.threads();
    grain = std::max<std::size_t>(grain, 1);

    const std::size_t n = profiles.size();
    // Adaptive serial cutover: below the node threshold the fan-out's
    // overhead (task handoff, partial reduction) exceeds the merge
    // itself, so small selections fold inline even on wide pools.
    if (workers <= 1 || n < 2 * grain ||
        total_nodes < kSerialNodeCutover) {
        CctMerger merger;
        for (std::size_t i = 0; i < n; ++i) {
            if (deadline != nullptr && deadline->expired())
                return nullptr;
            merger.addPrevalidated(*profiles[i], run_ids[i]);
        }
        return merger.finish();
    }

    /// One worker's fold of a contiguous run chunk.
    struct Partial {
        std::unique_ptr<prof::Cct> cct;
        prof::MetricRegistry metrics;
    };
    const std::size_t chunks =
        std::min(workers, (n + grain - 1) / grain);
    std::vector<Partial> partials(chunks);
    // Cooperative cancellation across the fan-out: every fold loop
    // polls the shared flag so one expired deadline stops all chunks
    // within a run's worth of work each.
    std::atomic<bool> aborted{false};

    // Phase 1: fold each chunk into a partial CCT, one pool task each
    // (the submitting thread helps via wait()). The first merge into
    // an empty partial hits Cct::mergeFrom's block-copy path, so
    // per-chunk cost is dominated by the colliding merges — the work
    // the reduction spreads across cores.
    common::TaskGroup group(
        exec, deadline != nullptr ? *deadline : Deadline{});
    for (std::size_t c = 0; c < chunks; ++c) {
        group.submit([&, c] {
            Partial &partial = partials[c];
            const std::size_t begin = c * n / chunks;
            const std::size_t end = (c + 1) * n / chunks;
            // Adopt the chunk's first profile's table: within one
            // store every profile shares it, so the whole
            // reduction merges by direct id equality.
            partial.cct = std::make_unique<prof::Cct>(
                profiles[begin]->cct().namesShared());
            for (std::size_t i = begin; i < end; ++i) {
                if (aborted.load(std::memory_order_relaxed))
                    return;
                if (deadline != nullptr && deadline->expired()) {
                    aborted.store(true, std::memory_order_relaxed);
                    return;
                }
                const std::vector<int> remap =
                    partial.metrics.mergeFrom(profiles[i]->metrics());
                partial.cct->mergeFrom(profiles[i]->cct(), remap);
            }
        });
    }
    group.wait();

    // A cancelled group may have skipped whole chunk tasks (their
    // partials stay null), so an expired deadline — the only way a
    // skip happens here — abandons the merge exactly like a mid-chunk
    // abort.
    if (aborted.load() || group.cancelled())
        return nullptr;

    // Phase 2: pairwise tree reduction — log2(chunks) rounds, each
    // merging disjoint partial pairs concurrently on the pool.
    for (std::size_t step = 1; step < chunks; step *= 2) {
        if (deadline != nullptr && deadline->expired())
            return nullptr;
        for (std::size_t i = 0; i + step < chunks; i += 2 * step) {
            group.submit([&, i, step] {
                Partial &dst = partials[i];
                Partial &src = partials[i + step];
                const std::vector<int> remap =
                    dst.metrics.mergeFrom(src.metrics);
                dst.cct->mergeFrom(*src.cct, remap);
                src.cct.reset();
            });
        }
        group.wait();
        if (group.cancelled())
            return nullptr;
    }

    std::map<std::string, std::string> metadata =
        intersectMetadata(profiles);
    std::vector<std::string> sorted_ids = run_ids;
    std::sort(sorted_ids.begin(), sorted_ids.end());
    metadata["merged_runs"] = join(sorted_ids, ",");
    return std::make_unique<prof::ProfileDb>(
        std::move(partials[0].cct), std::move(partials[0].metrics),
        std::move(metadata));
}

} // namespace dc::service

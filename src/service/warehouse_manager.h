#pragma once

/**
 * @file
 * The multi-corpus warehouse: a registry owning many ProfileStores
 * keyed by corpus id, plus federated queries spanning a set of them.
 *
 * One ProfileStore serves one corpus. Production means many teams x
 * many models x many platforms, so the WarehouseManager:
 *
 *  - **owns the registry.** A corpus id maps to a per-corpus data dir
 *    under Options::root_dir (the filesystem is the durable registry:
 *    a corpus exists iff its directory does, and create/drop commit
 *    with the same fsync discipline as every other durable artifact).
 *    With an empty root_dir the manager is volatile — corpora live
 *    only while open, for tests and ephemeral aggregation.
 *
 *  - **opens lazily, closes cold.** open() replays the corpus's WAL on
 *    first touch; handles are refcounted shared_ptrs, so closing is a
 *    registry removal and the store tears down when its last query
 *    drains — a corpus closed while a cold CorpusView rebuild is in
 *    flight drains cleanly instead of racing destruction. Reopening
 *    (or dropping) waits for the prior incarnation to finish
 *    destructing so two stores can never share one WAL directory.
 *    Beyond Options::max_open (or max_open_interned_bytes), the
 *    least-recently-used open corpus is closed automatically.
 *
 *  - **budgets per corpus.** Every store gets the per-corpus
 *    interned-name/byte budgets from the Options template (the PR 4
 *    accounting, generalized: one tenant's high-cardinality kernel
 *    names cannot starve another's corpus).
 *
 *  - **federates queries.** federatedTopKernels / federatedMerged /
 *    federatedDiff / federatedFlameGraph scatter over each corpus's
 *    cached CorpusView and gather across stores. The per-corpus legs
 *    fan out on the shared executor (common/executor.h) — one slow or
 *    cold corpus no longer serializes the rest — and the gather folds
 *    leg results in deterministic corpus order, so federated answers
 *    are byte-identical to the old serial walk. Per-corpus trees
 *    intern through *different* StringTables, so the gather leg goes
 *    through CctMerger's cross-table NameTranslator path (and the
 *    aggregate gather unifies kernels by name). The calling thread's
 *    ScopedDeadline (deadline.h) propagates into every leg via the
 *    TaskGroup: cold rebuilds poll it, legs not yet started are
 *    skipped once it expires, and the gather re-checks it — an
 *    expired deadline abandons the query within a bounded grace
 *    while already-running legs finish and warm their view caches.
 */

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "analyzer/diff.h"
#include "common/executor.h"
#include "gui/flamegraph.h"
#include "profiler/profile_db.h"
#include "service/profile_store.h"
#include "service/query_engine.h"
#include "service/query_filter.h"

namespace dc::service {

/**
 * One open corpus: its store and the query engine serving it. The
 * engine is declared after the store so it is destroyed first —
 * destruction order is the single place that invariant lives.
 */
struct Corpus {
    Corpus(std::string corpus_id, ProfileStore::Options store_options,
           QueryEngine::Options engine_options)
        : id(std::move(corpus_id)), store(std::move(store_options)),
          engine(store, engine_options)
    {
    }

    const std::string id;
    ProfileStore store;
    QueryEngine engine;
};

/**
 * Refcounted handle to an open corpus. Holding it keeps the store and
 * engine alive across close()/LRU eviction/drop — in-flight queries
 * drain before teardown. Handles must not outlive the manager (its
 * destructor waits for them to drop).
 */
using CorpusHandle = std::shared_ptr<Corpus>;

/** Manager-level lifecycle counters. */
struct ManagerStats {
    std::uint64_t created = 0;    ///< Corpora created.
    std::uint64_t opened = 0;     ///< Store constructions (WAL replays).
    std::uint64_t closed = 0;     ///< Explicit close() removals.
    std::uint64_t lru_closed = 0; ///< Budget-driven LRU closes.
    std::uint64_t dropped = 0;    ///< Corpora dropped (data deleted).
    std::uint64_t drain_waits = 0; ///< open()/drop() calls that had to
                                   ///< wait for a prior incarnation's
                                   ///< last reader to drain.
    std::uint64_t federated = 0;   ///< Federated queries served.
    std::uint64_t open_corpora = 0; ///< Currently open.
    /// Summed interned-name bytes across open corpora (the global
    /// budget max_open_interned_bytes is enforced against this).
    std::uint64_t open_interned_bytes = 0;
};

/** Registry of ProfileStores keyed by corpus id. Thread-safe. */
class WarehouseManager
{
  public:
    struct Options {
        /// Root of the per-corpus data dirs (root_dir/<corpus id>).
        /// Empty = volatile manager: corpora exist only while open,
        /// and the LRU budget is not enforced (closing would destroy
        /// data, not merely cool it).
        std::string root_dir;
        /// Open-corpus budget before LRU close (0 = unlimited;
        /// durable managers only). The corpus being opened is never
        /// the one evicted.
        std::size_t max_open = 8;
        /// Global budget on summed interned-name bytes across open
        /// corpora (0 = unlimited; durable managers only). Checked at
        /// open: cold LRU corpora are closed until the sum fits.
        std::uint64_t max_open_interned_bytes = 0;
        /// Per-corpus store template. data_dir is ignored (the
        /// manager assigns root_dir/<id>); max_interned_bytes et al.
        /// apply to every corpus individually.
        ProfileStore::Options store;
        /// Per-corpus query-engine (view cache) template.
        QueryEngine::Options engine;
        /// Pool federated legs scatter on; null = Executor::global().
        common::Executor *executor = nullptr;
    };

    WarehouseManager() : WarehouseManager(Options{}) {}
    explicit WarehouseManager(Options options);
    /** Closes every corpus and waits for outstanding handles. */
    ~WarehouseManager();

    WarehouseManager(const WarehouseManager &) = delete;
    WarehouseManager &operator=(const WarehouseManager &) = delete;

    /**
     * Whether @p id is a legal corpus id: nonempty, at most
     * kMaxCorpusIdBytes, chars from [A-Za-z0-9._-], no leading dot.
     * Doubling as the path-safety gate — an id can never traverse out
     * of root_dir or collide with the manager's .drop-* staging names.
     */
    static bool validCorpusId(const std::string &id);
    static constexpr std::size_t kMaxCorpusIdBytes = 128;

    /**
     * Create a new corpus and open it. Fails (null + @p error) when
     * the id is invalid or the corpus already exists. Durable
     * managers persist the creation (dir + parent fsync) before
     * returning.
     */
    CorpusHandle create(const std::string &id,
                        std::string *error = nullptr);

    /**
     * Open (or return the already-open) corpus @p id, replaying its
     * WAL on first touch. Fails when the corpus does not exist. An
     * open that collides with a closing incarnation waits for the old
     * store to drain first — never two stores on one data dir.
     */
    CorpusHandle open(const std::string &id,
                      std::string *error = nullptr);

    /**
     * Remove @p id from the open set. The store tears down once the
     * last outstanding handle drops (queries in flight drain
     * cleanly). @return Whether it was open. Data survives on durable
     * managers; on a volatile manager close discards the corpus.
     */
    bool close(const std::string &id);

    /**
     * Delete corpus @p id: close it, wait for every handle to drain,
     * and (durable) destage its directory — renamed to a .drop-*
     * staging name and fsynced out of the registry first, so a crash
     * mid-delete can never leave a half-deleted corpus that looks
     * live; leftovers are swept at construction. Fails on an unknown
     * corpus.
     */
    bool drop(const std::string &id, std::string *error = nullptr);

    /** Whether @p id is currently open. */
    bool isOpen(const std::string &id) const;

    /**
     * Sorted ids of every corpus: open ones plus (durable) every
     * per-corpus directory under root_dir.
     */
    std::vector<std::string> corpusIds() const;

    /** waitIdle() every open corpus's store. */
    void waitIdle();

    ManagerStats stats() const;

    // ------------------------------------------------------------------
    // Federated queries. Each resolves (lazily opening) every named
    // corpus, scatters the per-corpus leg over its cached CorpusView,
    // and gathers across stores. Duplicate ids are deduplicated; an
    // unknown corpus fails the whole query (error set). The calling
    // thread's ScopedDeadline is honored per leg: expiry abandons the
    // query (null/nullopt, error mentions the deadline).
    // ------------------------------------------------------------------

    /**
     * Top-@p k kernels by summed @p metric across every run matching
     * @p filter in all of @p corpora, unified *by kernel name* across
     * the per-corpus string tables, sorted (total desc, name asc).
     */
    std::optional<std::vector<KernelAggregate>> federatedTopKernels(
        const std::vector<std::string> &corpora, std::size_t k,
        const QueryFilter &filter = {},
        const std::string &metric = prof::metric_names::kGpuTime,
        std::string *error = nullptr);

    /**
     * One merged profile spanning @p corpora: each corpus's cached
     * merged view folded through CctMerger's cross-table translating
     * path. Metadata follows merge semantics (agreeing keys kept), and
     * "merged_runs" lists corpus:<id> provenance entries.
     */
    std::shared_ptr<const prof::ProfileDb>
    federatedMerged(const std::vector<std::string> &corpora,
                    const QueryFilter &filter = {},
                    std::string *error = nullptr);

    /**
     * Diff the merged selection of @p corpora_a against that of
     * @p corpora_b — the paper's AMD-vs-Nvidia / JAX-vs-PyTorch
     * cross-corpus comparison as one request.
     */
    std::optional<analysis::ProfileComparison>
    federatedDiff(const std::vector<std::string> &corpora_a,
                  const std::vector<std::string> &corpora_b,
                  const QueryFilter &filter = {},
                  std::string *error = nullptr);

    /** Flame graph of the federated merged selection. */
    std::shared_ptr<const gui::FlameNode>
    federatedFlameGraph(const std::vector<std::string> &corpora,
                        const QueryFilter &filter = {},
                        const gui::FlameGraphOptions &options = {},
                        std::string *error = nullptr);

    /** Self-contained HTML flame graph of the federated selection. */
    std::string
    federatedFlameHtml(const std::string &title,
                       const std::vector<std::string> &corpora,
                       const QueryFilter &filter = {},
                       const gui::FlameGraphOptions &options = {},
                       std::string *error = nullptr);

  private:
    /// Registry slot for one corpus id. `handle` is non-null while
    /// open; `opening` marks a construction (WAL replay) in flight
    /// outside the lock; `retired` counts published incarnations not
    /// yet destructed (0 or 1) — open/drop wait on it so a data dir
    /// never has two stores.
    struct State {
        CorpusHandle handle;
        std::uint64_t last_used = 0;
        bool opening = false;
        int retired = 0;
    };

    std::string dirFor(const std::string &id) const;
    bool durable() const { return !options_.root_dir.empty(); }
    /// Remove .drop-* staging leftovers under root_dir (constructor).
    void sweepDropStaging();
    /// Shared open/create body; see the public wrappers.
    CorpusHandle openImpl(const std::string &id, bool create,
                          std::string *error);
    /// The handle deleter's registry callback.
    void onCorpusDestroyed(const std::string &id);
    /// Close LRU corpora beyond the budgets; evicted handles are
    /// appended to @p evicted for destruction outside the lock.
    /// Requires mutex_ held; never evicts @p keep.
    void enforceBudgetsLocked(std::vector<CorpusHandle> *evicted,
                              const std::string &keep);
    /// Resolve (lazily opening, deduplicating) every id for a
    /// federated query.
    bool resolveAll(const std::vector<std::string> &corpora,
                    std::vector<CorpusHandle> *out, std::string *error);
    common::Executor &executor() const
    {
        return options_.executor != nullptr
                   ? *options_.executor
                   : common::Executor::global();
    }

    Options options_;
    mutable std::mutex mutex_;
    /// Signals: incarnation destructed (retired drained) or opening
    /// finished.
    mutable std::condition_variable cv_;
    std::map<std::string, State> corpora_;
    std::uint64_t use_counter_ = 0;
    ManagerStats stats_;
};

} // namespace dc::service

#include "service/warehouse_manager.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include <unistd.h>

#include "common/executor.h"
#include "common/failpoint.h"
#include "common/fs.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics_registry.h"
#include "service/cct_merger.h"
#include "service/deadline.h"

namespace dc::service {

namespace {

constexpr const char *kDropPrefix = ".drop-";

/// Fires at the start of every federated leg, on the pool thread that
/// runs it — delay() specs here stall one leg without touching the
/// others (leg-overlap and stalled-leg tests).
failpoint::Site s_fp_federated_leg{"mgr.federated.leg"};

obs::Counter &
openedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("manager.corpus.opened");
    return counter;
}

obs::Counter &
closedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("manager.corpus.closed");
    return counter;
}

obs::Counter &
lruClosedCounter()
{
    static obs::Counter counter = obs::MetricsRegistry::global().counter(
        "manager.corpus.lru_closed");
    return counter;
}

obs::Counter &
droppedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("manager.corpus.dropped");
    return counter;
}

obs::Counter &
federatedCounter()
{
    static obs::Counter counter = obs::MetricsRegistry::global().counter(
        "manager.query.federated");
    return counter;
}

void
setError(std::string *error, std::string message)
{
    if (error != nullptr)
        *error = std::move(message);
}

/// Best-effort recursive removal of a destaged corpus dir. Failure is
/// only a space leak — the .drop-* name is already out of the
/// registry and will be swept again at the next manager construction.
void
deleteTree(const std::string &path, int depth = 0)
{
    if (depth > 8) // a corpus dir is flat; cycles/bombs stop here
        return;
    std::vector<std::string> names;
    if (!listDir(path, &names))
        return;
    for (const std::string &name : names) {
        const std::string child = path + "/" + name;
        if (!removeFile(child)) {
            deleteTree(child, depth + 1);
            ::rmdir(child.c_str());
        }
    }
    ::rmdir(path.c_str());
}

} // namespace

WarehouseManager::WarehouseManager(Options options)
    : options_(std::move(options))
{
    if (durable()) {
        std::string error;
        if (!ensureDir(options_.root_dir, &error)) {
            DC_WARN("warehouse manager root '", options_.root_dir,
                    "' unusable: ", error);
        }
        sweepDropStaging();
    }
}

WarehouseManager::~WarehouseManager()
{
    // Close everything, then wait for outstanding handles to drain —
    // their deleters lock mutex_, so the manager must stay alive until
    // every incarnation has retired.
    std::vector<CorpusHandle> held;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &[id, state] : corpora_) {
            if (state.handle != nullptr)
                held.push_back(std::move(state.handle));
        }
    }
    held.clear();
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] {
        return std::all_of(corpora_.begin(), corpora_.end(),
                           [](const auto &entry) {
                               return entry.second.retired == 0 &&
                                      !entry.second.opening;
                           });
    });
}

bool
WarehouseManager::validCorpusId(const std::string &id)
{
    if (id.empty() || id.size() > kMaxCorpusIdBytes || id[0] == '.')
        return false;
    for (const char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
WarehouseManager::dirFor(const std::string &id) const
{
    return options_.root_dir + "/" + id;
}

void
WarehouseManager::sweepDropStaging()
{
    std::vector<std::string> names;
    if (!listDir(options_.root_dir, &names))
        return;
    for (const std::string &name : names) {
        if (name.rfind(kDropPrefix, 0) == 0)
            deleteTree(options_.root_dir + "/" + name);
    }
}

CorpusHandle
WarehouseManager::create(const std::string &id, std::string *error)
{
    return openImpl(id, /*create=*/true, error);
}

CorpusHandle
WarehouseManager::open(const std::string &id, std::string *error)
{
    return openImpl(id, /*create=*/false, error);
}

CorpusHandle
WarehouseManager::openImpl(const std::string &id, bool create,
                           std::string *error)
{
    if (!validCorpusId(id)) {
        setError(error, strformat("invalid corpus id '%s'", id.c_str()));
        return nullptr;
    }

    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        State &state = corpora_[id];
        if (state.handle != nullptr) {
            if (create) {
                setError(error, strformat("corpus '%s' already exists",
                                          id.c_str()));
                return nullptr;
            }
            state.last_used = ++use_counter_;
            return state.handle;
        }
        if (state.opening || state.retired > 0) {
            // A concurrent open is constructing, or a prior
            // incarnation's last reader has not drained yet — its
            // store may still hold the WAL dir. Wait; never two
            // stores on one data dir.
            if (state.retired > 0)
                ++stats_.drain_waits;
            cv_.wait(lock);
            continue;
        }
        // Closed and fully drained: this thread owns the transition.
        const bool exists = durable() && pathExists(dirFor(id));
        if (create && exists) {
            setError(error,
                     strformat("corpus '%s' already exists", id.c_str()));
            return nullptr;
        }
        if (!create && !exists) {
            setError(error,
                     durable()
                         ? strformat("unknown corpus '%s'", id.c_str())
                         : strformat("unknown corpus '%s' (volatile "
                                     "manager: create() it first)",
                                     id.c_str()));
            if (state.last_used == 0) // never opened: drop the slot
                corpora_.erase(id);
            return nullptr;
        }
        state.opening = true;
        break;
    }
    lock.unlock();

    // Construction — mkdir for a create, WAL replay for a reopen —
    // runs outside the lock so other corpora stay serviceable.
    std::string fail;
    if (create && durable()) {
        if (!ensureDir(dirFor(id), &fail) ||
            !syncDir(options_.root_dir, &fail)) {
            fail = strformat("creating corpus '%s': %s", id.c_str(),
                             fail.c_str());
        }
    }
    CorpusHandle handle;
    if (fail.empty()) {
        ProfileStore::Options store_options = options_.store;
        store_options.data_dir = durable() ? dirFor(id) : std::string();
        Corpus *corpus =
            new Corpus(id, std::move(store_options), options_.engine);
        handle = CorpusHandle(corpus, [this, id](Corpus *p) {
            delete p;
            onCorpusDestroyed(id);
        });
    }

    std::vector<CorpusHandle> evicted;
    lock.lock();
    State &state = corpora_[id];
    state.opening = false;
    if (handle == nullptr) {
        if (state.last_used == 0)
            corpora_.erase(id);
        cv_.notify_all();
        lock.unlock();
        setError(error, std::move(fail));
        return nullptr;
    }
    state.handle = handle;
    state.retired = 1;
    state.last_used = ++use_counter_;
    ++stats_.opened;
    openedCounter().add();
    if (create) {
        ++stats_.created;
    }
    enforceBudgetsLocked(&evicted, id);
    cv_.notify_all();
    lock.unlock();
    evicted.clear(); // handle deleters re-lock mutex_; never inline
    return handle;
}

void
WarehouseManager::onCorpusDestroyed(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = corpora_.find(id);
    if (it != corpora_.end() && it->second.retired > 0)
        --it->second.retired;
    cv_.notify_all();
}

void
WarehouseManager::enforceBudgetsLocked(std::vector<CorpusHandle> *evicted,
                                       const std::string &keep)
{
    if (!durable()) // closing a volatile corpus destroys it; never lazily
        return;
    const auto openCount = [this] {
        std::size_t n = 0;
        for (const auto &[id, state] : corpora_)
            n += state.handle != nullptr ? 1 : 0;
        return n;
    };
    const auto internedSum = [this] {
        std::uint64_t sum = 0;
        for (const auto &[id, state] : corpora_) {
            if (state.handle != nullptr)
                sum += state.handle->store.stats().interned_bytes;
        }
        return sum;
    };
    for (;;) {
        const bool over_count =
            options_.max_open > 0 && openCount() > options_.max_open;
        const bool over_bytes = options_.max_open_interned_bytes > 0 &&
                                internedSum() >
                                    options_.max_open_interned_bytes;
        if (!over_count && !over_bytes)
            return;
        State *coldest = nullptr;
        for (auto &[id, state] : corpora_) {
            if (state.handle == nullptr || id == keep)
                continue;
            if (coldest == nullptr ||
                state.last_used < coldest->last_used) {
                coldest = &state;
            }
        }
        if (coldest == nullptr) // only `keep` is open; budget must yield
            return;
        evicted->push_back(std::move(coldest->handle));
        coldest->handle = nullptr;
        ++stats_.lru_closed;
        lruClosedCounter().add();
    }
}

bool
WarehouseManager::close(const std::string &id)
{
    CorpusHandle handle;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = corpora_.find(id);
        if (it == corpora_.end() || it->second.handle == nullptr)
            return false;
        handle = std::move(it->second.handle);
        it->second.handle = nullptr;
        ++stats_.closed;
    }
    closedCounter().add();
    handle.reset(); // teardown now unless queries still hold it
    return true;
}

bool
WarehouseManager::drop(const std::string &id, std::string *error)
{
    if (!validCorpusId(id)) {
        setError(error, strformat("invalid corpus id '%s'", id.c_str()));
        return false;
    }
    CorpusHandle handle;
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = corpora_.find(id);
    const bool was_open = it != corpora_.end() &&
                          (it->second.handle != nullptr ||
                           it->second.opening || it->second.retired > 0);
    if (!was_open && !(durable() && pathExists(dirFor(id)))) {
        setError(error, strformat("unknown corpus '%s'", id.c_str()));
        return false;
    }
    if (it != corpora_.end() && it->second.handle != nullptr) {
        handle = std::move(it->second.handle);
        it->second.handle = nullptr;
    }
    lock.unlock();
    handle.reset(); // outside the lock: the deleter re-locks mutex_
    lock.lock();
    // Wait out any concurrent open and the incarnation's last reader:
    // the store must be gone before its directory is destaged.
    cv_.wait(lock, [&] {
        auto entry = corpora_.find(id);
        if (entry == corpora_.end())
            return true;
        if (entry->second.handle != nullptr) // re-opened concurrently
            return true;
        return !entry->second.opening && entry->second.retired == 0;
    });
    it = corpora_.find(id);
    if (it != corpora_.end() && it->second.handle != nullptr) {
        setError(error, strformat("corpus '%s' re-opened during drop",
                                  id.c_str()));
        return false;
    }
    if (it != corpora_.end())
        corpora_.erase(it);

    std::string staged;
    if (durable()) {
        // Destage under the lock (cheap rename) so a concurrent
        // open() cannot resurrect the dir mid-drop; the (slow)
        // recursive delete runs outside.
        const std::string dir = dirFor(id);
        staged = options_.root_dir + "/" + kDropPrefix + id;
        if (pathExists(staged))
            deleteTree(staged); // leftover from a crashed drop
        if (::rename(dir.c_str(), staged.c_str()) != 0) {
            setError(error, strformat("drop '%s': rename failed",
                                      id.c_str()));
            return false;
        }
        std::string sync_error;
        if (!syncDir(options_.root_dir, &sync_error)) {
            DC_WARN("drop '", id,
                    "': root fsync failed: ", sync_error);
        }
    }
    ++stats_.dropped;
    droppedCounter().add();
    cv_.notify_all();
    lock.unlock();
    if (!staged.empty())
        deleteTree(staged);
    return true;
}

bool
WarehouseManager::isOpen(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = corpora_.find(id);
    return it != corpora_.end() && it->second.handle != nullptr;
}

std::vector<std::string>
WarehouseManager::corpusIds() const
{
    std::set<std::string> ids;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, state] : corpora_) {
            if (state.handle != nullptr)
                ids.insert(id);
        }
    }
    if (durable()) {
        std::vector<std::string> names;
        if (listDir(options_.root_dir, &names)) {
            for (const std::string &name : names) {
                if (validCorpusId(name))
                    ids.insert(name);
            }
        }
    }
    return {ids.begin(), ids.end()};
}

void
WarehouseManager::waitIdle()
{
    std::vector<CorpusHandle> handles;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, state] : corpora_) {
            if (state.handle != nullptr)
                handles.push_back(state.handle);
        }
    }
    for (const CorpusHandle &handle : handles)
        handle->store.waitIdle();
}

ManagerStats
WarehouseManager::stats() const
{
    ManagerStats out;
    std::vector<CorpusHandle> handles;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = stats_;
        for (const auto &[id, state] : corpora_) {
            if (state.handle != nullptr) {
                ++out.open_corpora;
                handles.push_back(state.handle);
            }
        }
    }
    for (const CorpusHandle &handle : handles)
        out.open_interned_bytes += handle->store.stats().interned_bytes;
    return out;
}

bool
WarehouseManager::resolveAll(const std::vector<std::string> &corpora,
                             std::vector<CorpusHandle> *out,
                             std::string *error)
{
    if (corpora.empty()) {
        setError(error, "federated query names no corpora");
        return false;
    }
    std::set<std::string> seen;
    for (const std::string &id : corpora) {
        if (!seen.insert(id).second)
            continue; // a duplicated leg would double-count its runs
        CorpusHandle handle = open(id, error);
        if (handle == nullptr)
            return false;
        out->push_back(std::move(handle));
    }
    return true;
}

std::optional<std::vector<KernelAggregate>>
WarehouseManager::federatedTopKernels(
    const std::vector<std::string> &corpora, std::size_t k,
    const QueryFilter &filter, const std::string &metric,
    std::string *error)
{
    std::vector<CorpusHandle> handles;
    if (!resolveAll(corpora, &handles, error))
        return std::nullopt;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.federated;
    }
    federatedCounter().add();

    // Scatter: each leg walks its own corpus's view on the pool and
    // aggregates by *name* into a private map — each corpus's view
    // keys kernels by its own table's interned ids, which do not
    // unify across stores, so the string is the only cross-corpus
    // identity. Legs skipped at an expired deadline set expired; the
    // gather also re-checks the group for bodies skipped wholesale.
    struct Leg {
        std::map<std::string, KernelAggregate> by_name;
        bool expired = false;
    };
    std::vector<Leg> legs(handles.size());
    common::TaskGroup group(executor());
    for (std::size_t i = 0; i < handles.size(); ++i) {
        group.submit([&, i] {
            s_fp_federated_leg.eval();
            const CorpusHandle &handle = handles[i];
            const std::shared_ptr<const CorpusView::View> view =
                handle->engine.corpusView().acquire(filter);
            if (view == nullptr) { // rebuild abandoned at the deadline
                legs[i].expired = true;
                return;
            }
            const int metric_id = view->db->metrics().find(metric);
            if (metric_id < 0)
                return; // corpus never recorded this metric
            const StringTable &names = view->db->names();
            view->kernels.forEach(
                [&](std::uint64_t key,
                    const CorpusView::KernelStat &stat) {
                    if (FlatIdTable<CorpusView::KernelStat>::packedLow(
                            key) != metric_id) {
                        return;
                    }
                    const StringTable::Id name_id =
                        FlatIdTable<CorpusView::KernelStat>::packedId(
                            key);
                    KernelAggregate &agg =
                        legs[i].by_name[std::string(names.str(name_id))];
                    agg.total += stat.total;
                    agg.samples += stat.samples;
                    agg.runs += stat.runs;
                });
        });
    }
    group.wait();

    // Gather in handle order: the first failed leg names its corpus;
    // a deadline that expired mid-scatter (legs skipped, or it ran
    // out while a stalled leg finished) abandons the whole query.
    std::map<std::string, KernelAggregate> by_name;
    for (std::size_t i = 0; i < handles.size(); ++i) {
        if (legs[i].expired) {
            setError(error,
                     strformat("deadline expired building corpus '%s'",
                               handles[i]->id.c_str()));
            return std::nullopt;
        }
    }
    if (group.cancelled() || deadlineExpired()) {
        setError(error, "deadline expired mid-federation");
        return std::nullopt;
    }
    for (Leg &leg : legs) {
        for (auto &[name, partial] : leg.by_name) {
            KernelAggregate &agg = by_name[name];
            agg.total += partial.total;
            agg.samples += partial.samples;
            agg.runs += partial.runs;
        }
    }

    std::vector<KernelAggregate> ranked;
    ranked.reserve(by_name.size());
    for (auto &[name, agg] : by_name) {
        agg.name = name;
        ranked.push_back(std::move(agg));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const KernelAggregate &a, const KernelAggregate &b) {
                  if (a.total != b.total)
                      return a.total > b.total;
                  return a.name < b.name;
              });
    if (ranked.size() > k)
        ranked.resize(k);
    return ranked;
}

std::shared_ptr<const prof::ProfileDb>
WarehouseManager::federatedMerged(const std::vector<std::string> &corpora,
                                  const QueryFilter &filter,
                                  std::string *error)
{
    std::vector<CorpusHandle> handles;
    if (!resolveAll(corpora, &handles, error))
        return nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.federated;
    }
    federatedCounter().add();

    // Scatter: every corpus materializes its merged view on the pool.
    struct Leg {
        std::shared_ptr<const prof::ProfileDb> db;
        bool empty = false;
        bool expired = false;
    };
    std::vector<Leg> legs(handles.size());
    common::TaskGroup group(executor());
    for (std::size_t i = 0; i < handles.size(); ++i) {
        group.submit([&, i] {
            s_fp_federated_leg.eval();
            const CorpusHandle &handle = handles[i];
            // A corpus with no matching runs contributes nothing;
            // folding its empty merged view in anyway would wipe the
            // metadata agreement (empty metadata intersects
            // everything away).
            if (handle->engine.runIds(filter).empty()) {
                legs[i].empty = true;
                return;
            }
            legs[i].db = handle->engine.merged(filter);
            if (legs[i].db == nullptr) // abandoned at the deadline
                legs[i].expired = true;
        });
    }
    group.wait();

    // Gather in handle order, so the merged result is byte-identical
    // to the old serial walk regardless of leg completion order.
    CctMerger merger;
    for (std::size_t i = 0; i < handles.size(); ++i) {
        if (legs[i].expired) {
            setError(error,
                     strformat("deadline expired merging corpus '%s'",
                               handles[i]->id.c_str()));
            return nullptr;
        }
    }
    if (group.cancelled() || deadlineExpired()) {
        setError(error, "deadline expired mid-federation");
        return nullptr;
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
        if (legs[i].empty)
            continue;
        // Per-corpus trees intern through different StringTables; the
        // merger adopts the first leg's table and every later leg
        // takes Cct::mergeFrom's NameTranslator path. Store-held
        // profiles were validated at ingestion and the views merged
        // them unchanged, so the legs stay prevalidated.
        merger.addPrevalidated(*legs[i].db, "corpus:" + handles[i]->id);
    }
    return merger.finish();
}

std::optional<analysis::ProfileComparison>
WarehouseManager::federatedDiff(const std::vector<std::string> &corpora_a,
                                const std::vector<std::string> &corpora_b,
                                const QueryFilter &filter,
                                std::string *error)
{
    const std::shared_ptr<const prof::ProfileDb> a =
        federatedMerged(corpora_a, filter, error);
    if (a == nullptr)
        return std::nullopt;
    const std::shared_ptr<const prof::ProfileDb> b =
        federatedMerged(corpora_b, filter, error);
    if (b == nullptr)
        return std::nullopt;
    return analysis::compareProfiles(*a, *b);
}

std::shared_ptr<const gui::FlameNode>
WarehouseManager::federatedFlameGraph(
    const std::vector<std::string> &corpora, const QueryFilter &filter,
    const gui::FlameGraphOptions &options, std::string *error)
{
    const std::shared_ptr<const prof::ProfileDb> merged =
        federatedMerged(corpora, filter, error);
    if (merged == nullptr)
        return nullptr;
    return std::make_shared<gui::FlameNode>(
        gui::FlameGraph::topDown(*merged, options));
}

std::string
WarehouseManager::federatedFlameHtml(const std::string &title,
                                     const std::vector<std::string> &corpora,
                                     const QueryFilter &filter,
                                     const gui::FlameGraphOptions &options,
                                     std::string *error)
{
    const std::shared_ptr<const gui::FlameNode> flame =
        federatedFlameGraph(corpora, filter, options, error);
    if (flame == nullptr)
        return {};
    return gui::FlameGraph::toHtml(*flame, title);
}

} // namespace dc::service

#pragma once

/**
 * @file
 * The warehouse's analysis frontend: queries over the profiles held in a
 * ProfileStore.
 *
 *  - top-k kernels by an aggregate metric across every (or a filtered
 *    subset of) stored run,
 *  - per-run vs. merged-corpus diff and run-vs-run diff (reusing
 *    analyzer/diff),
 *  - metadata filtering (framework / platform / model / arbitrary keys),
 *  - flame-graph export of any query's merged profile through
 *    gui/flamegraph.
 *
 * Queries take shared_ptr snapshots from the store, so they run
 * concurrently with ingestion and always see whole profiles.
 */

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analyzer/diff.h"
#include "gui/flamegraph.h"
#include "profiler/profile_db.h"
#include "service/profile_store.h"

namespace dc::service {

/** Metadata predicate; empty named fields match everything. */
struct QueryFilter {
    std::string framework; ///< Matches metadata "framework".
    std::string platform;  ///< Matches metadata "platform".
    std::string model;     ///< Matches metadata "model".
    /// Additional exact-match metadata constraints. Unlike the named
    /// fields, entries here are literal: an empty value matches only a
    /// run whose metadata value is empty.
    std::map<std::string, std::string> metadata;

    /** True when @p meta satisfies every constraint. */
    bool matches(const std::map<std::string, std::string> &meta) const;
};

/** One kernel's aggregate across the selected runs. */
struct KernelAggregate {
    std::string name;
    double total = 0.0;        ///< Summed metric over all call paths/runs.
    std::uint64_t samples = 0; ///< Aggregated sample count.
    std::size_t runs = 0;      ///< Runs the kernel appeared in.

    double mean() const
    {
        return samples > 0 ? total / static_cast<double>(samples) : 0.0;
    }
};

/** Read-side query service over a ProfileStore. */
class QueryEngine
{
  public:
    explicit QueryEngine(const ProfileStore &store) : store_(store) {}

    /** Sorted run ids matching @p filter. */
    std::vector<std::string> runIds(const QueryFilter &filter = {}) const;

    /**
     * Top-@p k kernels by summed @p metric across the selected runs,
     * sorted by total descending (ties broken by name so results are
     * deterministic under any ingestion order).
     */
    std::vector<KernelAggregate>
    topKernels(std::size_t k, const QueryFilter &filter = {},
               const std::string &metric =
                   prof::metric_names::kGpuTime) const;

    /** Merged profile of every run matching @p filter (CctMerger). */
    std::unique_ptr<prof::ProfileDb>
    merged(const QueryFilter &filter = {}) const;

    /**
     * Diff two stored runs (analyzer/diff). Run ids come from callers
     * (and can vanish under a concurrent erase), so an unknown id
     * yields nullopt rather than taking the service down.
     */
    std::optional<analysis::ProfileComparison>
    diffRuns(const std::string &run_a, const std::string &run_b) const;

    /**
     * Diff one run against the merged rest of the corpus — "how does
     * this run deviate from the fleet". nullopt when @p run_id is
     * unknown.
     */
    std::optional<analysis::ProfileComparison>
    diffAgainstCorpus(const std::string &run_id,
                      const QueryFilter &filter = {}) const;

    /** Flame graph of the merged selection. */
    gui::FlameNode
    flameGraph(const QueryFilter &filter = {},
               const gui::FlameGraphOptions &options = {}) const;

    /** Self-contained HTML flame graph of the merged selection. */
    std::string
    flameGraphHtml(const std::string &title,
                   const QueryFilter &filter = {},
                   const gui::FlameGraphOptions &options = {}) const;

  private:
    /// Snapshot of (run id, profile) pairs matching a filter.
    std::vector<std::pair<std::string,
                          std::shared_ptr<const prof::ProfileDb>>>
    select(const QueryFilter &filter) const;

    const ProfileStore &store_;
};

} // namespace dc::service

#pragma once

/**
 * @file
 * The warehouse's analysis frontend: queries over the profiles held in a
 * ProfileStore.
 *
 *  - top-k kernels by an aggregate metric across every (or a filtered
 *    subset of) stored run,
 *  - per-run vs. merged-corpus diff and run-vs-run diff (reusing
 *    analyzer/diff),
 *  - metadata filtering (framework / platform / model / arbitrary keys),
 *  - flame-graph export of any query's merged profile through
 *    gui/flamegraph.
 *
 * Queries are served through the engine's CorpusView cache: the merged
 * selection and its id-keyed kernel aggregates are materialized once
 * per filter signature, invalidated by the store's generation digest,
 * refreshed incrementally when only new runs arrived, and rebuilt with
 * a parallel tree reduction when they cannot be (first touch, erase,
 * eviction). Repeated queries over a stable corpus touch no profile —
 * top-k is a scan of a flat interned-id table with a bounded k-heap,
 * and merged()/flame queries reuse the cached merged tree. Everything
 * stays safe to call concurrently with ingestion.
 */

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analyzer/diff.h"
#include "gui/flamegraph.h"
#include "profiler/profile_db.h"
#include "service/corpus_view.h"
#include "service/profile_store.h"
#include "service/query_filter.h"

namespace dc::service {

/** One kernel's aggregate across the selected runs. */
struct KernelAggregate {
    std::string name;
    double total = 0.0;        ///< Summed metric over all call paths/runs.
    std::uint64_t samples = 0; ///< Aggregated sample count.
    std::size_t runs = 0;      ///< Runs the kernel appeared in.

    double mean() const
    {
        return samples > 0 ? total / static_cast<double>(samples) : 0.0;
    }
};

/** Read-side query service over a ProfileStore. */
class QueryEngine
{
  public:
    struct Options {
        /// Materialized-view cache behavior (capacity, merge workers).
        CorpusView::Options view;
    };

    explicit QueryEngine(const ProfileStore &store)
        : QueryEngine(store, Options{})
    {
    }
    QueryEngine(const ProfileStore &store, Options options)
        : store_(store), view_(store, options.view)
    {
    }

    /**
     * Sorted run ids matching @p filter — via the store's lightweight
     * id-listing path, no per-run shared_ptr snapshots.
     */
    std::vector<std::string> runIds(const QueryFilter &filter = {}) const;

    /**
     * Top-@p k kernels by summed @p metric across the selected runs,
     * sorted by total descending (ties broken by name so results are
     * deterministic under any ingestion order; totals are exact up to
     * the FP rounding freedom CctMerger documents).
     */
    std::vector<KernelAggregate>
    topKernels(std::size_t k, const QueryFilter &filter = {},
               const std::string &metric =
                   prof::metric_names::kGpuTime) const;

    /**
     * Merged profile of every run matching @p filter — the cached
     * materialized view's tree, shared with concurrent readers (hence
     * const). Holding the pointer keeps that view's merge alive
     * regardless of later ingestion. Null only when the calling
     * thread's ScopedDeadline (deadline.h) expired mid-rebuild.
     */
    std::shared_ptr<const prof::ProfileDb>
    merged(const QueryFilter &filter = {}) const;

    /**
     * Diff two stored runs (analyzer/diff). Run ids come from callers
     * (and can vanish under a concurrent erase), so an unknown id
     * yields nullopt rather than taking the service down.
     */
    std::optional<analysis::ProfileComparison>
    diffRuns(const std::string &run_a, const std::string &run_b) const;

    /**
     * Diff one run against the merged rest of the corpus — "how does
     * this run deviate from the fleet". nullopt when @p run_id is
     * unknown. The corpus-minus-run merge is a cached view of its own
     * (keyed by filter + excluded id), so repeated fleet diffs of the
     * same run don't re-merge.
     */
    std::optional<analysis::ProfileComparison>
    diffAgainstCorpus(const std::string &run_id,
                      const QueryFilter &filter = {}) const;

    /**
     * Flame graph of the merged selection. Served from the view's
     * flame cache: repeated exports of an unchanged corpus (same
     * filter, same options) return the same shared rendering without
     * rebuilding a FlameNode tree; any ingest/erase/compaction
     * replaces the view and with it the cache.
     */
    std::shared_ptr<const gui::FlameNode>
    flameGraph(const QueryFilter &filter = {},
               const gui::FlameGraphOptions &options = {}) const;

    /** Self-contained HTML flame graph of the merged selection. */
    std::string
    flameGraphHtml(const std::string &title,
                   const QueryFilter &filter = {},
                   const gui::FlameGraphOptions &options = {}) const;

    /** The engine's view cache (stats, explicit invalidation). */
    const CorpusView &corpusView() const { return view_; }

  private:
    const ProfileStore &store_;
    /// Mutable: queries are logically const but maintain the cache.
    mutable CorpusView view_;
};

} // namespace dc::service

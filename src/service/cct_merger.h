#pragma once

/**
 * @file
 * Structural merge of calling-context trees across runs.
 *
 * The warehouse stores one ProfileDb per run; fleet-level analysis wants
 * one tree. CctMerger unifies frames under Frame::sameLocation (the same
 * collapsing rule the profiler applies within a run, extended across
 * runs — realized as direct FrameKey equality, since every tree interns
 * names through the process-wide StringTable), remaps metric ids
 * through a combined MetricRegistry, and merges
 * per-node RunningStat accumulators with the parallel-Welford combine —
 * so the merged tree is exactly what a single profiler observing all the
 * runs would have built. The operation is associative and commutative up
 * to floating-point rounding, which lets ingestion merge in any order.
 */

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "profiler/profile_db.h"
#include "service/deadline.h"

namespace dc::common {
class Executor;
} // namespace dc::common

namespace dc::service {

/**
 * Fold one profile's metadata into a running agreement intersection:
 * a key survives iff every folded profile carried it with one value —
 * exactly CctMerger::finish()'s rule, factored out so the parallel
 * reduction and the corpus view's incremental refresh share it. Seed
 * @p agreed with the first profile's metadata, then fold the rest.
 */
void intersectMetadataWith(
    std::map<std::string, std::string> &agreed,
    const std::map<std::string, std::string> &meta);

/** Incremental multi-run CCT/profile merger. */
class CctMerger
{
  public:
    CctMerger();

    /**
     * Merge one run's profile into the accumulated result. Panics on a
     * profile that fails ProfileDb::validate (its stats could silently
     * land on the wrong metric otherwise).
     * @param run_id Recorded into the result's "merged_runs" metadata.
     */
    void add(const prof::ProfileDb &profile, const std::string &run_id);

    /**
     * add() minus the validation walk, for profiles already validated
     * at a trust boundary — the QueryEngine uses this for store-held
     * profiles (every ingestion path validates), so read queries do
     * not revalidate the corpus on every merge.
     */
    void addPrevalidated(const prof::ProfileDb &profile,
                         const std::string &run_id);

    /** Number of profiles merged so far. */
    std::size_t runCount() const { return run_ids_.size(); }

    /**
     * Build the merged ProfileDb and reset the merger. Metadata keys
     * whose values agreed across every input are kept; disagreeing keys
     * are dropped; "merged_runs" holds a comma-joined sorted run-id list.
     */
    std::unique_ptr<prof::ProfileDb> finish();

    /** One-shot convenience over add()+finish(). */
    static std::unique_ptr<prof::ProfileDb>
    mergeAll(const std::vector<const prof::ProfileDb *> &profiles,
             const std::vector<std::string> &run_ids);

    /// Total tree nodes across the inputs below which
    /// mergeAllPrevalidated folds serially regardless of worker count:
    /// task handoff and partial-table reduction cost more than they
    /// save on small merges (the old per-rebuild thread pools lost
    /// ~13% on 1-run merges before this cutover existed).
    static constexpr std::size_t kSerialNodeCutover = 4096;

    /**
     * Merge pre-validated profiles (warehouse trust boundary — every
     * store ingestion path validates) with a parallel tree reduction
     * on the shared executor: the run list is split into contiguous
     * chunks, each chunk is folded into a partial CCT as one pool
     * task, and partials are merged pairwise in parallel rounds until
     * one remains. The merge is associative and commutative up to
     * floating-point rounding, so the result is equivalent to the
     * serial fold — structure and counts identical, double-typed
     * stats equal up to rounding; metric ids and child insertion
     * order may differ (resolve metrics by name when comparing).
     *
     * Adaptive cutover: merges totalling fewer than kSerialNodeCutover
     * tree nodes (or fewer than 2*grain runs) fold serially on the
     * calling thread.
     *
     * @param workers Chunk-width cap; 0 = the executor's pool width.
     * @param grain   Minimum runs per chunk.
     * @param deadline Optional cancellation token, passed explicitly
     *                because pool workers do not inherit the caller's
     *                thread-local ScopedDeadline. Polled at run
     *                granularity; once expired the merge is abandoned
     *                and nullptr returned (callers must treat null as
     *                "no result", never cache it).
     * @param executor Pool to fan out on; null = Executor::global().
     */
    static std::unique_ptr<prof::ProfileDb> mergeAllPrevalidated(
        const std::vector<const prof::ProfileDb *> &profiles,
        const std::vector<std::string> &run_ids, std::size_t workers = 0,
        std::size_t grain = 4, const Deadline *deadline = nullptr,
        common::Executor *executor = nullptr);

  private:
    /// The accumulator tree, created on the first add() so it adopts
    /// that profile's string table — within-store merges then unify
    /// frames by direct id equality with no translation; a later
    /// foreign-table profile goes through mergeFrom's translating
    /// path. finish() on an empty merger falls back to the global
    /// table.
    std::unique_ptr<prof::Cct> cct_;
    prof::MetricRegistry metrics_;
    std::map<std::string, std::string> metadata_;
    /// Keys that disagreed between inputs (dropped at finish()).
    std::set<std::string> metadata_conflict_;
    std::vector<std::string> run_ids_;
};

} // namespace dc::service

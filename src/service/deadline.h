#pragma once

/**
 * @file
 * Compatibility shim: Deadline/ScopedDeadline moved to
 * common/deadline.h so the shared executor (common/executor.h) can
 * propagate deadlines without depending on the service layer. The
 * service-namespace names below keep every existing caller compiling
 * unchanged; new code may use either namespace — they alias the same
 * types and the same thread-local token.
 */

#include "common/deadline.h"

namespace dc::service {

using common::Deadline;
using common::deadlineExpired;
using common::ScopedDeadline;

} // namespace dc::service

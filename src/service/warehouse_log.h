#pragma once

/**
 * @file
 * The warehouse's durable run log: an append-only, checksummed segment
 * log that makes a ProfileStore's corpus survive process restarts.
 *
 * Every successful ingest appends one framed record carrying the run id
 * and the run's serialized profile text; every erase appends a
 * tombstone. On construction the store replays the segments in order
 * and rebuilds the corpus; a crash mid-append leaves a torn final
 * record, which replay detects (length + checksum framing) and drops —
 * every complete preceding record is recovered.
 *
 * Frame format (one record, all bytes verbatim — no escaping needed
 * because the header carries explicit lengths):
 *
 *     rec\t<run|del>\t<id_len>\t<payload_len>\t<fnv1a64 hex>\n
 *     <run_id bytes><payload bytes>\n
 *
 * The checksum (FNV-1a 64) covers the header metadata — kind and both
 * length fields, as written — plus run id plus payload, so a record
 * that frames correctly but was bit-flipped on disk (including a
 * same-length kind or length corruption) is skipped (counted as
 * corrupt) instead of poisoning the corpus.
 *
 * Segments (`segment-NNNNNN.dclog`) roll over at a size threshold so no
 * single file grows without bound. Tombstones and superseded appends
 * accumulate as dead bytes; compact() folds them away by replaying the
 * log into a single fresh segment (written atomically via temp +
 * rename, so a crash mid-compaction leaves the old segments intact)
 * and deleting the old ones. Replay applies records last-wins per run
 * id, which makes a crash between the compacted segment's rename and
 * the old segments' deletion harmless: the overlap replays to the same
 * corpus.
 *
 * Concurrency: appends, compaction, and the stats accessors are
 * internally serialized; replay() must complete before the first
 * append (the ProfileStore replays in its constructor, before its
 * worker pool starts). All failures are reported through bool + error
 * strings — an unwritable or corrupt data directory must degrade the
 * service, never abort it.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dc::service {

/** Append-only segment log of (run id, serialized profile) records. */
class WarehouseLog
{
  public:
    struct Options {
        /// Directory holding the segment files (created if missing).
        std::string dir;
        /// Rollover threshold: an append that finds the active segment
        /// at or past this size starts a new segment first.
        std::uint64_t max_segment_bytes = 64ull << 20;
        /// fsync each appended record: durable against OS/power
        /// failure, not just process crash. Off, records still hit the
        /// kernel on every append (process-crash-safe) but may be lost
        /// by a host failure.
        bool sync = true;
        /// Auto-compaction floor (maybeAutoCompact): fold dead records
        /// away once they exceed this many bytes and outweigh the live
        /// ones.
        std::uint64_t auto_compact_min_dead_bytes = 8ull << 20;
    };

    /** One replayed record. */
    struct Record {
        enum class Kind { kRun, kErase } kind = Kind::kRun;
        std::string run_id;
        std::string text; ///< Serialized profile (kRun only).
    };

    /** What replay() found. */
    struct ReplayStats {
        std::uint64_t run_records = 0;   ///< Run appends streamed.
        std::uint64_t erase_records = 0; ///< Tombstones streamed.
        /// Fully-framed records whose checksum did not match — skipped.
        std::uint64_t corrupt_records = 0;
        /// Bytes of unparseable segment interior skipped (framing
        /// breakage in a non-final segment; checksum-failed payloads).
        std::uint64_t skipped_bytes = 0;
        /// The final segment ended mid-record — the crash-mid-append
        /// signature. The torn bytes are truncated away so the next
        /// append starts on a clean frame boundary.
        bool torn_tail = false;
        std::uint64_t segments = 0; ///< Segment files read.
    };

    WarehouseLog() = default;
    ~WarehouseLog();

    WarehouseLog(const WarehouseLog &) = delete;
    WarehouseLog &operator=(const WarehouseLog &) = delete;

    /**
     * Bind to @p options.dir: create it if needed, scan the existing
     * segments, and clean up temp files a crashed compaction left
     * behind. Call replay() next — appends are refused until the
     * existing records have been streamed.
     */
    bool open(Options options, std::string *error = nullptr);

    /**
     * Stream every surviving record, oldest first, into @p cb. The
     * caller applies them in order with last-wins semantics per run id
     * (a later append for the same id replaces, a tombstone removes).
     * Returns false only on an I/O error reading a segment; torn tails
     * and corrupt records are reported through @p stats, not failure.
     */
    bool replay(const std::function<void(Record)> &cb,
                ReplayStats *stats = nullptr,
                std::string *error = nullptr);

    /** Append a run record. */
    bool appendRun(const std::string &run_id, const std::string &text,
                   std::string *error = nullptr);

    /** Append an erase tombstone for @p run_id. */
    bool appendErase(const std::string &run_id,
                     std::string *error = nullptr);

    /**
     * Fold dead records away: replay the current segments, write every
     * surviving record into one fresh segment (atomic temp + rename),
     * and delete the old segments. Appends block for the duration.
     * @return Bytes of dead record data folded away (0 when there was
     * nothing dead or on failure — failure leaves the old segments
     * fully intact and is reported through @p error).
     */
    std::uint64_t compact(std::string *error = nullptr);

    /**
     * compact() when dead bytes have crossed the configured floor and
     * outweigh the live ones. Cheap when there is nothing to do; the
     * store calls this after erase tombstones and ingest appends, so
     * the check runs at least as often as segments roll over.
     */
    std::uint64_t maybeAutoCompact(std::string *error = nullptr);

    /** Bytes of live (latest, non-tombstoned) record frames. */
    std::uint64_t liveBytes() const;

    /** Bytes of dead record frames (tombstoned, superseded, torn). */
    std::uint64_t deadBytes() const;

    /** Number of segment files. */
    std::size_t segmentCount() const;

    /** Record fsyncs completed (0 when Options::sync is off). */
    std::uint64_t fsyncCount() const;

    const std::string &dir() const { return dir_; }

  private:
    /// Requires mutex_ held.
    bool appendLocked(Record::Kind kind, const std::string &run_id,
                      const std::string &text, std::string *error);
    bool openActiveLocked(std::string *error);
    void closeActiveLocked();
    std::uint64_t compactLocked(std::string *error);
    std::string segmentPath(std::uint64_t index) const;

    /**
     * Parse @p data (one segment's bytes) record by record into @p cb
     * (record, frame bytes). Pure: no member state is touched, so both
     * replay and compaction can parse. Stops at the first record it
     * cannot frame and returns that byte offset; the caller decides
     * whether the leftover is a torn tail (final segment) or mid-log
     * corruption.
     */
    static std::size_t
    parseSegment(const std::string &data,
                 const std::function<void(Record, std::uint64_t)> &cb,
                 ReplayStats *stats);

    /// Accounts one streamed record into live_/dead_ (last-wins).
    void accountRecord(const Record &record, std::uint64_t frame_bytes);

    mutable std::mutex mutex_;
    Options options_;
    std::string dir_;
    bool opened_ = false;
    bool replayed_ = false;
    std::vector<std::uint64_t> segments_; ///< Sorted segment indices.
    std::uint64_t active_index_ = 1;
    std::uint64_t active_bytes_ = 0;
    int fd_ = -1;

    /// run id -> frame bytes of its latest live record.
    std::map<std::string, std::uint64_t> live_;
    std::uint64_t live_bytes_ = 0;
    std::uint64_t dead_bytes_ = 0;
    std::uint64_t fsync_count_ = 0;
};

} // namespace dc::service

#pragma once

/**
 * @file
 * The warehouse's durable run log: an append-only, checksummed segment
 * log plus snapshot checkpoints that together make a ProfileStore's
 * corpus survive process restarts in O(corpus) recovery time.
 *
 * Every successful ingest appends one framed record carrying the run id
 * and the run's serialized profile text; every erase appends a
 * tombstone. On construction the store replays the newest checkpoint
 * (if any) and then the segments past it, rebuilding the corpus; a
 * crash mid-append leaves a torn final record, which replay detects
 * (length + checksum framing) and drops — every complete preceding
 * record is recovered.
 *
 * Frame format (one record, all bytes verbatim — no escaping needed
 * because the header carries explicit lengths):
 *
 *     rec\t<run|del>\t<id_len>\t<payload_len>\t<fnv1a64 hex>\n
 *     <run_id bytes><payload bytes>\n
 *
 * The checksum (FNV-1a 64) covers the header metadata — kind and both
 * length fields, as written — plus run id plus payload, so a record
 * that frames correctly but was bit-flipped on disk (including a
 * same-length kind or length corruption) is skipped (counted as
 * corrupt) instead of poisoning the corpus.
 *
 * Group commit: appends are split into a write step (appendRunAsync /
 * appendEraseAsync — frame lands in the active segment, a commit
 * sequence number comes back) and a durability step (sync(seq) —
 * returns once every record up to seq is fsynced). The first waiter
 * that finds no fsync in flight becomes the leader and issues one
 * fsync covering *every* record written so far; waiters that queued
 * while that fsync was in flight are covered by the next leader's
 * single fsync. Under concurrent ingestion one fsync therefore
 * retires a whole batch of appends — the fsync-per-append durability
 * tax amortizes away while every ack still waits for its own record
 * to be on disk. appendRun/appendErase keep the one-call
 * write-then-sync behavior.
 *
 * Checkpoints (`checkpoint-NNNNNN.dcck`): a checkpoint with cut index
 * C is an atomically-written (temp + fsync + rename) file of run
 * records that captures the entire live corpus as of the moment the
 * log rolled to segment C; it covers — and retires — every segment
 * with index < C. Replay parses the newest checkpoint first, then the
 * segments >= C, so recovery cost is proportional to the corpus, not
 * to the append/erase history. beginCheckpointCut() rolls the active
 * segment and returns C; the store snapshots its shards (while
 * holding off ingest/erase), serializes them into frames (frameRun),
 * and hands them to commitCheckpoint(), which writes the file and
 * deletes the retired segments and the previous checkpoint. A crash
 * anywhere in between is harmless: before the rename the old
 * checkpoint + full segment chain still replay; after it, replaying
 * the new checkpoint plus any not-yet-deleted old files folds to the
 * same corpus (last-wins per run id), and open() sweeps the stale
 * files away.
 *
 * compact() is checkpoint-from-log: it folds the current checkpoint +
 * segments (read back from disk, so it cannot race an insert that was
 * already logged) into a fresh checkpoint, dropping tombstones and
 * superseded appends. maybeAutoCompact() triggers it once dead bytes
 * cross a floor and outweigh live ones.
 *
 * Concurrency: appends, syncs, checkpointing, compaction, and the
 * stats accessors are internally serialized (the group-commit fsync
 * itself runs outside the lock); replay() must complete before the
 * first append (the ProfileStore replays in its constructor, before
 * its worker pool starts). All failures are reported through bool +
 * error strings — an unwritable or corrupt data directory must
 * degrade the service, never abort it. Fault edges (write, fsync,
 * checkpoint write/commit/truncate, open) carry named failpoints
 * (common/failpoint.h) that the crash-torture harness sweeps.
 */

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dc::service {

/** Append-only segment log of (run id, serialized profile) records. */
class WarehouseLog
{
  public:
    struct Options {
        /// Directory holding the segment files (created if missing).
        std::string dir;
        /// Rollover threshold: an append that finds the active segment
        /// at or past this size starts a new segment first.
        std::uint64_t max_segment_bytes = 64ull << 20;
        /// fsync appended records (via sync(), group-committed):
        /// durable against OS/power failure, not just process crash.
        /// Off, records still hit the kernel on every append
        /// (process-crash-safe) but may be lost by a host failure.
        bool sync = true;
        /// Auto-compaction floor (maybeAutoCompact): fold dead records
        /// away once they exceed this many bytes and outweigh the live
        /// ones.
        std::uint64_t auto_compact_min_dead_bytes = 8ull << 20;
    };

    /** One replayed record. */
    struct Record {
        enum class Kind { kRun, kErase } kind = Kind::kRun;
        std::string run_id;
        std::string text; ///< Serialized profile (kRun only).
    };

    /** What replay() found. */
    struct ReplayStats {
        std::uint64_t run_records = 0;   ///< Run appends streamed
                                         ///< (checkpoint + segments).
        std::uint64_t erase_records = 0; ///< Tombstones streamed.
        /// Run records streamed from the checkpoint file alone — a
        /// large value with few segment records is the O(corpus)
        /// recovery shape checkpoints exist for.
        std::uint64_t checkpoint_records = 0;
        /// Fully-framed records whose checksum did not match — skipped.
        std::uint64_t corrupt_records = 0;
        /// Bytes of unparseable segment interior skipped (framing
        /// breakage in a non-final segment; checksum-failed payloads).
        std::uint64_t skipped_bytes = 0;
        /// The final segment ended mid-record — the crash-mid-append
        /// signature. The torn bytes are truncated away so the next
        /// append starts on a clean frame boundary.
        bool torn_tail = false;
        std::uint64_t segments = 0; ///< Segment files read.
    };

    WarehouseLog() = default;
    ~WarehouseLog();

    WarehouseLog(const WarehouseLog &) = delete;
    WarehouseLog &operator=(const WarehouseLog &) = delete;

    /**
     * Bind to @p options.dir: create it if needed, scan the existing
     * checkpoint + segments, and sweep stale files — temp files a
     * crashed atomic write left behind, checkpoints superseded by a
     * newer one, segments retired by the newest checkpoint whose
     * deletion a crash interrupted. Call replay() next — appends are
     * refused until the existing records have been streamed.
     */
    bool open(Options options, std::string *error = nullptr);

    /**
     * Stream every surviving record — the newest checkpoint's first,
     * then the segments past its cut, oldest first — into @p cb. The
     * caller applies them in order with last-wins semantics per run id
     * (a later append for the same id replaces, a tombstone removes).
     * Returns false only on an I/O error reading a file; torn tails
     * and corrupt records are reported through @p stats, not failure.
     */
    bool replay(const std::function<void(Record)> &cb,
                ReplayStats *stats = nullptr,
                std::string *error = nullptr);

    /** Append a run record and sync() it (one-call durability). */
    bool appendRun(const std::string &run_id, const std::string &text,
                   std::string *error = nullptr);

    /** Append an erase tombstone for @p run_id and sync() it. */
    bool appendErase(const std::string &run_id,
                     std::string *error = nullptr);

    /**
     * Write a run record without waiting for durability. On success
     * @p seq receives the record's commit sequence — pass it to
     * sync() to wait for (group-committed) durability.
     */
    bool appendRunAsync(const std::string &run_id,
                        const std::string &text, std::uint64_t *seq,
                        std::string *error = nullptr);

    /** Write an erase tombstone without waiting for durability. */
    bool appendEraseAsync(const std::string &run_id, std::uint64_t *seq,
                          std::string *error = nullptr);

    /**
     * Block until every record with commit sequence <= @p seq is
     * durable (group commit: one leader fsync covers every waiter
     * that queued while the previous fsync was in flight). Returns
     * immediately when Options::sync is off, when @p seq is 0, or
     * when the records are already durable. On an fsync failure every
     * waiter whose record the failed fsync covered gets the error —
     * such records may or may not be on disk; the store re-appends
     * them on re-attach (replay folds duplicates last-wins).
     */
    bool sync(std::uint64_t seq, std::string *error = nullptr);

    /**
     * Start a checkpoint: flush and roll the active segment, and
     * return the cut index C — the new checkpoint will cover every
     * segment with index < C. The caller must snapshot its corpus
     * *after* this returns (and before allowing further mutations it
     * wants covered) and then call commitCheckpoint(C, frames).
     * @return C, or 0 on failure.
     */
    std::uint64_t beginCheckpointCut(std::string *error = nullptr);

    /**
     * Atomically write the checkpoint file for cut @p C from @p frames
     * (concatenated frameRun() records), then delete the previous
     * checkpoint and every segment with index < C. Failure before the
     * atomic rename leaves the old checkpoint + segments fully
     * authoritative.
     */
    bool commitCheckpoint(std::uint64_t C, const std::string &frames,
                          std::string *error = nullptr);

    /** Frame one run record — checkpoint frames are built from these. */
    static std::string frameRun(const std::string &run_id,
                                const std::string &text);

    /**
     * Fold dead records away: replay the checkpoint + segments from
     * disk, write every surviving run into a fresh checkpoint (atomic
     * temp + rename), and delete the old files. Appends block for the
     * duration. @return Bytes of dead record data folded away (0 when
     * there was nothing dead or on failure — failure leaves the old
     * files fully intact and is reported through @p error).
     */
    std::uint64_t compact(std::string *error = nullptr);

    /**
     * compact() when dead bytes have crossed the configured floor and
     * outweigh the live ones. Cheap when there is nothing to do; the
     * store calls this after erase tombstones and ingest appends, so
     * the check runs at least as often as segments roll over.
     */
    std::uint64_t maybeAutoCompact(std::string *error = nullptr);

    /** Bytes of live (latest, non-tombstoned) record frames. */
    std::uint64_t liveBytes() const;

    /** Bytes of dead record frames (tombstoned, superseded, torn). */
    std::uint64_t deadBytes() const;

    /** Number of segment files (excludes the checkpoint). */
    std::size_t segmentCount() const;

    /** Cut index of the current checkpoint (0 = none). */
    std::uint64_t checkpointIndex() const;

    /**
     * Bytes of segment data replay would have to parse past the
     * checkpoint — the store's checkpoint-trigger metric: once the
     * tail outgrows a threshold, a fresh checkpoint caps recovery
     * back to O(corpus).
     */
    std::uint64_t tailBytes() const;

    /** fsyncs completed (0 when Options::sync is off). */
    std::uint64_t fsyncCount() const;

    const std::string &dir() const { return dir_; }

  private:
    /// All require mutex_ held (unique_lock where they may wait).
    bool appendRecordLocked(std::unique_lock<std::mutex> &lock,
                            Record::Kind kind, const std::string &run_id,
                            const std::string &text, std::uint64_t *seq,
                            std::string *error);
    bool openActiveLocked(std::string *error);
    void closeActiveLocked();
    /// Wait out an in-flight group-commit fsync (it holds fd_).
    void drainSyncLocked(std::unique_lock<std::mutex> &lock);
    /// drainSync + fsync any written-but-unsynced records so fd_ can
    /// be closed without stranding sync() waiters. A flush failure
    /// fails those waiters (failed_upto_), never the caller.
    void flushActiveLocked(std::unique_lock<std::mutex> &lock);
    /// Adopt checkpoint @p C: delete the previous checkpoint and the
    /// segments it retires, and reset the tail accounting.
    void adoptCheckpointLocked(std::uint64_t C);
    std::uint64_t compactLocked(std::unique_lock<std::mutex> &lock,
                                std::string *error);
    std::string segmentPath(std::uint64_t index) const;
    std::string checkpointPath(std::uint64_t index) const;

    /**
     * Parse @p data (one segment's bytes) record by record into @p cb
     * (record, frame bytes). Pure: no member state is touched, so both
     * replay and compaction can parse. Stops at the first record it
     * cannot frame and returns that byte offset; the caller decides
     * whether the leftover is a torn tail (final segment) or mid-log
     * corruption.
     */
    static std::size_t
    parseSegment(const std::string &data,
                 const std::function<void(Record, std::uint64_t)> &cb,
                 ReplayStats *stats);

    /// Accounts one streamed record into live_/dead_ (last-wins).
    void accountRecord(const Record &record, std::uint64_t frame_bytes);

    mutable std::mutex mutex_;
    Options options_;
    std::string dir_;
    bool opened_ = false;
    bool replayed_ = false;
    std::vector<std::uint64_t> segments_; ///< Sorted segment indices.
    std::uint64_t active_index_ = 1;
    std::uint64_t active_bytes_ = 0;
    std::uint64_t checkpoint_index_ = 0; ///< 0 = no checkpoint.
    int fd_ = -1;

    // Group-commit state. Commit sequences count successful record
    // writes; durable_seq_ trails written_seq_ until a leader fsync
    // catches it up. failed_upto_ poisons the range a failed fsync
    // covered so its waiters see the error.
    std::condition_variable sync_cv_;
    std::uint64_t written_seq_ = 0;
    std::uint64_t durable_seq_ = 0;
    std::uint64_t failed_upto_ = 0;
    bool sync_in_flight_ = false;
    std::string last_sync_error_;

    /// run id -> frame bytes of its latest live record.
    std::map<std::string, std::uint64_t> live_;
    std::uint64_t live_bytes_ = 0;
    std::uint64_t dead_bytes_ = 0;
    /// Segment bytes past the checkpoint (replay's parse burden).
    std::uint64_t tail_bytes_ = 0;
    std::uint64_t fsync_count_ = 0;
};

} // namespace dc::service

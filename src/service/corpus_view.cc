#include "service/corpus_view.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/trace_span.h"
#include "service/cct_merger.h"
#include "service/deadline.h"

namespace dc::service {

namespace {

obs::SpanSite s_rebuild_span{"view.rebuild"};
obs::SpanSite s_refresh_span{"view.refresh"};

obs::Counter &
viewHitCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("view.hit");
    return counter;
}

/**
 * Metric-id translation from a run's registry into the view's merged
 * registry (index = run id). Every run metric is present in the view
 * registry by construction — the view registry was built by merging
 * the runs' registries.
 */
std::vector<int>
remapInto(const prof::MetricRegistry &view_metrics,
          const prof::MetricRegistry &run_metrics)
{
    std::vector<int> remap;
    remap.reserve(run_metrics.size());
    for (const std::string &name : run_metrics.allNames()) {
        const int id = view_metrics.find(name);
        DC_CHECK(id >= 0, "view registry is missing run metric '", name,
                 "' — view and run set are out of sync");
        remap.push_back(id);
    }
    return remap;
}

/// Escaped key/value append for signature(): separators cannot be
/// forged from user metadata values.
void
appendSigField(std::string &sig, const std::string &text)
{
    for (char c : text) {
        if (c == '\\' || c == '\x1e' || c == '\x1f')
            sig.push_back('\\');
        sig.push_back(c);
    }
    sig.push_back('\x1f');
}

} // namespace

CorpusView::CorpusView(const ProfileStore &store, Options options)
    : store_(store), options_(options)
{
    DC_CHECK(options_.max_views > 0, "view cache needs capacity");
}

std::string
CorpusView::signature(const QueryFilter &filter,
                      const std::string &exclude_run)
{
    std::string sig;
    appendSigField(sig, filter.framework);
    appendSigField(sig, filter.platform);
    appendSigField(sig, filter.model);
    for (const auto &[key, value] : filter.metadata) { // sorted (map)
        appendSigField(sig, key);
        appendSigField(sig, value);
    }
    sig.push_back('\x1e');
    appendSigField(sig, exclude_run);
    return sig;
}

std::shared_ptr<CorpusView::Entry>
CorpusView::entryFor(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        it = entries_.emplace(key, std::make_shared<Entry>()).first;
    it->second->last_used = ++use_counter_;
    // LRU eviction beyond capacity (never the entry just requested).
    // A builder still holding an evicted entry's shared_ptr finishes
    // harmlessly on the orphan; its result is simply rebuilt next time.
    while (entries_.size() > options_.max_views) {
        auto victim = entries_.end();
        for (auto cur = entries_.begin(); cur != entries_.end(); ++cur) {
            if (cur == it)
                continue;
            if (victim == entries_.end() ||
                cur->second->last_used < victim->second->last_used) {
                victim = cur;
            }
        }
        if (victim == entries_.end())
            break;
        entries_.erase(victim);
        ++stats_.evictions;
    }
    return it->second;
}

std::shared_ptr<const CorpusView::View>
CorpusView::acquire(const QueryFilter &filter,
                    const std::string &exclude_run) const
{
    const std::shared_ptr<Entry> entry =
        entryFor(signature(filter, exclude_run));
    std::lock_guard<std::mutex> entry_lock(entry->mutex);

    // Read the digest before snapshotting: runs published after this
    // read are deliberately left for the next acquire, which will see
    // a larger generation and refresh incrementally.
    const ProfileStore::Generation generation = store_.generation();
    if (entry->view != nullptr && entry->generation == generation) {
        viewHitCounter().add();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hits;
        return entry->view;
    }

    const bool can_refresh =
        entry->view != nullptr && !entry->view->run_ids.empty() &&
        entry->generation.erased == generation.erased &&
        entry->generation.compacted == generation.compacted &&
        generation.ingested >= entry->generation.ingested;
    if (can_refresh) {
        auto fresh = store_.snapshotRange(entry->generation.ingested,
                                          generation.ingested);
        std::erase_if(fresh, [&](const auto &run) {
            return run.first == exclude_run ||
                   !filter.matches(run.second->metadata());
        });
        if (fresh.empty()) {
            // Generation moved but nothing new matches this view —
            // record the new digest so the next acquire is a pure hit.
            entry->generation = generation;
            viewHitCounter().add();
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
            return entry->view;
        }
        auto refreshed = buildIncremental(*entry->view, fresh);
        if (refreshed == nullptr)
            return nullptr; // deadline expired; stale view kept as-is
        entry->view = std::move(refreshed);
        entry->generation = generation;
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.incremental;
        return entry->view;
    }

    auto built = buildFull(filter, exclude_run, generation);
    if (built == nullptr) {
        // Deadline expired mid-build. The entry keeps whatever it had
        // (possibly nothing); the abandoned partial is never cached,
        // so a later acquire rebuilds from a clean slate.
        return nullptr;
    }
    entry->view = std::move(built);
    entry->generation = generation;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.rebuilds;
    }
    return entry->view;
}

std::shared_ptr<const CorpusView::View>
CorpusView::buildFull(const QueryFilter &filter,
                      const std::string &exclude_run,
                      const ProfileStore::Generation &generation) const
{
    obs::ObsSpan span(s_rebuild_span, generation.ingested);
    // The merge interns (at least "<root>") into the store's table;
    // hold the guard its compactNames() quiesces interning with.
    const auto intern_guard = store_.internGuard();
    auto selected = store_.snapshotRange(0, generation.ingested);
    std::erase_if(selected, [&](const auto &run) {
        return run.first == exclude_run ||
               !filter.matches(run.second->metadata());
    });

    std::vector<const prof::ProfileDb *> profiles;
    std::vector<std::string> run_ids;
    profiles.reserve(selected.size());
    run_ids.reserve(selected.size());
    for (const auto &[run_id, profile] : selected) {
        profiles.push_back(profile.get());
        run_ids.push_back(run_id);
    }

    // The caller's deadline token (unset outside a server request).
    // The parallel reduction's workers cannot see the thread-local, so
    // it crosses by pointer; the index loop below polls it directly.
    const Deadline deadline = ScopedDeadline::current();
    auto view = std::make_shared<View>();
    view->db = CctMerger::mergeAllPrevalidated(
        profiles, run_ids, options_.merge_workers, options_.merge_grain,
        deadline.valid() ? &deadline : nullptr);
    if (view->db == nullptr)
        return nullptr; // merge abandoned at the deadline
    view->run_ids = std::move(run_ids);
    for (std::size_t i = 0; i < selected.size(); ++i) {
        if (deadline.expired())
            return nullptr;
        indexRun(view->kernels, *selected[i].second,
                 view->db->metrics(),
                 static_cast<std::uint32_t>(i + 1));
    }
    return view;
}

std::shared_ptr<const CorpusView::View>
CorpusView::buildIncremental(
    const View &base,
    const std::vector<std::pair<
        std::string, std::shared_ptr<const prof::ProfileDb>>> &fresh)
    const
{
    obs::ObsSpan span(s_refresh_span, fresh.size());
    // Clone the materialized prefix, then fold only the new runs onto
    // it — the merge is associative/commutative, so this equals a
    // from-scratch merge of the whole selection (up to FP rounding).
    const auto intern_guard = store_.internGuard();
    std::unique_ptr<prof::Cct> cct = base.db->cct().clone();
    prof::MetricRegistry metrics = base.db->metrics();
    std::map<std::string, std::string> metadata = base.db->metadata();
    metadata.erase("merged_runs"); // recomputed below

    const Deadline deadline = ScopedDeadline::current();
    for (const auto &[run_id, profile] : fresh) {
        (void)run_id;
        if (deadline.expired())
            return nullptr; // abandoned; caller keeps the stale view
        const std::vector<int> remap =
            metrics.mergeFrom(profile->metrics());
        cct->mergeFrom(profile->cct(), remap);
        intersectMetadataWith(metadata, profile->metadata());
    }

    auto view = std::make_shared<View>();
    view->run_ids = base.run_ids;
    for (const auto &[run_id, profile] : fresh) {
        (void)profile;
        view->run_ids.push_back(run_id);
    }
    std::sort(view->run_ids.begin(), view->run_ids.end());
    metadata["merged_runs"] = join(view->run_ids, ",");
    view->db = std::make_shared<prof::ProfileDb>(
        std::move(cct), std::move(metrics), std::move(metadata));

    view->kernels = base.kernels; // one flat vector copy
    std::uint32_t run_mark =
        static_cast<std::uint32_t>(base.run_ids.size());
    for (const auto &[run_id, profile] : fresh) {
        (void)run_id;
        if (deadline.expired())
            return nullptr;
        indexRun(view->kernels, *profile, view->db->metrics(),
                 ++run_mark);
    }
    return view;
}

void
CorpusView::indexRun(FlatIdTable<KernelStat> &kernels,
                     const prof::ProfileDb &run,
                     const prof::MetricRegistry &view_metrics,
                     std::uint32_t run_mark)
{
    const std::vector<int> remap =
        remapInto(view_metrics, run.metrics());

    // Direct child-chain recursion: this walks every node of every
    // selected run on (re)build, so no per-node std::function.
    const auto walk = [&](const auto &self,
                          const prof::CctNode &node) -> void {
        if (node.kind() == dlmon::FrameKind::kKernel) {
            for (const auto &[metric_id, stat] : node.metrics()) {
                if (stat.count() == 0)
                    continue;
                const std::uint64_t key = FlatIdTable<KernelStat>::pack(
                    node.key().name_id,
                    remap[static_cast<std::size_t>(metric_id)]);
                KernelStat &agg = kernels.slot(key);
                agg.total += stat.sum();
                agg.samples += stat.count();
                if (agg.last_run_mark != run_mark) {
                    agg.last_run_mark = run_mark;
                    ++agg.runs;
                }
            }
        }
        for (const prof::CctNode *child = node.firstChild();
             child != nullptr; child = child->nextSibling()) {
            self(self, *child);
        }
    };
    walk(walk, run.cct().root());
}

void
CorpusView::invalidateAll() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

CorpusView::Stats
CorpusView::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace dc::service

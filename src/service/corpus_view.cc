#include "service/corpus_view.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/executor.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/lock_wait.h"
#include "obs/trace_span.h"
#include "service/cct_merger.h"
#include "service/deadline.h"

namespace dc::service {

namespace {

obs::SpanSite s_rebuild_span{"view.rebuild"};
obs::SpanSite s_refresh_span{"view.refresh"};

obs::Counter &
viewHitCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("view.hit");
    return counter;
}

obs::Histogram &
stripeWaitHistogram()
{
    static obs::Histogram hist = obs::MetricsRegistry::global().histogram(
        "view.lock.stripe.wait_us");
    return hist;
}

obs::Histogram &
entryWaitHistogram()
{
    static obs::Histogram hist = obs::MetricsRegistry::global().histogram(
        "view.lock.entry.wait_us");
    return hist;
}

/**
 * Metric-id translation from a run's registry into the view's merged
 * registry (index = run id). Every run metric is present in the view
 * registry by construction — the view registry was built by merging
 * the runs' registries.
 */
std::vector<int>
remapInto(const prof::MetricRegistry &view_metrics,
          const prof::MetricRegistry &run_metrics)
{
    std::vector<int> remap;
    remap.reserve(run_metrics.size());
    for (const std::string &name : run_metrics.allNames()) {
        const int id = view_metrics.find(name);
        DC_CHECK(id >= 0, "view registry is missing run metric '", name,
                 "' — view and run set are out of sync");
        remap.push_back(id);
    }
    return remap;
}

/// Escaped key/value append for signature(): separators cannot be
/// forged from user metadata values.
void
appendSigField(std::string &sig, const std::string &text)
{
    for (char c : text) {
        if (c == '\\' || c == '\x1e' || c == '\x1f')
            sig.push_back('\\');
        sig.push_back(c);
    }
    sig.push_back('\x1f');
}

} // namespace

CorpusView::CorpusView(const ProfileStore &store, Options options)
    : store_(store), options_(options)
{
    DC_CHECK(options_.max_views > 0, "view cache needs capacity");
    const std::size_t stripes =
        std::max<std::size_t>(options_.stripes, 1);
    stripes_.reserve(stripes);
    for (std::size_t i = 0; i < stripes; ++i)
        stripes_.push_back(std::make_unique<Stripe>());
}

std::string
CorpusView::signature(const QueryFilter &filter,
                      const std::string &exclude_run)
{
    std::string sig;
    appendSigField(sig, filter.framework);
    appendSigField(sig, filter.platform);
    appendSigField(sig, filter.model);
    for (const auto &[key, value] : filter.metadata) { // sorted (map)
        appendSigField(sig, key);
        appendSigField(sig, value);
    }
    sig.push_back('\x1e');
    appendSigField(sig, exclude_run);
    return sig;
}

CorpusView::Stripe &
CorpusView::stripeFor(const std::string &key) const
{
    return *stripes_[std::hash<std::string>{}(key) % stripes_.size()];
}

std::shared_ptr<CorpusView::Entry>
CorpusView::entryFor(const std::string &key) const
{
    Stripe &stripe = stripeFor(key);
    std::shared_ptr<Entry> entry;
    {
        obs::WaitMeteredLock<std::mutex> lock(stripe.mutex,
                                              stripeWaitHistogram());
        auto it = stripe.entries.find(key);
        if (it == stripe.entries.end()) {
            it = stripe.entries.emplace(key, std::make_shared<Entry>())
                     .first;
            entry_count_.fetch_add(1, std::memory_order_relaxed);
        }
        entry = it->second;
    }
    entry->last_used.store(
        use_counter_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    // LRU eviction beyond capacity (never the entry just requested) —
    // outside the stripe lock, since the sweep locks every stripe. A
    // builder still holding an evicted entry's shared_ptr finishes
    // harmlessly on the orphan; its result is simply rebuilt next time.
    if (entry_count_.load(std::memory_order_relaxed) >
        options_.max_views) {
        evictOverflow(entry.get());
    }
    return entry;
}

void
CorpusView::evictOverflow(const Entry *keep) const
{
    // All-stripe lock in index order (the only multi-stripe path, so
    // no ordering conflicts). Eviction is rare — the cache has to be
    // over capacity — so the global sweep never sits on the hot path.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(stripes_.size());
    for (const auto &stripe : stripes_)
        locks.emplace_back(stripe->mutex);
    std::size_t count = 0;
    for (const auto &stripe : stripes_)
        count += stripe->entries.size();
    while (count > options_.max_views) {
        Stripe *victim_stripe = nullptr;
        std::map<std::string, std::shared_ptr<Entry>>::iterator victim;
        std::uint64_t oldest = ~0ull;
        for (const auto &stripe : stripes_) {
            for (auto cur = stripe->entries.begin();
                 cur != stripe->entries.end(); ++cur) {
                if (cur->second.get() == keep)
                    continue;
                const std::uint64_t used =
                    cur->second->last_used.load(
                        std::memory_order_relaxed);
                if (victim_stripe == nullptr || used < oldest) {
                    victim_stripe = stripe.get();
                    victim = cur;
                    oldest = used;
                }
            }
        }
        if (victim_stripe == nullptr)
            break;
        victim_stripe->entries.erase(victim);
        entry_count_.fetch_sub(1, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        --count;
    }
}

std::shared_ptr<const CorpusView::View>
CorpusView::acquire(const QueryFilter &filter,
                    const std::string &exclude_run) const
{
    const std::shared_ptr<Entry> entry =
        entryFor(signature(filter, exclude_run));
    // Builder serialization per signature: waits here mean concurrent
    // queries stacked behind one cold rebuild — the histogram makes
    // that visible.
    obs::WaitMeteredLock<std::mutex> entry_lock(entry->mutex,
                                                entryWaitHistogram());

    // Read the digest before snapshotting: runs published after this
    // read are deliberately left for the next acquire, which will see
    // a larger generation and refresh incrementally.
    const ProfileStore::Generation generation = store_.generation();
    if (entry->view != nullptr && entry->generation == generation) {
        viewHitCounter().add();
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry->view;
    }

    const bool can_refresh =
        entry->view != nullptr && !entry->view->run_ids.empty() &&
        entry->generation.erased == generation.erased &&
        entry->generation.compacted == generation.compacted &&
        generation.ingested >= entry->generation.ingested;
    if (can_refresh) {
        auto fresh = store_.snapshotRange(entry->generation.ingested,
                                          generation.ingested);
        std::erase_if(fresh, [&](const auto &run) {
            return run.first == exclude_run ||
                   !filter.matches(run.second->metadata());
        });
        if (fresh.empty()) {
            // Generation moved but nothing new matches this view —
            // record the new digest so the next acquire is a pure hit.
            entry->generation = generation;
            viewHitCounter().add();
            hits_.fetch_add(1, std::memory_order_relaxed);
            return entry->view;
        }
        auto refreshed = buildIncremental(*entry->view, fresh);
        if (refreshed == nullptr)
            return nullptr; // deadline expired; stale view kept as-is
        entry->view = std::move(refreshed);
        entry->generation = generation;
        incremental_.fetch_add(1, std::memory_order_relaxed);
        return entry->view;
    }

    auto built = buildFull(filter, exclude_run, generation);
    if (built == nullptr) {
        // Deadline expired mid-build. The entry keeps whatever it had
        // (possibly nothing); the abandoned partial is never cached,
        // so a later acquire rebuilds from a clean slate.
        return nullptr;
    }
    entry->view = std::move(built);
    entry->generation = generation;
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    return entry->view;
}

std::shared_ptr<const CorpusView::View>
CorpusView::buildFull(const QueryFilter &filter,
                      const std::string &exclude_run,
                      const ProfileStore::Generation &generation) const
{
    obs::ObsSpan span(s_rebuild_span, generation.ingested);
    // The merge interns (at least "<root>") into the store's table;
    // hold the guard its compactNames() quiesces interning with.
    const auto intern_guard = store_.internGuard();
    auto selected = store_.snapshotRange(0, generation.ingested);
    std::erase_if(selected, [&](const auto &run) {
        return run.first == exclude_run ||
               !filter.matches(run.second->metadata());
    });

    std::vector<const prof::ProfileDb *> profiles;
    std::vector<std::string> run_ids;
    profiles.reserve(selected.size());
    run_ids.reserve(selected.size());
    for (const auto &[run_id, profile] : selected) {
        profiles.push_back(profile.get());
        run_ids.push_back(run_id);
    }

    // The caller's deadline token (unset outside a server request).
    // Pool workers cannot see the thread-local, so it crosses by
    // pointer (the merge) and via TaskGroup (the aggregation below).
    const Deadline deadline = ScopedDeadline::current();
    common::Executor &exec = executor();
    auto view = std::make_shared<View>();
    view->db = CctMerger::mergeAllPrevalidated(
        profiles, run_ids, options_.merge_workers, options_.merge_grain,
        deadline.valid() ? &deadline : nullptr, &exec);
    if (view->db == nullptr)
        return nullptr; // merge abandoned at the deadline
    view->run_ids = std::move(run_ids);

    // Parallel flat-table aggregation: chunks build partial kernel
    // tables on the pool, then one reduction folds them together.
    // Chunks keep the serial path's global run ordinals (i + 1) as
    // their dedup marks, so marks stay globally unique and a later
    // incremental refresh (which continues from run_ids.size()) can
    // never collide with them.
    const std::size_t index_grain =
        std::max<std::size_t>(options_.index_grain, 1);
    const std::size_t chunks =
        std::min(exec.threads() + 1, selected.size() / index_grain);
    if (chunks >= 2) {
        std::vector<FlatIdTable<KernelStat>> parts(chunks);
        common::TaskGroup group(exec, deadline);
        for (std::size_t c = 0; c < chunks; ++c) {
            group.submit([&, c] {
                const std::size_t begin = c * selected.size() / chunks;
                const std::size_t end =
                    (c + 1) * selected.size() / chunks;
                for (std::size_t i = begin; i < end; ++i) {
                    if (group.cancelled())
                        return;
                    if (deadline.expired()) {
                        // A chunk abandoned mid-run would leave a
                        // partial table; cancelling the group makes
                        // the whole build abandon below.
                        group.cancel();
                        return;
                    }
                    indexRun(parts[c], *selected[i].second,
                             view->db->metrics(),
                             static_cast<std::uint32_t>(i + 1));
                }
            });
        }
        group.wait();
        if (group.cancelled() || deadline.expired())
            return nullptr;
        for (const FlatIdTable<KernelStat> &part : parts) {
            part.forEach([&](std::uint64_t key,
                             const KernelStat &stat) {
                KernelStat &agg = view->kernels.slot(key);
                agg.total += stat.total;
                agg.samples += stat.samples;
                agg.runs += stat.runs;
                // Keep the largest mark so refresh ordinals stay
                // strictly above every mark already in the table.
                agg.last_run_mark =
                    std::max(agg.last_run_mark, stat.last_run_mark);
            });
        }
        return view;
    }

    for (std::size_t i = 0; i < selected.size(); ++i) {
        if (deadline.expired())
            return nullptr;
        indexRun(view->kernels, *selected[i].second,
                 view->db->metrics(),
                 static_cast<std::uint32_t>(i + 1));
    }
    return view;
}

std::shared_ptr<const CorpusView::View>
CorpusView::buildIncremental(
    const View &base,
    const std::vector<std::pair<
        std::string, std::shared_ptr<const prof::ProfileDb>>> &fresh)
    const
{
    obs::ObsSpan span(s_refresh_span, fresh.size());
    // Clone the materialized prefix, then fold only the new runs onto
    // it — the merge is associative/commutative, so this equals a
    // from-scratch merge of the whole selection (up to FP rounding).
    const auto intern_guard = store_.internGuard();
    std::unique_ptr<prof::Cct> cct = base.db->cct().clone();
    prof::MetricRegistry metrics = base.db->metrics();
    std::map<std::string, std::string> metadata = base.db->metadata();
    metadata.erase("merged_runs"); // recomputed below

    const Deadline deadline = ScopedDeadline::current();
    for (const auto &[run_id, profile] : fresh) {
        (void)run_id;
        if (deadline.expired())
            return nullptr; // abandoned; caller keeps the stale view
        const std::vector<int> remap =
            metrics.mergeFrom(profile->metrics());
        cct->mergeFrom(profile->cct(), remap);
        intersectMetadataWith(metadata, profile->metadata());
    }

    auto view = std::make_shared<View>();
    view->run_ids = base.run_ids;
    for (const auto &[run_id, profile] : fresh) {
        (void)profile;
        view->run_ids.push_back(run_id);
    }
    std::sort(view->run_ids.begin(), view->run_ids.end());
    metadata["merged_runs"] = join(view->run_ids, ",");
    view->db = std::make_shared<prof::ProfileDb>(
        std::move(cct), std::move(metrics), std::move(metadata));

    view->kernels = base.kernels; // one flat vector copy
    std::uint32_t run_mark =
        static_cast<std::uint32_t>(base.run_ids.size());
    for (const auto &[run_id, profile] : fresh) {
        (void)run_id;
        if (deadline.expired())
            return nullptr;
        indexRun(view->kernels, *profile, view->db->metrics(),
                 ++run_mark);
    }
    return view;
}

void
CorpusView::indexRun(FlatIdTable<KernelStat> &kernels,
                     const prof::ProfileDb &run,
                     const prof::MetricRegistry &view_metrics,
                     std::uint32_t run_mark)
{
    const std::vector<int> remap =
        remapInto(view_metrics, run.metrics());

    // Direct child-chain recursion: this walks every node of every
    // selected run on (re)build, so no per-node std::function.
    const auto walk = [&](const auto &self,
                          const prof::CctNode &node) -> void {
        if (node.kind() == dlmon::FrameKind::kKernel) {
            for (const auto &[metric_id, stat] : node.metrics()) {
                if (stat.count() == 0)
                    continue;
                const std::uint64_t key = FlatIdTable<KernelStat>::pack(
                    node.key().name_id,
                    remap[static_cast<std::size_t>(metric_id)]);
                KernelStat &agg = kernels.slot(key);
                agg.total += stat.sum();
                agg.samples += stat.count();
                if (agg.last_run_mark != run_mark) {
                    agg.last_run_mark = run_mark;
                    ++agg.runs;
                }
            }
        }
        for (const prof::CctNode *child = node.firstChild();
             child != nullptr; child = child->nextSibling()) {
            self(self, *child);
        }
    };
    walk(walk, run.cct().root());
}

void
CorpusView::invalidateAll() const
{
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(stripes_.size());
    for (const auto &stripe : stripes_)
        locks.emplace_back(stripe->mutex);
    for (const auto &stripe : stripes_)
        stripe->entries.clear();
    entry_count_.store(0, std::memory_order_relaxed);
}

CorpusView::Stats
CorpusView::stats() const
{
    Stats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.incremental = incremental_.load(std::memory_order_relaxed);
    out.rebuilds = rebuilds_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    return out;
}

} // namespace dc::service

#pragma once

/**
 * @file
 * Materialized corpus views: the warehouse's query-serving fast path.
 *
 * Every read query over a run selection ultimately wants the same two
 * artifacts — the merged ProfileDb of the selection and an id-keyed
 * per-kernel aggregate table. Before this layer, the QueryEngine
 * rebuilt both from scratch on every call: O(corpus) per query, which
 * cannot serve repeated fleet-level queries. CorpusView materializes
 * them once per filter signature and keeps them fresh cheaply:
 *
 *  - **Cache keying.** A view is keyed by the canonical signature of
 *    its QueryFilter (named fields + sorted metadata constraints) plus
 *    an optional excluded run id (for run-vs-corpus diffs). Entries are
 *    evicted least-recently-used beyond Options::max_views. The entry
 *    map is striped by signature hash — the hot lookup takes one
 *    stripe mutex (wait-metered into "view.lock.stripe.wait_us"), and
 *    only the rare over-capacity eviction sweeps all stripes — so
 *    concurrent queries for distinct signatures never serialize on
 *    one cache lock.
 *
 *  - **Generation invalidation.** ProfileStore keeps a monotonic
 *    Generation digest (publication low-water mark + erase count).
 *    acquire() compares the digest against the one the cached view was
 *    built at — equal means "corpus unchanged, serve the cached view"
 *    with no snapshotting at all.
 *
 *  - **Incremental refresh.** When only new runs arrived, the cached
 *    merged tree is cloned and *only the newly-published runs* are
 *    merged in (CctMerger's operation is associative and commutative,
 *    so folding late arrivals onto the materialized prefix yields the
 *    same result as re-merging everything). The kernel table is copied
 *    flat and the new runs' kernels folded on top. Cost scales with
 *    the delta, not the corpus.
 *
 *  - **Parallel full rebuild.** First touch, eviction, or an erase
 *    (merged stats are not invertible) rebuilds from scratch via
 *    CctMerger::mergeAllPrevalidated's pairwise tree reduction on the
 *    shared executor, and the per-kernel flat-table aggregation fans
 *    out the same way (chunked partial tables, reduced once at the
 *    end) — a cold topKernels uses every core twice over.
 *
 * Views are immutable once published and handed out as shared_ptr, so
 * queries hold a consistent view while ingestion, invalidation, and
 * eviction proceed concurrently.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/string_table.h"
#include "profiler/profile_db.h"
#include "service/profile_store.h"
#include "service/query_filter.h"

namespace dc::gui {
struct FlameNode;
} // namespace dc::gui

namespace dc::service {

/** Materialized-view cache over a ProfileStore. */
class CorpusView
{
  public:
    struct Options {
        /// Cached views kept before least-recently-used eviction.
        std::size_t max_views = 8;
        /// Chunk-width cap for parallel full rebuilds; 0 = the
        /// executor's pool width.
        std::size_t merge_workers = 0;
        /// Minimum runs per reduction chunk (below 2x this, rebuilds
        /// fold serially; CctMerger::kSerialNodeCutover also applies).
        std::size_t merge_grain = 4;
        /// Mutex stripes for the entry map (clamped to >= 1).
        std::size_t stripes = 8;
        /// Minimum runs per parallel kernel-aggregation chunk; below
        /// 2x this a cold build indexes runs serially.
        std::size_t index_grain = 8;
        /// Pool rebuild work fans out on; null = Executor::global().
        common::Executor *executor = nullptr;
    };

    /**
     * One kernel's aggregate for one metric, keyed in View::kernels by
     * FlatIdTable::pack(kernel name id, view metric id).
     */
    struct KernelStat {
        double total = 0.0;        ///< Summed metric over paths/runs.
        std::uint64_t samples = 0; ///< Aggregated sample count.
        std::uint32_t runs = 0;    ///< Runs the kernel appeared in
                                   ///< (with this metric).
        /// Build-internal run dedup mark (a kernel name recurs across
        /// call paths within one run); ordinals keep increasing across
        /// incremental refreshes, so copied tables never need resets.
        std::uint32_t last_run_mark = 0;
    };

    /**
     * One materialized selection; immutable once published, except the
     * internally-synchronized flame cache (filled lazily by the
     * QueryEngine's flame-graph exports).
     */
    struct View {
        /// Merged profile of the selection (CctMerger semantics:
        /// agreeing metadata kept, "merged_runs" sorted id list).
        std::shared_ptr<const prof::ProfileDb> db;
        /// Sorted ids of the merged runs.
        std::vector<std::string> run_ids;
        /// Per-(kernel name id, metric id) aggregates over the
        /// selection — metric ids are db->metrics() ids.
        FlatIdTable<KernelStat> kernels;
        /// Rendered flame graphs keyed by a FlameGraphOptions
        /// signature, built once per (view, options): repeated GUI
        /// exports of an unchanged corpus skip the FlameNode rebuild.
        /// Invalidation rides the view lifecycle — any generation or
        /// compaction change replaces the whole view. Guarded by
        /// flame_mutex.
        mutable std::mutex flame_mutex;
        mutable std::map<std::string,
                         std::shared_ptr<const gui::FlameNode>>
            flame_cache;
    };

    /** Cache behavior counters (testing and bench visibility). */
    struct Stats {
        std::uint64_t hits = 0;        ///< Served without rebuilding.
        std::uint64_t incremental = 0; ///< Refreshed with new runs only.
        std::uint64_t rebuilds = 0;    ///< Full (cold) materializations.
        std::uint64_t evictions = 0;   ///< LRU evictions.
    };

    explicit CorpusView(const ProfileStore &store)
        : CorpusView(store, Options{})
    {
    }
    CorpusView(const ProfileStore &store, Options options);

    CorpusView(const CorpusView &) = delete;
    CorpusView &operator=(const CorpusView &) = delete;

    /**
     * The materialized view for @p filter (minus @p exclude_run if
     * non-empty), fresh as of some store generation at or after entry.
     * Builds, refreshes, or serves the cache as needed; concurrent
     * acquires of the same signature serialize on the entry (one
     * build, everyone shares it) while distinct signatures proceed
     * independently.
     *
     * Honors the calling thread's ScopedDeadline (deadline.h): a
     * rebuild or refresh that outlives the deadline is abandoned and
     * acquire returns nullptr — the partial result is never cached,
     * and any previously cached view stays untouched for callers
     * without a deadline. Cache hits never return null.
     */
    std::shared_ptr<const View>
    acquire(const QueryFilter &filter,
            const std::string &exclude_run = {}) const;

    /** Drop every cached view (bench cold-path measurement). */
    void invalidateAll() const;

    Stats stats() const;

    /** Canonical cache key for (@p filter, @p exclude_run). */
    static std::string signature(const QueryFilter &filter,
                                 const std::string &exclude_run);

  private:
    /// One cache slot; the entry mutex serializes builders for the
    /// signature and guards view/generation. last_used is atomic so
    /// touches never take more than the owning stripe's lock while
    /// the eviction sweep reads it under all stripes' locks.
    struct Entry {
        std::mutex mutex;
        std::shared_ptr<const View> view;
        ProfileStore::Generation generation{};
        std::atomic<std::uint64_t> last_used{0};
    };

    /// One shard of the entry map; keyed lookups lock exactly one.
    struct Stripe {
        mutable std::mutex mutex;
        std::map<std::string, std::shared_ptr<Entry>> entries;
    };

    Stripe &stripeFor(const std::string &key) const;
    std::shared_ptr<Entry> entryFor(const std::string &key) const;
    /// Evict global-LRU entries (never @p keep) until the cache fits
    /// max_views again; locks every stripe, in index order.
    void evictOverflow(const Entry *keep) const;
    common::Executor &executor() const
    {
        return options_.executor != nullptr
                   ? *options_.executor
                   : common::Executor::global();
    }

    std::shared_ptr<const View>
    buildFull(const QueryFilter &filter, const std::string &exclude_run,
              const ProfileStore::Generation &generation) const;

    std::shared_ptr<const View>
    buildIncremental(
        const View &base,
        const std::vector<
            std::pair<std::string,
                      std::shared_ptr<const prof::ProfileDb>>> &fresh)
        const;

    /** Fold one run's kernel aggregates into @p kernels. */
    static void
    indexRun(FlatIdTable<KernelStat> &kernels,
             const prof::ProfileDb &run,
             const prof::MetricRegistry &view_metrics,
             std::uint32_t run_mark);

    const ProfileStore &store_;
    Options options_;

    mutable std::vector<std::unique_ptr<Stripe>> stripes_;
    mutable std::atomic<std::uint64_t> use_counter_{0};
    /// Entries across all stripes (capacity check without locking).
    mutable std::atomic<std::size_t> entry_count_{0};
    // Stats cells are atomics so the hot path never shares a cache
    // lock just to count a hit.
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> incremental_{0};
    mutable std::atomic<std::uint64_t> rebuilds_{0};
    mutable std::atomic<std::uint64_t> evictions_{0};
};

} // namespace dc::service

#include "service/warehouse_log.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/failpoint.h"
#include "common/fs.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/trace_span.h"

namespace dc::service {

namespace {

constexpr const char *kSegmentPrefix = "segment-";
constexpr const char *kSegmentSuffix = ".dclog";
constexpr const char *kCheckpointPrefix = "checkpoint-";
constexpr const char *kCheckpointSuffix = ".dcck";

obs::SpanSite s_append_span{"wal.append"};
obs::SpanSite s_compact_span{"wal.compact"};

// Fault edges the crash-torture harness sweeps. The write and fsync
// sites cooperate with error/torn actions below; every site doubles as
// a kill point (the eval itself dies).
failpoint::Site s_fp_wal_open{"wal.open"};
failpoint::Site s_fp_wal_write{"wal.append.write"};
failpoint::Site s_fp_wal_fsync{"wal.append.fsync"};
failpoint::Site s_fp_ckpt_write{"wal.checkpoint.write"};
failpoint::Site s_fp_ckpt_commit{"wal.checkpoint.commit"};
failpoint::Site s_fp_ckpt_truncate{"wal.checkpoint.truncate"};

obs::Counter &
appendFailedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("wal.append.failed");
    return counter;
}

obs::Counter &
fsyncCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("wal.fsync.count");
    return counter;
}

obs::Counter &
checkpointCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("wal.checkpoint.count");
    return counter;
}

/**
 * FNV-1a 64 over the header metadata (kind + both length fields, as
 * written) plus run id plus payload. Covering the header matters: a
 * bit-flip that turns "run" into "del" (same length, framing intact)
 * or compensating length corruption would otherwise checksum
 * identically and replay as a valid — wrong — record.
 */
std::uint64_t
recordChecksum(const std::string &meta, const std::string &run_id,
               const std::string &text)
{
    std::uint64_t hash = 1469598103934665603ull;
    const auto fold = [&hash](const std::string &s) {
        for (const unsigned char c : s) {
            hash ^= c;
            hash *= 1099511628211ull;
        }
    };
    fold(meta);
    fold(run_id);
    fold(text);
    return hash;
}

/** The checksummed header middle: `<run|del>\t<id_len>\t<payload_len>`. */
std::string
recordMeta(WarehouseLog::Record::Kind kind, std::size_t id_len,
           std::size_t payload_len)
{
    return strformat("%s\t%zu\t%zu",
                     kind == WarehouseLog::Record::Kind::kRun ? "run"
                                                              : "del",
                     id_len, payload_len);
}

/** Whole-field numeric parse (no trailing garbage). */
template <typename T>
bool
parseField(const std::string &field, T *out, int base = 10)
{
    const char *begin = field.data();
    const char *end = begin + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out, base);
    return ec == std::errc() && ptr == end && !field.empty();
}

std::string
frameRecord(WarehouseLog::Record::Kind kind, const std::string &run_id,
            const std::string &text)
{
    const std::string meta =
        recordMeta(kind, run_id.size(), text.size());
    std::string frame = "rec\t" + meta +
                        strformat("\t%016llx\n",
                                  static_cast<unsigned long long>(
                                      recordChecksum(meta, run_id,
                                                     text)));
    frame += run_id;
    frame += text;
    frame += '\n';
    return frame;
}

bool
writeAll(int fd, const char *at, std::size_t remaining,
         std::string *error)
{
    while (remaining > 0) {
        const ::ssize_t wrote = ::write(fd, at, remaining);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            if (error != nullptr)
                *error = std::string("log write failed: ") +
                         std::strerror(errno);
            return false;
        }
        at += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
    return true;
}

} // namespace

WarehouseLog::~WarehouseLog()
{
    std::unique_lock<std::mutex> lock(mutex_);
    // One last flush so a clean shutdown leaves nothing only in the
    // page cache; failures here have no waiter left to report to.
    flushActiveLocked(lock);
    closeActiveLocked();
}

std::string
WarehouseLog::segmentPath(std::uint64_t index) const
{
    return dir_ + "/" +
           strformat("%s%06llu%s", kSegmentPrefix,
                     static_cast<unsigned long long>(index),
                     kSegmentSuffix);
}

std::string
WarehouseLog::checkpointPath(std::uint64_t index) const
{
    return dir_ + "/" +
           strformat("%s%06llu%s", kCheckpointPrefix,
                     static_cast<unsigned long long>(index),
                     kCheckpointSuffix);
}

std::string
WarehouseLog::frameRun(const std::string &run_id, const std::string &text)
{
    return frameRecord(Record::Kind::kRun, run_id, text);
}

bool
WarehouseLog::open(Options options, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (opened_) {
        if (error != nullptr)
            *error = "log already open on " + dir_;
        return false;
    }
    const failpoint::Eval fp = s_fp_wal_open.eval();
    if (fp.fired()) {
        errno = fp.error_errno;
        if (error != nullptr)
            *error = "cannot open log dir " + options.dir + ": " +
                     std::strerror(errno);
        return false;
    }
    if (!ensureDir(options.dir, error))
        return false;
    std::vector<std::string> names;
    if (!listDir(options.dir, &names, error))
        return false;

    segments_.clear();
    std::vector<std::uint64_t> checkpoints;
    for (const std::string &name : names) {
        // A crashed atomic write (compaction, checkpoint, profile
        // save into the data dir) can leave a temp file behind; it
        // was never renamed into place, so its contents are dead.
        if (contains(name, ".tmp.")) {
            removeFile(options.dir + "/" + name);
            continue;
        }
        const auto indexOf = [&name](const char *prefix,
                                     const char *suffix,
                                     std::uint64_t *out) {
            if (!startsWith(name, prefix) || !endsWith(name, suffix))
                return false;
            const std::string digits = name.substr(
                std::strlen(prefix), name.size() - std::strlen(prefix) -
                                         std::strlen(suffix));
            return parseField(digits, out);
        };
        std::uint64_t index = 0;
        if (indexOf(kSegmentPrefix, kSegmentSuffix, &index))
            segments_.push_back(index);
        else if (indexOf(kCheckpointPrefix, kCheckpointSuffix, &index))
            checkpoints.push_back(index);
    }
    std::sort(segments_.begin(), segments_.end());
    std::sort(checkpoints.begin(), checkpoints.end());
    checkpoint_index_ = checkpoints.empty() ? 0 : checkpoints.back();

    // Sweep files the newest checkpoint superseded — a crash between
    // its rename and the old files' deletion leaves both behind; the
    // overlap would replay to the same corpus, but carrying it
    // forward grows the dir without bound.
    for (const std::uint64_t ck : checkpoints) {
        if (ck != checkpoint_index_) {
            removeFile(options.dir + "/" +
                       strformat("%s%06llu%s", kCheckpointPrefix,
                                 static_cast<unsigned long long>(ck),
                                 kCheckpointSuffix));
        }
    }
    std::vector<std::uint64_t> keep;
    for (const std::uint64_t seg : segments_) {
        if (seg < checkpoint_index_) {
            removeFile(options.dir + "/" +
                       strformat("%s%06llu%s", kSegmentPrefix,
                                 static_cast<unsigned long long>(seg),
                                 kSegmentSuffix));
        } else {
            keep.push_back(seg);
        }
    }
    segments_ = std::move(keep);
    active_index_ =
        segments_.empty() ? std::max<std::uint64_t>(checkpoint_index_, 1)
                          : segments_.back();
    options_ = std::move(options);
    dir_ = options_.dir;
    opened_ = true;
    return true;
}

std::size_t
WarehouseLog::parseSegment(
    const std::string &data,
    const std::function<void(Record, std::uint64_t)> &cb,
    ReplayStats *stats)
{
    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos)
            break; // incomplete header: torn tail
        const std::vector<std::string> fields =
            split(data.substr(pos, nl - pos), '\t');
        std::uint64_t id_len = 0;
        std::uint64_t payload_len = 0;
        std::uint64_t checksum = 0;
        if (fields.size() != 5 || fields[0] != "rec" ||
            (fields[1] != "run" && fields[1] != "del") ||
            !parseField(fields[2], &id_len) ||
            !parseField(fields[3], &payload_len) ||
            !parseField(fields[4], &checksum, 16)) {
            break; // malformed header: cannot resync past it
        }
        const std::size_t body = nl + 1;
        if (id_len > data.size() || payload_len > data.size() ||
            body + id_len + payload_len + 1 > data.size()) {
            break; // declared body extends past the file: torn tail
        }
        const std::size_t end = body + id_len + payload_len + 1;
        if (data[end - 1] != '\n')
            break; // header lied about the lengths: cannot resync
        Record record;
        record.kind = fields[1] == "run" ? Record::Kind::kRun
                                         : Record::Kind::kErase;
        record.run_id = data.substr(body, id_len);
        record.text = data.substr(body + id_len, payload_len);
        // Reconstructed from the raw field bytes (the writer always
        // emits canonical numbers), so header corruption the framing
        // happened to survive still fails the checksum.
        const std::string meta =
            fields[1] + "\t" + fields[2] + "\t" + fields[3];
        if (recordChecksum(meta, record.run_id, record.text) !=
            checksum) {
            // Framing is intact, the payload is not: skip exactly this
            // record. Its bytes are dead weight until compaction.
            if (stats != nullptr) {
                ++stats->corrupt_records;
                stats->skipped_bytes += end - pos;
            }
            pos = end;
            continue;
        }
        if (stats != nullptr) {
            if (record.kind == Record::Kind::kRun)
                ++stats->run_records;
            else
                ++stats->erase_records;
        }
        cb(std::move(record), end - pos);
        pos = end;
    }
    return pos;
}

void
WarehouseLog::accountRecord(const Record &record,
                            std::uint64_t frame_bytes)
{
    auto it = live_.find(record.run_id);
    if (record.kind == Record::Kind::kRun) {
        if (it != live_.end()) {
            // Superseded append (compaction-overlap replay).
            dead_bytes_ += it->second;
            live_bytes_ -= it->second;
            it->second = frame_bytes;
        } else {
            live_.emplace(record.run_id, frame_bytes);
        }
        live_bytes_ += frame_bytes;
    } else {
        if (it != live_.end()) {
            dead_bytes_ += it->second + frame_bytes;
            live_bytes_ -= it->second;
            live_.erase(it);
        } else {
            dead_bytes_ += frame_bytes;
        }
    }
}

bool
WarehouseLog::replay(const std::function<void(Record)> &cb,
                     ReplayStats *stats, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!opened_ || replayed_) {
        if (error != nullptr)
            *error = !opened_ ? "log not open"
                              : "log already replayed";
        return false;
    }
    ReplayStats local;
    if (checkpoint_index_ != 0) {
        const std::string path = checkpointPath(checkpoint_index_);
        std::string data;
        if (!readFile(path, &data, error))
            return false;
        ReplayStats from_checkpoint;
        const std::size_t stop = parseSegment(
            data,
            [&](Record record, std::uint64_t frame_bytes) {
                accountRecord(record, frame_bytes);
                cb(std::move(record));
            },
            &from_checkpoint);
        if (stop < data.size()) {
            // Checkpoints land via atomic temp + rename, so a short
            // parse is disk corruption, not a torn write: the
            // remainder is skipped (runs only in that remainder are
            // lost — their segments were retired at the cut).
            ++from_checkpoint.corrupt_records;
            from_checkpoint.skipped_bytes += data.size() - stop;
            DC_WARN("warehouse checkpoint ", path, ": skipped ",
                    data.size() - stop, " unparseable bytes");
        }
        local.run_records += from_checkpoint.run_records;
        local.erase_records += from_checkpoint.erase_records;
        local.corrupt_records += from_checkpoint.corrupt_records;
        local.skipped_bytes += from_checkpoint.skipped_bytes;
        local.checkpoint_records = from_checkpoint.run_records;
        dead_bytes_ += from_checkpoint.skipped_bytes;
    }
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const bool final_segment = i + 1 == segments_.size();
        const std::string path = segmentPath(segments_[i]);
        std::string data;
        if (!readFile(path, &data, error))
            return false;
        ++local.segments;
        const std::uint64_t skipped_before = local.skipped_bytes;
        const std::size_t stop = parseSegment(
            data,
            [&](Record record, std::uint64_t frame_bytes) {
                accountRecord(record, frame_bytes);
                cb(std::move(record));
            },
            &local);
        // Checksum-corrupt records stay on disk until compaction.
        dead_bytes_ += local.skipped_bytes - skipped_before;
        if (stop >= data.size()) {
            tail_bytes_ += data.size();
            continue;
        }
        if (final_segment) {
            // Crash-mid-append artifact: drop the torn record so the
            // next append starts on a clean frame boundary.
            local.torn_tail = true;
            if (::truncate(path.c_str(),
                           static_cast<::off_t>(stop)) != 0) {
                if (error != nullptr) {
                    *error = "cannot truncate torn tail of " + path +
                             ": " + std::strerror(errno);
                }
                return false;
            }
            tail_bytes_ += stop;
            DC_WARN("warehouse log ", path, ": dropped torn tail (",
                    data.size() - stop, " bytes)");
        } else {
            // Framing breakage inside an older segment: everything up
            // to the breakage was applied; the rest of this segment is
            // skipped and later segments still replay.
            ++local.corrupt_records;
            local.skipped_bytes += data.size() - stop;
            dead_bytes_ += data.size() - stop;
            tail_bytes_ += data.size();
            DC_WARN("warehouse log ", path, ": skipped ",
                    data.size() - stop,
                    " unparseable bytes mid-log");
        }
    }
    replayed_ = true;
    if (stats != nullptr)
        *stats = local;
    return true;
}

bool
WarehouseLog::openActiveLocked(std::string *error)
{
    const std::string path = segmentPath(active_index_);
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        if (error != nullptr) {
            *error = "cannot open log segment " + path + ": " +
                     std::strerror(errno);
        }
        return false;
    }
    struct ::stat st {};
    active_bytes_ = ::fstat(fd_, &st) == 0
                        ? static_cast<std::uint64_t>(st.st_size)
                        : 0;
    if (segments_.empty() || segments_.back() != active_index_) {
        segments_.push_back(active_index_);
        // A freshly created file can vanish in a power cut if its
        // directory entry was never persisted — record fsyncs alone
        // would then protect bytes in a file that no longer exists.
        if (options_.sync)
            syncDir(dir_);
    }
    return true;
}

void
WarehouseLog::closeActiveLocked()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
WarehouseLog::drainSyncLocked(std::unique_lock<std::mutex> &lock)
{
    sync_cv_.wait(lock, [this] { return !sync_in_flight_; });
}

void
WarehouseLog::flushActiveLocked(std::unique_lock<std::mutex> &lock)
{
    drainSyncLocked(lock);
    if (!options_.sync || fd_ < 0 || durable_seq_ >= written_seq_)
        return;
    // Inline fsync *under* the lock: callers are about to close fd_,
    // so holding appends off for the duration is the point.
    const std::uint64_t target = written_seq_;
    const failpoint::Eval fp = s_fp_wal_fsync.eval();
    if (fp.fired())
        errno = fp.error_errno;
    if (!fp.fired() && ::fsync(fd_) == 0) {
        durable_seq_ = std::max(durable_seq_, target);
        ++fsync_count_;
        fsyncCounter().add();
    } else {
        failed_upto_ = std::max(failed_upto_, target);
        last_sync_error_ =
            std::string("log fsync failed: ") + std::strerror(errno);
    }
    sync_cv_.notify_all();
}

bool
WarehouseLog::appendRecordLocked(std::unique_lock<std::mutex> &lock,
                                 Record::Kind kind,
                                 const std::string &run_id,
                                 const std::string &text,
                                 std::uint64_t *seq, std::string *error)
{
    if (!replayed_) {
        if (error != nullptr)
            *error = "log not replayed before append";
        return false;
    }
    for (;;) {
        if (fd_ < 0) {
            if (!openActiveLocked(error)) {
                appendFailedCounter().add();
                return false;
            }
        }
        if (active_bytes_ < options_.max_segment_bytes ||
            active_bytes_ == 0) {
            break;
        }
        // Roll over. Flushing first resolves sync() waiters on the
        // outgoing segment (an fsync after close is impossible); the
        // flush may drop the lock to drain an in-flight group fsync,
        // so re-evaluate everything afterwards.
        const std::uint64_t rolling_from = active_index_;
        flushActiveLocked(lock);
        if (active_index_ != rolling_from || fd_ < 0)
            continue; // another appender rolled while we waited
        closeActiveLocked();
        ++active_index_;
    }
    const std::string frame = frameRecord(kind, run_id, text);
    obs::ObsSpan span(s_append_span, frame.size());
    std::string write_error;
    bool ok;
    const failpoint::Eval fp = s_fp_wal_write.eval();
    if (fp.action == failpoint::Action::kError) {
        ok = false;
        write_error = std::string("log write failed: ") +
                      std::strerror(fp.error_errno);
    } else if (fp.action == failpoint::Action::kShortWrite) {
        // Land the partial frame for real — the exact disk state a
        // crash mid-write leaves — then die there or report the
        // injected error.
        const std::size_t torn =
            std::min<std::size_t>(fp.arg, frame.size());
        writeAll(fd_, frame.data(), torn, &write_error);
        if (fp.kill_after)
            failpoint::killNow(s_fp_wal_write.name());
        ok = false;
        write_error = std::string("log write failed: ") +
                      std::strerror(fp.error_errno);
    } else {
        ok = writeAll(fd_, frame.data(), frame.size(), &write_error);
    }
    if (!ok) {
        appendFailedCounter().add();
        // A partial frame may be on disk (e.g. disk full mid-write).
        // Replay cannot resync past torn bytes, so later successful
        // appends would be silently stranded behind them — cut the
        // segment back to the last good frame boundary; if even that
        // fails, abandon this segment for a fresh one (replay then
        // treats the torn remainder as mid-log corruption in a
        // non-final segment and keeps reading the later segments).
        if (::ftruncate(fd_, static_cast<::off_t>(active_bytes_)) !=
            0) {
            flushActiveLocked(lock);
            closeActiveLocked();
            ++active_index_;
        }
        if (error != nullptr)
            *error = std::move(write_error);
        return false;
    }
    active_bytes_ += frame.size();
    tail_bytes_ += frame.size();
    ++written_seq_;
    if (seq != nullptr)
        *seq = written_seq_;
    Record record;
    record.kind = kind;
    record.run_id = run_id;
    accountRecord(record, frame.size());
    return true;
}

bool
WarehouseLog::sync(std::uint64_t seq, std::string *error)
{
    if (seq == 0)
        return true;
    std::unique_lock<std::mutex> lock(mutex_);
    if (!options_.sync)
        return true;
    for (;;) {
        // Failure check first: after a failed fsync the kernel may
        // have dropped the dirty pages, so a later successful fsync
        // must not retroactively bless records the failure covered —
        // their waiters get the error and the store re-appends them.
        if (failed_upto_ >= seq) {
            if (error != nullptr)
                *error = last_sync_error_;
            return false;
        }
        if (durable_seq_ >= seq)
            return true;
        if (!sync_in_flight_) {
            // Become the leader: one fsync covers every record
            // written so far — including appends that landed while
            // the previous leader's fsync was in flight.
            sync_in_flight_ = true;
            const std::uint64_t target = written_seq_;
            const int fd = fd_;
            lock.unlock();
            const failpoint::Eval fp = s_fp_wal_fsync.eval();
            int rc = 0;
            if (fp.fired()) {
                rc = -1;
                errno = fp.error_errno;
            } else if (fd >= 0) {
                rc = ::fsync(fd);
            }
            const int saved_errno = errno;
            lock.lock();
            sync_in_flight_ = false;
            if (rc == 0) {
                durable_seq_ = std::max(durable_seq_, target);
                ++fsync_count_;
                fsyncCounter().add();
            } else {
                failed_upto_ = std::max(failed_upto_, target);
                last_sync_error_ =
                    std::string("log fsync failed: ") +
                    std::strerror(saved_errno);
            }
            sync_cv_.notify_all();
        } else {
            sync_cv_.wait(lock);
        }
    }
}

bool
WarehouseLog::appendRun(const std::string &run_id,
                        const std::string &text, std::string *error)
{
    std::uint64_t seq = 0;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!appendRecordLocked(lock, Record::Kind::kRun, run_id, text,
                                &seq, error)) {
            return false;
        }
    }
    return sync(seq, error);
}

bool
WarehouseLog::appendErase(const std::string &run_id, std::string *error)
{
    std::uint64_t seq = 0;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!appendRecordLocked(lock, Record::Kind::kErase, run_id, {},
                                &seq, error)) {
            return false;
        }
    }
    return sync(seq, error);
}

bool
WarehouseLog::appendRunAsync(const std::string &run_id,
                             const std::string &text, std::uint64_t *seq,
                             std::string *error)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return appendRecordLocked(lock, Record::Kind::kRun, run_id, text,
                              seq, error);
}

bool
WarehouseLog::appendEraseAsync(const std::string &run_id,
                               std::uint64_t *seq, std::string *error)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return appendRecordLocked(lock, Record::Kind::kErase, run_id, {},
                              seq, error);
}

std::uint64_t
WarehouseLog::beginCheckpointCut(std::string *error)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (!replayed_) {
        if (error != nullptr)
            *error = "log not replayed before checkpoint";
        return 0;
    }
    // Records already written must not be lost if the checkpoint is
    // never committed: flush them, then roll so the cut index covers
    // exactly the segments whose effects the caller's snapshot holds.
    flushActiveLocked(lock);
    if (active_bytes_ > 0) {
        closeActiveLocked();
        ++active_index_;
    }
    return active_index_;
}

bool
WarehouseLog::commitCheckpoint(std::uint64_t C, const std::string &frames,
                               std::string *error)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!replayed_ || C == 0) {
            if (error != nullptr)
                *error = "bad checkpoint cut";
            return false;
        }
    }
    const failpoint::Eval fp = s_fp_ckpt_write.eval();
    if (fp.fired()) {
        errno = fp.error_errno;
        if (error != nullptr)
            *error = std::string("checkpoint write failed: ") +
                     std::strerror(errno);
        return false;
    }
    const std::string path = checkpointPath(C);
    if (!atomicWriteFile(path, frames, error))
        return false; // old checkpoint + segments stay authoritative
    s_fp_ckpt_commit.eval(); // kill: both generations on disk
    std::unique_lock<std::mutex> lock(mutex_);
    if (C <= checkpoint_index_) {
        // A concurrent compaction checkpointed past our cut while the
        // snapshot was being serialized; its file already covers
        // everything ours does. Drop ours (open() would sweep it as
        // stale anyway).
        lock.unlock();
        removeFile(path);
        return true;
    }
    adoptCheckpointLocked(C);
    checkpointCounter().add();
    return true;
}

void
WarehouseLog::adoptCheckpointLocked(std::uint64_t C)
{
    if (checkpoint_index_ != 0 && checkpoint_index_ != C) {
        s_fp_ckpt_truncate.eval(); // kill: old checkpoint survives
        std::string remove_error;
        if (!removeFile(checkpointPath(checkpoint_index_),
                        &remove_error)) {
            DC_WARN("checkpoint adopt: ", remove_error);
        }
    }
    std::vector<std::uint64_t> keep;
    for (const std::uint64_t idx : segments_) {
        if (idx >= C) {
            keep.push_back(idx);
            continue;
        }
        s_fp_ckpt_truncate.eval(); // kill: mid-truncation
        std::string remove_error;
        if (!removeFile(segmentPath(idx), &remove_error))
            DC_WARN("checkpoint adopt: ", remove_error);
    }
    segments_ = std::move(keep);
    checkpoint_index_ = C;
    if (active_index_ < C)
        active_index_ = C;
    // Only the surviving tail still burdens replay.
    std::uint64_t tail = 0;
    for (const std::uint64_t idx : segments_) {
        std::uint64_t size = 0;
        if (fileSize(segmentPath(idx), &size))
            tail += size;
    }
    tail_bytes_ = tail;
    // Dead bytes predating the cut are gone with their segments; any
    // dead weight in the surviving tail is under-counted until future
    // records re-account it — which only delays auto-compaction,
    // never corrupts replay.
    dead_bytes_ = 0;
}

std::uint64_t
WarehouseLog::compactLocked(std::unique_lock<std::mutex> &lock,
                            std::string *error)
{
    if (dead_bytes_ == 0 ||
        (segments_.empty() && checkpoint_index_ == 0)) {
        return 0;
    }
    obs::ObsSpan span(s_compact_span, dead_bytes_);
    flushActiveLocked(lock);
    closeActiveLocked();

    // Fold the log from the log itself: replay checkpoint + segments
    // in memory and keep each run's latest non-tombstoned record.
    // Reading from disk (rather than asking the store for its corpus)
    // means compaction cannot race an insert that was already logged.
    std::vector<Record> order;
    std::map<std::string, std::size_t> index;
    std::uint64_t old_total = 0;
    const auto foldFile = [&](const std::string &path) {
        std::string data;
        if (!readFile(path, &data, error))
            return false;
        old_total += data.size();
        parseSegment(data,
                     [&](Record record, std::uint64_t) {
                         auto it = index.find(record.run_id);
                         if (record.kind == Record::Kind::kErase) {
                             if (it != index.end()) {
                                 order[it->second].run_id.clear();
                                 order[it->second].text.clear();
                                 order[it->second].kind =
                                     Record::Kind::kErase;
                                 index.erase(it);
                             }
                             return;
                         }
                         if (it != index.end()) {
                             order[it->second] = record;
                             return;
                         }
                         index.emplace(record.run_id, order.size());
                         order.push_back(std::move(record));
                     },
                     nullptr);
        return true;
    };
    if (checkpoint_index_ != 0 &&
        !foldFile(checkpointPath(checkpoint_index_))) {
        return 0; // old files untouched
    }
    for (const std::uint64_t idx : segments_) {
        if (!foldFile(segmentPath(idx)))
            return 0; // old files untouched
    }

    std::string buffer;
    std::map<std::string, std::uint64_t> new_live;
    std::uint64_t new_live_bytes = 0;
    for (const Record &record : order) {
        if (record.kind != Record::Kind::kRun)
            continue;
        const std::string frame = frameRecord(
            Record::Kind::kRun, record.run_id, record.text);
        new_live.emplace(record.run_id, frame.size());
        new_live_bytes += frame.size();
        buffer += frame;
    }
    const std::uint64_t C = active_index_ + 1;
    const failpoint::Eval fp = s_fp_ckpt_write.eval();
    if (fp.fired()) {
        errno = fp.error_errno;
        if (error != nullptr)
            *error = std::string("checkpoint write failed: ") +
                     std::strerror(errno);
        return 0;
    }
    if (!atomicWriteFile(checkpointPath(C), buffer, error))
        return 0; // old files untouched
    s_fp_ckpt_commit.eval(); // kill: both generations on disk
    // From here the fresh checkpoint is durable; a crash before the
    // deletes below replays old + new, which last-wins-folds to the
    // same corpus.
    adoptCheckpointLocked(C);
    active_index_ = C;
    active_bytes_ = 0;
    live_ = std::move(new_live);
    live_bytes_ = new_live_bytes;
    dead_bytes_ = 0;
    // Every written record was either folded into the fsynced
    // checkpoint or superseded by one that was — all durable now.
    durable_seq_ = std::max(durable_seq_, written_seq_);
    checkpointCounter().add();
    sync_cv_.notify_all();
    return old_total > buffer.size() ? old_total - buffer.size() : 0;
}

std::uint64_t
WarehouseLog::compact(std::string *error)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return compactLocked(lock, error);
}

std::uint64_t
WarehouseLog::maybeAutoCompact(std::string *error)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (dead_bytes_ < options_.auto_compact_min_dead_bytes ||
        dead_bytes_ < live_bytes_) {
        return 0;
    }
    return compactLocked(lock, error);
}

std::uint64_t
WarehouseLog::liveBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return live_bytes_;
}

std::uint64_t
WarehouseLog::deadBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dead_bytes_;
}

std::uint64_t
WarehouseLog::fsyncCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fsync_count_;
}

std::size_t
WarehouseLog::segmentCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return segments_.size();
}

std::uint64_t
WarehouseLog::checkpointIndex() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return checkpoint_index_;
}

std::uint64_t
WarehouseLog::tailBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tail_bytes_;
}

} // namespace dc::service

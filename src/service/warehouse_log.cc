#include "service/warehouse_log.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fs.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/trace_span.h"

namespace dc::service {

namespace {

constexpr const char *kSegmentPrefix = "segment-";
constexpr const char *kSegmentSuffix = ".dclog";

obs::SpanSite s_append_span{"wal.append"};
obs::SpanSite s_compact_span{"wal.compact"};

obs::Counter &
appendFailedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("wal.append.failed");
    return counter;
}

obs::Counter &
fsyncCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("wal.fsync.count");
    return counter;
}

/**
 * FNV-1a 64 over the header metadata (kind + both length fields, as
 * written) plus run id plus payload. Covering the header matters: a
 * bit-flip that turns "run" into "del" (same length, framing intact)
 * or compensating length corruption would otherwise checksum
 * identically and replay as a valid — wrong — record.
 */
std::uint64_t
recordChecksum(const std::string &meta, const std::string &run_id,
               const std::string &text)
{
    std::uint64_t hash = 1469598103934665603ull;
    const auto fold = [&hash](const std::string &s) {
        for (const unsigned char c : s) {
            hash ^= c;
            hash *= 1099511628211ull;
        }
    };
    fold(meta);
    fold(run_id);
    fold(text);
    return hash;
}

/** The checksummed header middle: `<run|del>\t<id_len>\t<payload_len>`. */
std::string
recordMeta(WarehouseLog::Record::Kind kind, std::size_t id_len,
           std::size_t payload_len)
{
    return strformat("%s\t%zu\t%zu",
                     kind == WarehouseLog::Record::Kind::kRun ? "run"
                                                              : "del",
                     id_len, payload_len);
}

/** Whole-field numeric parse (no trailing garbage). */
template <typename T>
bool
parseField(const std::string &field, T *out, int base = 10)
{
    const char *begin = field.data();
    const char *end = begin + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out, base);
    return ec == std::errc() && ptr == end && !field.empty();
}

std::string
frameRecord(WarehouseLog::Record::Kind kind, const std::string &run_id,
            const std::string &text)
{
    const std::string meta =
        recordMeta(kind, run_id.size(), text.size());
    std::string frame = "rec\t" + meta +
                        strformat("\t%016llx\n",
                                  static_cast<unsigned long long>(
                                      recordChecksum(meta, run_id,
                                                     text)));
    frame += run_id;
    frame += text;
    frame += '\n';
    return frame;
}

bool
writeAll(int fd, const std::string &data, std::string *error)
{
    const char *at = data.data();
    std::size_t remaining = data.size();
    while (remaining > 0) {
        const ::ssize_t wrote = ::write(fd, at, remaining);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            if (error != nullptr)
                *error = std::string("log write failed: ") +
                         std::strerror(errno);
            return false;
        }
        at += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
    return true;
}

} // namespace

WarehouseLog::~WarehouseLog()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closeActiveLocked();
}

std::string
WarehouseLog::segmentPath(std::uint64_t index) const
{
    return dir_ + "/" +
           strformat("%s%06llu%s", kSegmentPrefix,
                     static_cast<unsigned long long>(index),
                     kSegmentSuffix);
}

bool
WarehouseLog::open(Options options, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (opened_) {
        if (error != nullptr)
            *error = "log already open on " + dir_;
        return false;
    }
    if (!ensureDir(options.dir, error))
        return false;
    std::vector<std::string> names;
    if (!listDir(options.dir, &names, error))
        return false;

    segments_.clear();
    for (const std::string &name : names) {
        // A crashed compaction can leave a temp file behind; it was
        // never renamed into place, so its contents are dead.
        if (contains(name, ".tmp.")) {
            removeFile(options.dir + "/" + name);
            continue;
        }
        if (!startsWith(name, kSegmentPrefix) ||
            !endsWith(name, kSegmentSuffix)) {
            continue;
        }
        const std::string digits = name.substr(
            std::strlen(kSegmentPrefix),
            name.size() - std::strlen(kSegmentPrefix) -
                std::strlen(kSegmentSuffix));
        std::uint64_t index = 0;
        if (parseField(digits, &index))
            segments_.push_back(index);
    }
    std::sort(segments_.begin(), segments_.end());
    active_index_ = segments_.empty() ? 1 : segments_.back();
    options_ = std::move(options);
    dir_ = options_.dir;
    opened_ = true;
    return true;
}

std::size_t
WarehouseLog::parseSegment(
    const std::string &data,
    const std::function<void(Record, std::uint64_t)> &cb,
    ReplayStats *stats)
{
    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos)
            break; // incomplete header: torn tail
        const std::vector<std::string> fields =
            split(data.substr(pos, nl - pos), '\t');
        std::uint64_t id_len = 0;
        std::uint64_t payload_len = 0;
        std::uint64_t checksum = 0;
        if (fields.size() != 5 || fields[0] != "rec" ||
            (fields[1] != "run" && fields[1] != "del") ||
            !parseField(fields[2], &id_len) ||
            !parseField(fields[3], &payload_len) ||
            !parseField(fields[4], &checksum, 16)) {
            break; // malformed header: cannot resync past it
        }
        const std::size_t body = nl + 1;
        if (id_len > data.size() || payload_len > data.size() ||
            body + id_len + payload_len + 1 > data.size()) {
            break; // declared body extends past the file: torn tail
        }
        const std::size_t end = body + id_len + payload_len + 1;
        if (data[end - 1] != '\n')
            break; // header lied about the lengths: cannot resync
        Record record;
        record.kind = fields[1] == "run" ? Record::Kind::kRun
                                         : Record::Kind::kErase;
        record.run_id = data.substr(body, id_len);
        record.text = data.substr(body + id_len, payload_len);
        // Reconstructed from the raw field bytes (the writer always
        // emits canonical numbers), so header corruption the framing
        // happened to survive still fails the checksum.
        const std::string meta =
            fields[1] + "\t" + fields[2] + "\t" + fields[3];
        if (recordChecksum(meta, record.run_id, record.text) !=
            checksum) {
            // Framing is intact, the payload is not: skip exactly this
            // record. Its bytes are dead weight until compaction.
            if (stats != nullptr) {
                ++stats->corrupt_records;
                stats->skipped_bytes += end - pos;
            }
            pos = end;
            continue;
        }
        if (stats != nullptr) {
            if (record.kind == Record::Kind::kRun)
                ++stats->run_records;
            else
                ++stats->erase_records;
        }
        cb(std::move(record), end - pos);
        pos = end;
    }
    return pos;
}

void
WarehouseLog::accountRecord(const Record &record,
                            std::uint64_t frame_bytes)
{
    auto it = live_.find(record.run_id);
    if (record.kind == Record::Kind::kRun) {
        if (it != live_.end()) {
            // Superseded append (compaction-overlap replay).
            dead_bytes_ += it->second;
            live_bytes_ -= it->second;
            it->second = frame_bytes;
        } else {
            live_.emplace(record.run_id, frame_bytes);
        }
        live_bytes_ += frame_bytes;
    } else {
        if (it != live_.end()) {
            dead_bytes_ += it->second + frame_bytes;
            live_bytes_ -= it->second;
            live_.erase(it);
        } else {
            dead_bytes_ += frame_bytes;
        }
    }
}

bool
WarehouseLog::replay(const std::function<void(Record)> &cb,
                     ReplayStats *stats, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!opened_ || replayed_) {
        if (error != nullptr)
            *error = !opened_ ? "log not open"
                              : "log already replayed";
        return false;
    }
    ReplayStats local;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const bool final_segment = i + 1 == segments_.size();
        const std::string path = segmentPath(segments_[i]);
        std::string data;
        if (!readFile(path, &data, error))
            return false;
        ++local.segments;
        const std::uint64_t skipped_before = local.skipped_bytes;
        const std::size_t stop = parseSegment(
            data,
            [&](Record record, std::uint64_t frame_bytes) {
                accountRecord(record, frame_bytes);
                cb(std::move(record));
            },
            &local);
        // Checksum-corrupt records stay on disk until compaction.
        dead_bytes_ += local.skipped_bytes - skipped_before;
        if (stop >= data.size())
            continue;
        if (final_segment) {
            // Crash-mid-append artifact: drop the torn record so the
            // next append starts on a clean frame boundary.
            local.torn_tail = true;
            if (::truncate(path.c_str(),
                           static_cast<::off_t>(stop)) != 0) {
                if (error != nullptr) {
                    *error = "cannot truncate torn tail of " + path +
                             ": " + std::strerror(errno);
                }
                return false;
            }
            DC_WARN("warehouse log ", path, ": dropped torn tail (",
                    data.size() - stop, " bytes)");
        } else {
            // Framing breakage inside an older segment: everything up
            // to the breakage was applied; the rest of this segment is
            // skipped and later segments still replay.
            ++local.corrupt_records;
            local.skipped_bytes += data.size() - stop;
            dead_bytes_ += data.size() - stop;
            DC_WARN("warehouse log ", path, ": skipped ",
                    data.size() - stop,
                    " unparseable bytes mid-log");
        }
    }
    replayed_ = true;
    if (stats != nullptr)
        *stats = local;
    return true;
}

bool
WarehouseLog::openActiveLocked(std::string *error)
{
    const std::string path = segmentPath(active_index_);
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        if (error != nullptr) {
            *error = "cannot open log segment " + path + ": " +
                     std::strerror(errno);
        }
        return false;
    }
    struct ::stat st {};
    active_bytes_ = ::fstat(fd_, &st) == 0
                        ? static_cast<std::uint64_t>(st.st_size)
                        : 0;
    if (segments_.empty() || segments_.back() != active_index_) {
        segments_.push_back(active_index_);
        // A freshly created file can vanish in a power cut if its
        // directory entry was never persisted — record fsyncs alone
        // would then protect bytes in a file that no longer exists.
        if (options_.sync)
            syncDir(dir_);
    }
    return true;
}

void
WarehouseLog::closeActiveLocked()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
WarehouseLog::appendLocked(Record::Kind kind, const std::string &run_id,
                           const std::string &text, std::string *error)
{
    if (!replayed_) {
        if (error != nullptr)
            *error = "log not replayed before append";
        return false;
    }
    if (fd_ < 0 && !openActiveLocked(error)) {
        appendFailedCounter().add();
        return false;
    }
    if (active_bytes_ >= options_.max_segment_bytes &&
        active_bytes_ > 0) {
        closeActiveLocked();
        ++active_index_;
        if (!openActiveLocked(error)) {
            appendFailedCounter().add();
            return false;
        }
    }
    const std::string frame = frameRecord(kind, run_id, text);
    obs::ObsSpan span(s_append_span, frame.size());
    std::string write_error;
    bool ok = writeAll(fd_, frame, &write_error);
    if (ok && options_.sync) {
        if (::fsync(fd_) != 0) {
            ok = false;
            write_error = std::string("log fsync failed: ") +
                          std::strerror(errno);
        } else {
            ++fsync_count_;
            fsyncCounter().add();
        }
    }
    if (!ok) {
        appendFailedCounter().add();
        // A partial frame may be on disk (e.g. disk full mid-write).
        // Replay cannot resync past torn bytes, so later successful
        // appends would be silently stranded behind them — cut the
        // segment back to the last good frame boundary; if even that
        // fails, abandon this segment for a fresh one (replay then
        // treats the torn remainder as mid-log corruption in a
        // non-final segment and keeps reading the later segments).
        if (::ftruncate(fd_, static_cast<::off_t>(active_bytes_)) !=
            0) {
            closeActiveLocked();
            ++active_index_;
        }
        if (error != nullptr)
            *error = std::move(write_error);
        return false;
    }
    active_bytes_ += frame.size();
    Record record;
    record.kind = kind;
    record.run_id = run_id;
    accountRecord(record, frame.size());
    return true;
}

bool
WarehouseLog::appendRun(const std::string &run_id,
                        const std::string &text, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appendLocked(Record::Kind::kRun, run_id, text, error);
}

bool
WarehouseLog::appendErase(const std::string &run_id, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appendLocked(Record::Kind::kErase, run_id, {}, error);
}

std::uint64_t
WarehouseLog::compactLocked(std::string *error)
{
    if (dead_bytes_ == 0 || segments_.empty())
        return 0;
    obs::ObsSpan span(s_compact_span, dead_bytes_);
    closeActiveLocked();

    // Fold the log from the log itself: replay the segments in memory
    // and keep each run's latest non-tombstoned record. Reading from
    // disk (rather than asking the store for its corpus) means
    // compaction cannot race an insert that was already logged.
    std::vector<Record> order;
    std::map<std::string, std::size_t> index;
    std::uint64_t old_total = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        std::string data;
        if (!readFile(segmentPath(segments_[i]), &data, error))
            return 0; // old segments untouched
        old_total += data.size();
        parseSegment(data,
                     [&](Record record, std::uint64_t) {
                         auto it = index.find(record.run_id);
                         if (record.kind == Record::Kind::kErase) {
                             if (it != index.end()) {
                                 order[it->second].run_id.clear();
                                 order[it->second].text.clear();
                                 order[it->second].kind =
                                     Record::Kind::kErase;
                                 index.erase(it);
                             }
                             return;
                         }
                         if (it != index.end()) {
                             order[it->second] = record;
                             return;
                         }
                         index.emplace(record.run_id, order.size());
                         order.push_back(std::move(record));
                     },
                     nullptr);
    }

    std::string buffer;
    std::map<std::string, std::uint64_t> new_live;
    std::uint64_t new_live_bytes = 0;
    for (const Record &record : order) {
        if (record.kind != Record::Kind::kRun)
            continue;
        const std::string frame = frameRecord(
            Record::Kind::kRun, record.run_id, record.text);
        new_live.emplace(record.run_id, frame.size());
        new_live_bytes += frame.size();
        buffer += frame;
    }
    const std::uint64_t new_index = segments_.back() + 1;
    if (!atomicWriteFile(segmentPath(new_index), buffer, error))
        return 0; // old segments untouched
    // From here the compacted segment is durable; a crash before the
    // deletes below replays old + compacted, which last-wins-folds to
    // the same corpus.
    for (const std::uint64_t idx : segments_) {
        std::string remove_error;
        if (!removeFile(segmentPath(idx), &remove_error))
            DC_WARN("log compaction: ", remove_error);
    }
    segments_ = {new_index};
    active_index_ = new_index;
    active_bytes_ = buffer.size();
    live_ = std::move(new_live);
    live_bytes_ = new_live_bytes;
    dead_bytes_ = 0;
    return old_total > buffer.size() ? old_total - buffer.size() : 0;
}

std::uint64_t
WarehouseLog::compact(std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compactLocked(error);
}

std::uint64_t
WarehouseLog::maybeAutoCompact(std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_bytes_ < options_.auto_compact_min_dead_bytes ||
        dead_bytes_ < live_bytes_) {
        return 0;
    }
    return compactLocked(error);
}

std::uint64_t
WarehouseLog::liveBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return live_bytes_;
}

std::uint64_t
WarehouseLog::deadBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dead_bytes_;
}

std::uint64_t
WarehouseLog::fsyncCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fsync_count_;
}

std::size_t
WarehouseLog::segmentCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return segments_.size();
}

} // namespace dc::service

#pragma once

/**
 * @file
 * Run-selection predicate shared by the query frontend and the
 * materialized corpus-view cache (which keys cached views by the
 * filter's canonical signature).
 */

#include <map>
#include <string>

namespace dc::service {

/** Metadata predicate; empty named fields match everything. */
struct QueryFilter {
    std::string framework; ///< Matches metadata "framework".
    std::string platform;  ///< Matches metadata "platform".
    std::string model;     ///< Matches metadata "model".
    /// Additional exact-match metadata constraints. Unlike the named
    /// fields, entries here are literal: an empty value matches only a
    /// run whose metadata value is empty.
    std::map<std::string, std::string> metadata;

    /** True when @p meta satisfies every constraint. */
    bool
    matches(const std::map<std::string, std::string> &meta) const
    {
        const auto named = [&](const char *key,
                               const std::string &want) {
            if (want.empty())
                return true;
            auto it = meta.find(key);
            return it != meta.end() && it->second == want;
        };
        if (!named("framework", framework) ||
            !named("platform", platform) || !named("model", model)) {
            return false;
        }
        for (const auto &[key, want] : metadata) {
            // Literal match: empty values are not wildcards here.
            auto it = meta.find(key);
            if (it == meta.end() || it->second != want)
                return false;
        }
        return true;
    }
};

} // namespace dc::service

#include "service/query_engine.h"

#include <algorithm>

#include "service/cct_merger.h"

namespace dc::service {

namespace {

bool
keyMatches(const std::map<std::string, std::string> &meta,
           const std::string &key, const std::string &want)
{
    if (want.empty())
        return true;
    auto it = meta.find(key);
    return it != meta.end() && it->second == want;
}

} // namespace

bool
QueryFilter::matches(const std::map<std::string, std::string> &meta) const
{
    if (!keyMatches(meta, "framework", framework) ||
        !keyMatches(meta, "platform", platform) ||
        !keyMatches(meta, "model", model)) {
        return false;
    }
    for (const auto &[key, want] : metadata) {
        // Literal match: empty values are not wildcards here.
        auto it = meta.find(key);
        if (it == meta.end() || it->second != want)
            return false;
    }
    return true;
}

std::vector<std::pair<std::string,
                      std::shared_ptr<const prof::ProfileDb>>>
QueryEngine::select(const QueryFilter &filter) const
{
    std::vector<std::pair<std::string,
                          std::shared_ptr<const prof::ProfileDb>>>
        selected = store_.snapshot();
    std::erase_if(selected, [&](const auto &entry) {
        return !filter.matches(entry.second->metadata());
    });
    return selected;
}

std::vector<std::string>
QueryEngine::runIds(const QueryFilter &filter) const
{
    std::vector<std::string> ids;
    for (const auto &[run_id, profile] : select(filter)) {
        (void)profile;
        ids.push_back(run_id);
    }
    return ids;
}

std::vector<KernelAggregate>
QueryEngine::topKernels(std::size_t k, const QueryFilter &filter,
                        const std::string &metric) const
{
    std::map<std::string, KernelAggregate> by_name;
    for (const auto &[run_id, profile] : select(filter)) {
        (void)run_id;
        const int metric_id = profile->metrics().find(metric);
        if (metric_id < 0)
            continue;
        std::map<std::string, bool> seen_this_run;
        profile->cct().visit([&](const prof::CctNode &node) {
            if (node.kind() != dlmon::FrameKind::kKernel)
                return;
            const RunningStat *stat = node.findMetric(metric_id);
            if (stat == nullptr || stat->count() == 0)
                return;
            // name() resolves through the string table without
            // materializing a Frame — visit() touches every node.
            const std::string &name = node.name();
            KernelAggregate &agg = by_name[name];
            agg.name = name;
            agg.total += stat->sum();
            agg.samples += stat->count();
            if (!seen_this_run[name]) {
                seen_this_run[name] = true;
                ++agg.runs;
            }
        });
    }

    std::vector<KernelAggregate> ranked;
    ranked.reserve(by_name.size());
    for (auto &[name, agg] : by_name) {
        (void)name;
        ranked.push_back(std::move(agg));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const KernelAggregate &a, const KernelAggregate &b) {
                  if (a.total != b.total)
                      return a.total > b.total;
                  return a.name < b.name;
              });
    if (ranked.size() > k)
        ranked.resize(k);
    return ranked;
}

std::unique_ptr<prof::ProfileDb>
QueryEngine::merged(const QueryFilter &filter) const
{
    CctMerger merger;
    for (const auto &[run_id, profile] : select(filter))
        merger.addPrevalidated(*profile, run_id);
    return merger.finish();
}

std::optional<analysis::ProfileComparison>
QueryEngine::diffRuns(const std::string &run_a,
                      const std::string &run_b) const
{
    std::shared_ptr<const prof::ProfileDb> a = store_.get(run_a);
    std::shared_ptr<const prof::ProfileDb> b = store_.get(run_b);
    if (a == nullptr || b == nullptr)
        return std::nullopt;
    return analysis::compareProfiles(*a, *b);
}

std::optional<analysis::ProfileComparison>
QueryEngine::diffAgainstCorpus(const std::string &run_id,
                               const QueryFilter &filter) const
{
    std::shared_ptr<const prof::ProfileDb> run = store_.get(run_id);
    if (run == nullptr)
        return std::nullopt;
    CctMerger merger;
    for (const auto &[other_id, profile] : select(filter)) {
        if (other_id != run_id)
            merger.addPrevalidated(*profile, other_id);
    }
    // An empty corpus would produce a degenerate all-zero comparison
    // indistinguishable from "the rest of the fleet ran in zero time".
    if (merger.runCount() == 0)
        return std::nullopt;
    const std::unique_ptr<prof::ProfileDb> corpus = merger.finish();
    return analysis::compareProfiles(*run, *corpus);
}

gui::FlameNode
QueryEngine::flameGraph(const QueryFilter &filter,
                        const gui::FlameGraphOptions &options) const
{
    const std::unique_ptr<prof::ProfileDb> db = merged(filter);
    return gui::FlameGraph::topDown(*db, options);
}

std::string
QueryEngine::flameGraphHtml(const std::string &title,
                            const QueryFilter &filter,
                            const gui::FlameGraphOptions &options) const
{
    return gui::FlameGraph::toHtml(flameGraph(filter, options), title);
}

} // namespace dc::service

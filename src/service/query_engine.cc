#include "service/query_engine.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/trace_span.h"
#include "service/cct_merger.h"

namespace dc::service {

namespace {

/// Query sites sample 1 in 16 spans: the cached paths run in
/// microseconds, so timing every call would eat the overhead budget;
/// the .count counters stay exact regardless.
obs::SpanSite s_topk_span{"query.topk", 4};
obs::SpanSite s_merged_span{"query.merged", 4};
obs::SpanSite s_diff_span{"query.diff", 4};
obs::SpanSite s_flame_span{"query.flame", 4};

} // namespace

std::vector<std::string>
QueryEngine::runIds(const QueryFilter &filter) const
{
    return store_.runIdsMatching(
        [&](const std::string &run_id, const prof::ProfileDb &profile) {
            (void)run_id;
            return filter.matches(profile.metadata());
        });
}

std::vector<KernelAggregate>
QueryEngine::topKernels(std::size_t k, const QueryFilter &filter,
                        const std::string &metric) const
{
    obs::ObsSpan span(s_topk_span, k);
    const std::shared_ptr<const CorpusView::View> view =
        view_.acquire(filter);
    if (view == nullptr) // rebuild abandoned at the caller's deadline
        return {};
    const int metric_id = view->db->metrics().find(metric);
    if (metric_id < 0 || k == 0)
        return {};

    // Bounded k-heap over the view's flat interned-id table: no string
    // keys, no per-query tree walk. `better` orders by (total desc,
    // name asc); the heap keeps the worst kept candidate on top so a
    // corpus of K kernels costs O(K log k).
    struct Candidate {
        double total;
        std::uint64_t samples;
        std::uint32_t runs;
        StringTable::Id name_id;
    };
    // Ids in the view's aggregate table were issued by the store's
    // per-corpus name table; resolve ties and result names through it.
    const StringTable &names = view->db->names();
    const auto better = [&names](const Candidate &a, const Candidate &b) {
        if (a.total != b.total)
            return a.total > b.total;
        return names.str(a.name_id) < names.str(b.name_id);
    };

    std::vector<Candidate> heap;
    heap.reserve(k + 1);
    view->kernels.forEach([&](std::uint64_t key,
                              const CorpusView::KernelStat &stat) {
        if (FlatIdTable<CorpusView::KernelStat>::packedLow(key) !=
            metric_id) {
            return;
        }
        const Candidate candidate{
            stat.total, stat.samples, stat.runs,
            FlatIdTable<CorpusView::KernelStat>::packedId(key)};
        if (heap.size() < k) {
            heap.push_back(candidate);
            std::push_heap(heap.begin(), heap.end(), better);
            return;
        }
        if (better(candidate, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = candidate;
            std::push_heap(heap.begin(), heap.end(), better);
        }
    });
    // sort_heap with `better`-as-less yields best-first directly.
    std::sort_heap(heap.begin(), heap.end(), better);

    std::vector<KernelAggregate> ranked;
    ranked.reserve(heap.size());
    for (const Candidate &candidate : heap) {
        KernelAggregate agg;
        agg.name = names.str(candidate.name_id);
        agg.total = candidate.total;
        agg.samples = candidate.samples;
        agg.runs = candidate.runs;
        ranked.push_back(std::move(agg));
    }
    return ranked;
}

std::shared_ptr<const prof::ProfileDb>
QueryEngine::merged(const QueryFilter &filter) const
{
    obs::ObsSpan span(s_merged_span);
    const std::shared_ptr<const CorpusView::View> view =
        view_.acquire(filter);
    // Null only when the calling thread's deadline expired mid-build
    // (deadline.h); plain callers always get a view.
    return view != nullptr ? view->db : nullptr;
}

std::optional<analysis::ProfileComparison>
QueryEngine::diffRuns(const std::string &run_a,
                      const std::string &run_b) const
{
    obs::ObsSpan span(s_diff_span);
    std::shared_ptr<const prof::ProfileDb> a = store_.get(run_a);
    std::shared_ptr<const prof::ProfileDb> b = store_.get(run_b);
    if (a == nullptr || b == nullptr)
        return std::nullopt;
    return analysis::compareProfiles(*a, *b);
}

std::optional<analysis::ProfileComparison>
QueryEngine::diffAgainstCorpus(const std::string &run_id,
                               const QueryFilter &filter) const
{
    obs::ObsSpan span(s_diff_span);
    std::shared_ptr<const prof::ProfileDb> run = store_.get(run_id);
    if (run == nullptr)
        return std::nullopt;
    const std::shared_ptr<const CorpusView::View> corpus =
        view_.acquire(filter, run_id);
    if (corpus == nullptr) // deadline expired mid-rebuild
        return std::nullopt;
    // An empty corpus would produce a degenerate all-zero comparison
    // indistinguishable from "the rest of the fleet ran in zero time".
    if (corpus->run_ids.empty())
        return std::nullopt;
    return analysis::compareProfiles(*run, *corpus->db);
}

namespace {

/// Cache key for a view's flame cache: every FlameGraphOptions field
/// that affects the rendering.
std::string
flameSignature(const gui::FlameGraphOptions &options)
{
    return strformat("%s|%d|%d|%.17g", options.metric.c_str(),
                     options.include_native ? 1 : 0,
                     options.include_instructions ? 1 : 0,
                     options.min_fraction);
}

} // namespace

std::shared_ptr<const gui::FlameNode>
QueryEngine::flameGraph(const QueryFilter &filter,
                        const gui::FlameGraphOptions &options) const
{
    obs::ObsSpan span(s_flame_span);
    const std::shared_ptr<const CorpusView::View> view =
        view_.acquire(filter);
    if (view == nullptr) // deadline expired mid-rebuild
        return nullptr;
    const std::string key = flameSignature(options);
    // Serialize builders per view: concurrent exporters of the same
    // fresh view build once and share the node tree.
    std::lock_guard<std::mutex> lock(view->flame_mutex);
    auto it = view->flame_cache.find(key);
    if (it != view->flame_cache.end())
        return it->second;
    auto flame = std::make_shared<gui::FlameNode>(
        gui::FlameGraph::topDown(*view->db, options));
    view->flame_cache.emplace(key, flame);
    return flame;
}

std::string
QueryEngine::flameGraphHtml(const std::string &title,
                            const QueryFilter &filter,
                            const gui::FlameGraphOptions &options) const
{
    const std::shared_ptr<const gui::FlameNode> flame =
        flameGraph(filter, options);
    if (flame == nullptr) // deadline expired mid-rebuild
        return {};
    return gui::FlameGraph::toHtml(*flame, title);
}

} // namespace dc::service

#include "service/profile_store.h"

#include <algorithm>
#include <chrono>

#include "common/failpoint.h"
#include "common/fs.h"
#include "common/logging.h"
#include "common/string_table.h"
#include "obs/trace_span.h"

namespace dc::service {

namespace {

obs::SpanSite s_ingest_span{"warehouse.ingest"};
obs::SpanSite s_erase_span{"warehouse.erase"};
obs::SpanSite s_recover_span{"warehouse.recover"};
obs::SpanSite s_checkpoint_span{"warehouse.checkpoint"};

// Crash points the torture harness sweeps — each marks a distinct
// recoverable state between a memory update and its durability:
//   published   run visible in memory, nothing in the log yet
//   appended    run record written, group-commit fsync pending
//   synced      run durable, ack not yet returned
//   tombstoned  erase tombstone durable, run still in memory
//   cut         checkpoint cut + snapshot taken, nothing committed
failpoint::Site s_fp_published{"store.ingest.published"};
failpoint::Site s_fp_appended{"store.ingest.appended"};
failpoint::Site s_fp_synced{"store.ingest.synced"};
failpoint::Site s_fp_tombstoned{"store.erase.tombstoned"};
failpoint::Site s_fp_ckpt_cut{"store.checkpoint.cut"};

obs::Counter &
ingestAcceptedCounter()
{
    static obs::Counter counter = obs::MetricsRegistry::global().counter(
        "warehouse.ingest.accepted");
    return counter;
}

obs::Counter &
ingestFailedCounter()
{
    static obs::Counter counter = obs::MetricsRegistry::global().counter(
        "warehouse.ingest.failed");
    return counter;
}

obs::Counter &
recoveredCounter()
{
    static obs::Counter counter = obs::MetricsRegistry::global().counter(
        "warehouse.ingest.recovered");
    return counter;
}

obs::Counter &
degradedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("wal.degraded");
    return counter;
}

obs::Counter &
reattachedCounter()
{
    static obs::Counter counter =
        obs::MetricsRegistry::global().counter("wal.reattached");
    return counter;
}

} // namespace

ProfileStore::ProfileStore(Options options)
{
    DC_CHECK(options.shards > 0, "store needs at least one shard");
    DC_CHECK(options.max_queue > 0, "store needs queue capacity");
    DC_CHECK(options.max_queue_bytes > 0,
             "store needs queue byte capacity");
    max_queue_ = options.max_queue;
    max_queue_bytes_ = options.max_queue_bytes;
    max_interned_bytes_ = options.max_interned_bytes;
    log_checkpoint_bytes_ = options.log_checkpoint_bytes;
    reattach_min_backoff_ms_ =
        std::max<std::uint64_t>(1, options.log_reattach_min_backoff_ms);
    reattach_max_backoff_ms_ = std::max(
        reattach_min_backoff_ms_, options.log_reattach_max_backoff_ms);
    table_ = options.names != nullptr ? std::move(options.names)
                                      : std::make_shared<StringTable>();
    shards_.reserve(options.shards);
    for (std::size_t i = 0; i < options.shards; ++i)
        shards_.push_back(std::make_unique<Shard>());

    // Recover before ingestion can start: replay is single-threaded,
    // so it can insert and meter interning without the
    // concurrent-path guards.
    if (!options.data_dir.empty())
        openAndReplayLog(options);

    executor_ = options.executor != nullptr
                    ? options.executor
                    : &common::Executor::global();
    // Default the drain width to the pool actually configured, not
    // hardware_concurrency: a narrow private executor must not be
    // handed more concurrent drains than it has threads to run them.
    worker_limit_ = options.workers > 0 ? options.workers
                                        : executor_->threads();
    if (log_ != nullptr)
        reattach_thread_ = std::thread([this] { reattachLoop(); });
}

void
ProfileStore::openAndReplayLog(const Options &options)
{
    obs::ObsSpan span(s_recover_span);
    auto log = std::make_unique<WarehouseLog>();
    WarehouseLog::Options log_options;
    log_options.dir = options.data_dir;
    log_options.max_segment_bytes = options.log_segment_bytes;
    log_options.sync = options.log_sync;
    log_options.auto_compact_min_dead_bytes =
        options.log_compact_min_dead_bytes;
    std::string error;
    if (!log->open(std::move(log_options), &error)) {
        // An unopenable data directory degrades the store to
        // memory-only — the service keeps answering queries and
        // ingesting; it just is not durable, which logHealthy()
        // surfaces. Output paths are as untrusted as inputs.
        DC_WARN("profile store: data dir unusable, running "
                "in-memory: ",
                error);
        log_error_ = std::move(error);
        return;
    }
    WarehouseLog::ReplayStats replay_stats;
    const bool ok = log->replay(
        [this](WarehouseLog::Record record) {
            if (record.kind == WarehouseLog::Record::Kind::kErase) {
                Shard &shard = shardFor(record.run_id);
                if (shard.profiles.erase(record.run_id) > 0) {
                    ++recovery_.tombstones;
                    --stats_.recovered;
                }
                return;
            }
            applyRecovered(record.run_id, record.text);
        },
        &replay_stats, &error);
    if (!ok) {
        DC_WARN("profile store: log replay failed, running "
                "in-memory: ",
                error);
        // Roll the partial replay back: serving whatever subset
        // happened to precede the failing segment — while recovery()
        // reports nothing recovered — would be a silently partial
        // corpus, and re-ingesting the lost runs would trip duplicate
        // rejections. An explicitly empty, non-durable store is the
        // honest degraded mode. (Any names the dropped records
        // interned stay in the table, unreferenced, as after any
        // rejected parse.)
        for (auto &shard : shards_)
            shard->profiles.clear();
        stats_ = StoreStats{};
        failures_.clear();
        recovery_ = RecoveryStats{};
        last_seq_ = 0;
        floor_ = 0;
        log_error_ = std::move(error);
        return;
    }
    recovery_.attempted = true;
    recovery_.runs = stats_.recovered;
    recovery_.corrupt_records = replay_stats.corrupt_records;
    recovery_.checkpoint_records = replay_stats.checkpoint_records;
    recovery_.torn_tail = replay_stats.torn_tail;
    recoveredCounter().add(recovery_.runs);
    span.setArg(recovery_.runs);
    log_ = std::move(log);
}

void
ProfileStore::applyRecovered(const std::string &run_id,
                             const std::string &text)
{
    // The same parse -> meter -> budget path a live ingest takes, so a
    // recovered corpus lands with the same name table contents and the
    // same budget accounting the pre-restart store had for its live
    // runs.
    std::string error;
    std::unique_ptr<prof::ProfileDb> parsed;
    std::uint64_t interned_delta = 0;
    std::uint64_t table_bytes = 0;
    {
        StringTable::GrowthMeter meter(*table_);
        parsed = prof::ProfileDb::tryDeserialize(text, &error, table_);
        interned_delta = meter.bytes();
        table_bytes = table_->textBytes();
    }
    stats_.interned_bytes += interned_delta;
    if (parsed == nullptr) {
        // Self-written records should always parse; a record that no
        // longer does (e.g. budget shrank, disk corruption the
        // checksum happened to miss) is recorded, not fatal.
        ++recovery_.rejected;
        recordFailureLocked(run_id, "log replay: " + error);
        return;
    }
    if (interned_delta > 0 && max_interned_bytes_ != 0 &&
        table_bytes > max_interned_bytes_) {
        ++recovery_.rejected;
        recordFailureLocked(run_id,
                            "log replay: interned-name budget "
                            "exceeded (" +
                                std::to_string(table_bytes) + " of " +
                                std::to_string(max_interned_bytes_) +
                                " bytes of name text)");
        return;
    }
    const std::uint64_t seq = ++last_seq_;
    floor_ = last_seq_;
    Shard &shard = shardFor(run_id);
    // Last-wins: a compaction-overlap replay can stream the same run
    // twice (identical content); the replacement keeps the corpus
    // exact and the recovered count honest.
    const bool inserted =
        shard.profiles
            .insert_or_assign(run_id, Stored{std::move(parsed), seq})
            .second;
    if (inserted)
        ++stats_.recovered;
}

ProfileStore::~ProfileStore()
{
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        stopping_ = true;
        space_cv_.notify_all();
        // Let producers blocked on backpressure finish their (rejected)
        // calls before members are torn down, then let the pooled
        // drainers empty the queue and retire — a drain task running
        // on the shared executor must never touch a freed store.
        // Calls *started* after destruction begins are caller UB, as
        // for any C++ object.
        idle_cv_.wait(lock, [this] {
            return active_producers_ == 0 && drainers_ == 0;
        });
    }
    if (reattach_thread_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(reattach_mutex_);
            reattach_stop_ = true;
        }
        reattach_cv_.notify_all();
        reattach_thread_.join();
    }
    // Drain guarded view builders: a cold CorpusView rebuild entered
    // before destruction began holds internGuard() (table_mutex_
    // shared) while it merges into this store's table. Excluding it
    // here — and likewise any straggler inside the durable gate —
    // sequences that work strictly before member teardown, so a store
    // closed mid-rebuild (the WarehouseManager's lazy close) drains
    // cleanly instead of freeing the table under the builder.
    { std::unique_lock<std::shared_mutex> drain(table_mutex_); }
    { std::unique_lock<std::shared_mutex> gate(durable_gate_); }
}

ProfileStore::Shard &
ProfileStore::shardFor(const std::string &run_id)
{
    return *shards_[std::hash<std::string>{}(run_id) % shards_.size()];
}

const ProfileStore::Shard &
ProfileStore::shardFor(const std::string &run_id) const
{
    return *shards_[std::hash<std::string>{}(run_id) % shards_.size()];
}

void
ProfileStore::ingest(std::string run_id,
                     std::unique_ptr<prof::ProfileDb> profile)
{
    DC_CHECK(profile != nullptr, "ingest of null profile ", run_id);
    Task task;
    task.kind = Task::Kind::kProfile;
    task.run_id = std::move(run_id);
    task.profile = std::move(profile);
    task.bytes = task.profile->cct().memoryBytes();
    enqueue(std::move(task));
}

void
ProfileStore::ingestText(std::string run_id, std::string text)
{
    Task task;
    task.kind = Task::Kind::kText;
    task.run_id = std::move(run_id);
    task.payload = std::move(text);
    task.bytes = task.payload.size();
    enqueue(std::move(task));
}

void
ProfileStore::ingestFile(std::string run_id, std::string path)
{
    Task task;
    task.kind = Task::Kind::kFile;
    task.run_id = std::move(run_id);
    task.payload = std::move(path);
    enqueue(std::move(task));
}

void
ProfileStore::enqueue(Task task)
{
    bool schedule = false;
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        ++active_producers_;
        ++stats_.enqueued;
        // Backpressure: block the producer until the drainers catch up
        // (or the store is shutting down). The byte bound is a
        // high-water mark, so one oversized payload still gets through
        // when the queue is otherwise empty.
        space_cv_.wait(lock, [this] {
            return stopping_ || (queue_.size() < max_queue_ &&
                                 queued_bytes_ < max_queue_bytes_);
        });
        if (stopping_) {
            // A producer racing shutdown gets its task rejected and
            // recorded — never a process abort; the destructor is
            // waiting on idle_cv_ for us to leave.
            recordFailureLocked(task.run_id,
                                "store is shutting down");
            --active_producers_;
            idle_cv_.notify_all();
            return;
        }
        queued_bytes_ += task.bytes;
        queue_.push_back(std::move(task));
        if (drainers_ < worker_limit_) {
            ++drainers_;
            schedule = true;
        }
    }
    // The submit happens outside queue_mutex_: a saturated pool runs
    // the drain inline on this thread (synchronous ingestion is the
    // overflow backpressure), which must not deadlock on our own
    // lock. We stay counted as a producer until after it returns, so
    // the destructor cannot win the race between our push and the
    // pool accepting the task.
    if (schedule)
        executor_->submit([this] { drainQueue(); });
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        --active_producers_;
        if (active_producers_ == 0)
            idle_cv_.notify_all();
    }
}

void
ProfileStore::drainQueue()
{
    for (;;) {
        Task task;
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            if (queue_.empty()) {
                // Retire. Invariant: a non-empty queue always has at
                // least one live drainer, because every push either
                // found one (drainers_ > 0 while we only retire
                // empty) or scheduled one.
                --drainers_;
                idle_cv_.notify_all();
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            queued_bytes_ -= task.bytes;
            ++active_workers_;
        }
        space_cv_.notify_one();
        process(task);
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            --active_workers_;
            if (queue_.empty() && active_workers_ == 0)
                idle_cv_.notify_all();
        }
    }
}

void
ProfileStore::process(Task &task)
{
    obs::ObsSpan span(s_ingest_span, task.bytes);
    std::shared_ptr<const prof::ProfileDb> profile;
    std::uint64_t interned_delta = 0;
    bool over_budget = false;
    std::uint64_t table_bytes = 0;
    if (task.kind == Task::Kind::kProfile) {
        // Text/file ingestion gets these checks from tryDeserialize,
        // but ingest() accepts any caller-built ProfileDb — and an
        // invalid one would corrupt or abort later merge queries.
        std::string error;
        if (!task.profile->validate(&error)) {
            recordFailure(task.run_id, std::move(error));
            return;
        }
        {
            // A handed-off profile was built on some other table
            // (normally the global one); rebind it onto the store's
            // table so every stored tree is id-compatible. The rebind
            // interns into names() — metered and budgeted exactly like
            // a parse, under the guard compactNames() quiesces.
            auto guard = internGuard();
            StringTable::GrowthMeter meter(*table_);
            task.profile->rebindNames(table_);
            interned_delta = meter.bytes();
            table_bytes = table_->textBytes();
            over_budget = interned_delta > 0 &&
                          max_interned_bytes_ != 0 &&
                          table_bytes > max_interned_bytes_;
        }
        profile = std::move(task.profile);
    } else {
        // Parsing interns every name into the store's table; the
        // worker's meter counts exactly the entries this parse
        // creates — inside the owning table, under its insert lock —
        // so concurrent workers can never double-charge each other's
        // growth (the pre-per-corpus implementation diffed global
        // textBytes() around the parse and did exactly that).
        std::string error;
        std::unique_ptr<prof::ProfileDb> parsed;
        {
            auto guard = internGuard();
            StringTable::GrowthMeter meter(*table_);
            parsed = task.kind == Task::Kind::kFile
                         ? prof::ProfileDb::tryLoad(task.payload,
                                                    &error, table_)
                         : prof::ProfileDb::tryDeserialize(
                               task.payload, &error, table_);
            interned_delta = meter.bytes();
            // The budget decision is re-derived from the owning
            // table's exact accounting: growth that lands the table
            // exactly on the budget still fits (>, not >=), and text
            // reclaimed by compactNames() frees budget for future
            // profiles automatically.
            table_bytes = table_->textBytes();
            over_budget = interned_delta > 0 &&
                          max_interned_bytes_ != 0 &&
                          table_bytes > max_interned_bytes_;
        }
        // A parse failure is reported as such even when its partial
        // interning also saturated the budget — the parse error is
        // what the operator needs to debug the producer. (The partial
        // growth is still charged below.)
        if (parsed == nullptr) {
            if (interned_delta > 0) {
                std::lock_guard<std::mutex> lock(queue_mutex_);
                stats_.interned_bytes += interned_delta;
            }
            recordFailure(task.run_id, std::move(error));
            return;
        }
        profile = std::move(parsed);
    }
    if (interned_delta > 0) {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        stats_.interned_bytes += interned_delta;
    }
    if (over_budget) {
        // The growth already happened (interning is get-or-create),
        // so the budget gates acceptance: profiles that keep
        // introducing new names are refused — their text becomes
        // unreferenced once the rejected tree dies, and a later
        // compactNames() reclaims it — while ones made of known names
        // still ingest at zero growth.
        recordFailure(task.run_id,
                      "interned-name budget exceeded (" +
                          std::to_string(table_bytes) + " of " +
                          std::to_string(max_interned_bytes_) +
                          " bytes of name text)");
        return;
    }

    // Durable stores append the run's serialized text to the log. Text
    // ingests reuse the already-serialized payload verbatim; handoffs
    // and files serialize the accepted profile (v2) — composed before
    // the shard lock, which only has to cover the append itself.
    std::string log_text;
    if (log_ != nullptr) {
        log_text = task.kind == Task::Kind::kText
                       ? std::move(task.payload)
                       : profile->serialize();
    }

    // The durable gate (shared) brackets the whole publish + log
    // region so a checkpoint cut (exclusive) never observes a run
    // that is in memory but still on its way into the log.
    std::shared_lock<std::shared_mutex> gate(durable_gate_,
                                             std::defer_lock);
    if (log_ != nullptr)
        gate.lock();
    const std::uint64_t seq = beginPublish();
    Shard &shard = shardFor(task.run_id);
    bool inserted = false;
    std::uint64_t ticket = 0;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        inserted = shard.profiles
                       .emplace(task.run_id, Stored{profile, seq})
                       .second;
        // The log's record order for a run id must match the shard's
        // insert/erase order — otherwise a concurrent erase could
        // write its tombstone between our insert and our append and
        // replay would resurrect the erased run. Taking the ticket
        // under the shard lock pins our log position (an O(1) counter
        // bump, never I/O); the write happens below, after the lock
        // is released, so readers of this shard never stall behind
        // log I/O.
        if (inserted && log_ != nullptr)
            ticket = takeLogTicket();
    }
    endPublish(seq);
    if (!inserted) {
        recordFailure(task.run_id, "duplicate run id");
        return;
    }
    if (log_ != nullptr) {
        s_fp_published.eval();
        awaitLogTurn(ticket);
        std::string append_error;
        std::uint64_t commit_seq = 0;
        bool append_ok = log_->appendRunAsync(
            task.run_id, log_text, &commit_seq, &append_error);
        if (append_ok)
            s_fp_appended.eval();
        // Release the log turn *before* waiting for durability: the
        // next ticket can write its record while our group-commit
        // fsync is in flight — that batching is where the
        // fsync-per-append tax goes away.
        finishLogTurn();
        if (append_ok)
            append_ok = log_->sync(commit_seq, &append_error);
        if (append_ok)
            s_fp_synced.eval();
        noteAppend(append_ok, task.run_id, std::move(append_error));
        gate.unlock();
    }
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++stats_.ingested;
    }
    ingestAcceptedCounter().add();
    if (log_ != nullptr) {
        maybeAutoCompactLog();
        maybeAutoCheckpoint();
    }
}

std::uint64_t
ProfileStore::takeLogTicket()
{
    std::lock_guard<std::mutex> lock(log_ticket_mutex_);
    return log_next_ticket_++;
}

void
ProfileStore::awaitLogTurn(std::uint64_t ticket)
{
    std::unique_lock<std::mutex> lock(log_ticket_mutex_);
    log_ticket_cv_.wait(
        lock, [&] { return log_now_serving_ == ticket; });
}

void
ProfileStore::finishLogTurn()
{
    {
        std::lock_guard<std::mutex> lock(log_ticket_mutex_);
        ++log_now_serving_;
    }
    log_ticket_cv_.notify_all();
}

void
ProfileStore::noteAppend(bool ok, const std::string &run_id,
                         std::string error)
{
    if (ok) {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++stats_.log_appends;
        // A past failure (disk briefly full) does not taint a log
        // that is appending again — but the store stays degraded
        // while runs the failure left unlogged are waiting for the
        // re-attach pass to re-append them.
        if (unlogged_.empty())
            log_error_.clear();
        return;
    }
    DC_WARN("run log append failed (run kept in memory only): ",
            error);
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++stats_.log_append_failures;
        noteLogErrorLocked(std::move(error));
        // The record may be partially or even fully on disk (a failed
        // group fsync does not un-write it); re-appending the run's
        // current text later folds away any such remnant last-wins.
        // An erase whose tombstone failed this way lands here too:
        // the tombstone bytes may survive to replay, so the run must
        // be re-appended *after* them to stay in the corpus.
        if (!run_id.empty())
            unlogged_.insert(run_id);
    }
    // Wake the re-attach supervisor (it backs off on repeat failures).
    {
        std::lock_guard<std::mutex> lock(reattach_mutex_);
        reattach_kick_ = true;
    }
    reattach_cv_.notify_all();
}

void
ProfileStore::noteLogErrorLocked(std::string error)
{
    if (log_error_.empty() && unlogged_.empty()) {
        ++stats_.log_degraded;
        degradedCounter().add();
        degraded_since_ns_ = obs::nowNs();
    }
    log_error_ = std::move(error);
    log_last_error_ns_ = obs::nowNs();
}

void
ProfileStore::maybeAutoCompactLog()
{
    std::string error;
    const std::uint64_t folded = log_->maybeAutoCompact(&error);
    if (!error.empty()) {
        DC_WARN("run log auto-compaction failed: ", error);
        std::lock_guard<std::mutex> lock(queue_mutex_);
        log_error_ = std::move(error);
        return;
    }
    if (folded > 0) {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++stats_.log_compactions;
    }
}

std::uint64_t
ProfileStore::beginPublish()
{
    std::lock_guard<std::mutex> lock(gen_mutex_);
    const std::uint64_t seq = ++last_seq_;
    in_flight_.insert(seq);
    return seq;
}

void
ProfileStore::endPublish(std::uint64_t seq)
{
    std::lock_guard<std::mutex> lock(gen_mutex_);
    in_flight_.erase(seq);
    floor_ = in_flight_.empty() ? last_seq_ : *in_flight_.begin() - 1;
}

ProfileStore::Generation
ProfileStore::generation() const
{
    std::lock_guard<std::mutex> lock(gen_mutex_);
    return Generation{floor_, erased_, compacted_};
}

std::uint64_t
ProfileStore::compactNames()
{
    std::uint64_t reclaimed = 0;
    {
        // Exclude every interning path (parse workers, guarded view
        // builds) while the table scrubs dead entries; readers of live
        // names are unaffected.
        std::unique_lock<std::shared_mutex> quiesce(table_mutex_);
        reclaimed = table_->compact();
    }
    {
        // Bump the compaction epoch unconditionally — including when
        // nothing was reclaimed because cached corpus views still pin
        // the text (their trees retain every name they resolve).
        // Views are dropped lazily, at their next acquire(): the bump
        // guarantees that acquire rebuilds (releasing the old tree's
        // references), so the compact → query → compact sequence
        // always converges instead of stalling on a view nobody
        // re-queried. Callers wanting one-shot reclamation can drop
        // the views first (CorpusView::invalidateAll).
        std::lock_guard<std::mutex> lock(gen_mutex_);
        ++compacted_;
    }
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++stats_.compactions;
        stats_.reclaimed_bytes += reclaimed;
    }
    // Name compaction marks the corpus's "shed dead state" point — the
    // log folds its dead records (tombstones, superseded appends) away
    // at the same moment.
    compactLog();
    return reclaimed;
}

std::uint64_t
ProfileStore::compactLog()
{
    if (log_ == nullptr)
        return 0;
    std::string error;
    const std::uint64_t folded = log_->compact(&error);
    if (!error.empty()) {
        DC_WARN("run log compaction failed: ", error);
        std::lock_guard<std::mutex> lock(queue_mutex_);
        log_error_ = std::move(error);
        return 0;
    }
    if (folded > 0) {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++stats_.log_compactions;
    }
    return folded;
}

bool
ProfileStore::checkpoint(std::string *error)
{
    std::lock_guard<std::mutex> single(checkpoint_mutex_);
    return checkpointHeld(error);
}

bool
ProfileStore::checkpointHeld(std::string *error)
{
    if (log_ == nullptr) {
        if (error != nullptr)
            *error = "store has no run log";
        return false;
    }
    obs::ObsSpan span(s_checkpoint_span);
    std::string ckpt_error;
    std::vector<std::pair<std::string,
                          std::shared_ptr<const prof::ProfileDb>>>
        snap;
    std::uint64_t cut = 0;
    {
        // Exclusive gate just for the cut + snapshot: with every
        // ingest/erase either fully published-and-logged or not
        // started, the shard snapshot and the cut index describe the
        // same corpus. Serialization happens after release, so
        // ingestion stalls only for the cut itself.
        std::unique_lock<std::shared_mutex> gate(durable_gate_);
        cut = log_->beginCheckpointCut(&ckpt_error);
        if (cut != 0)
            snap = snapshot();
    }
    if (cut == 0) {
        DC_WARN("checkpoint cut failed: ", ckpt_error);
        std::lock_guard<std::mutex> lock(queue_mutex_);
        noteLogErrorLocked(ckpt_error);
        if (error != nullptr)
            *error = std::move(ckpt_error);
        return false;
    }
    s_fp_ckpt_cut.eval();
    std::string frames;
    for (const auto &[run_id, profile] : snap)
        frames += WarehouseLog::frameRun(run_id, profile->serialize());
    span.setArg(frames.size());
    if (!log_->commitCheckpoint(cut, frames, &ckpt_error)) {
        DC_WARN("checkpoint commit failed (log history kept): ",
                ckpt_error);
        std::lock_guard<std::mutex> lock(queue_mutex_);
        noteLogErrorLocked(ckpt_error);
        if (error != nullptr)
            *error = std::move(ckpt_error);
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++stats_.log_checkpoints;
        // A checkpoint that committed proves the disk writes again;
        // clear a stale checkpoint/compaction error the same way a
        // successful append does.
        if (unlogged_.empty())
            log_error_.clear();
    }
    return true;
}

void
ProfileStore::maybeAutoCheckpoint()
{
    if (log_ == nullptr || log_checkpoint_bytes_ == 0 ||
        log_->tailBytes() < log_checkpoint_bytes_) {
        return;
    }
    // One runner at a time; everyone else's trigger re-fires on their
    // next append if the tail is still long.
    std::unique_lock<std::mutex> single(checkpoint_mutex_,
                                        std::try_to_lock);
    if (!single.owns_lock())
        return;
    std::string error;
    checkpointHeld(&error); // failure already warned + recorded
}

bool
ProfileStore::tryReattachNow()
{
    return attemptReattach() && logHealthy();
}

bool
ProfileStore::attemptReattach()
{
    if (log_ == nullptr)
        return false;
    std::vector<std::string> pending;
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (unlogged_.empty())
            return true; // nothing to re-append; an error (if any)
                         // clears with the next successful append
        pending.assign(unlogged_.begin(), unlogged_.end());
        ++reattach_attempts_;
    }
    for (const std::string &run_id : pending) {
        // Same protocol as a live ingest: gate (shared) around a
        // ticket taken under the shard lock, so the re-append cannot
        // interleave with a concurrent erase's tombstone or with a
        // checkpoint cut.
        std::shared_lock<std::shared_mutex> gate(durable_gate_);
        Shard &shard = shardFor(run_id);
        std::shared_ptr<const prof::ProfileDb> profile;
        std::uint64_t ticket = 0;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto it = shard.profiles.find(run_id);
            if (it != shard.profiles.end()) {
                profile = it->second.profile;
                ticket = takeLogTicket();
            }
        }
        if (profile == nullptr) {
            // Erased (durably) since the failure: any remnant of the
            // failed append precedes the tombstone, so there is
            // nothing left to make durable.
            std::lock_guard<std::mutex> lock(queue_mutex_);
            unlogged_.erase(run_id);
            continue;
        }
        const std::string text = profile->serialize();
        awaitLogTurn(ticket);
        std::string error;
        std::uint64_t commit_seq = 0;
        bool ok =
            log_->appendRunAsync(run_id, text, &commit_seq, &error);
        finishLogTurn();
        if (ok)
            ok = log_->sync(commit_seq, &error);
        gate.unlock();
        if (!ok) {
            // Still failing; stay degraded and let the backoff grow.
            std::lock_guard<std::mutex> lock(queue_mutex_);
            ++stats_.log_append_failures;
            noteLogErrorLocked(std::move(error));
            return false;
        }
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++stats_.log_appends;
        unlogged_.erase(run_id);
    }
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (!unlogged_.empty())
            return false; // new failures raced in behind us
        log_error_.clear();
        degraded_since_ns_ = 0; // episode over
        ++stats_.log_reattached;
    }
    reattachedCounter().add();
    DC_INFORM("run log re-attached: durable mode restored (",
              pending.size(), " runs re-appended)");
    return true;
}

void
ProfileStore::reattachLoop()
{
    std::uint64_t backoff_ms = reattach_min_backoff_ms_;
    std::unique_lock<std::mutex> lock(reattach_mutex_);
    for (;;) {
        reattach_cv_.wait(lock, [this] {
            return reattach_stop_ || reattach_kick_;
        });
        if (reattach_stop_)
            return;
        reattach_kick_ = false;
        lock.unlock();
        bool recovered = attemptReattach();
        lock.lock();
        while (!recovered && !reattach_stop_) {
            // Publish the schedule for stats() before sleeping on it.
            reattach_backoff_now_ms_ = backoff_ms;
            reattach_next_retry_ns_ =
                obs::nowNs() + backoff_ms * 1'000'000ull;
            reattach_cv_.wait_for(
                lock, std::chrono::milliseconds(backoff_ms));
            if (reattach_stop_)
                return;
            reattach_kick_ = false;
            backoff_ms =
                std::min(backoff_ms * 2, reattach_max_backoff_ms_);
            lock.unlock();
            recovered = attemptReattach();
            lock.lock();
        }
        backoff_ms = reattach_min_backoff_ms_;
        reattach_backoff_now_ms_ = 0;
        reattach_next_retry_ns_ = 0;
    }
}

bool
ProfileStore::logHealthy() const
{
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return log_ != nullptr && log_error_.empty() && unlogged_.empty();
}

std::string
ProfileStore::logError() const
{
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return log_error_;
}

ProfileStore::RecoveryStats
ProfileStore::recovery() const
{
    // Written only by the constructor, immutable afterwards.
    return recovery_;
}

void
ProfileStore::recordFailure(const std::string &run_id, std::string error)
{
    std::lock_guard<std::mutex> lock(queue_mutex_);
    recordFailureLocked(run_id, std::move(error));
}

void
ProfileStore::recordFailureLocked(const std::string &run_id,
                                  std::string error)
{
    DC_WARN("ingestion of run '", run_id, "' failed: ", error);
    ++stats_.failed;
    ingestFailedCounter().add();
    // A long-lived store fed a misbehaving frontend must not grow its
    // failure log without bound; stats_.failed keeps the exact total.
    if (failures_.size() >= kMaxRecordedFailures)
        failures_.erase(failures_.begin());
    failures_.emplace_back(run_id, std::move(error));
}

void
ProfileStore::waitIdle()
{
    std::unique_lock<std::mutex> lock(queue_mutex_);
    // Also wait for producers inside enqueue(): a backpressured
    // producer has already been counted in stats_.enqueued, so
    // returning before its push would break the exact-totals contract.
    idle_cv_.wait(lock, [this] {
        return queue_.empty() && active_workers_ == 0 &&
               active_producers_ == 0;
    });
}

std::shared_ptr<const prof::ProfileDb>
ProfileStore::get(const std::string &run_id) const
{
    const Shard &shard = shardFor(run_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.profiles.find(run_id);
    return it == shard.profiles.end() ? nullptr : it->second.profile;
}

bool
ProfileStore::erase(const std::string &run_id)
{
    obs::ObsSpan span(s_erase_span);
    Shard &shard = shardFor(run_id);
    std::shared_lock<std::shared_mutex> gate(durable_gate_,
                                             std::defer_lock);
    if (log_ != nullptr)
        gate.lock();
    std::uint64_t ticket = 0;
    std::uint64_t found_seq = 0;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.profiles.find(run_id);
        if (it == shard.profiles.end())
            return false;
        if (log_ == nullptr) {
            shard.profiles.erase(it);
            std::lock_guard<std::mutex> gen(gen_mutex_);
            ++erased_;
            return true;
        }
        // Durable path: pin the tombstone's log position now (so no
        // other operation on this run can slip a record between our
        // observation and our tombstone), remember which incarnation
        // we saw, and do the actual append outside the shard lock.
        ticket = takeLogTicket();
        found_seq = it->second.seq;
    }

    awaitLogTurn(ticket);
    std::string append_error;
    std::uint64_t commit_seq = 0;
    bool tombstoned =
        log_->appendEraseAsync(run_id, &commit_seq, &append_error);
    finishLogTurn();
    if (tombstoned)
        tombstoned = log_->sync(commit_seq, &append_error);
    if (!tombstoned) {
        // Tombstone-before-remove, and only remove if the tombstone
        // is durable: an erase the log could not record must fail —
        // otherwise the run disappears from the serving corpus now
        // and silently resurrects at the next restart. (The run was
        // never removed, so the corpus and log still agree — and
        // because the tombstone bytes may nonetheless have reached
        // the disk, noteAppend marks the run unlogged so re-attach
        // re-appends it after them.)
        noteAppend(false, run_id, std::move(append_error));
        return false;
    }
    noteAppend(true, run_id, {});
    s_fp_tombstoned.eval();

    bool erased = false;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.profiles.find(run_id);
        // Remove only the incarnation we tombstoned: if the id was
        // re-ingested meanwhile, that newer publish also appended a
        // run record *after* our tombstone (its ticket is later), so
        // last-wins replay keeps it — exactly the state we leave in
        // memory by not erasing it. A racing erase that already
        // removed our incarnation wrote its own (harmless, duplicate)
        // tombstone; we report false, it reports true.
        if (it != shard.profiles.end() &&
            it->second.seq == found_seq) {
            shard.profiles.erase(it);
            erased = true;
        }
    }
    if (erased) {
        // Merged stats are not invertible (min/max), so cached views
        // cannot subtract a run; bumping the erase generation tells
        // them to rebuild from scratch.
        std::lock_guard<std::mutex> lock(gen_mutex_);
        ++erased_;
    }
    gate.unlock();
    maybeAutoCompactLog();
    maybeAutoCheckpoint();
    return erased;
}

std::vector<std::string>
ProfileStore::runIds() const
{
    std::vector<std::string> ids;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[run_id, stored] : shard->profiles) {
            (void)stored;
            ids.push_back(run_id);
        }
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::vector<std::string>
ProfileStore::runIdsMatching(
    const std::function<bool(const std::string &,
                             const prof::ProfileDb &)> &pred) const
{
    std::vector<std::string> ids;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[run_id, stored] : shard->profiles) {
            if (pred(run_id, *stored.profile))
                ids.push_back(run_id);
        }
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::vector<std::pair<std::string,
                      std::shared_ptr<const prof::ProfileDb>>>
ProfileStore::snapshotRange(std::uint64_t after, std::uint64_t upto) const
{
    std::vector<std::pair<std::string,
                          std::shared_ptr<const prof::ProfileDb>>>
        entries;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[run_id, stored] : shard->profiles) {
            if (stored.seq > after && stored.seq <= upto)
                entries.emplace_back(run_id, stored.profile);
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return entries;
}

std::vector<std::pair<std::string,
                      std::shared_ptr<const prof::ProfileDb>>>
ProfileStore::snapshot() const
{
    std::vector<std::pair<std::string,
                          std::shared_ptr<const prof::ProfileDb>>>
        entries;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[run_id, stored] : shard->profiles)
            entries.emplace_back(run_id, stored.profile);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return entries;
}

std::size_t
ProfileStore::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->profiles.size();
    }
    return total;
}

StoreStats
ProfileStore::stats() const
{
    // Read the log's own counter before taking queue_mutex_ (the log
    // serializes internally; no reason to nest the locks).
    const std::uint64_t fsyncs =
        log_ != nullptr ? log_->fsyncCount() : 0;
    const std::uint64_t now = obs::nowNs();
    // Supervisor schedule first (reattach_mutex_ and queue_mutex_ are
    // never nested; take them in sequence).
    std::uint64_t backoff_ms, next_retry_ns;
    {
        std::lock_guard<std::mutex> lock(reattach_mutex_);
        backoff_ms = reattach_backoff_now_ms_;
        next_retry_ns = reattach_next_retry_ns_;
    }
    std::lock_guard<std::mutex> lock(queue_mutex_);
    StoreStats stats = stats_;
    stats.log_fsyncs = fsyncs;
    stats.log_unlogged_runs = unlogged_.size();
    if (log_last_error_ns_ != 0) {
        // Clamp to >= 1 so "just failed" cannot alias "never failed".
        stats.log_last_error_age_ns =
            now > log_last_error_ns_ ? now - log_last_error_ns_ : 1;
    }
    if (!log_error_.empty() || !unlogged_.empty()) {
        // Currently degraded: report the episode age. A degradation
        // that bypassed the transition hook still reads as "just now".
        stats.log_degraded_since_ns =
            degraded_since_ns_ != 0 && now > degraded_since_ns_
                ? now - degraded_since_ns_
                : 1;
        // The supervisor schedule is only meaningful mid-episode; a
        // recovered store reads 0 even if the background thread has
        // not yet woken to notice it has nothing to do.
        stats.log_reattach_backoff_ms = backoff_ms;
        if (next_retry_ns != 0) {
            stats.log_reattach_next_retry_ns =
                next_retry_ns > now ? next_retry_ns - now : 1;
        }
    }
    stats.log_reattach_attempts = reattach_attempts_;
    return stats;
}

std::vector<std::pair<std::string, std::string>>
ProfileStore::failures() const
{
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return failures_;
}

} // namespace dc::service

#pragma once

/**
 * @file
 * The profile warehouse's storage tier: a sharded in-memory store of
 * finished profiles keyed by run id, fed by a worker thread pool that
 * drains an ingestion queue.
 *
 * Profiles arrive three ways: an in-process handoff of a ProfileDb (the
 * path a resident Profiler uses), serialized text, or a file path read
 * via ProfileDb::tryLoad (never the panicking load() — one corrupt file
 * must not abort the service). Parsing happens on the workers, off the
 * caller's thread, so a frontend can enqueue a fleet of runs and overlap the
 * (CPU-bound) deserialization across cores. Shards keep lock contention
 * flat as the corpus and the reader count grow; readers receive
 * shared_ptr snapshots so queries never block ingestion of other runs.
 *
 * Malformed files are counted and recorded (run id + error) rather than
 * panicking the process — warehouse input is untrusted.
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "profiler/profile_db.h"

namespace dc::service {

/** Ingestion counters (queried after waitIdle() for exact totals). */
struct StoreStats {
    std::uint64_t enqueued = 0;  ///< Ingestion requests accepted.
    std::uint64_t ingested = 0;  ///< Profiles stored successfully.
    std::uint64_t failed = 0;    ///< Rejected (parse error, bad file,
                                 ///< duplicate run id).
};

/**
 * Sharded, concurrently-ingesting profile store.
 *
 * Destruction: ingest calls already in flight (including producers
 * blocked on backpressure) complete safely — rejected and recorded —
 * before teardown. Starting a new call on a store being destroyed is
 * undefined behavior, as for any C++ object.
 */
class ProfileStore
{
  public:
    struct Options {
        /// Worker threads draining the ingestion queue; 0 = one per
        /// available hardware thread (at least 1).
        std::size_t workers = 0;
        /// Shard count for the run-id keyed map.
        std::size_t shards = 16;
        /// Backpressure: enqueueing blocks while this many tasks are
        /// pending, so a frontend outrunning the parsers cannot pile
        /// the whole corpus's serialized text into memory.
        std::size_t max_queue = 1024;
        /// Backpressure high-water mark on queued payload bytes
        /// (serialized text), since a task count alone would still let
        /// 1024 large texts sit in memory at once.
        std::uint64_t max_queue_bytes = 256ull << 20;
    };

    ProfileStore() : ProfileStore(Options{}) {}
    explicit ProfileStore(Options options);
    ~ProfileStore();

    ProfileStore(const ProfileStore &) = delete;
    ProfileStore &operator=(const ProfileStore &) = delete;

    /** Queue an in-process profile handoff. */
    void ingest(std::string run_id,
                std::unique_ptr<prof::ProfileDb> profile);

    /** Queue serialized profile text; parsed on a worker. */
    void ingestText(std::string run_id, std::string text);

    /** Queue a profile file; read and parsed on a worker. */
    void ingestFile(std::string run_id, std::string path);

    /**
     * Block until every queued ingestion — including in-flight ingest
     * calls blocked on backpressure — has been processed.
     */
    void waitIdle();

    /** Snapshot of a stored profile; nullptr when absent. */
    std::shared_ptr<const prof::ProfileDb>
    get(const std::string &run_id) const;

    /** Remove a run. @return Whether it was present. */
    bool erase(const std::string &run_id);

    /** Sorted ids of all stored runs. */
    std::vector<std::string> runIds() const;

    /**
     * Consistent-per-shard snapshot of the whole store, sorted by run
     * id. One lock acquisition per shard — the read path queries use
     * instead of a get() per run.
     */
    std::vector<std::pair<std::string,
                          std::shared_ptr<const prof::ProfileDb>>>
    snapshot() const;

    /** Number of stored runs. */
    std::size_t size() const;

    StoreStats stats() const;

    /// Retained failure records; older entries are dropped beyond this
    /// (stats().failed still counts every rejection).
    static constexpr std::size_t kMaxRecordedFailures = 256;

    /**
     * Most recent ingestion failures (up to kMaxRecordedFailures), as
     * (run id, error message).
     */
    std::vector<std::pair<std::string, std::string>> failures() const;

  private:
    /// One queued ingestion request; exactly one payload is active,
    /// selected by `kind`.
    struct Task {
        enum class Kind { kProfile, kText, kFile } kind;
        std::string run_id;
        std::unique_ptr<prof::ProfileDb> profile;
        std::string payload; ///< Serialized text or file path.
        /// Memory the queued task pins (text size, or the handed-off
        /// profile's tree estimate) — charged against max_queue_bytes.
        std::uint64_t bytes = 0;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::map<std::string, std::shared_ptr<const prof::ProfileDb>>
            profiles;
    };

    Shard &shardFor(const std::string &run_id);
    const Shard &shardFor(const std::string &run_id) const;

    void enqueue(Task task);
    void workerLoop();
    void process(Task &task);
    void recordFailure(const std::string &run_id, std::string error);
    /// Requires queue_mutex_ held.
    void recordFailureLocked(const std::string &run_id,
                             std::string error);

    std::vector<std::unique_ptr<Shard>> shards_;

    // Ingestion queue state.
    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_; ///< Signals workers: work/stop.
    std::condition_variable idle_cv_;  ///< Signals waiters: queue drained.
    std::condition_variable space_cv_; ///< Signals producers: queue room.
    std::deque<Task> queue_;
    std::size_t max_queue_ = 1024;
    std::uint64_t max_queue_bytes_ = 256ull << 20;
    std::uint64_t queued_bytes_ = 0; ///< Payload bytes in queue_.
    std::size_t active_workers_ = 0;   ///< Workers mid-task.
    std::size_t active_producers_ = 0; ///< Threads inside enqueue();
                                       ///< the destructor waits for
                                       ///< them so an in-flight ingest
                                       ///< call never touches a freed
                                       ///< store.
    bool stopping_ = false;
    StoreStats stats_;
    std::vector<std::pair<std::string, std::string>> failures_;

    std::vector<std::thread> workers_;
};

} // namespace dc::service

#pragma once

/**
 * @file
 * The profile warehouse's storage tier: a sharded in-memory store of
 * finished profiles keyed by run id, fed by an ingestion queue drained
 * on the shared executor (common/executor.h).
 *
 * Profiles arrive three ways: an in-process handoff of a ProfileDb (the
 * path a resident Profiler uses), serialized text, or a file path read
 * via ProfileDb::tryLoad (never the panicking load() — one corrupt file
 * must not abort the service). Parsing happens on pool drain tasks, off
 * the caller's thread, so a frontend can enqueue a fleet of runs and
 * overlap the (CPU-bound) deserialization across cores: an enqueue
 * schedules a drainer (up to Options::workers concurrent ones), each
 * drainer processes tasks until the queue is empty and exits — the
 * store holds no idle ingestion threads of its own, and ingestion
 * shares cores with query rebuilds under one process-wide pool. Shards keep lock contention
 * flat as the corpus and the reader count grow; readers receive
 * shared_ptr snapshots so queries never block ingestion of other runs.
 *
 * Malformed files are counted and recorded (run id + error) rather than
 * panicking the process — warehouse input is untrusted.
 *
 * With Options::data_dir set the store is durable: accepted runs are
 * appended to a checksummed segment log (warehouse_log.h), erases
 * append tombstones, and construction replays the log — rebinding
 * recovered profiles onto the per-corpus StringTable and restoring the
 * budget accounting — so CorpusView/QueryEngine serve a recovered
 * corpus unchanged after a restart or crash. Appends group-commit:
 * each operation writes its record, releases the log turn, and then
 * waits on its commit sequence, so one leader fsync retires every
 * record queued while the previous fsync was in flight. Snapshot
 * checkpoints (checkpoint(), auto-triggered by
 * Options::log_checkpoint_bytes) retire the log's history so recovery
 * replays O(corpus) records, and a store degraded to memory-only by a
 * transient disk error re-attaches in the background — re-appending
 * the affected runs — instead of staying silently non-durable.
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "common/string_table.h"
#include "profiler/profile_db.h"
#include "service/warehouse_log.h"

namespace dc::service {

/** Ingestion counters (queried after waitIdle() for exact totals). */
struct StoreStats {
    std::uint64_t enqueued = 0;  ///< Ingestion requests accepted.
    std::uint64_t ingested = 0;  ///< Profiles stored successfully
                                 ///< this lifetime (excludes runs
                                 ///< recovered from the log).
    std::uint64_t failed = 0;    ///< Rejected (parse error, bad file,
                                 ///< duplicate run id, interned-name
                                 ///< budget).
    /// Runs restored by log replay at construction.
    std::uint64_t recovered = 0;
    /// Run/tombstone records durably appended to the log.
    std::uint64_t log_appends = 0;
    /// Appends that failed (disk full, unwritable dir). A failed
    /// ingest append keeps the run served from memory (it just is
    /// not durable); a failed erase tombstone makes the erase()
    /// itself fail so the corpus and the log never disagree. The
    /// error is warned and the last one kept in logError().
    std::uint64_t log_append_failures = 0;
    /// Log compactions that folded dead records away.
    std::uint64_t log_compactions = 0;
    /// Record fsyncs the log completed (0 with log_sync off or no
    /// log). With appends > 0 and fsyncs == 0 the corpus is only
    /// process-crash-safe, not power-failure-safe. Group commit makes
    /// this grow sublinearly in log_appends under concurrent ingest.
    std::uint64_t log_fsyncs = 0;
    /// Snapshot checkpoints committed (checkpoint() calls plus the
    /// automatic ones Options::log_checkpoint_bytes triggers).
    std::uint64_t log_checkpoints = 0;
    /// Healthy -> degraded transitions: an append/fsync/checkpoint
    /// failure made the store memory-only until re-attach.
    std::uint64_t log_degraded = 0;
    /// Successful re-attaches: every unlogged run re-appended durably
    /// and the log error cleared (see tryReattachNow()).
    std::uint64_t log_reattached = 0;
    /// Runs currently served from memory whose log record is not
    /// known durable (their append or group-commit fsync failed).
    /// The re-attach path drains this back to 0.
    std::uint64_t log_unlogged_runs = 0;
    /// Nanoseconds since the most recent append failure, or 0 when no
    /// append has ever failed. A small value means the store is
    /// actively degraded to memory-only; a large one records a past
    /// incident that has not recurred.
    std::uint64_t log_last_error_age_ns = 0;
    // Re-attach supervisor state — enough for a remote stats endpoint
    // to tell a healthy store from one mid-backoff:
    /// Nanoseconds the store has been in its *current* degraded
    /// episode (0 = not degraded; clamped >= 1 while degraded).
    std::uint64_t log_degraded_since_ns = 0;
    /// Lifetime re-attach attempts that found unlogged runs to
    /// re-append (successful or not; includes tryReattachNow()).
    std::uint64_t log_reattach_attempts = 0;
    /// The supervisor's current backoff wait (ms); 0 when it is not
    /// backing off (healthy, or first attempt still pending).
    std::uint64_t log_reattach_backoff_ms = 0;
    /// Nanoseconds until the next scheduled background retry (clamped
    /// >= 1 when overdue); 0 when none is scheduled.
    std::uint64_t log_reattach_next_retry_ns = 0;
    /// Name-text growth of the store's own StringTable caused by this
    /// store's ingestion (parses and handoff rebinds). Exact: each
    /// worker meters the entries *it* creates inside the owning table
    /// (StringTable::GrowthMeter), so concurrent parses can never
    /// observe — and double-charge — each other's growth.
    std::uint64_t interned_bytes = 0;
    /// Total name text reclaimed by compactNames().
    std::uint64_t reclaimed_bytes = 0;
    /// compactNames() calls (including no-op ones).
    std::uint64_t compactions = 0;
};

/**
 * Sharded, concurrently-ingesting profile store.
 *
 * Destruction: ingest calls already in flight (including producers
 * blocked on backpressure) complete safely — rejected and recorded —
 * before teardown. Starting a new call on a store being destroyed is
 * undefined behavior, as for any C++ object.
 */
class ProfileStore
{
  public:
    struct Options {
        /// Concurrent executor drain tasks processing the ingestion
        /// queue; 0 = one per thread of the executor the drains run
        /// on (Options::executor, or the global pool).
        std::size_t workers = 0;
        /// Pool the drain tasks run on; null = Executor::global().
        common::Executor *executor = nullptr;
        /// Shard count for the run-id keyed map.
        std::size_t shards = 16;
        /// Backpressure: enqueueing blocks while this many tasks are
        /// pending, so a frontend outrunning the parsers cannot pile
        /// the whole corpus's serialized text into memory.
        std::size_t max_queue = 1024;
        /// Backpressure high-water mark on queued payload bytes
        /// (serialized text), since a task count alone would still let
        /// 1024 large texts sit in memory at once.
        std::uint64_t max_queue_bytes = 256ull << 20;
        /// Budget on the store's name-table text (0 = unlimited). A
        /// fleet of runs with high-cardinality generated kernel names
        /// (JIT- or shape-specialized) grows the table without bound;
        /// once names() holds more than this many bytes, further
        /// growth-causing profiles are rejected (recorded as failures)
        /// while profiles made of already-known names keep ingesting.
        /// The decision reads the owning table's exact accounting, so
        /// a profile whose growth lands the table exactly on the
        /// budget still fits, and compactNames() frees budget back.
        std::uint64_t max_interned_bytes = 1ull << 30;
        /// Name table the store's profiles intern into; null = the
        /// store creates a private table (the normal case: exact
        /// accounting and reclamation per corpus). Sharing one table
        /// across stores makes their trees id-compatible, but then
        /// compactNames() callers must quiesce every sharer's
        /// ingestion themselves.
        std::shared_ptr<StringTable> names;
        /// Directory for the store's durable run log; empty = a
        /// volatile in-memory store (the default). When set, every
        /// successful ingest appends the run's serialized text to a
        /// checksummed segment log, erases append tombstones, and
        /// construction replays the log — so the corpus survives a
        /// service restart, tolerating a torn final record from a
        /// crash. An unopenable or unwritable directory degrades the
        /// store to memory-only with a warning (see logHealthy()),
        /// never an abort.
        std::string data_dir;
        /// Segment rollover threshold for the run log.
        std::uint64_t log_segment_bytes = 64ull << 20;
        /// fsync each log append (durable against host failure, not
        /// just process crash).
        bool log_sync = true;
        /// Auto-compaction floor: the log folds dead records (erase
        /// tombstones, superseded appends, corrupt skips) away once
        /// they exceed this many bytes and outweigh the live ones.
        std::uint64_t log_compact_min_dead_bytes = 8ull << 20;
        /// Snapshot-checkpoint trigger: once the log's replay tail
        /// (segment bytes past the newest checkpoint) exceeds this,
        /// the store writes a fresh checkpoint so recovery stays
        /// O(corpus) no matter how much append/erase churn the log
        /// has absorbed. 0 disables the trigger (checkpoint() still
        /// works on demand).
        std::uint64_t log_checkpoint_bytes = 256ull << 20;
        /// Re-attach backoff bounds: a store degraded by a transient
        /// append/fsync failure retries in the background, doubling
        /// the wait from min to max between attempts, and rejoins
        /// durable mode on success.
        std::uint64_t log_reattach_min_backoff_ms = 100;
        std::uint64_t log_reattach_max_backoff_ms = 10'000;
    };

    /** What log replay recovered at construction. */
    struct RecoveryStats {
        bool attempted = false; ///< data_dir was set and the log opened.
        std::uint64_t runs = 0; ///< Runs restored into the corpus.
        std::uint64_t tombstones = 0;    ///< Erase records applied.
        std::uint64_t rejected = 0;      ///< Replayed records whose
                                         ///< profile no longer parses
                                         ///< or fits the budget.
        std::uint64_t corrupt_records = 0; ///< Checksum/framing skips.
        /// Runs streamed from the snapshot checkpoint (the rest came
        /// from the segment tail past its cut).
        std::uint64_t checkpoint_records = 0;
        bool torn_tail = false; ///< Final record was torn (dropped).
    };

    /**
     * Monotonic corpus version. `ingested` is a publication low-water
     * mark: every profile published with sequence <= ingested is
     * visible to snapshotRange(); later publications may still be in
     * flight. `erased` counts erase() calls that removed a run.
     * `compacted` counts compactNames() passes that reclaimed text —
     * cached views are invalidated across a compaction so stale views
     * (whose trees pin reclaimable names) get dropped and rebuilt.
     * Readers (the corpus-view cache) compare digests to detect
     * "corpus unchanged since last query" without snapshotting, and
     * use `ingested` deltas to fetch only newly-published runs.
     */
    struct Generation {
        std::uint64_t ingested = 0;
        std::uint64_t erased = 0;
        std::uint64_t compacted = 0;
        bool operator==(const Generation &) const = default;
    };

    ProfileStore() : ProfileStore(Options{}) {}
    explicit ProfileStore(Options options);
    ~ProfileStore();

    ProfileStore(const ProfileStore &) = delete;
    ProfileStore &operator=(const ProfileStore &) = delete;

    /** Queue an in-process profile handoff. */
    void ingest(std::string run_id,
                std::unique_ptr<prof::ProfileDb> profile);

    /** Queue serialized profile text; parsed on a worker. */
    void ingestText(std::string run_id, std::string text);

    /** Queue a profile file; read and parsed on a worker. */
    void ingestFile(std::string run_id, std::string path);

    /**
     * Block until every queued ingestion — including in-flight ingest
     * calls blocked on backpressure — has been processed.
     */
    void waitIdle();

    /** Snapshot of a stored profile; nullptr when absent. */
    std::shared_ptr<const prof::ProfileDb>
    get(const std::string &run_id) const;

    /**
     * Remove a run. @return Whether it was removed. On a durable
     * store the erase tombstone is appended first and the run is
     * removed only when that append succeeds — an erase the log
     * cannot record returns false (and counts a log_append_failure)
     * rather than serving a deletion that would silently resurrect
     * at the next restart.
     */
    bool erase(const std::string &run_id);

    /**
     * The store's name table: every stored profile's tree interns
     * through it, so their FrameKeys unify by direct id equality.
     */
    const std::shared_ptr<StringTable> &names() const { return table_; }

    /**
     * Shared guard every code path that interns into names() must hold
     * (the parse workers and view builders do); compactNames()
     * excludes holders while it reclaims. Reads (str of live ids,
     * retain/release) need no guard.
     */
    std::shared_lock<std::shared_mutex> internGuard() const
    {
        return std::shared_lock<std::shared_mutex>(table_mutex_);
    }

    /**
     * Reclaim name text no live tree references any more — the text of
     * runs that were erased (and whose reader snapshots have been
     * dropped), of rejected parses, and of evicted views. Quiesces the
     * store's own interning (parse workers and guarded view builds)
     * for the duration, bumps the generation's compaction epoch, and
     * returns the bytes freed back to the interned-name budget.
     *
     * Cached corpus views pin the names their merged trees resolve, so
     * text they cover is reclaimed only after they are dropped: either
     * explicitly (CorpusView::invalidateAll) before compacting, or by
     * re-acquiring after this call — the epoch bump forces that
     * acquire to rebuild, so compact → query → compact always
     * converges.
     */
    std::uint64_t compactNames();

    /**
     * Fold dead records out of the run log now (no-op without a log or
     * dead bytes). compactNames() triggers this too, and erases/appends
     * trigger it automatically past Options::log_compact_min_dead_bytes.
     * @return Log bytes folded away.
     */
    std::uint64_t compactLog();

    /**
     * Write a snapshot checkpoint of the whole corpus now: cut the
     * log (holding ingest/erase off just for the cut + shard
     * snapshot), serialize every stored run into checkpoint frames,
     * and commit them atomically — retiring the segments before the
     * cut so replay is O(corpus), not O(history). Failure leaves the
     * old checkpoint + segments fully authoritative and marks the
     * store degraded (logHealthy()). Options::log_checkpoint_bytes
     * triggers this automatically as the post-checkpoint tail grows.
     */
    bool checkpoint(std::string *error = nullptr);

    /**
     * One synchronous re-attach attempt: re-append every unlogged run
     * (rejected or torn by a past append/fsync failure) and clear the
     * log error once the log takes them all durably again. The
     * background re-attach thread does the same with capped
     * exponential backoff after every degradation; this entry point
     * lets tests and operators force the attempt.
     * @return Whether the store is fully durable (logHealthy()) now.
     */
    bool tryReattachNow();

    /**
     * Whether the run log is open, drained (no unlogged runs), and
     * the last append/checkpoint succeeded.
     */
    bool logHealthy() const;

    /** Last log/recovery error ("" when healthy). */
    std::string logError() const;

    /** What log replay recovered at construction. */
    RecoveryStats recovery() const;

    /** The run log (null for an in-memory store) — diagnostics/tests. */
    const WarehouseLog *log() const { return log_.get(); }

    /** Sorted ids of all stored runs. */
    std::vector<std::string> runIds() const;

    /**
     * Sorted ids of runs whose (id, profile) satisfy @p pred — the
     * lightweight id-listing path. @p pred runs under the shard lock
     * against the stored profile (immutable), so listing ids never
     * copies a shared_ptr per run just to drop it; keep predicates
     * cheap (metadata checks).
     */
    std::vector<std::string> runIdsMatching(
        const std::function<bool(const std::string &,
                                 const prof::ProfileDb &)> &pred) const;

    /** Current corpus version digest (cheap; no snapshotting). */
    Generation generation() const;

    /**
     * Snapshot of runs published with sequence in (@p after, @p upto],
     * sorted by run id. With `after = 0` and `upto =
     * generation().ingested` this is a stable full-corpus cut; the
     * corpus-view cache passes its previous generation as @p after to
     * fetch only runs ingested since. Publications beyond @p upto (or
     * still in flight) are excluded and picked up by a later range.
     */
    std::vector<std::pair<std::string,
                          std::shared_ptr<const prof::ProfileDb>>>
    snapshotRange(std::uint64_t after, std::uint64_t upto) const;

    /**
     * Consistent-per-shard snapshot of the whole store, sorted by run
     * id. One lock acquisition per shard — the read path queries use
     * instead of a get() per run.
     */
    std::vector<std::pair<std::string,
                          std::shared_ptr<const prof::ProfileDb>>>
    snapshot() const;

    /** Number of stored runs. */
    std::size_t size() const;

    StoreStats stats() const;

    /// Retained failure records; older entries are dropped beyond this
    /// (stats().failed still counts every rejection).
    static constexpr std::size_t kMaxRecordedFailures = 256;

    /**
     * Most recent ingestion failures (up to kMaxRecordedFailures), as
     * (run id, error message).
     */
    std::vector<std::pair<std::string, std::string>> failures() const;

  private:
    /// One queued ingestion request; exactly one payload is active,
    /// selected by `kind`.
    struct Task {
        enum class Kind { kProfile, kText, kFile } kind;
        std::string run_id;
        std::unique_ptr<prof::ProfileDb> profile;
        std::string payload; ///< Serialized text or file path.
        /// Memory the queued task pins (text size, or the handed-off
        /// profile's tree estimate) — charged against max_queue_bytes.
        std::uint64_t bytes = 0;
    };

    /// One stored run plus the publication sequence it became visible
    /// at (for generation()-based incremental reads).
    struct Stored {
        std::shared_ptr<const prof::ProfileDb> profile;
        std::uint64_t seq = 0;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::map<std::string, Stored> profiles;
    };

    Shard &shardFor(const std::string &run_id);
    const Shard &shardFor(const std::string &run_id) const;

    void enqueue(Task task);
    /// One pooled drain task: process queued ingestions until the
    /// queue is empty, then retire (enqueue() schedules replacements).
    void drainQueue();
    void process(Task &task);
    void recordFailure(const std::string &run_id, std::string error);
    /// Requires queue_mutex_ held.
    void recordFailureLocked(const std::string &run_id,
                             std::string error);

    /// Open the log on Options::data_dir and replay it into the
    /// shards (constructor only, before the workers start). On any
    /// failure the store degrades to memory-only with the error kept
    /// in log_error_.
    void openAndReplayLog(const Options &options);
    /// Apply one replayed run record (constructor only).
    void applyRecovered(const std::string &run_id, const std::string &text);
    /// Count an append outcome and remember the error (any thread).
    /// A failure with a non-empty @p run_id marks that run unlogged —
    /// its record's durability is unknown — and kicks the re-attach
    /// thread.
    void noteAppend(bool ok, const std::string &run_id,
                    std::string error);
    /// Record a log failure: degraded-transition accounting plus the
    /// error itself. Requires queue_mutex_ held.
    void noteLogErrorLocked(std::string error);
    /// Fold the log when dead bytes crossed the configured floor —
    /// called after appends/erases, i.e. at least at every rollover.
    void maybeAutoCompactLog();
    /// checkpoint() when the post-checkpoint tail outgrew
    /// Options::log_checkpoint_bytes; skips when another checkpoint
    /// is already running.
    void maybeAutoCheckpoint();
    /// checkpoint() body; requires checkpoint_mutex_ held.
    bool checkpointHeld(std::string *error);
    /// The background re-attach loop (capped exponential backoff).
    void reattachLoop();
    /// One re-attach pass: re-append unlogged runs, clear the error
    /// when the log is fully caught up. @return Whether nothing is
    /// (left) degraded.
    bool attemptReattach();
    /// Reserve the next log position (call under the shard mutex).
    std::uint64_t takeLogTicket();
    /// Block until @p ticket's turn to append (no shard lock held).
    void awaitLogTurn(std::uint64_t ticket);
    /// Release the turn so the next ticket can append.
    void finishLogTurn();

    /**
     * Allocate a publication sequence number and mark it in flight.
     * The pair brackets the shard-map insert so generation().ingested
     * (the low-water mark over completed publications) never moves past
     * a sequence whose insert has not happened — without it, a reader
     * could observe sequence 7 published, cache "seen through 7", and
     * permanently miss a sequence-6 insert still in flight on another
     * worker.
     */
    std::uint64_t beginPublish();
    void endPublish(std::uint64_t seq);

    std::vector<std::unique_ptr<Shard>> shards_;

    /// The durable run log (null = in-memory store).
    std::unique_ptr<WarehouseLog> log_;
    /// Log-append ordering tickets. A ticket is taken *under* the
    /// owning shard's mutex (an O(1) counter bump that never blocks
    /// on I/O), which pins the record's log position relative to
    /// every other operation on that shard's runs; the append itself
    /// — write, fsync, possibly waiting out a whole-log compaction —
    /// runs strictly in ticket order but outside any shard lock, so
    /// readers never stall behind log I/O.
    std::mutex log_ticket_mutex_;
    std::condition_variable log_ticket_cv_;
    std::uint64_t log_next_ticket_ = 0;
    std::uint64_t log_now_serving_ = 0;
    /// Last log open/replay/append error. Guarded by queue_mutex_.
    std::string log_error_;
    /// obs::nowNs() of the last failed append (0 = never). Guarded by
    /// queue_mutex_; stats() reports it as an age.
    std::uint64_t log_last_error_ns_ = 0;
    /// obs::nowNs() when the current degraded episode began (0 = not
    /// degraded). Guarded by queue_mutex_; cleared on re-attach.
    std::uint64_t degraded_since_ns_ = 0;
    /// Re-attach attempts that had work to do. Guarded by queue_mutex_.
    std::uint64_t reattach_attempts_ = 0;
    /// Runs whose log record is not known durable (append or fsync
    /// failed after they were published to memory). Guarded by
    /// queue_mutex_; drained by attemptReattach().
    std::set<std::string> unlogged_;
    RecoveryStats recovery_; ///< Written by the constructor only.

    /// Ingest/erase hold this shared from before their log ticket
    /// through their group-commit sync; a checkpoint cut holds it
    /// exclusive while it cuts the log and snapshots the shards, so
    /// no operation is ever caught between its shard update and its
    /// log record. Lock order: durable_gate_ before shard mutexes.
    mutable std::shared_mutex durable_gate_;
    /// Single-runner guard for checkpoint(); auto-checkpoints
    /// try-lock it and skip when one is already underway.
    std::mutex checkpoint_mutex_;
    std::uint64_t log_checkpoint_bytes_ = 0;

    // Re-attach supervisor (started only for durable stores).
    std::thread reattach_thread_;
    mutable std::mutex reattach_mutex_; ///< stats() reads the schedule.
    std::condition_variable reattach_cv_;
    bool reattach_stop_ = false;
    bool reattach_kick_ = false;
    std::uint64_t reattach_min_backoff_ms_ = 100;
    std::uint64_t reattach_max_backoff_ms_ = 10'000;
    /// Supervisor schedule, for stats(): the backoff currently in
    /// force and the absolute obs::nowNs() of the next retry (both 0
    /// when not backing off). Guarded by reattach_mutex_.
    std::uint64_t reattach_backoff_now_ms_ = 0;
    std::uint64_t reattach_next_retry_ns_ = 0;

    /// The per-corpus name table (see Options::names).
    std::shared_ptr<StringTable> table_;
    /// Shared by interning paths, exclusive for compactNames().
    mutable std::shared_mutex table_mutex_;

    // Corpus-version state (publication sequences, erase count).
    mutable std::mutex gen_mutex_;
    std::uint64_t last_seq_ = 0;  ///< Highest sequence handed out.
    std::uint64_t floor_ = 0;     ///< Low-water mark: all <= published.
    std::uint64_t erased_ = 0;    ///< Successful erase() count.
    std::uint64_t compacted_ = 0; ///< Reclaiming compactNames() count.
    std::set<std::uint64_t> in_flight_;

    // Ingestion queue state.
    mutable std::mutex queue_mutex_;
    std::condition_variable idle_cv_;  ///< Signals waiters: queue
                                       ///< drained / producers and
                                       ///< drainers retired.
    std::condition_variable space_cv_; ///< Signals producers: queue room.
    std::deque<Task> queue_;
    std::size_t max_queue_ = 1024;
    std::uint64_t max_queue_bytes_ = 256ull << 20;
    std::uint64_t max_interned_bytes_ = 1ull << 30;
    std::uint64_t queued_bytes_ = 0; ///< Payload bytes in queue_.
    std::size_t active_workers_ = 0;   ///< Drainers mid-task.
    std::size_t active_producers_ = 0; ///< Threads inside enqueue();
                                       ///< the destructor waits for
                                       ///< them so an in-flight ingest
                                       ///< call never touches a freed
                                       ///< store.
    /// Drain tasks scheduled or running on the executor. The
    /// destructor waits for 0 so no pool task outlives the store.
    std::size_t drainers_ = 0;
    bool stopping_ = false;
    StoreStats stats_;
    std::vector<std::pair<std::string, std::string>> failures_;

    common::Executor *executor_ = nullptr; ///< Never null after ctor.
    std::size_t worker_limit_ = 1;         ///< Max concurrent drainers.
};

} // namespace dc::service

#pragma once

/**
 * @file
 * Mutex acquisition with contention visibility.
 *
 * The contention audit needs lock-wait *distributions*, not guesses:
 * a striped cache only proves itself if the histogram of time spent
 * blocked on its stripes collapses. WaitMeteredLock is a lock_guard
 * substitute that keeps the uncontended path free (one try_lock) and,
 * only when the mutex is actually held by someone else, times the
 * blocking acquire and records it — in microseconds — into a
 * registry histogram. With obs disabled a contended acquire degrades
 * to a plain lock() with no clock reads.
 *
 * The histogram handle is shared by every acquirer of a site (pass
 * the same static handle), so one snapshot shows the site's p50/p99
 * wait; sites live in the same registry namespace as everything else
 * (e.g. "view.lock.stripe.wait_us").
 */

#include <mutex>

#include "obs/metrics_registry.h"
#include "obs/obs.h"

namespace dc::obs {

/** RAII scoped lock that meters contended acquires; see file docs. */
template <typename Mutex = std::mutex>
class WaitMeteredLock
{
  public:
    WaitMeteredLock(Mutex &mutex, const Histogram &wait_us)
        : mutex_(mutex)
    {
        if (mutex_.try_lock())
            return;
        if (!enabled()) {
            mutex_.lock();
            return;
        }
        const std::uint64_t start = nowNs();
        mutex_.lock();
        wait_us.record((nowNs() - start) / 1000);
    }
    ~WaitMeteredLock() { mutex_.unlock(); }

    WaitMeteredLock(const WaitMeteredLock &) = delete;
    WaitMeteredLock &operator=(const WaitMeteredLock &) = delete;

  private:
    Mutex &mutex_;
};

} // namespace dc::obs

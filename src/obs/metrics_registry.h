#pragma once

/**
 * @file
 * Process metrics for the warehouse itself: named monotonic counters
 * and fixed-bucket log-scale latency histograms, written lock-free from
 * any thread and swept into a consistent snapshot on demand.
 *
 * Design (the hot path is ingestion workers and query threads — the
 * things being measured must not contend with each other):
 *
 *  - Every writing thread owns a private slab of relaxed atomics; a
 *    counter add or histogram record touches only the caller's slab
 *    (one relaxed fetch_add), so writers never share a cache line and
 *    never take a lock. Thread exit returns the slab to a free list —
 *    its accumulated totals survive (counters are cumulative across
 *    the process) and a later thread adopts and continues it.
 *
 *  - snapshot() sums the slabs with relaxed loads under the registry
 *    mutex (which only writers *registering new metrics* ever take on
 *    their slow path). Concurrent writes may or may not be included —
 *    each counter is monotonically fresh, which is what an exported
 *    metrics page needs; exact totals require quiescing the writers
 *    first, as the tests do.
 *
 *  - Histograms use log₂ octaves split into 4 sub-buckets (≤12.5%
 *    relative error, 256 buckets covering the full uint64 range, values
 *    0..7 exact), so p50/p95/p99 are derivable from any snapshot
 *    without storing samples.
 *
 * Handles (Counter / Histogram) are cheap value types registered once
 * and kept in static or member storage; a default-constructed handle is
 * a safe no-op. The global() registry is the one the warehouse's
 * instrumentation writes to; tests may build private registries.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dc::obs {

namespace detail {
struct RegistryState;
} // namespace detail

/** Limits of one thread slab (DC_CHECK'd at registration). */
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxHistograms = 48;
/// Histogram shape: log₂ octaves × 4 sub-buckets (2 bits).
inline constexpr int kHistSubBits = 2;
inline constexpr std::size_t kHistBuckets = 256;

/** Bucket index for @p value (monotonic in value; 0..7 map exactly). */
std::size_t histBucket(std::uint64_t value);
/** Inclusive lower bound of bucket @p index. */
std::uint64_t histBucketLower(std::size_t index);
/** Representative (midpoint) value of bucket @p index. */
std::uint64_t histBucketMid(std::size_t index);

/** Lock-free monotonic counter handle. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n (relaxed, per-thread slab; no-op on a null handle). */
    void add(std::uint64_t n = 1) const;

  private:
    friend class MetricsRegistry;
    Counter(std::shared_ptr<detail::RegistryState> state,
            std::uint32_t id)
        : state_(std::move(state)), id_(id)
    {
    }
    std::shared_ptr<detail::RegistryState> state_;
    std::uint32_t id_ = 0;
};

/** Lock-free log-scale histogram handle. */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one observation (no-op on a null handle). */
    void record(std::uint64_t value) const;

  private:
    friend class MetricsRegistry;
    Histogram(std::shared_ptr<detail::RegistryState> state,
              std::uint32_t id)
        : state_(std::move(state)), id_(id)
    {
    }
    std::shared_ptr<detail::RegistryState> state_;
    std::uint32_t id_ = 0;
};

/** One histogram's merged view at snapshot time. */
struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    /// Quantile estimates from the merged buckets (bucket midpoints;
    /// ≤12.5% relative error). 0 when count == 0.
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;

    double mean() const
    {
        return count > 0 ? static_cast<double>(sum) /
                               static_cast<double>(count)
                         : 0.0;
    }
};

/** A consistent-enough sweep of every registered metric. */
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<HistogramSnapshot> histograms;

    /** Counter value by name; 0 when absent. */
    std::uint64_t counter(const std::string &name) const;
    /** Histogram by name; nullptr when absent. */
    const HistogramSnapshot *histogram(const std::string &name) const;

    /**
     * Flat JSON object: {"counters": {...}, "histograms": {name:
     * {count, sum, max, mean, p50, p95, p99}, ...}} — the exporter the
     * bench dumps and a future server endpoint will serve.
     */
    std::string toJson() const;
};

/** Registry of named counters and histograms. */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The registry the warehouse's instrumentation writes to. */
    static MetricsRegistry &global();

    /** Get-or-register the counter named @p name. */
    Counter counter(const std::string &name);

    /** Get-or-register the histogram named @p name. */
    Histogram histogram(const std::string &name);

    /** Sweep every slab into a snapshot (relaxed loads, no writer
     * locks taken — see the file comment for the consistency model). */
    MetricsSnapshot snapshot() const;

    /** snapshot().toJson() convenience. */
    std::string toJson() const;

    /**
     * Zero every counter and histogram bucket across all slabs (names
     * stay registered). For tests and bench phase isolation only —
     * racing writers may leave residue; quiesce them first.
     */
    void reset();

  private:
    std::shared_ptr<detail::RegistryState> state_;
};

} // namespace dc::obs
